// Quickstart: assemble a 4-node Lyra cluster on a simulated LAN, submit a
// few transactions, and watch them get ordered, committed, and revealed.
//
//   $ ./examples/quickstart
//
// Walks through the public API end to end: cluster assembly
// (harness::LyraCluster), transaction submission (LyraNode::submit_local),
// and the SMR output (LyraNode::ledger(), chain_hash()).

#include <cstdio>
#include <string>

#include "harness/lyra_cluster.hpp"

using namespace lyra;

int main() {
  // 1. Configure a small deployment: n = 4 nodes tolerating f = 1
  //    Byzantine fault, single-datacenter latencies.
  harness::LyraClusterOptions options;
  options.config.n = 4;
  options.config.f = 1;
  options.config.delta = ms(2);      // post-GST delay bound for a LAN
  options.config.lambda = ms(1);     // sequence-number validation window
  options.config.batch_size = 4;     // tiny batches so we can watch them
  options.config.batch_timeout = ms(5);
  options.topology = net::single_region(4);
  options.seed = 2024;

  harness::LyraCluster cluster(std::move(options));
  cluster.start();

  // 2. Let the nodes learn their distance tables D_i (warm-up probes).
  cluster.run_for(ms(50));
  std::printf("warm-up done; node 0 warmed_up = %s\n",
              cluster.node(0).warmed_up() ? "true" : "false");

  // 3. Submit transactions at different nodes — Lyra is leaderless, every
  //    node is a proposer.
  const char* payloads[] = {"pay alice 10", "pay bob 5", "mint carol 7",
                            "pay dave 3",   "burn eve 1", "pay frank 2"};
  for (int i = 0; i < 6; ++i) {
    cluster.node(static_cast<NodeId>(i % 4)).submit_local(
        to_bytes(payloads[i]));
    cluster.run_for(ms(10));
  }

  // 4. Wait for the Commit protocol to lock, stabilize, and commit the
  //    prefix, then for the commit-reveal shares to decrypt the payloads.
  cluster.run_for(ms(300));

  // 5. Inspect the SMR output. Every correct node holds the same ordered,
  //    revealed ledger.
  std::printf("\n%-4s %-14s %-10s %-9s %s\n", "idx", "seq(ms)", "proposer",
              "batch", "payload");
  const auto& ledger = cluster.node(0).ledger();
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    const auto& batch = ledger[i];
    std::string text;
    for (char c : as_string_view(batch.payload)) {
      if (c >= 32 && c < 127) text += c;
    }
    std::printf("%-4zu %-14.3f n%-9u %-9u %s\n", i, to_ms(batch.seq),
                batch.inst.proposer, batch.tx_count, text.c_str());
  }

  std::printf("\nledgers prefix-consistent: %s\n",
              cluster.ledgers_prefix_consistent() ? "yes" : "NO");
  for (NodeId i = 0; i < 4; ++i) {
    std::printf("node %u chain hash: %s\n", i,
                crypto::digest_short(cluster.node(i).chain_hash()).c_str());
  }
  return 0;
}
