// Censorship demo (§I, §V-E): leader-based designs let a live-but-Byzantine
// leader silently omit a victim's transactions — the "blind order-fairness"
// gap of commit-reveal systems like Fino, inherited by anything running on
// HotStuff. Lyra has no leader to abuse: the victim's own instances reach
// quorum without anyone's permission.

#include <cstdio>

#include "attacks/byzantine_lyra.hpp"
#include "attacks/censor.hpp"
#include "harness/lyra_cluster.hpp"
#include "harness/pompe_cluster.hpp"

using namespace lyra;

namespace {
constexpr NodeId kVictim = 2;
}  // namespace

int main() {

  // --- Pompē under a censoring HotStuff leader ---
  {
    harness::PompeClusterOptions opts;
    opts.config.n = 4;
    opts.config.f = 1;
    opts.config.delta = ms(3);
    opts.config.batch_size = 8;
    opts.config.batch_timeout = ms(4);
    opts.config.initial_leader = 0;
    opts.topology = net::single_region(4);
    opts.seed = 5;
    opts.node_factory = [](sim::Simulation* sim, net::Network* net,
                           NodeId id, const pompe::PompeConfig& cfg,
                           const crypto::KeyRegistry* reg)
        -> std::unique_ptr<pompe::PompeNode> {
      if (id == 0) {
        return std::make_unique<attacks::CensoringPompeNode>(sim, net, id,
                                                             cfg, reg,
                                                             kVictim);
      }
      return std::make_unique<pompe::PompeNode>(sim, net, id, cfg, reg);
    };
    harness::PompeCluster cluster(opts);
    cluster.start();
    cluster.run_for(ms(10));
    // Continuous traffic keeps the leader looking live, so the pacemaker
    // never rotates it out.
    for (int i = 0; i < 150; ++i) {
      cluster.node(1).submit_local(to_bytes("a" + std::to_string(i)));
      cluster.node(3).submit_local(to_bytes("b" + std::to_string(i)));
      if (i % 10 == 0) {
        cluster.node(kVictim).submit_local(to_bytes("v" + std::to_string(i)));
      }
      cluster.run_for(ms(5));
    }

    std::size_t victim_commits = 0;
    for (const auto& e : cluster.node(1).ledger()) {
      if (e.proposer == kVictim) ++victim_commits;
    }
    const auto* censor =
        dynamic_cast<attacks::CensoringPompeNode*>(&cluster.node(0));
    std::printf("Pompe (leader = Byzantine censor):\n");
    std::printf("  batches committed:        %llu\n",
                static_cast<unsigned long long>(
                    cluster.node(1).stats().committed_batches));
    std::printf("  victim batches committed: %zu\n", victim_commits);
    std::printf("  batches censored:         %llu\n",
                static_cast<unsigned long long>(censor->censored()));
    std::printf("  views changed:            %llu  (leader stayed in "
                "charge)\n\n",
                static_cast<unsigned long long>(
                    cluster.node(1).hotstuff().view()));
  }

  // --- Lyra with an equivalent Byzantine node ---
  {
    harness::LyraClusterOptions opts;
    opts.config.n = 4;
    opts.config.f = 1;
    opts.config.delta = ms(3);
    opts.config.lambda = ms(1);
    opts.config.batch_size = 8;
    opts.config.batch_timeout = ms(4);
    opts.config.heartbeat_period = ms(2);
    opts.config.commit_poll = ms(1);
    opts.config.probe_period = ms(3);
    opts.topology = net::single_region(4);
    opts.seed = 7;
    // The Byzantine node refuses to take part in the victim's instances —
    // the closest analogue of censorship in a leaderless protocol.
    opts.node_factory = [](sim::Simulation* sim, net::Network* net,
                           NodeId id, const core::Config& cfg,
                           const crypto::KeyRegistry* reg)
        -> std::unique_ptr<core::LyraNode> {
      if (id == 0) {
        class VictimIgnorer final : public core::LyraNode {
         public:
          using core::LyraNode::LyraNode;

         protected:
          bool participate(const InstanceId& inst) const override {
            return inst.proposer != kVictim;
          }
        };
        return std::make_unique<VictimIgnorer>(sim, net, id, cfg, reg);
      }
      return std::make_unique<core::LyraNode>(sim, net, id, cfg, reg);
    };
    harness::LyraCluster cluster(opts);
    cluster.start();
    cluster.run_for(ms(60));
    for (int i = 0; i < 150; ++i) {
      cluster.node(1).submit_local(to_bytes("a" + std::to_string(i)));
      cluster.node(3).submit_local(to_bytes("b" + std::to_string(i)));
      if (i % 10 == 0) {
        cluster.node(kVictim).submit_local(to_bytes("v" + std::to_string(i)));
      }
      cluster.run_for(ms(5));
    }
    cluster.run_for(ms(200));

    std::size_t victim_commits = 0;
    for (const auto& e : cluster.node(1).ledger()) {
      if (e.inst.proposer == kVictim) ++victim_commits;
    }
    std::printf("Lyra (one Byzantine node boycotts the victim):\n");
    std::printf("  batches committed:        %llu\n",
                static_cast<unsigned long long>(
                    cluster.node(1).stats().committed_batches));
    std::printf("  victim batches committed: %zu  (leaderless: a 2f+1 "
                "quorum of correct nodes suffices)\n",
                victim_commits);
  }
  return 0;
}
