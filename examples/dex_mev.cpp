// DEX / MEV demo: what reordering resistance is worth in dollars. Victim
// traders swap against a constant-product AMM; a Byzantine consensus node
// sandwiches every trade it can see. We execute the *committed* transaction
// streams of Pompē and Lyra through identical AMMs and compare the
// attacker's extracted value (Daian et al. [10] estimate such extraction
// at hundreds of millions of dollars on Ethereum).

#include <cstdio>
#include <map>
#include <set>

#include "app/amm.hpp"
#include "attacks/frontrun.hpp"
#include "harness/lyra_cluster.hpp"
#include "harness/pompe_cluster.hpp"

using namespace lyra;

namespace {

net::Topology fig1_topology() {
  net::Topology t;
  t.placement = {
      net::Region::kTokyo,     net::Region::kSingapore,
      net::Region::kMumbai,    net::Region::kMumbai,
      net::Region::kMumbai,    net::Region::kMumbai,
      net::Region::kMumbai,    net::Region::kTokyo,
  };
  return t;
}

constexpr double kVictimQuote = 5'000.0;  // victim buys 5k quote per trade
constexpr double kAttackQuote = 2'500.0;  // attacker's sandwich size

/// Executes an ordered stream of (is_attack, index) trades through an AMM.
/// The attacker buys when its front leg executes and sells immediately
/// after the matching victim's trade (back-running is always possible).
double attacker_profit(const std::vector<std::pair<bool, int>>& stream) {
  app::Amm amm(100'000.0, 100'000.0, 30.0);
  std::map<int, double> open_legs;   // front legs awaiting their victim
  std::set<int> victims_executed;
  double profit = 0.0;
  for (const auto& [is_attack, k] : stream) {
    if (is_attack) {
      const double base = amm.buy_base(kAttackQuote);
      profit -= kAttackQuote;
      if (victims_executed.contains(k)) {
        // The front-run failed: the victim already traded. The attacker
        // exits immediately, eating the fee and its own slippage.
        profit += amm.sell_base(base);
      } else {
        open_legs[k] = base;
      }
    } else {
      amm.buy_base(kVictimQuote);  // victim's trade
      victims_executed.insert(k);
      if (const auto it = open_legs.find(k); it != open_legs.end()) {
        profit += amm.sell_base(it->second);  // back-run: close the leg
        open_legs.erase(it);
      }
    }
  }
  // Legs whose victim never committed: exit at the end.
  for (const auto& [k, base] : open_legs) profit += amm.sell_base(base);
  return profit;
}

/// Parses committed payloads into the ordered trade stream.
std::vector<std::pair<bool, int>> stream_from_payloads(
    const std::vector<BytesView>& payloads) {
  std::vector<std::pair<bool, int>> stream;
  for (BytesView p : payloads) {
    const std::string_view text = as_string_view(p);
    for (std::size_t pos = 0; pos < text.size(); ++pos) {
      for (const auto& [marker, is_attack] :
           {std::pair{attacks::kVictimMarker, false},
            std::pair{attacks::kAttackMarker, true}}) {
        if (text.substr(pos, marker.size()) == marker) {
          int k = 0;
          std::size_t q = pos + marker.size();
          bool any = false;
          while (q < text.size() && text[q] >= '0' && text[q] <= '9') {
            k = k * 10 + (text[q] - '0');
            ++q;
            any = true;
          }
          if (any) stream.emplace_back(is_attack, k);
        }
      }
    }
  }
  return stream;
}

}  // namespace

int main() {
  constexpr std::size_t kTrades = 15;

  // --- Pompē ---
  double pompe_profit = 0.0;
  {
    harness::PompeClusterOptions opts;
    opts.config.n = 7;
    opts.config.f = 2;
    opts.config.delta = ms(140);
    opts.config.batch_timeout = ms(5);
    opts.config.batch_size = 4;
    opts.topology = fig1_topology();
    opts.seed = 31;
    opts.node_factory = [](sim::Simulation* sim, net::Network* net,
                           NodeId id, const pompe::PompeConfig& cfg,
                           const crypto::KeyRegistry* reg)
        -> std::unique_ptr<pompe::PompeNode> {
      if (id == 1) {
        return std::make_unique<attacks::FrontRunningPompeNode>(sim, net,
                                                                id, cfg,
                                                                reg);
      }
      return std::make_unique<pompe::PompeNode>(sim, net, id, cfg, reg);
    };
    harness::PompeCluster cluster(opts);
    cluster.adopt_process(std::make_unique<attacks::AliceClient>(
        &cluster.simulation(), &cluster.network(),
        cluster.next_process_id(), 0, ms(100), ms(350), kTrades));
    cluster.start();
    cluster.run_for(ms(350.0 * kTrades + 4000));

    std::vector<BytesView> payloads;
    for (const auto& c : cluster.node(2).ledger()) {
      if (const Bytes* p = cluster.node(2).batch_payload(c.batch_digest)) {
        payloads.push_back(*p);
      }
    }
    pompe_profit = attacker_profit(stream_from_payloads(payloads));
  }

  // --- Lyra ---
  double lyra_profit = 0.0;
  {
    harness::LyraClusterOptions opts;
    opts.config.n = 7;
    opts.config.f = 2;
    opts.config.delta = ms(160);
    opts.config.lambda = ms(12);
    opts.config.batch_timeout = ms(5);
    opts.config.batch_size = 4;
    opts.config.probe_period = ms(40);
    opts.topology = fig1_topology();
    opts.seed = 33;
    opts.node_factory = [](sim::Simulation* sim, net::Network* net,
                           NodeId id, const core::Config& cfg,
                           const crypto::KeyRegistry* reg)
        -> std::unique_ptr<core::LyraNode> {
      if (id == 1) {
        return std::make_unique<attacks::FrontRunningLyraNode>(sim, net, id,
                                                               cfg, reg);
      }
      return std::make_unique<core::LyraNode>(sim, net, id, cfg, reg);
    };
    harness::LyraCluster cluster(opts);
    cluster.adopt_process(std::make_unique<attacks::AliceClient>(
        &cluster.simulation(), &cluster.network(),
        cluster.next_process_id(), 0, ms(600), ms(450), kTrades));
    cluster.start();
    cluster.run_for(ms(450.0 * kTrades + 5000));

    std::vector<BytesView> payloads;
    for (const auto& c : cluster.node(2).ledger()) {
      payloads.push_back(c.payload);
    }
    lyra_profit = attacker_profit(stream_from_payloads(payloads));
  }

  std::printf("Sandwich attacker against %zu victim trades of %.0f quote "
              "each:\n\n",
              kTrades, kVictimQuote);
  std::printf("  %-22s %12s\n", "ordering layer", "MEV extracted");
  std::printf("  %-22s %12.2f\n", "Pompe (clear text)", pompe_profit);
  std::printf("  %-22s %12.2f\n", "Lyra (commit-reveal)", lyra_profit);
  std::printf("\nUnder Lyra the attacker's front leg lands *after* the "
              "victim's trade,\nso every sandwich attempt pays the fee and "
              "the slippage for nothing.\n");
  return 0;
}
