// Front-running demo (the paper's Figure 1): Alice in Tokyo submits a
// transaction; Mallory, a Byzantine consensus node in Singapore, watches
// the mempool traffic and reacts. Because WAN latencies violate the
// triangle inequality, Mallory's dependent transaction reaches the
// timestamping quorum (Mumbai) before Alice's original.
//
// On Pompē the payload travels in the clear during the ordering phase, so
// Mallory front-runs at will. On Lyra she sees only a VSS ciphertext and
// learns the payload when it is already committed — too late.

#include <cstdio>

#include "attacks/frontrun.hpp"
#include "harness/lyra_cluster.hpp"
#include "harness/pompe_cluster.hpp"

using namespace lyra;

namespace {

net::Topology fig1_topology() {
  net::Topology t;
  t.placement = {
      net::Region::kTokyo,      // node 0: Alice's proposer
      net::Region::kSingapore,  // node 1: Mallory
      net::Region::kMumbai,     net::Region::kMumbai,
      net::Region::kMumbai,     net::Region::kMumbai,
      net::Region::kMumbai,     // nodes 2-6: the timestamping mass
      net::Region::kTokyo,      // Alice (client process)
  };
  return t;
}

}  // namespace

int main() {
  std::printf("The triangle inequality violation (one-way means):\n");
  std::printf("  Tokyo -> Mumbai directly:          %5.1f ms\n",
              to_ms(net::region_latency(net::Region::kTokyo,
                                        net::Region::kMumbai)));
  std::printf("  Tokyo -> Singapore -> Mumbai:      %5.1f ms  <- faster!\n\n",
              to_ms(net::region_latency(net::Region::kTokyo,
                                        net::Region::kSingapore) +
                    net::region_latency(net::Region::kSingapore,
                                        net::Region::kMumbai)));

  constexpr std::size_t kVictims = 10;

  // --- Pompē: ordering is fair (median of 2f+1 signed timestamps), but
  // --- the payload is public from the first broadcast.
  {
    harness::PompeClusterOptions opts;
    opts.config.n = 7;
    opts.config.f = 2;
    opts.config.delta = ms(140);
    opts.config.batch_timeout = ms(5);
    opts.config.batch_size = 4;
    opts.topology = fig1_topology();
    opts.seed = 99;
    attacks::FrontRunningPompeNode* mallory = nullptr;
    opts.node_factory = [&mallory](sim::Simulation* sim, net::Network* net,
                                   NodeId id, const pompe::PompeConfig& cfg,
                                   const crypto::KeyRegistry* reg)
        -> std::unique_ptr<pompe::PompeNode> {
      if (id == 1) {
        auto node = std::make_unique<attacks::FrontRunningPompeNode>(
            sim, net, id, cfg, reg);
        mallory = node.get();
        return node;
      }
      return std::make_unique<pompe::PompeNode>(sim, net, id, cfg, reg);
    };
    harness::PompeCluster cluster(opts);
    cluster.adopt_process(std::make_unique<attacks::AliceClient>(
        &cluster.simulation(), &cluster.network(),
        cluster.next_process_id(), /*target=*/0, ms(100), ms(350),
        kVictims));
    cluster.start();
    cluster.run_for(ms(8000));

    const auto outcome = attacks::evaluate_pompe_frontrun(cluster.node(2));
    std::printf("Pompe: Mallory read %zu/%zu payloads before commit\n",
                mallory->observed_victims(), kVictims);
    std::printf("Pompe: %zu/%zu victim transactions were front-run\n\n",
                outcome.front_run_successes, outcome.victims_committed);
  }

  // --- Lyra: same geometry, same attacker — but commit-reveal.
  {
    harness::LyraClusterOptions opts;
    opts.config.n = 7;
    opts.config.f = 2;
    opts.config.delta = ms(160);
    opts.config.lambda = ms(12);
    opts.config.batch_timeout = ms(5);
    opts.config.batch_size = 4;
    opts.config.probe_period = ms(40);
    opts.topology = fig1_topology();
    opts.seed = 101;
    attacks::FrontRunningLyraNode* mallory = nullptr;
    opts.node_factory = [&mallory](sim::Simulation* sim, net::Network* net,
                                   NodeId id, const core::Config& cfg,
                                   const crypto::KeyRegistry* reg)
        -> std::unique_ptr<core::LyraNode> {
      if (id == 1) {
        auto node = std::make_unique<attacks::FrontRunningLyraNode>(
            sim, net, id, cfg, reg);
        mallory = node.get();
        return node;
      }
      return std::make_unique<core::LyraNode>(sim, net, id, cfg, reg);
    };
    harness::LyraCluster cluster(opts);
    cluster.adopt_process(std::make_unique<attacks::AliceClient>(
        &cluster.simulation(), &cluster.network(),
        cluster.next_process_id(), /*target=*/0, ms(600), ms(450),
        kVictims));
    cluster.start();
    cluster.run_for(ms(10000));

    const auto outcome = attacks::evaluate_lyra_frontrun(cluster.node(2));
    std::printf("Lyra:  Mallory scanned %zu ciphertexts, read %zu payloads "
                "before commit\n",
                mallory->ciphers_scanned(),
                mallory->payloads_readable_before_commit());
    std::printf("Lyra:  %zu/%zu victim transactions were front-run\n",
                outcome.front_run_successes, outcome.victims_committed);
    std::printf("Lyra:  (her reactions commit %zu times, but always "
                "*after* their victims)\n",
                outcome.attacks_committed);
  }
  return 0;
}
