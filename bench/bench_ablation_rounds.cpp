// Ablation A3 (§III/§IV): good-case latency in protocol rounds. Theorem 3
// proves Lyra's BOC decides in 3 message delays (one DBFT round) when the
// broadcaster is correct and the network is synchronous; Pompē needs 11
// ([31]): 2 for timestamp collection, 1 to relay the sequenced batch, and
// ~8 for chained HotStuff's proposal/vote pipeline to a three-chain.
//
// We measure the DBFT round in which every Lyra decision lands across the
// sweep: in the good case it must be exactly 1 round (= 3 message delays:
// INIT, VOTE, AUX).

#include "bench_common.hpp"

using namespace lyra;
using harness::RunConfig;

int main() {
  bench::print_header(
      "Ablation: good-case decision rounds (Lyra BOC, 3 continents)",
      "    n   mean-DBFT-rounds   max   message-delays(good case)");
  std::string csv = "n,mean_rounds,max_rounds\n";

  for (std::size_t n : {4u, 7u, 10u, 16u, 31u}) {
    RunConfig config;
    config.protocol = RunConfig::Protocol::kLyra;
    config.memoize_verify = bench::memoize_mode();
    config.n = n;
    config.clients_per_node = 800;
    config.duration = ms(5000);
    const auto r = run_experiment(config);
    std::printf("%5zu %18.3f %5.0f   %s\n", n, r.mean_decide_rounds,
                r.max_decide_rounds,
                r.max_decide_rounds <= 1.0 ? "3 (optimal, Theorem 3)"
                                           : "3 + extra rounds");
    std::fflush(stdout);
    csv += std::to_string(n) + "," + std::to_string(r.mean_decide_rounds) +
           "," + std::to_string(r.max_decide_rounds) + "\n";
  }
  std::printf("reference: Pompe commits in ~11 message delays "
              "(2 ordering + 1 relay + ~8 HotStuff three-chain)\n");
  bench::write_csv("ablation_rounds.csv", csv);
  return 0;
}
