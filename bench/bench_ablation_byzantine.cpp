// Ablation A4 (§VI-D): Byzantine behaviours against Lyra. f silent
// (crashed) processes cost the validation quorum some slack but not
// liveness; the lower-bounded sequence numbers and the 2f+1-highest
// watermark rules keep skewed/lowballing processes from hurting the
// output (those are covered by unit tests; here we quantify the
// performance impact of the strongest omission adversary).

#include "bench_common.hpp"

using namespace lyra;
using harness::RunConfig;

int main() {
  bench::print_header(
      "Ablation: f silent Byzantine nodes (Lyra, n = 16, f = 5)",
      " silent   mean-latency(ms)   throughput(tx/s)   safety");
  std::string csv = "silent,mean_latency_ms,throughput_tps\n";

  for (std::size_t silent : {0u, 2u, 5u}) {
    RunConfig config;
    config.protocol = RunConfig::Protocol::kLyra;
    config.n = 16;
    config.clients_per_node = 1600;
    config.byzantine_silent = silent;
    const auto r = run_experiment(config);
    std::printf("%7zu %17.1f %18.0f   %s\n", silent, r.mean_latency_ms,
                r.throughput_tps, r.prefix_consistent ? "ok" : "VIOLATED");
    std::fflush(stdout);
    csv += std::to_string(silent) + "," + std::to_string(r.mean_latency_ms) +
           "," + std::to_string(r.throughput_tps) + "\n";
  }
  bench::write_csv("ablation_byzantine.csv", csv);
  return 0;
}
