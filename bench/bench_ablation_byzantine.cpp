// Ablation A4 (§VI-D): Byzantine behaviours against Lyra. f silent
// (crashed) processes cost the validation quorum some slack but not
// liveness; the lower-bounded sequence numbers and the 2f+1-highest
// watermark rules keep skewed/lowballing processes from hurting the
// output (those are covered by unit tests; here we quantify the
// performance impact of the strongest omission adversary).
//
// The second sweep puts re-presentation attackers in the cluster (nodes
// that keep re-broadcasting GC'd INITs) and measures verification
// memoization against them: the re-verifications the replay traffic forces
// become cache hits, so the honest nodes' crypto CPU stays flat.

#include "bench_common.hpp"

using namespace lyra;
using harness::RunConfig;

int main() {
  bench::print_header(
      "Ablation: f silent Byzantine nodes (Lyra, n = 16, f = 5)",
      " silent   mean-latency(ms)   throughput(tx/s)   safety");
  std::string csv = "silent,mean_latency_ms,throughput_tps\n";

  for (std::size_t silent : {0u, 2u, 5u}) {
    RunConfig config;
    config.protocol = RunConfig::Protocol::kLyra;
    config.n = 16;
    config.clients_per_node = 1600;
    config.byzantine_silent = silent;
    config.memoize_verify = bench::memoize_mode();
    const auto r = run_experiment(config);
    std::printf("%7zu %17.1f %18.0f   %s\n", silent, r.mean_latency_ms,
                r.throughput_tps, r.prefix_consistent ? "ok" : "VIOLATED");
    std::fflush(stdout);
    csv += std::to_string(silent) + "," + std::to_string(r.mean_latency_ms) +
           "," + std::to_string(r.throughput_tps) + "\n";
  }
  bench::write_csv("ablation_byzantine.csv", csv);

  bench::print_header(
      "Ablation: INIT re-presentation vs verification memoization "
      "(Lyra, n = 16, 2 replay attackers)",
      "memoize   replays   cache-hits   cache-misses   mean-latency(ms)"
      "   throughput(tx/s)   safety");
  std::string replay_csv =
      "memoize,replays,cache_hits,cache_misses,mean_latency_ms,"
      "throughput_tps\n";
  for (bool memoize : {false, true}) {
    RunConfig config;
    config.protocol = RunConfig::Protocol::kLyra;
    config.n = 16;
    config.clients_per_node = 1600;
    config.replay_attackers = 2;
    // Long enough that instances are GC'd mid-run and the replay stream is
    // sustained over the measurement window.
    config.duration = ms(10000);
    config.measure_from = ms(5000);
    config.memoize_verify = memoize;
    const auto r = run_experiment(config);
    std::printf("%7s %9llu %12llu %14llu %18.1f %18.0f   %s\n",
                memoize ? "on" : "off",
                static_cast<unsigned long long>(r.replays_sent),
                static_cast<unsigned long long>(r.verify_cache_hits),
                static_cast<unsigned long long>(r.verify_cache_misses),
                r.mean_latency_ms, r.throughput_tps,
                r.prefix_consistent ? "ok" : "VIOLATED");
    std::fflush(stdout);
    replay_csv += std::string(memoize ? "1" : "0") + "," +
                  std::to_string(r.replays_sent) + "," +
                  std::to_string(r.verify_cache_hits) + "," +
                  std::to_string(r.verify_cache_misses) + "," +
                  std::to_string(r.mean_latency_ms) + "," +
                  std::to_string(r.throughput_tps) + "\n";
  }
  bench::write_csv("ablation_replay_memoize.csv", replay_csv);
  return 0;
}
