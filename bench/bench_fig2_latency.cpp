// Reproduces Figure 2 (§VI-C): mean commit latency as a function of the
// number of nodes, Lyra vs Pompē, 3-continent deployment, batch = 800,
// lambda = 5 ms, closed-loop clients at moderate load (below the
// saturation knee, the standard latency-measurement operating point).
//
// Paper's claims to reproduce in shape:
//   * Lyra's latency is relatively stable (< 1 s) as n grows;
//   * Pompē's latency grows with n and is ~2x Lyra's when n > 60.

#include "bench_common.hpp"

#include <algorithm>

using namespace lyra;
using harness::RunConfig;
using harness::RunResult;

namespace {

std::uint32_t pompe_latency_width(std::size_t n) {
  // ~50% of estimated capacity, expressed as in-flight clients per node
  // (throughput x expected latency / n).
  const double cap = harness::pompe_capacity_estimate(n, 800, 125e6);
  const double width = cap * 0.5 * 1.3 / static_cast<double>(n);
  return static_cast<std::uint32_t>(std::clamp(width, 100.0, 1600.0));
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2: commit latency vs number of nodes",
      "    n   protocol  clients/node   mean(ms)    p50(ms)    p99(ms)  "
      "safety");
  std::string csv = "n,protocol,clients_per_node,mean_ms,p50_ms,p99_ms\n";

  for (std::size_t n : bench::node_counts()) {
    for (auto protocol :
         {RunConfig::Protocol::kLyra, RunConfig::Protocol::kPompe}) {
      RunConfig config;
      config.protocol = protocol;
      config.n = n;
      config.memoize_verify = bench::memoize_mode();
      // Lyra width: an exact batch multiple under the pacing cap, so
      // latency is measured on steady full batches.
      config.clients_per_node = protocol == RunConfig::Protocol::kLyra
                                    ? 1600
                                    : pompe_latency_width(n);
      const RunResult r = run_experiment(config);
      std::printf("%5zu %10s %13u %10.1f %10.1f %10.1f  %s\n", n,
                  harness::protocol_name(protocol), config.clients_per_node,
                  r.mean_latency_ms, r.p50_latency_ms, r.p99_latency_ms,
                  r.prefix_consistent ? "ok" : "VIOLATED");
      std::fflush(stdout);
      csv += std::to_string(n) + "," + harness::protocol_name(protocol) +
             "," + std::to_string(config.clients_per_node) + "," +
             std::to_string(r.mean_latency_ms) + "," +
             std::to_string(r.p50_latency_ms) + "," +
             std::to_string(r.p99_latency_ms) + "\n";
    }
  }
  bench::write_csv("fig2_latency.csv", csv);
  return 0;
}
