// Ablation A2 (§VI-B): the security parameter lambda. The paper reports
// that lambda can be reduced to 5 ms on the 3-continent deployment without
// hurting performance; below the network's jitter floor, validations start
// failing, proposals get rejected and retried, and latency suffers.

#include "bench_common.hpp"

using namespace lyra;
using harness::RunConfig;

int main() {
  bench::print_header(
      "Ablation: security parameter lambda (n = 16, 3 continents)",
      " lambda(ms)   accept-rate   mean-latency(ms)   throughput(tx/s)");
  std::string csv = "lambda_ms,accept_rate,mean_latency_ms,throughput_tps\n";

  for (double lambda_ms : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    RunConfig config;
    config.protocol = RunConfig::Protocol::kLyra;
    config.memoize_verify = bench::memoize_mode();
    config.n = 16;
    config.clients_per_node = 1600;
    config.lambda = ms(lambda_ms);
    const auto r = run_experiment(config);
    std::printf("%10.1f %12.3f %17.1f %18.0f\n", lambda_ms,
                r.validation_accept_rate, r.mean_latency_ms,
                r.throughput_tps);
    std::fflush(stdout);
    csv += std::to_string(lambda_ms) + "," +
           std::to_string(r.validation_accept_rate) + "," +
           std::to_string(r.mean_latency_ms) + "," +
           std::to_string(r.throughput_tps) + "\n";
  }
  bench::write_csv("ablation_lambda.csv", csv);
  return 0;
}
