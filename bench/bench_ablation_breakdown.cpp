// Ablation A6: where does a Lyra commit's latency go? Per-phase breakdown
// of the paper's sub-second end-to-end latency on the 3-continent
// topology:
//   batch wait  — client submission sits in the proposer's assembler;
//   consensus   — INIT -> VOTE -> AUX to the BOC decision (3 delays);
//   commit wait — the Commit protocol's stable watermark must pass the
//                 batch's sequence number (dominated by L = 3*Delta);
//   reveal      — decryption shares gather and the payload reconstructs.

#include <memory>

#include "bench_common.hpp"
#include "harness/lyra_cluster.hpp"

using namespace lyra;

int main() {
  bench::print_header(
      "Ablation: Lyra latency breakdown by phase (3 continents)",
      "    n   batch-wait   consensus   commit-wait    reveal    (ms, mean "
      "over own batches)");
  std::string csv = "n,batch_wait_ms,consensus_ms,commit_wait_ms,reveal_ms\n";

  for (std::size_t n : {10u, 31u}) {
    harness::LyraClusterOptions opts;
    opts.config.n = n;
    opts.config.f = (n - 1) / 3;
    opts.config.delta = ms(160);
    opts.config.retain_payloads = false;
    opts.topology = net::three_continents(n, std::vector<net::Region>(n));
    for (std::size_t i = 0; i < n; ++i) {
      opts.topology.placement[n + i] = opts.topology.placement[i];
    }
    opts.seed = 42;
    harness::LyraCluster cluster(std::move(opts));
    cluster.network().set_bandwidth(125e6);
    for (NodeId i = 0; i < n; ++i) {
      cluster.add_client_pool(i, 1600, ms(900), ms(2500), ms(6000));
    }
    cluster.start();
    cluster.run_for(ms(6000));

    Samples batch_wait;
    Samples consensus;
    Samples commit_wait;
    Samples reveal;
    for (NodeId i = 0; i < n; ++i) {
      const auto& s = cluster.node(i).stats();
      for (double v : s.phase_batch_wait_ms.values()) batch_wait.add(v);
      for (double v : s.phase_consensus_ms.values()) consensus.add(v);
      for (double v : s.phase_commit_wait_ms.values()) commit_wait.add(v);
      for (double v : s.phase_reveal_ms.values()) reveal.add(v);
    }
    std::printf("%5zu %12.1f %11.1f %13.1f %9.1f\n", n, batch_wait.mean(),
                consensus.mean(), commit_wait.mean(), reveal.mean());
    std::fflush(stdout);
    csv += std::to_string(n) + "," + std::to_string(batch_wait.mean()) +
           "," + std::to_string(consensus.mean()) + "," +
           std::to_string(commit_wait.mean()) + "," +
           std::to_string(reveal.mean()) + "\n";
  }
  std::printf("commit-wait is dominated by the acceptance window "
              "L = 3*Delta = 480 ms: the stable watermark trails real time "
              "by design (Alg. 4).\n");
  bench::write_csv("ablation_breakdown.csv", csv);
  return 0;
}
