// Perf-regression harness for the simulator engine itself: how many events
// per host-second the engine pushes through a fig3-style workload (§VI-C
// operating point, n = 100 by default). Unlike the figure benches, the
// numbers of interest here are host-side (events/s, wall time), not
// simulated throughput — this is the trajectory every engine change is
// measured against.
//
// Output: a human table plus a labelled JSON run (default BENCH_sim.json).
// Compare two runs with tools/bench_compare.py; merge a new run into the
// checked-in trajectory with its --merge mode.
//
// Flags: --label <s>  run label stored in the JSON (default "local")
//        --out <path> output file (default BENCH_sim.json)
//        --quick      small budget (n=31, 3s) — also via LYRA_BENCH_QUICK=1

#include "bench_common.hpp"

#include <cstring>
#include <string>

using namespace lyra;
using harness::RunConfig;
using harness::RunResult;

namespace {

bench::BenchEntry measure(const std::string& name, const RunConfig& cfg) {
  const RunResult r = run_experiment(cfg);
  bench::BenchEntry e;
  e.name = name;
  e.params = "n=" + std::to_string(cfg.n) +
             " clients=" + std::to_string(cfg.clients_per_node) +
             " batch=" + std::to_string(cfg.batch_size) +
             " duration_ms=" + std::to_string(to_ms(cfg.duration));
  e.seed = cfg.seed;
  e.threads = cfg.threads;
  e.events = r.events_executed;
  e.host_seconds = r.host_seconds;
  e.sim_seconds = r.sim_seconds;
  e.events_per_sec =
      r.host_seconds > 0.0
          ? static_cast<double>(r.events_executed) / r.host_seconds
          : 0.0;
  e.throughput_tps = r.throughput_tps;
  e.hw_concurrency = bench::hw_concurrency();
  e.host_nproc = bench::host_nproc();
  e.locks_per_event = r.exec_stats.locks_per_event();
  e.notifies_per_event = r.exec_stats.notifies_per_event();
  e.mean_batch_size = r.exec_stats.mean_batch_size();
  std::printf("%-14s %12llu %10.2f %14.0f %12.0f %9.3f %9.3f   %s\n",
              name.c_str(), static_cast<unsigned long long>(e.events),
              e.host_seconds, e.events_per_sec, e.throughput_tps,
              e.locks_per_event, e.notifies_per_event,
              r.prefix_consistent ? "ok" : "VIOLATED");
  std::fflush(stdout);
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "local";
  std::string out = "BENCH_sim.json";
  bool quick = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const std::size_t n = quick ? 31 : 100;
  const TimeNs duration = quick ? ms(3000) : ms(6000);
  const TimeNs measure_from = quick ? ms(1500) : ms(2500);

  bench::print_header(
      "Simulator speed (fig3-style workload)",
      "scenario             events    host(s)       events/s         tx/s"
      "   locks/ev notifies/ev   safety");

  std::vector<bench::BenchEntry> entries;

  RunConfig lyra;
  lyra.protocol = RunConfig::Protocol::kLyra;
  lyra.n = n;
  lyra.clients_per_node = 2600;  // covers the 3-in-flight pacing window
  lyra.duration = duration;
  lyra.measure_from = measure_from;
  entries.push_back(
      measure(quick ? "lyra_n31" : "lyra_n100", lyra));

  // The same scenario under the parallel executor, one entry per thread
  // count. The engine guarantees identical results (the equivalence tests
  // pin that); what is being measured here is events/host-second scaling.
  const std::string base = quick ? "lyra_n31" : "lyra_n100";
  for (unsigned threads : {2u, 4u}) {
    RunConfig cfg = lyra;
    cfg.threads = threads;
    entries.push_back(
        measure(base + "_t" + std::to_string(threads), cfg));
  }

  RunConfig pompe;
  pompe.protocol = RunConfig::Protocol::kPompe;
  pompe.n = n;
  pompe.duration = duration;
  pompe.measure_from = measure_from;
  const double cap = harness::pompe_capacity_estimate(n, pompe.batch_size,
                                                      125e6);
  pompe.clients_per_node = static_cast<std::uint32_t>(
      std::max(200.0, cap * 1.4 * 1.3 / static_cast<double>(n)));
  entries.push_back(
      measure(quick ? "pompe_n31" : "pompe_n100", pompe));

  bench::write_bench_json(out, "bench_sim_speed", label, entries);
  return 0;
}
