// Micro-benchmarks of the substrates (google-benchmark): cryptographic
// primitives and the discrete-event core. These bound how much simulated
// traffic a host-second can push — useful when sizing new experiments.

#include <benchmark/benchmark.h>

#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/merkle.hpp"
#include "crypto/shamir.hpp"
#include "crypto/sha256.hpp"
#include "crypto/vss.hpp"
#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace lyra;
using namespace lyra::crypto;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(25600);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes msg(64, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, msg));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_SignVerify(benchmark::State& state) {
  Rng rng(1);
  KeyRegistry registry(4, 3, rng);
  const Signer signer = registry.signer_for(0);
  const Bytes msg(32, 0x33);
  const Signature sig = signer.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.verify(msg, sig, 0));
  }
}
BENCHMARK(BM_SignVerify);

void BM_ShamirSplit(benchmark::State& state) {
  Rng rng(2);
  const Bytes secret(32, 0x44);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = 2 * ((n - 1) / 3) + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Shamir::split(secret, n, k, rng));
  }
}
BENCHMARK(BM_ShamirSplit)->Arg(4)->Arg(31)->Arg(100);

void BM_ShamirCombine(benchmark::State& state) {
  Rng rng(3);
  const Bytes secret(32, 0x55);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = 2 * ((n - 1) / 3) + 1;
  const auto shares = Shamir::split(secret, n, k, rng);
  const std::vector<ShamirShare> subset(shares.begin(), shares.begin() + k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Shamir::combine(subset, k));
  }
}
BENCHMARK(BM_ShamirCombine)->Arg(4)->Arg(31)->Arg(100);

void BM_VssEncrypt(benchmark::State& state) {
  Rng rng(4);
  KeyRegistry registry(16, 11, rng);
  Vss vss(&registry, 16, 11);
  Bytes payload(static_cast<std::size_t>(state.range(0)), 0x66);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vss.encrypt(payload, rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VssEncrypt)->Arg(1024)->Arg(25600);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Digest> leaves(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    Bytes b;
    append_u64(b, i);
    leaves[i] = Sha256::hash(b);
  }
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(800);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(i * 7 % 997, [] {});
    }
    while (!q.empty()) q.run_next();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SimulationMessageRoundtrip(benchmark::State& state) {
  // End-to-end cost of one simulated message (schedule + deliver).
  struct Sink final : sim::Process {
    using sim::Process::Process;
    void on_message(const sim::Envelope&) override {}
  };
  struct Loopback final : sim::Transport, sim::ProcessDirectory {
    void send(NodeId, NodeId, sim::PayloadPtr) override {}
    std::size_t node_count() const override { return 1; }
    sim::Process* process_at(NodeId) const override { return sink; }
    sim::Process* sink = nullptr;
  };
  struct Ping final : sim::Payload {
    const char* name() const override { return "PING"; }
  };
  sim::Simulation simulation(1);
  Loopback transport;
  Sink sink(&simulation, &transport, 0);
  transport.sink = &sink;
  const auto payload = std::make_shared<Ping>();
  for (auto _ : state) {
    sim::Envelope env;
    env.from = 0;
    env.to = 0;
    env.payload = payload;
    simulation.schedule_delivery_in(1, &transport, std::move(env));
    simulation.run_all();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulationMessageRoundtrip);

}  // namespace

BENCHMARK_MAIN();
