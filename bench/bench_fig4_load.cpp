// Load sweep under the open-loop workload engine (docs/WORKLOAD.md):
// offered load vs goodput, latency, backpressure, and the economic
// front-running metric, Lyra vs Pompē at n = 100 with one sandwich
// adversary bidding fees against observed high-value transactions.
//
// Claims to reproduce in shape:
//   * goodput tracks offered load until the mempool saturates, then
//     flattens while backpressure (rejects, evictions) absorbs the rest;
//   * p99 latency rises steeply past the knee while p50 stays bounded
//     (the fee-priority mempool keeps high bids moving);
//   * extracted value is positive on Pompē at every load point and ~0 on
//     Lyra (the adversary only reads payloads after the order is fixed).
//
// LYRA_BENCH_QUICK=1 shrinks the cluster and sweep for CI.

#include "bench_common.hpp"

using namespace lyra;
using harness::RunConfig;
using harness::RunResult;

namespace {

std::vector<double> arrival_rates() {
  // Per-node offered load, tx/s. The mempool capacity below puts the
  // saturation knee inside the sweep.
  if (bench::quick_mode()) {
    return {100, 300, 600, 1200};
  }
  return {100, 200, 400, 800, 1600};
}

}  // namespace

int main() {
  const std::size_t n = bench::quick_mode() ? 7 : 100;
  bench::print_header(
      "Figure 4: open-loop load sweep with a sandwich adversary",
      "  rate   protocol  offered(tx/s)  goodput(tx/s)    p50(ms)    "
      "p99(ms)   rejected    evicted  extracted  safety");
  std::string csv =
      "rate,protocol,offered_tps,goodput_tps,p50_ms,p99_ms,rejected,"
      "evicted,terminal_rejects,extracted_value,adversary_profit\n";
  std::vector<bench::BenchEntry> entries;

  for (double rate : arrival_rates()) {
    for (auto protocol :
         {RunConfig::Protocol::kLyra, RunConfig::Protocol::kPompe}) {
      RunConfig config;
      config.protocol = protocol;
      config.n = n;
      config.duration = bench::quick_mode() ? ms(4000) : ms(6000);
      config.measure_from = bench::quick_mode() ? ms(1500) : ms(2500);
      config.batch_size = bench::quick_mode() ? 100 : 800;
      config.workload.open_loop = true;
      config.workload.arrival_rate = rate;
      config.workload.mempool_capacity = bench::quick_mode() ? 256 : 2048;
      config.workload.sandwich_attackers = 1;
      config.workload.victim_value_threshold = 2000;
      const RunResult r = run_experiment(config);

      std::printf(
          "%6.0f %10s %14.0f %14.0f %10.1f %10.1f %10llu %10llu %10.1f  "
          "%s\n",
          rate, harness::protocol_name(protocol), r.offered_tps,
          r.goodput_tps, r.p50_latency_ms, r.p99_latency_ms,
          static_cast<unsigned long long>(r.rejected_submits),
          static_cast<unsigned long long>(r.mempool_evictions),
          r.extracted_value, r.prefix_consistent ? "ok" : "VIOLATED");
      std::fflush(stdout);

      csv += std::to_string(rate) + "," + harness::protocol_name(protocol) +
             "," + std::to_string(r.offered_tps) + "," +
             std::to_string(r.goodput_tps) + "," +
             std::to_string(r.p50_latency_ms) + "," +
             std::to_string(r.p99_latency_ms) + "," +
             std::to_string(r.rejected_submits) + "," +
             std::to_string(r.mempool_evictions) + "," +
             std::to_string(r.terminal_rejects) + "," +
             std::to_string(r.extracted_value) + "," +
             std::to_string(r.adversary_profit) + "\n";

      bench::BenchEntry e;
      e.name = std::string(harness::protocol_name(protocol)) + "_load" +
               std::to_string(static_cast<int>(rate));
      e.params = "n=" + std::to_string(n) +
                 " rate=" + std::to_string(static_cast<int>(rate)) +
                 " cap=" + std::to_string(config.workload.mempool_capacity);
      e.seed = config.seed;
      e.threads = config.threads;
      e.events = r.events_executed;
      e.events_per_sec = r.host_seconds > 0
                             ? static_cast<double>(r.events_executed) /
                                   r.host_seconds
                             : 0.0;
      e.host_seconds = r.host_seconds;
      e.sim_seconds = r.sim_seconds;
      e.throughput_tps = r.throughput_tps;
      e.hw_concurrency = bench::hw_concurrency();
      e.host_nproc = bench::host_nproc();
      e.extra = {{"offered_tps", r.offered_tps},
                 {"goodput_tps", r.goodput_tps},
                 {"p50_ms", r.p50_latency_ms},
                 {"p99_ms", r.p99_latency_ms},
                 {"rejected", static_cast<double>(r.rejected_submits)},
                 {"evicted", static_cast<double>(r.mempool_evictions)},
                 {"extracted_value", r.extracted_value}};
      entries.push_back(std::move(e));
    }
  }
  bench::write_csv("fig4_load.csv", csv);
  bench::write_bench_json("fig4_load.json", "fig4_load", "load-sweep",
                          entries);
  return 0;
}
