// Reproduces Figure 1 (§I): triangle-inequality violations in WAN
// latencies let an attacker front-run despite fair ordering — unless the
// payload is hidden until commit.
//
// Three measurements on the Fig. 1 geometry (Alice in Tokyo, Mallory in
// Singapore, Carole + the quorum mass in Mumbai):
//   (1) the raw network phenomenon: how often Carole *receives* Mallory's
//       reaction t2 before Alice's original t1 (pure latency race);
//   (2) Pompē: clear-text phase-1 payloads leak to Mallory; how often her
//       dependent transaction is *committed* before the victim's;
//   (3) Lyra: the same attacker sees only VSS ciphertexts; payload
//       readability before commit and front-run success must both be zero.

#include <cstdio>

#include "attacks/frontrun.hpp"
#include "bench_common.hpp"
#include "harness/lyra_cluster.hpp"
#include "harness/pompe_cluster.hpp"

using namespace lyra;

namespace {

net::Topology fig1_topology() {
  net::Topology t;
  t.placement = {
      net::Region::kTokyo,      // node 0: Alice's proposer
      net::Region::kSingapore,  // node 1: Mallory
      net::Region::kMumbai,     net::Region::kMumbai,
      net::Region::kMumbai,     net::Region::kMumbai,
      net::Region::kMumbai,  // nodes 2-6: the quorum mass sits behind the
                             // violating edge, so Mallory's reaction is
                             // stamped before Alice's original
      net::Region::kTokyo,   // Alice (client)
  };
  return t;
}

/// (1) The pure latency race of Fig. 1, sampled from the latency model.
double receive_order_success_rate(int trials) {
  const net::Topology topo = fig1_topology();
  const auto model = topo.make_latency_model();
  Rng rng(7);
  // Process ids in the topology: Alice=7, Mallory=1, Carole=2 (Mumbai).
  int wins = 0;
  for (int i = 0; i < trials; ++i) {
    const TimeNs t1_at_carole = model->sample(7, 2, rng);
    const TimeNs reaction = us(200);  // Mallory's processing time
    const TimeNs t2_at_carole =
        model->sample(7, 1, rng) + reaction + model->sample(1, 2, rng);
    if (t2_at_carole < t1_at_carole) ++wins;
  }
  return static_cast<double>(wins) / trials;
}

struct SystemOutcome {
  double leak_rate = 0.0;       // payload readable pre-commit at Mallory
  double front_run_rate = 0.0;  // attack committed before its victim
  std::size_t victims = 0;
};

SystemOutcome run_pompe(std::size_t victims) {
  harness::PompeClusterOptions opts;
  opts.config.n = 7;
  opts.config.f = 2;
  opts.config.delta = ms(140);
  opts.config.batch_timeout = ms(5);
  opts.config.batch_size = 4;
  opts.topology = fig1_topology();
  opts.seed = 77;
  attacks::FrontRunningPompeNode* mallory = nullptr;
  opts.node_factory = [&mallory](sim::Simulation* sim, net::Network* net,
                                 NodeId id, const pompe::PompeConfig& cfg,
                                 const crypto::KeyRegistry* reg)
      -> std::unique_ptr<pompe::PompeNode> {
    if (id == 1) {
      auto node = std::make_unique<attacks::FrontRunningPompeNode>(
          sim, net, id, cfg, reg);
      mallory = node.get();
      return node;
    }
    return std::make_unique<pompe::PompeNode>(sim, net, id, cfg, reg);
  };
  harness::PompeCluster cluster(opts);
  cluster.adopt_process(std::make_unique<attacks::AliceClient>(
      &cluster.simulation(), &cluster.network(), cluster.next_process_id(),
      /*target=*/0, ms(100), ms(350), victims));
  cluster.start();
  cluster.run_for(ms(400.0 * victims + 4000));

  const auto outcome = attacks::evaluate_pompe_frontrun(cluster.node(2));
  SystemOutcome out;
  out.victims = outcome.victims_committed;
  out.leak_rate = static_cast<double>(mallory->observed_victims()) / victims;
  if (outcome.victims_committed > 0) {
    out.front_run_rate = static_cast<double>(outcome.front_run_successes) /
                         outcome.victims_committed;
  }
  return out;
}

SystemOutcome run_lyra(std::size_t victims) {
  harness::LyraClusterOptions opts;
  opts.config.n = 7;
  opts.config.f = 2;
  opts.config.delta = ms(160);
  opts.config.lambda = ms(12);
  opts.config.batch_timeout = ms(5);
  opts.config.batch_size = 4;
  opts.config.probe_period = ms(40);
  opts.topology = fig1_topology();
  opts.seed = 79;
  attacks::FrontRunningLyraNode* mallory = nullptr;
  opts.node_factory = [&mallory](sim::Simulation* sim, net::Network* net,
                                 NodeId id, const core::Config& cfg,
                                 const crypto::KeyRegistry* reg)
      -> std::unique_ptr<core::LyraNode> {
    if (id == 1) {
      auto node = std::make_unique<attacks::FrontRunningLyraNode>(sim, net,
                                                                  id, cfg,
                                                                  reg);
      mallory = node.get();
      return node;
    }
    return std::make_unique<core::LyraNode>(sim, net, id, cfg, reg);
  };
  harness::LyraCluster cluster(opts);
  cluster.adopt_process(std::make_unique<attacks::AliceClient>(
      &cluster.simulation(), &cluster.network(), cluster.next_process_id(),
      /*target=*/0, ms(600), ms(450), victims));
  cluster.start();
  cluster.run_for(ms(450.0 * victims + 5000));

  const auto outcome = attacks::evaluate_lyra_frontrun(cluster.node(2));
  SystemOutcome out;
  out.victims = outcome.victims_committed;
  out.leak_rate =
      static_cast<double>(mallory->payloads_readable_before_commit()) /
      victims;
  if (outcome.victims_committed > 0) {
    out.front_run_rate = static_cast<double>(outcome.front_run_successes) /
                         outcome.victims_committed;
  }
  return out;
}

}  // namespace

int main() {
  const TimeNs direct =
      net::region_latency(net::Region::kTokyo, net::Region::kMumbai);
  const TimeNs via =
      net::region_latency(net::Region::kTokyo, net::Region::kSingapore) +
      net::region_latency(net::Region::kSingapore, net::Region::kMumbai);
  bench::print_header("Figure 1: front-running via triangle-inequality "
                      "violation",
                      "scenario                                 value");
  std::printf("d(Tokyo,Mumbai) direct                  %6.1f ms\n",
              to_ms(direct));
  std::printf("d(Tokyo,SG) + d(SG,Mumbai) via Mallory  %6.1f ms  "
              "(violation: %.1f ms)\n",
              to_ms(via), to_ms(direct - via));

  const double fcfs = receive_order_success_rate(10'000);
  std::printf("receive-order race won by t2 at Carole  %5.1f %%\n",
              fcfs * 100.0);

  constexpr std::size_t kVictims = 25;
  const SystemOutcome pompe = run_pompe(kVictims);
  const SystemOutcome lyra = run_lyra(kVictims);

  std::printf("\n%-10s %22s %22s\n", "system", "payload leaked pre-commit",
              "front-run success");
  std::printf("%-10s %21.1f %% %21.1f %%\n", "pompe", pompe.leak_rate * 100,
              pompe.front_run_rate * 100);
  std::printf("%-10s %21.1f %% %21.1f %%\n", "lyra", lyra.leak_rate * 100,
              lyra.front_run_rate * 100);

  std::string csv = "system,leak_rate,front_run_rate,victims\n";
  csv += "fcfs_race," + std::to_string(fcfs) + ",,\n";
  csv += "pompe," + std::to_string(pompe.leak_rate) + "," +
         std::to_string(pompe.front_run_rate) + "," +
         std::to_string(pompe.victims) + "\n";
  csv += "lyra," + std::to_string(lyra.leak_rate) + "," +
         std::to_string(lyra.front_run_rate) + "," +
         std::to_string(lyra.victims) + "\n";
  bench::write_csv("fig1_frontrunning.csv", csv);
  return 0;
}
