// Fig. 5-style cluster-size scaling sweep: Lyra vs Pompē at n = 100, 300,
// 600, 1000 consensus nodes on the paper's WAN topology, with the
// aggregated client pools (RunConfig::client_shard) that make these sizes
// affordable in one simulator process. Alongside throughput/latency, every
// entry records the process peak RSS — the "memory-flat" claim of the
// snapshot-served state-sync + aggregated-client work is that rss/node
// stays flat (and bounded) as n grows, instead of the superlinear curve a
// per-client-process harness produces.
//
// Operating point (why it differs from the fig3 benches):
//  - Obfuscation is OFF: commit-reveal VSS shares live in GF(256), so
//    obfuscated deployments cap at n = 255 (src/crypto/shamir.cpp) — and
//    the 2f+1 reconstruction threshold outgrows ANY byte field past
//    n ≈ 380. The sweep measures the ordering core, which is also the
//    apples-to-apples comparison: Pompē has no obfuscation layer either.
//  - λ = 80 ms: at n ≥ 100 the warm-up probe fan-out (batch-sized pads
//    serialized across n-1 peers) adds tens of milliseconds of learned
//    distance spread; the paper's λ = 5 ms rejects everything at low load.
//  - The status heartbeat stretches with n: each beat is an O(n) broadcast
//    per node, so idle traffic is n²/period; the period scales so the
//    sweep's wall-clock cost stays roughly linear in n. The commit
//    watermark lags 3Δ = 480 ms regardless, so commits only need the
//    measurement window to start late enough (~2.5 s).
//  - The client anchor rides on a capped proposer set (client_nodes):
//    every client-bearing node proposes and each instance costs O(n²)
//    consensus traffic, so an all-nodes anchor makes the sweep's wall
//    clock grow as n³. Capping the proposer set keeps the offered load
//    roughly constant while the swept variable — the size of the
//    validation + commit quorum — still covers all n nodes.
//
// Output: a human table plus a labelled JSON run (default BENCH_fig5.json).
// Compare runs with tools/bench_compare.py (--metric rss_bytes
// --max-ratio for the memory gate).
//
// Flags: --label <s>  run label stored in the JSON (default "local")
//        --out <path> output file (default BENCH_fig5.json)
//        --quick      CI budget: n = {100, 300}, short windows — also via
//                     LYRA_BENCH_QUICK=1
//        --only <s>   run only entries whose name contains <s> (the full
//                     sweep is ~an hour on one core; rerun a single size
//                     without repeating the rest)

#include "bench_common.hpp"

#include <cstring>
#include <string>
#include <vector>

using namespace lyra;
using harness::RunConfig;
using harness::RunResult;

namespace {

/// One cluster size's operating point (rationale in the header comment).
struct ScalePoint {
  std::size_t n;
  std::size_t client_nodes;  // proposer cap (0 = every node)
  std::uint32_t clients_per_node;
  TimeNs heartbeat;
  TimeNs duration;
  TimeNs measure_from;
  /// Pompē needs longer windows at big n: HotStuff blocks cap at 512 KB
  /// and each batch drags a 2f+1-signature timestamp proof, so commit
  /// latency grows superlinearly (p50 ≈ 4.4 s at n = 300 already). 0 =
  /// same window as Lyra. Pompē wall-clock cost per simulated second is
  /// far below Lyra's (leader-centric O(n) fan-out per phase vs O(n²)
  /// per-instance broadcasts), so the longer windows are nearly free.
  TimeNs pompe_duration = 0;
};

std::vector<ScalePoint> sweep_points(bool quick) {
  if (quick) {
    // CI: the n=300 entry is the memory gate; commits need ~2.5 s to
    // appear, so the quick windows trade the throughput anchor for wall
    // clock (rss_bytes is the metric that matters here).
    return {
        {100, 0, 8, ms(50), ms(2500), ms(1500)},
        {300, 99, 8, ms(100), ms(2000), ms(1500)},
    };
  }
  // 99 proposers (33 per region) from n = 300 up; fewer at 600/1000 so
  // the first commit wave stays within the container's wall-clock
  // budget. Commits land ~2.9-3.4 s after start at the largest sizes
  // (client_start 0.9 s + λ + 3Δ watermark + heartbeat + spread), which
  // is why the windows open at 2.4-2.5 s.
  return {
      {100, 0, 8, ms(50), ms(4500), ms(2500)},
      {300, 99, 8, ms(100), ms(4500), ms(2500), ms(9000)},
      {600, 60, 8, ms(250), ms(4000), ms(2400), ms(26000)},
      {1000, 60, 4, ms(500), ms(4000), ms(2400), ms(48000)},
  };
}

RunConfig base_config(const ScalePoint& p) {
  RunConfig cfg;
  cfg.n = p.n;
  cfg.client_nodes = p.client_nodes;
  cfg.clients_per_node = p.clients_per_node;
  cfg.client_shard = 25;    // one pool process per 25 same-region nodes
  cfg.obfuscate = false;    // GF(256) cap; see header
  cfg.lambda = ms(80);
  cfg.batch_size = 100;
  cfg.heartbeat = p.heartbeat;
  cfg.duration = p.duration;
  cfg.measure_from = p.measure_from;
  cfg.threads = 1;  // the scaling sweep measures memory, not parallelism
  cfg.memoize_verify = bench::memoize_mode();
  return cfg;
}

bench::BenchEntry measure(const std::string& name, const RunConfig& cfg) {
  bench::reset_peak_rss();
  const RunResult r = run_experiment(cfg);
  const std::uint64_t rss = bench::peak_rss_bytes();

  bench::BenchEntry e;
  e.name = name;
  e.params = "n=" + std::to_string(cfg.n) +
             " clients=" + std::to_string(cfg.clients_per_node) +
             " client_nodes=" + std::to_string(cfg.client_nodes) +
             " shard=" + std::to_string(cfg.client_shard) +
             " batch=" + std::to_string(cfg.batch_size) +
             " lambda_ms=" + std::to_string(to_ms(cfg.lambda)) +
             " heartbeat_ms=" + std::to_string(to_ms(cfg.heartbeat)) +
             " duration_ms=" + std::to_string(to_ms(cfg.duration)) +
             " no-obfuscation";
  e.seed = cfg.seed;
  e.threads = cfg.threads;
  e.events = r.events_executed;
  e.host_seconds = r.host_seconds;
  e.sim_seconds = r.sim_seconds;
  e.events_per_sec =
      r.host_seconds > 0.0
          ? static_cast<double>(r.events_executed) / r.host_seconds
          : 0.0;
  e.throughput_tps = r.throughput_tps;
  e.hw_concurrency = bench::hw_concurrency();
  e.host_nproc = bench::host_nproc();
  e.extra.emplace_back("rss_bytes", static_cast<double>(rss));
  e.extra.emplace_back("rss_per_node",
                       static_cast<double>(rss) / static_cast<double>(cfg.n));
  e.extra.emplace_back("committed", static_cast<double>(r.committed_txs));
  e.extra.emplace_back("mean_ms", r.mean_latency_ms);
  e.extra.emplace_back("p99_ms", r.p99_latency_ms);
  if (cfg.protocol == RunConfig::Protocol::kLyra) {
    e.extra.emplace_back("accept_rate", r.validation_accept_rate);
  }
  if (cfg.wants_state_sync()) {
    e.extra.emplace_back("delta_state_syncs",
                         static_cast<double>(r.delta_state_syncs));
    e.extra.emplace_back("full_state_syncs",
                         static_cast<double>(r.full_state_syncs));
    e.extra.emplace_back("sync_bytes_transferred",
                         static_cast<double>(r.sync_bytes_transferred));
    e.extra.emplace_back("sync_bytes_local",
                         static_cast<double>(r.sync_bytes_local));
    e.extra.emplace_back("sync_chunks_fetched",
                         static_cast<double>(r.sync_chunks_fetched));
    e.extra.emplace_back("sync_chunks_local",
                         static_cast<double>(r.sync_chunks_local));
  }
  std::printf("%-14s %8zu %12llu %10.2f %12.0f %10.1f %9.1f   %s\n",
              name.c_str(), cfg.n,
              static_cast<unsigned long long>(r.committed_txs),
              r.throughput_tps, static_cast<double>(rss) / (1024.0 * 1024.0),
              static_cast<double>(rss) / (1024.0 * 1024.0) /
                  static_cast<double>(cfg.n),
              r.mean_latency_ms, r.prefix_consistent ? "ok" : "VIOLATED");
  std::fflush(stdout);
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "local";
  std::string out = "BENCH_fig5.json";
  std::string only;
  bool quick = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  bench::print_header(
      "Fig. 5: cluster-size scaling (aggregated clients, ordering core)",
      "scenario              n    committed       tx/s     rss(MB)  "
      "rss/node(MB)  mean(ms)   safety");

  const auto wanted = [&only](const std::string& name) {
    return only.empty() || name.find(only) != std::string::npos;
  };

  std::vector<bench::BenchEntry> entries;
  for (const ScalePoint& p : sweep_points(quick)) {
    const std::string suffix = "_n" + std::to_string(p.n);
    if (wanted("lyra" + suffix)) {
      RunConfig lyra = base_config(p);
      lyra.protocol = RunConfig::Protocol::kLyra;
      entries.push_back(measure("lyra" + suffix, lyra));
    }
    if (wanted("pompe" + suffix)) {
      RunConfig pompe = base_config(p);
      pompe.protocol = RunConfig::Protocol::kPompe;
      if (p.pompe_duration > 0) pompe.duration = p.pompe_duration;
      entries.push_back(measure("pompe" + suffix, pompe));
    }
  }

  // Recovery entry (full sweep only): the n=300 operating point with a
  // corrupt-WAL crash after the third commit wave, restarted with delta
  // state transfer on. Records how many sync bytes actually crossed the
  // wire vs were satisfied from the survivor's own snapshot prefix. The
  // ~2.7 s downtime spans about two commit waves, so the negotiated cut
  // lands past the crashed node's frozen journal and a genuine suffix
  // moves over the wire (a shorter outage syncs 100% locally — the cut
  // trails the tip and the snapshot cadence is finer than a wave).
  if (!quick && wanted("lyra_n300_recovery")) {
    ScalePoint p{300, 99, 8, ms(100), ms(10000), ms(2500)};
    RunConfig cfg = base_config(p);
    cfg.protocol = RunConfig::Protocol::kLyra;
    cfg.delta_sync = true;
    RunConfig::CrashRestart cr;
    cr.node = 7;
    cr.crash_at = ms(6300);
    cr.restart_at = ms(9000);
    cr.corrupt_wal = true;
    cfg.crash_restarts.push_back(cr);
    entries.push_back(measure("lyra_n300_recovery", cfg));
  }

  bench::write_bench_json(out, "bench_fig5_scaling", label, entries);
  return 0;
}
