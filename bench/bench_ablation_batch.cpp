// Ablation A1 (§VI-B): batch size. The paper settles on 800 transactions
// per batch as the best throughput without degrading client latency;
// smaller batches pay per-instance overhead, larger ones pay queueing
// delay.

#include "bench_common.hpp"

using namespace lyra;
using harness::RunConfig;

int main() {
  bench::print_header(
      "Ablation: consensus batch size (Lyra, n = 16, 3 continents)",
      " batch   mean-latency(ms)   throughput(tx/s)");
  std::string csv = "batch,mean_latency_ms,throughput_tps\n";

  for (std::size_t batch : {50u, 100u, 200u, 400u, 800u, 1600u}) {
    RunConfig config;
    config.protocol = RunConfig::Protocol::kLyra;
    config.memoize_verify = bench::memoize_mode();
    config.n = 16;
    config.batch_size = batch;
    // Clients sized to keep the proposal pipeline (3 batches) full.
    config.clients_per_node = static_cast<std::uint32_t>(4 * batch);
    const auto r = run_experiment(config);
    std::printf("%6zu %17.1f %18.0f\n", batch, r.mean_latency_ms,
                r.throughput_tps);
    std::fflush(stdout);
    csv += std::to_string(batch) + "," + std::to_string(r.mean_latency_ms) +
           "," + std::to_string(r.throughput_tps) + "\n";
  }
  bench::write_csv("ablation_batch.csv", csv);
  return 0;
}
