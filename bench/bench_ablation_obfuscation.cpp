// Ablation A5: cost of the commit-reveal scheme. Lyra with obfuscation
// disabled skips VSS encryption and the decryption-share exchange; the
// difference is the price paid for MEV resistance.

#include "bench_common.hpp"

using namespace lyra;
using harness::RunConfig;

int main() {
  bench::print_header(
      "Ablation: commit-reveal obfuscation on/off (Lyra, n = 16)",
      " obfuscation   mean-latency(ms)   throughput(tx/s)");
  std::string csv = "obfuscate,mean_latency_ms,throughput_tps\n";

  for (bool obfuscate : {true, false}) {
    RunConfig config;
    config.protocol = RunConfig::Protocol::kLyra;
    config.memoize_verify = bench::memoize_mode();
    config.n = 16;
    config.clients_per_node = 1600;
    config.obfuscate = obfuscate;
    const auto r = run_experiment(config);
    std::printf("%12s %17.1f %18.0f\n", obfuscate ? "on" : "off",
                r.mean_latency_ms, r.throughput_tps);
    std::fflush(stdout);
    csv += std::string(obfuscate ? "on" : "off") + "," +
           std::to_string(r.mean_latency_ms) + "," +
           std::to_string(r.throughput_tps) + "\n";
  }
  bench::write_csv("ablation_obfuscation.csv", csv);
  return 0;
}
