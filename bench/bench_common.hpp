#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace lyra::bench {

/// Node counts of the paper's evaluation (§VI-C).
inline std::vector<std::size_t> node_counts() {
  // LYRA_BENCH_QUICK=1 caps the sweep at 31 nodes (CI-friendly); the full
  // sweep reproduces the figures up to n = 100.
  if (const char* quick = std::getenv("LYRA_BENCH_QUICK");
      quick != nullptr && quick[0] == '1') {
    return {5, 10, 16, 31};
  }
  return {5, 10, 16, 31, 61, 100};
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
  std::fflush(stdout);
}

inline void write_csv(const std::string& path, const std::string& content) {
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("[csv written to %s]\n", path.c_str());
  }
}

}  // namespace lyra::bench
