#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "harness/experiment.hpp"

namespace lyra::bench {

inline bool quick_mode() {
  const char* quick = std::getenv("LYRA_BENCH_QUICK");
  return quick != nullptr && quick[0] == '1';
}

/// LYRA_BENCH_MEMOIZE=1 turns on verification memoization in every figure
/// bench (RunConfig::memoize_verify), for before/after comparisons under
/// Byzantine re-presentation traffic.
inline bool memoize_mode() {
  const char* m = std::getenv("LYRA_BENCH_MEMOIZE");
  return m != nullptr && m[0] == '1';
}

/// What the C++ runtime believes the host offers (0 = unknown).
inline unsigned hw_concurrency() { return std::thread::hardware_concurrency(); }

/// Online CPUs per the OS (what `nproc` prints); 0 if unavailable. Can
/// differ from hw_concurrency() in containers with restricted cpusets.
inline unsigned host_nproc() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<unsigned>(n) : 0;
}

/// Node counts of the paper's evaluation (§VI-C).
inline std::vector<std::size_t> node_counts() {
  // LYRA_BENCH_QUICK=1 caps the sweep at 31 nodes (CI-friendly). These are
  // the per-figure counts; the scaling sweep itself goes further —
  // bench_fig5_scaling drives n = 100..1000 with aggregated client pools.
  if (quick_mode()) {
    return {5, 10, 16, 31};
  }
  return {5, 10, 16, 31, 61, 100};
}

// ---------------------------------------------------------------------------
// Peak-RSS measurement (memory-flatness benches)
// ---------------------------------------------------------------------------

/// Process peak resident set (VmHWM) in bytes; 0 where /proc is absent.
inline std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %llu kB",
                      reinterpret_cast<unsigned long long*>(&kb)) == 1) {
        break;
      }
    }
    std::fclose(f);
    return kb * 1024;
  }
#endif
  return 0;
}

/// Resets the VmHWM high-water mark so successive runs in one process each
/// measure their own peak (writing "5" to clear_refs; needs a writable
/// /proc, silently a no-op elsewhere — peaks then only ratchet upward,
/// which still upper-bounds every run).
inline void reset_peak_rss() {
#ifdef __linux__
  if (FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
#endif
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
  std::fflush(stdout);
}

inline void write_csv(const std::string& path, const std::string& content) {
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("[csv written to %s]\n", path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Machine-readable output (tools/bench_compare.py consumes this)
// ---------------------------------------------------------------------------

/// One benchmark measurement: a named scenario plus the engine-side and
/// protocol-side numbers of a run.
struct BenchEntry {
  std::string name;    // scenario, e.g. "lyra_n100_t4"
  std::string params;  // human-readable knobs, e.g. "n=100 clients=2600"
  std::uint64_t seed = 0;
  unsigned threads = 1;          // execution threads (1 = serial engine)
  std::uint64_t events = 0;      // events executed by the engine
  double events_per_sec = 0.0;   // events / host wall-clock seconds
  double host_seconds = 0.0;     // wall-clock time of the event loop
  double sim_seconds = 0.0;      // simulated time covered
  double throughput_tps = 0.0;   // committed tx/s (sanity anchor)
  // Host context the run was measured on: scaling numbers from a box with
  // fewer cores than threads are not comparable to a wide one.
  unsigned hw_concurrency = 0;   // std::thread::hardware_concurrency()
  unsigned host_nproc = 0;       // online CPUs per the OS
  // Parallel-executor hot-path ratios (0 for serial runs).
  double locks_per_event = 0.0;
  double notifies_per_event = 0.0;
  double mean_batch_size = 0.0;
  /// Benchmark-specific metrics (e.g. the load sweep's offered_tps,
  /// extracted_value). Serialized as additional keys only when non-empty,
  /// so benches that never touch it produce byte-identical JSON.
  std::vector<std::pair<std::string, double>> extra;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

inline std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Serializes one labelled run. The file holds a top-level "runs" array so
/// bench_compare.py --merge can accumulate a before/after trajectory in a
/// single checked-in file (BENCH_sim.json at the repo root).
inline void write_bench_json(const std::string& path,
                             const std::string& benchmark,
                             const std::string& label,
                             const std::vector<BenchEntry>& entries) {
  std::string j = "{\n  \"benchmark\": \"" + json_escape(benchmark) +
                  "\",\n  \"runs\": [\n    {\n      \"label\": \"" +
                  json_escape(label) + "\",\n      \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    j += "        {\"name\": \"" + json_escape(e.name) + "\", \"params\": \"" +
         json_escape(e.params) +
         "\", \"seed\": " + std::to_string(e.seed) +
         ", \"threads\": " + std::to_string(e.threads) +
         ", \"events\": " + std::to_string(e.events) +
         ", \"events_per_sec\": " + json_num(e.events_per_sec) +
         ", \"host_seconds\": " + json_num(e.host_seconds) +
         ", \"sim_seconds\": " + json_num(e.sim_seconds) +
         ", \"throughput_tps\": " + json_num(e.throughput_tps) +
         ", \"hw_concurrency\": " + std::to_string(e.hw_concurrency) +
         ", \"host_nproc\": " + std::to_string(e.host_nproc) +
         ", \"locks_per_event\": " + json_num(e.locks_per_event) +
         ", \"notifies_per_event\": " + json_num(e.notifies_per_event) +
         ", \"mean_batch_size\": " + json_num(e.mean_batch_size);
    for (const auto& [key, v] : e.extra) {
      j += ", \"" + json_escape(key) + "\": " + json_num(v);
    }
    j += "}";
    j += (i + 1 < entries.size()) ? ",\n" : "\n";
  }
  j += "      ]\n    }\n  ]\n}\n";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("[json written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "[failed to open %s for writing]\n", path.c_str());
  }
}

}  // namespace lyra::bench
