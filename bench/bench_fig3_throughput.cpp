// Reproduces Figure 3 (§VI-C): committed transactions per second as a
// function of the number of nodes, Lyra vs Pompē, at saturation (peak
// throughput across client widths, the paper's operating point).
//
// Paper's claims to reproduce in shape:
//   * Pompē performs better up to ~20 nodes but degrades as n grows
//     (leader egress + quadratic timestamp verification);
//   * Lyra's throughput grows with n — every node proposes — reaching
//     ~240k tx/s at n = 100 (~7x Pompē).

#include "bench_common.hpp"

#include <algorithm>

using namespace lyra;
using harness::RunConfig;
using harness::RunResult;

namespace {

RunResult best_of(RunConfig config,
                  const std::vector<std::uint32_t>& widths) {
  RunResult best;
  for (std::uint32_t w : widths) {
    config.clients_per_node = w;
    const RunResult r = run_experiment(config);
    if (r.throughput_tps > best.throughput_tps) best = r;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3: throughput vs number of nodes (peak over client widths)",
      "    n   protocol   tx/s        latency@peak(ms)  safety");
  std::string csv = "n,protocol,throughput_tps,latency_ms\n";

  for (std::size_t n : bench::node_counts()) {
    // Lyra saturates once clients cover the proposal-pacing window
    // (3 batches in flight per node).
    RunConfig lyra_cfg;
    lyra_cfg.protocol = RunConfig::Protocol::kLyra;
    lyra_cfg.n = n;
    lyra_cfg.memoize_verify = bench::memoize_mode();
    const RunResult lyra = best_of(lyra_cfg, {2600});

    // Pompē's knee moves with n: probe around the capacity estimate.
    RunConfig pompe_cfg;
    pompe_cfg.protocol = RunConfig::Protocol::kPompe;
    pompe_cfg.n = n;
    pompe_cfg.memoize_verify = bench::memoize_mode();
    const double cap = harness::pompe_capacity_estimate(n, 800, 125e6);
    std::vector<std::uint32_t> widths;
    for (double mult : {0.8, 1.4, 2.2}) {
      const double w = cap * mult * 1.3 / static_cast<double>(n);
      widths.push_back(
          static_cast<std::uint32_t>(std::clamp(w, 200.0, 30'000.0)));
    }
    const RunResult pompe = best_of(pompe_cfg, widths);

    for (const auto& [name, r] :
         {std::pair{"lyra", lyra}, std::pair{"pompe", pompe}}) {
      std::printf("%5zu %10s %10.0f %15.1f          %s\n", n, name,
                  r.throughput_tps, r.mean_latency_ms,
                  r.prefix_consistent ? "ok" : "VIOLATED");
      std::fflush(stdout);
      csv += std::to_string(n) + "," + name + "," +
             std::to_string(r.throughput_tps) + "," +
             std::to_string(r.mean_latency_ms) + "\n";
    }
  }
  bench::write_csv("fig3_throughput.csv", csv);
  return 0;
}
