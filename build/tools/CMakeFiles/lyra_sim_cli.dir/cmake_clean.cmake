file(REMOVE_RECURSE
  "CMakeFiles/lyra_sim_cli.dir/lyra_sim.cpp.o"
  "CMakeFiles/lyra_sim_cli.dir/lyra_sim.cpp.o.d"
  "lyra_sim"
  "lyra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
