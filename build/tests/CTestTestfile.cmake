# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/ordering_tests[1]_include.cmake")
include("/root/repo/build/tests/lyra_smoke_tests[1]_include.cmake")
include("/root/repo/build/tests/lyra_core_tests[1]_include.cmake")
include("/root/repo/build/tests/lyra_protocol_tests[1]_include.cmake")
include("/root/repo/build/tests/hotstuff_tests[1]_include.cmake")
include("/root/repo/build/tests/pompe_tests[1]_include.cmake")
include("/root/repo/build/tests/app_tests[1]_include.cmake")
include("/root/repo/build/tests/attacks_tests[1]_include.cmake")
include("/root/repo/build/tests/vvb_tests[1]_include.cmake")
include("/root/repo/build/tests/client_tests[1]_include.cmake")
include("/root/repo/build/tests/wan_tests[1]_include.cmake")
