file(REMOVE_RECURSE
  "CMakeFiles/wan_tests.dir/lyra/wan_test.cpp.o"
  "CMakeFiles/wan_tests.dir/lyra/wan_test.cpp.o.d"
  "wan_tests"
  "wan_tests.pdb"
  "wan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
