# Empty dependencies file for wan_tests.
# This may be replaced when dependencies are built.
