# Empty dependencies file for ordering_tests.
# This may be replaced when dependencies are built.
