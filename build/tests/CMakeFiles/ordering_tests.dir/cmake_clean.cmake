file(REMOVE_RECURSE
  "CMakeFiles/ordering_tests.dir/ordering/distance_table_test.cpp.o"
  "CMakeFiles/ordering_tests.dir/ordering/distance_table_test.cpp.o.d"
  "CMakeFiles/ordering_tests.dir/ordering/ordering_clock_test.cpp.o"
  "CMakeFiles/ordering_tests.dir/ordering/ordering_clock_test.cpp.o.d"
  "ordering_tests"
  "ordering_tests.pdb"
  "ordering_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
