# Empty dependencies file for lyra_smoke_tests.
# This may be replaced when dependencies are built.
