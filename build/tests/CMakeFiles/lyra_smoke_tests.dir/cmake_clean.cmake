file(REMOVE_RECURSE
  "CMakeFiles/lyra_smoke_tests.dir/lyra/smoke_test.cpp.o"
  "CMakeFiles/lyra_smoke_tests.dir/lyra/smoke_test.cpp.o.d"
  "lyra_smoke_tests"
  "lyra_smoke_tests.pdb"
  "lyra_smoke_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_smoke_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
