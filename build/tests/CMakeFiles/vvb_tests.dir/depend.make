# Empty dependencies file for vvb_tests.
# This may be replaced when dependencies are built.
