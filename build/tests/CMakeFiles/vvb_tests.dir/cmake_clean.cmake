file(REMOVE_RECURSE
  "CMakeFiles/vvb_tests.dir/lyra/vvb_test.cpp.o"
  "CMakeFiles/vvb_tests.dir/lyra/vvb_test.cpp.o.d"
  "vvb_tests"
  "vvb_tests.pdb"
  "vvb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vvb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
