# Empty dependencies file for pompe_tests.
# This may be replaced when dependencies are built.
