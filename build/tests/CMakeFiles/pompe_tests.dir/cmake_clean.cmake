file(REMOVE_RECURSE
  "CMakeFiles/pompe_tests.dir/pompe/pompe_test.cpp.o"
  "CMakeFiles/pompe_tests.dir/pompe/pompe_test.cpp.o.d"
  "pompe_tests"
  "pompe_tests.pdb"
  "pompe_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pompe_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
