# Empty compiler generated dependencies file for app_tests.
# This may be replaced when dependencies are built.
