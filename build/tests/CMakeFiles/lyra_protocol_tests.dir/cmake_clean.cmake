file(REMOVE_RECURSE
  "CMakeFiles/lyra_protocol_tests.dir/lyra/adversarial_test.cpp.o"
  "CMakeFiles/lyra_protocol_tests.dir/lyra/adversarial_test.cpp.o.d"
  "CMakeFiles/lyra_protocol_tests.dir/lyra/protocol_test.cpp.o"
  "CMakeFiles/lyra_protocol_tests.dir/lyra/protocol_test.cpp.o.d"
  "lyra_protocol_tests"
  "lyra_protocol_tests.pdb"
  "lyra_protocol_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_protocol_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
