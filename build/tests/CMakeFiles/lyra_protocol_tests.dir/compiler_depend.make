# Empty compiler generated dependencies file for lyra_protocol_tests.
# This may be replaced when dependencies are built.
