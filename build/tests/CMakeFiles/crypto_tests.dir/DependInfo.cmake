
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/commitment_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/commitment_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/commitment_test.cpp.o.d"
  "/root/repo/tests/crypto/gf256_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/gf256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/gf256_test.cpp.o.d"
  "/root/repo/tests/crypto/hmac_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/hmac_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/hmac_test.cpp.o.d"
  "/root/repo/tests/crypto/keys_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/keys_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/keys_test.cpp.o.d"
  "/root/repo/tests/crypto/merkle_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/merkle_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/merkle_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o.d"
  "/root/repo/tests/crypto/shamir_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/shamir_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/shamir_test.cpp.o.d"
  "/root/repo/tests/crypto/vss_param_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/vss_param_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/vss_param_test.cpp.o.d"
  "/root/repo/tests/crypto/vss_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/vss_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/vss_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/lyra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lyra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
