
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hotstuff/block_test.cpp" "tests/CMakeFiles/hotstuff_tests.dir/hotstuff/block_test.cpp.o" "gcc" "tests/CMakeFiles/hotstuff_tests.dir/hotstuff/block_test.cpp.o.d"
  "/root/repo/tests/hotstuff/hotstuff_core_test.cpp" "tests/CMakeFiles/hotstuff_tests.dir/hotstuff/hotstuff_core_test.cpp.o" "gcc" "tests/CMakeFiles/hotstuff_tests.dir/hotstuff/hotstuff_core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hotstuff/CMakeFiles/lyra_hotstuff.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lyra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lyra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lyra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
