file(REMOVE_RECURSE
  "CMakeFiles/hotstuff_tests.dir/hotstuff/block_test.cpp.o"
  "CMakeFiles/hotstuff_tests.dir/hotstuff/block_test.cpp.o.d"
  "CMakeFiles/hotstuff_tests.dir/hotstuff/hotstuff_core_test.cpp.o"
  "CMakeFiles/hotstuff_tests.dir/hotstuff/hotstuff_core_test.cpp.o.d"
  "hotstuff_tests"
  "hotstuff_tests.pdb"
  "hotstuff_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotstuff_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
