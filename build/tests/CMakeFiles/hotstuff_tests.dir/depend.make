# Empty dependencies file for hotstuff_tests.
# This may be replaced when dependencies are built.
