# Empty compiler generated dependencies file for lyra_core_tests.
# This may be replaced when dependencies are built.
