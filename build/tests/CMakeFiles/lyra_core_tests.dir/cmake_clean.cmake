file(REMOVE_RECURSE
  "CMakeFiles/lyra_core_tests.dir/lyra/batching_test.cpp.o"
  "CMakeFiles/lyra_core_tests.dir/lyra/batching_test.cpp.o.d"
  "CMakeFiles/lyra_core_tests.dir/lyra/commit_state_test.cpp.o"
  "CMakeFiles/lyra_core_tests.dir/lyra/commit_state_test.cpp.o.d"
  "CMakeFiles/lyra_core_tests.dir/lyra/config_test.cpp.o"
  "CMakeFiles/lyra_core_tests.dir/lyra/config_test.cpp.o.d"
  "lyra_core_tests"
  "lyra_core_tests.pdb"
  "lyra_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
