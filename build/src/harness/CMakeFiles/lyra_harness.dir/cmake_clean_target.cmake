file(REMOVE_RECURSE
  "liblyra_harness.a"
)
