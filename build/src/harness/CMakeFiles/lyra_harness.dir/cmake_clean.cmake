file(REMOVE_RECURSE
  "CMakeFiles/lyra_harness.dir/experiment.cpp.o"
  "CMakeFiles/lyra_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/lyra_harness.dir/lyra_cluster.cpp.o"
  "CMakeFiles/lyra_harness.dir/lyra_cluster.cpp.o.d"
  "CMakeFiles/lyra_harness.dir/pompe_cluster.cpp.o"
  "CMakeFiles/lyra_harness.dir/pompe_cluster.cpp.o.d"
  "liblyra_harness.a"
  "liblyra_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
