# Empty dependencies file for lyra_harness.
# This may be replaced when dependencies are built.
