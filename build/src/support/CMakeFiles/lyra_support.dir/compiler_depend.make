# Empty compiler generated dependencies file for lyra_support.
# This may be replaced when dependencies are built.
