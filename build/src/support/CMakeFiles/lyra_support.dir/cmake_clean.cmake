file(REMOVE_RECURSE
  "CMakeFiles/lyra_support.dir/hex.cpp.o"
  "CMakeFiles/lyra_support.dir/hex.cpp.o.d"
  "CMakeFiles/lyra_support.dir/random.cpp.o"
  "CMakeFiles/lyra_support.dir/random.cpp.o.d"
  "CMakeFiles/lyra_support.dir/stats.cpp.o"
  "CMakeFiles/lyra_support.dir/stats.cpp.o.d"
  "liblyra_support.a"
  "liblyra_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
