file(REMOVE_RECURSE
  "liblyra_support.a"
)
