file(REMOVE_RECURSE
  "CMakeFiles/lyra_ordering.dir/distance_table.cpp.o"
  "CMakeFiles/lyra_ordering.dir/distance_table.cpp.o.d"
  "liblyra_ordering.a"
  "liblyra_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
