# Empty compiler generated dependencies file for lyra_ordering.
# This may be replaced when dependencies are built.
