file(REMOVE_RECURSE
  "liblyra_ordering.a"
)
