file(REMOVE_RECURSE
  "CMakeFiles/lyra_core.dir/commit_state.cpp.o"
  "CMakeFiles/lyra_core.dir/commit_state.cpp.o.d"
  "CMakeFiles/lyra_core.dir/lyra_node.cpp.o"
  "CMakeFiles/lyra_core.dir/lyra_node.cpp.o.d"
  "liblyra_core.a"
  "liblyra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
