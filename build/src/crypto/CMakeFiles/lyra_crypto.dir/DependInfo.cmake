
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/commitment.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/commitment.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/commitment.cpp.o.d"
  "/root/repo/src/crypto/gf256.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/gf256.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/gf256.cpp.o.d"
  "/root/repo/src/crypto/hash.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/hash.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/hash.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/keys.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/keys.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/keys.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/shamir.cpp.o.d"
  "/root/repo/src/crypto/stream_cipher.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/stream_cipher.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/stream_cipher.cpp.o.d"
  "/root/repo/src/crypto/vss.cpp" "src/crypto/CMakeFiles/lyra_crypto.dir/vss.cpp.o" "gcc" "src/crypto/CMakeFiles/lyra_crypto.dir/vss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lyra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
