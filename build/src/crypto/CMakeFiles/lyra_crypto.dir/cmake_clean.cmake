file(REMOVE_RECURSE
  "CMakeFiles/lyra_crypto.dir/commitment.cpp.o"
  "CMakeFiles/lyra_crypto.dir/commitment.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/gf256.cpp.o"
  "CMakeFiles/lyra_crypto.dir/gf256.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/hash.cpp.o"
  "CMakeFiles/lyra_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/hmac.cpp.o"
  "CMakeFiles/lyra_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/keys.cpp.o"
  "CMakeFiles/lyra_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/merkle.cpp.o"
  "CMakeFiles/lyra_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/sha256.cpp.o"
  "CMakeFiles/lyra_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/shamir.cpp.o"
  "CMakeFiles/lyra_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/stream_cipher.cpp.o"
  "CMakeFiles/lyra_crypto.dir/stream_cipher.cpp.o.d"
  "CMakeFiles/lyra_crypto.dir/vss.cpp.o"
  "CMakeFiles/lyra_crypto.dir/vss.cpp.o.d"
  "liblyra_crypto.a"
  "liblyra_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
