file(REMOVE_RECURSE
  "liblyra_crypto.a"
)
