# Empty compiler generated dependencies file for lyra_crypto.
# This may be replaced when dependencies are built.
