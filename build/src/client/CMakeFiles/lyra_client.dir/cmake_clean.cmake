file(REMOVE_RECURSE
  "CMakeFiles/lyra_client.dir/client_pool.cpp.o"
  "CMakeFiles/lyra_client.dir/client_pool.cpp.o.d"
  "liblyra_client.a"
  "liblyra_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
