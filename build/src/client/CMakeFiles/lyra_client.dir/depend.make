# Empty dependencies file for lyra_client.
# This may be replaced when dependencies are built.
