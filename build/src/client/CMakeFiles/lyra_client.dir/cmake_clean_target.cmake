file(REMOVE_RECURSE
  "liblyra_client.a"
)
