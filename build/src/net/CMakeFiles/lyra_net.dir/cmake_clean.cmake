file(REMOVE_RECURSE
  "CMakeFiles/lyra_net.dir/adversary.cpp.o"
  "CMakeFiles/lyra_net.dir/adversary.cpp.o.d"
  "CMakeFiles/lyra_net.dir/latency_model.cpp.o"
  "CMakeFiles/lyra_net.dir/latency_model.cpp.o.d"
  "CMakeFiles/lyra_net.dir/network.cpp.o"
  "CMakeFiles/lyra_net.dir/network.cpp.o.d"
  "CMakeFiles/lyra_net.dir/topology.cpp.o"
  "CMakeFiles/lyra_net.dir/topology.cpp.o.d"
  "liblyra_net.a"
  "liblyra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
