file(REMOVE_RECURSE
  "liblyra_net.a"
)
