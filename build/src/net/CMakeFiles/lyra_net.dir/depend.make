# Empty dependencies file for lyra_net.
# This may be replaced when dependencies are built.
