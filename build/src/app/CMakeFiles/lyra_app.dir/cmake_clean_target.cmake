file(REMOVE_RECURSE
  "liblyra_app.a"
)
