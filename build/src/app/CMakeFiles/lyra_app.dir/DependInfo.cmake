
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/amm.cpp" "src/app/CMakeFiles/lyra_app.dir/amm.cpp.o" "gcc" "src/app/CMakeFiles/lyra_app.dir/amm.cpp.o.d"
  "/root/repo/src/app/kvstore.cpp" "src/app/CMakeFiles/lyra_app.dir/kvstore.cpp.o" "gcc" "src/app/CMakeFiles/lyra_app.dir/kvstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/lyra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lyra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
