# Empty dependencies file for lyra_app.
# This may be replaced when dependencies are built.
