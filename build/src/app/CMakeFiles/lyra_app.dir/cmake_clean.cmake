file(REMOVE_RECURSE
  "CMakeFiles/lyra_app.dir/amm.cpp.o"
  "CMakeFiles/lyra_app.dir/amm.cpp.o.d"
  "CMakeFiles/lyra_app.dir/kvstore.cpp.o"
  "CMakeFiles/lyra_app.dir/kvstore.cpp.o.d"
  "liblyra_app.a"
  "liblyra_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
