# CMake generated Testfile for 
# Source directory: /root/repo/src/pompe
# Build directory: /root/repo/build/src/pompe
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
