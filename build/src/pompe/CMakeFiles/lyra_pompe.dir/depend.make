# Empty dependencies file for lyra_pompe.
# This may be replaced when dependencies are built.
