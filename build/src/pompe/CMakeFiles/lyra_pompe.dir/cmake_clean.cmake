file(REMOVE_RECURSE
  "CMakeFiles/lyra_pompe.dir/pompe_node.cpp.o"
  "CMakeFiles/lyra_pompe.dir/pompe_node.cpp.o.d"
  "liblyra_pompe.a"
  "liblyra_pompe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_pompe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
