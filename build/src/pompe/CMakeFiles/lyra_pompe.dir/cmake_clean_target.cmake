file(REMOVE_RECURSE
  "liblyra_pompe.a"
)
