file(REMOVE_RECURSE
  "CMakeFiles/lyra_sim.dir/event_queue.cpp.o"
  "CMakeFiles/lyra_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/lyra_sim.dir/process.cpp.o"
  "CMakeFiles/lyra_sim.dir/process.cpp.o.d"
  "CMakeFiles/lyra_sim.dir/simulation.cpp.o"
  "CMakeFiles/lyra_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/lyra_sim.dir/trace.cpp.o"
  "CMakeFiles/lyra_sim.dir/trace.cpp.o.d"
  "liblyra_sim.a"
  "liblyra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
