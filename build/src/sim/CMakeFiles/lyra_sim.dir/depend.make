# Empty dependencies file for lyra_sim.
# This may be replaced when dependencies are built.
