# Empty dependencies file for lyra_attacks.
# This may be replaced when dependencies are built.
