file(REMOVE_RECURSE
  "liblyra_attacks.a"
)
