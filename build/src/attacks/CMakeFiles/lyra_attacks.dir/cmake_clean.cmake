file(REMOVE_RECURSE
  "CMakeFiles/lyra_attacks.dir/byzantine_lyra.cpp.o"
  "CMakeFiles/lyra_attacks.dir/byzantine_lyra.cpp.o.d"
  "CMakeFiles/lyra_attacks.dir/frontrun.cpp.o"
  "CMakeFiles/lyra_attacks.dir/frontrun.cpp.o.d"
  "liblyra_attacks.a"
  "liblyra_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
