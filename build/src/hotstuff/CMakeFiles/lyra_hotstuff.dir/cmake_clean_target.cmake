file(REMOVE_RECURSE
  "liblyra_hotstuff.a"
)
