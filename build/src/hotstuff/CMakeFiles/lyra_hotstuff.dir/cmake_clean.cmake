file(REMOVE_RECURSE
  "CMakeFiles/lyra_hotstuff.dir/block.cpp.o"
  "CMakeFiles/lyra_hotstuff.dir/block.cpp.o.d"
  "CMakeFiles/lyra_hotstuff.dir/hotstuff_core.cpp.o"
  "CMakeFiles/lyra_hotstuff.dir/hotstuff_core.cpp.o.d"
  "liblyra_hotstuff.a"
  "liblyra_hotstuff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyra_hotstuff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
