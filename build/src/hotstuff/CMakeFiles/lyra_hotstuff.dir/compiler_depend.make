# Empty compiler generated dependencies file for lyra_hotstuff.
# This may be replaced when dependencies are built.
