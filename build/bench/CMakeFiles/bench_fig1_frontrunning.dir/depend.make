# Empty dependencies file for bench_fig1_frontrunning.
# This may be replaced when dependencies are built.
