file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_frontrunning.dir/bench_fig1_frontrunning.cpp.o"
  "CMakeFiles/bench_fig1_frontrunning.dir/bench_fig1_frontrunning.cpp.o.d"
  "bench_fig1_frontrunning"
  "bench_fig1_frontrunning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_frontrunning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
