# Empty dependencies file for bench_ablation_breakdown.
# This may be replaced when dependencies are built.
