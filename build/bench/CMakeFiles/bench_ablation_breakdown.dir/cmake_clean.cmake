file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_breakdown.dir/bench_ablation_breakdown.cpp.o"
  "CMakeFiles/bench_ablation_breakdown.dir/bench_ablation_breakdown.cpp.o.d"
  "bench_ablation_breakdown"
  "bench_ablation_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
