file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_byzantine.dir/bench_ablation_byzantine.cpp.o"
  "CMakeFiles/bench_ablation_byzantine.dir/bench_ablation_byzantine.cpp.o.d"
  "bench_ablation_byzantine"
  "bench_ablation_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
