file(REMOVE_RECURSE
  "CMakeFiles/dex_mev.dir/dex_mev.cpp.o"
  "CMakeFiles/dex_mev.dir/dex_mev.cpp.o.d"
  "dex_mev"
  "dex_mev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_mev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
