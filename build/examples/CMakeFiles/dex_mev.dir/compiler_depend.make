# Empty compiler generated dependencies file for dex_mev.
# This may be replaced when dependencies are built.
