
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dex_mev.cpp" "examples/CMakeFiles/dex_mev.dir/dex_mev.cpp.o" "gcc" "examples/CMakeFiles/dex_mev.dir/dex_mev.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/lyra_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/lyra_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/lyra_app.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/lyra_client.dir/DependInfo.cmake"
  "/root/repo/build/src/pompe/CMakeFiles/lyra_pompe.dir/DependInfo.cmake"
  "/root/repo/build/src/lyra/CMakeFiles/lyra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/lyra_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/hotstuff/CMakeFiles/lyra_hotstuff.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lyra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lyra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lyra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lyra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
