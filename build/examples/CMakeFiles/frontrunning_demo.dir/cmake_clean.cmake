file(REMOVE_RECURSE
  "CMakeFiles/frontrunning_demo.dir/frontrunning_demo.cpp.o"
  "CMakeFiles/frontrunning_demo.dir/frontrunning_demo.cpp.o.d"
  "frontrunning_demo"
  "frontrunning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontrunning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
