# Empty dependencies file for frontrunning_demo.
# This may be replaced when dependencies are built.
