#include "harness/lyra_cluster.hpp"

#include <algorithm>
#include <cstdint>

#include "storage/wal.hpp"
#include "support/assert.hpp"

namespace lyra::harness {

const char* to_string(RestartOutcome outcome) {
  switch (outcome) {
    case RestartOutcome::kNone: return "none";
    case RestartOutcome::kLocalRecovery: return "local-recovery";
    case RestartOutcome::kStateSync: return "state-sync";
    case RestartOutcome::kDeltaSync: return "delta-sync";
    case RestartOutcome::kRefusedWalCorrupt: return "refused-wal-corrupt";
    case RestartOutcome::kRefusedSnapshotsCorrupt:
      return "refused-snapshots-corrupt";
    case RestartOutcome::kRefusedEmptyDisk: return "refused-empty-disk";
  }
  return "?";
}

namespace {
crypto::KeyRegistry make_registry(std::size_t n, std::size_t quorum,
                                  std::uint64_t seed) {
  Rng rng(seed ^ 0x5eed5eedULL);
  return crypto::KeyRegistry(n, quorum, rng);
}
}  // namespace

LyraCluster::LyraCluster(LyraClusterOptions options)
    : options_(std::move(options)),
      sim_(options_.seed),
      registry_(make_registry(options_.config.n, options_.config.quorum(),
                              options_.seed)),
      next_id_(static_cast<NodeId>(options_.config.n)) {
  LYRA_ASSERT(options_.topology.size() >= options_.config.n,
              "topology smaller than the cluster");
  LYRA_ASSERT(!options_.state_sync || options_.durable_storage,
              "state_sync without durable_storage: nothing would trigger "
              "a transfer and synced state would not survive");
  network_ = std::make_unique<net::Network>(
      &sim_, options_.topology.make_latency_model(), options_.config.n);
  if (options_.threads > 1) {
    sim_.set_parallelism(options_.threads, network_->delivery_floor());
  }

  disks_.resize(options_.config.n);
  journals_.resize(options_.config.n);
  recovery_info_.resize(options_.config.n);
  for (NodeId i = 0; i < options_.config.n; ++i) {
    std::unique_ptr<core::LyraNode> node = build_node(i);
    if (options_.durable_storage) {
      disks_[i] = std::make_unique<storage::MemDisk>();
      journals_[i] = std::make_unique<storage::DurableJournal>(
          disks_[i].get(), options_.journal);
      node->set_journal(journals_[i].get());
    }
    if (options_.state_sync) {
      node->enable_state_sync(options_.statesync_config);
    }
    network_->attach(node.get());
    nodes_.push_back(std::move(node));
  }
}

std::unique_ptr<core::LyraNode> LyraCluster::build_node(NodeId id) {
  return options_.node_factory
             ? options_.node_factory(&sim_, network_.get(), id,
                                     options_.config, &registry_)
             : std::make_unique<core::LyraNode>(&sim_, network_.get(), id,
                                                options_.config, &registry_);
}

void LyraCluster::crash_node(NodeId id) {
  LYRA_ASSERT(options_.durable_storage,
              "crash_node requires durable_storage (nothing to recover "
              "from otherwise)");
  LYRA_ASSERT(id < nodes_.size() && nodes_[id] != nullptr,
              "crash of a node that is not running");
  network_->detach(id);
  // ~Process cancels the node's timers and pending pump; deliveries still
  // in flight resolve through the network directory and drop.
  nodes_[id].reset();
  journals_[id].reset();
}

bool LyraCluster::restart_node(NodeId id) {
  LYRA_ASSERT(id < nodes_.size() && nodes_[id] == nullptr,
              "restart of a live node");
  storage::RecoveredState recovered = storage::recover(*disks_[id]);

  NodeRecoveryInfo& info = recovery_info_[id];
  info.happened = true;
  info.restarted_at = sim_.now();
  info.stats = recovered.stats;
  info.error.clear();

  // Triage the disk. Torn tails are repaired by recovery itself; anything
  // here means the local state cannot be trusted (or does not exist), so
  // the node either rebuilds from peers or stays down.
  RestartOutcome refusal = RestartOutcome::kNone;
  const char* why = nullptr;
  if (recovered.stats.wal_corrupt) {
    refusal = RestartOutcome::kRefusedWalCorrupt;
    why = "WAL corruption (torn tails are fine, CRC mismatches are not)";
  } else if (recovered.stats.snapshots_all_corrupt) {
    refusal = RestartOutcome::kRefusedSnapshotsCorrupt;
    why = "every snapshot on disk failed to decode; the WAL suffix alone "
          "would truncate the committed prefix";
  } else if (!recovered.found && disks_[id]->bytes_written() > 0) {
    // An empty disk that was never written is a legitimate cold start
    // (the node crashed before journaling anything); an empty disk whose
    // cumulative write counter is nonzero lost data it once held.
    refusal = RestartOutcome::kRefusedEmptyDisk;
    why = "disk lost previously written state";
  }

  bool full_sync = false;
  bool delta_sync = false;
  if (refusal != RestartOutcome::kNone) {
    if (!options_.state_sync) {
      info.outcome = refusal;
      info.error = why;
      return false;
    }
    if (refusal == RestartOutcome::kRefusedWalCorrupt &&
        options_.statesync_config.delta_transfer &&
        recovered.stats.snapshot_loaded) {
      // The WAL cannot be trusted, but the CRC-checked snapshot (plus the
      // clean replay prefix before the first bad frame) can: keep that
      // local prefix and let delta transfer pull only the missing suffix
      // from peers instead of wiping and re-fetching everything. Losing
      // the unreadable WAL tail is safe — anything this node ever acked
      // was committed by a quorum and sits below the negotiated cut.
      delta_sync = true;
    } else {
      // Local recovery is impossible but peers hold the state: discard the
      // disk (a half-trusted WAL must not shadow the transferred prefix)
      // and rejoin from scratch via full state transfer.
      disks_[id]->wipe();
      recovered = storage::RecoveredState{};
      full_sync = true;
    }
  }

  std::unique_ptr<core::LyraNode> node = build_node(id);
  node->restore(recovered);
  journals_[id] = std::make_unique<storage::DurableJournal>(
      disks_[id].get(), options_.journal);
  // Durable restart marker: lets the *next* recovery count incarnations
  // since the last snapshot and pick a fresh status-counter epoch.
  journals_[id]->restarted();
  node->set_journal(journals_[id].get());
  if (options_.state_sync) {
    node->enable_state_sync(options_.statesync_config);
  }

  info.outcome = full_sync    ? RestartOutcome::kStateSync
                 : delta_sync ? RestartOutcome::kDeltaSync
                              : RestartOutcome::kLocalRecovery;
  info.recovery_cpu = node->cpu_time_used();
  ++restarts_;

  network_->attach(node.get());
  nodes_[id] = std::move(node);
  nodes_[id]->on_start();
  if (options_.state_sync) {
    if (full_sync || delta_sync) {
      // Same protocol either way; with delta_transfer on, the manager
      // claims every chunk already covered by the kept local prefix and
      // only fetches the missing suffix over the network.
      nodes_[id]->statesync()->begin_full_sync();
    } else {
      // Local recovery may have left reveal holes (payload bytes are not
      // journaled); catch-up pulls them from peers.
      nodes_[id]->statesync()->begin_catchup();
    }
  }
  return true;
}

void LyraCluster::wipe_disk(NodeId id) {
  LYRA_ASSERT(options_.durable_storage, "wipe_disk requires durable_storage");
  LYRA_ASSERT(id < nodes_.size() && nodes_[id] == nullptr,
              "wipe the disk of a crashed node, not a live one");
  disks_[id]->wipe();
}

void LyraCluster::corrupt_wal(NodeId id) {
  LYRA_ASSERT(options_.durable_storage,
              "corrupt_wal requires durable_storage");
  LYRA_ASSERT(id < nodes_.size() && nodes_[id] == nullptr,
              "corrupt the WAL of a crashed node, not a live one");
  for (const std::string& name : disks_[id]->list()) {
    std::uint64_t index = 0;
    if (storage::parse_wal_segment_name(name, index)) {
      disks_[id]->corrupt(name, /*offset=*/12);  // inside the first frame
    }
  }
  // Bit rot in old segments can hide behind a snapshot: recovery only
  // replays segments >= the newest snapshot's replay point, and when the
  // post-snapshot suffix is empty nothing above touches the scanned range.
  // Plant a complete frame with a wrong CRC in a segment index far above
  // any replay point so the scan must hit mid-log corruption. Two frames
  // with different trailers for the same bytes guarantee at least one CRC
  // mismatch without recomputing the checksum here.
  Bytes frame = {0x04, 0x00, 0x00, 0x00, 0x01, 0xde, 0xad, 0xbe, 0xef};
  Bytes planted;
  for (std::uint8_t crc : {std::uint8_t{0x00}, std::uint8_t{0xff}}) {
    planted.insert(planted.end(), frame.begin(), frame.end());
    planted.insert(planted.end(), 4, crc);
  }
  disks_[id]->append(storage::wal_segment_name(9999999999ull), planted);
}

void LyraCluster::schedule_crash_restart(NodeId id, TimeNs crash_at,
                                         TimeNs restart_at) {
  LYRA_ASSERT(crash_at < restart_at, "restart must come after the crash");
  sim_.schedule_at(crash_at, [this, id] { crash_node(id); });
  sim_.schedule_at(restart_at, [this, id] { restart_node(id); });
}

client::ClientPool& LyraCluster::add_client_pool(NodeId target,
                                                 std::uint32_t width,
                                                 TimeNs start_at,
                                                 TimeNs measure_from,
                                                 TimeNs measure_to) {
  LYRA_ASSERT(!started_, "add pools before start()");
  LYRA_ASSERT(next_id_ < options_.topology.size(),
              "no topology slot left for a client pool");
  auto pool = std::make_unique<client::ClientPool>(
      &sim_, network_.get(), next_id_++, target, width, start_at,
      measure_from, measure_to);
  network_->attach(pool.get());
  pools_.push_back(std::move(pool));
  return *pools_.back();
}

client::ClientPool& LyraCluster::add_client_pool(std::vector<NodeId> targets,
                                                 std::uint32_t width,
                                                 TimeNs start_at,
                                                 TimeNs measure_from,
                                                 TimeNs measure_to) {
  LYRA_ASSERT(!started_, "add pools before start()");
  LYRA_ASSERT(next_id_ < options_.topology.size(),
              "no topology slot left for a client pool");
  LYRA_ASSERT(!targets.empty(), "aggregated pool needs at least one target");
  auto pool = std::make_unique<client::ClientPool>(
      &sim_, network_.get(), next_id_++, std::move(targets), width, start_at,
      measure_from, measure_to);
  network_->attach(pool.get());
  pools_.push_back(std::move(pool));
  return *pools_.back();
}

workload::OpenLoopClientPool& LyraCluster::add_open_loop_pool(
    NodeId target, const workload::OpenLoopOptions& options,
    std::uint64_t run_seed) {
  LYRA_ASSERT(!started_, "add pools before start()");
  LYRA_ASSERT(next_id_ < options_.topology.size(),
              "no topology slot left for an open-loop pool");
  auto pool = std::make_unique<workload::OpenLoopClientPool>(
      &sim_, network_.get(), next_id_++, target, options, run_seed);
  network_->attach(pool.get());
  open_pools_.push_back(std::move(pool));
  return *open_pools_.back();
}

void LyraCluster::adopt_process(std::unique_ptr<sim::Process> process) {
  LYRA_ASSERT(!started_, "adopt processes before start()");
  LYRA_ASSERT(process->id() == next_id_, "process ids must stay dense");
  ++next_id_;
  network_->attach(process.get());
  extra_processes_.push_back(std::move(process));
}

void LyraCluster::start() {
  LYRA_ASSERT(!started_, "start() must run once");
  started_ = true;
  for (auto& n : nodes_) n->on_start();
  for (auto& p : pools_) p->on_start();
  for (auto& p : open_pools_) p->on_start();
  for (auto& p : extra_processes_) p->on_start();
}

bool LyraCluster::ledgers_prefix_consistent() const {
  // Compare every ledger against the longest one; crashed (null) slots
  // have no ledger to compare.
  const core::LyraNode* longest = nullptr;
  for (const auto& n : nodes_) {
    if (n != nullptr &&
        (longest == nullptr || n->ledger().size() > longest->ledger().size())) {
      longest = n.get();
    }
  }
  if (longest == nullptr) return true;
  const auto& ref = longest->ledger();
  for (const auto& n : nodes_) {
    if (n == nullptr) continue;
    const auto& l = n->ledger();
    if (l.size() > ref.size()) return false;
    for (std::size_t i = 0; i < l.size(); ++i) {
      if (l[i].seq != ref[i].seq || l[i].cipher_id != ref[i].cipher_id) {
        return false;
      }
    }
  }
  return true;
}

std::size_t LyraCluster::min_ledger_length() const {
  std::size_t len = SIZE_MAX;
  for (const auto& n : nodes_) {
    if (n != nullptr) len = std::min(len, n->ledger().size());
  }
  return len == SIZE_MAX ? 0 : len;
}

std::size_t LyraCluster::max_ledger_length() const {
  std::size_t len = 0;
  for (const auto& n : nodes_) {
    if (n != nullptr) len = std::max(len, n->ledger().size());
  }
  return len;
}

statesync::StateSyncStats LyraCluster::statesync_totals() const {
  statesync::StateSyncStats total;
  for (const auto& n : nodes_) {
    if (n == nullptr || n->statesync() == nullptr) continue;
    const statesync::StateSyncStats& s = n->statesync()->stats();
    total.syncs_started += s.syncs_started;
    total.syncs_completed += s.syncs_completed;
    total.manifest_rounds += s.manifest_rounds;
    total.chunks_fetched += s.chunks_fetched;
    total.chunks_local += s.chunks_local;
    total.chunks_rejected += s.chunks_rejected;
    total.chunk_timeouts += s.chunk_timeouts;
    total.bytes_transferred += s.bytes_transferred;
    total.bytes_local += s.bytes_local;
    total.serves_shed += s.serves_shed;
    total.entries_installed += s.entries_installed;
    total.catchup_reveals += s.catchup_reveals;
    total.catchup_rejections += s.catchup_rejections;
    total.peers_demoted += s.peers_demoted;
    total.installs_refused += s.installs_refused;
  }
  return total;
}

std::uint64_t LyraCluster::total_late_accepts() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    if (n != nullptr) total += n->commit_state().late_accepts();
  }
  return total;
}

}  // namespace lyra::harness
