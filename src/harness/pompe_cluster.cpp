#include "harness/pompe_cluster.hpp"

#include "support/assert.hpp"

namespace lyra::harness {

namespace {
crypto::KeyRegistry make_registry(std::size_t n, std::size_t quorum,
                                  std::uint64_t seed) {
  Rng rng(seed ^ 0x5eed5eedULL);
  return crypto::KeyRegistry(n, quorum, rng);
}
}  // namespace

PompeCluster::PompeCluster(PompeClusterOptions options)
    : options_(std::move(options)),
      sim_(options_.seed),
      registry_(make_registry(options_.config.n, options_.config.quorum(),
                              options_.seed)),
      next_id_(static_cast<NodeId>(options_.config.n)) {
  LYRA_ASSERT(options_.topology.size() >= options_.config.n,
              "topology smaller than the cluster");
  network_ = std::make_unique<net::Network>(
      &sim_, options_.topology.make_latency_model(), options_.config.n);
  if (options_.threads > 1) {
    sim_.set_parallelism(options_.threads, network_->delivery_floor());
  }

  for (NodeId i = 0; i < options_.config.n; ++i) {
    auto node = options_.node_factory
                    ? options_.node_factory(&sim_, network_.get(), i,
                                            options_.config, &registry_)
                    : std::make_unique<pompe::PompeNode>(
                          &sim_, network_.get(), i, options_.config,
                          &registry_);
    network_->attach(node.get());
    nodes_.push_back(std::move(node));
  }
}

client::ClientPool& PompeCluster::add_client_pool(NodeId target,
                                                  std::uint32_t width,
                                                  TimeNs start_at,
                                                  TimeNs measure_from,
                                                  TimeNs measure_to) {
  LYRA_ASSERT(!started_, "add pools before start()");
  LYRA_ASSERT(next_id_ < options_.topology.size(),
              "no topology slot left for a client pool");
  auto pool = std::make_unique<client::ClientPool>(
      &sim_, network_.get(), next_id_++, target, width, start_at,
      measure_from, measure_to);
  network_->attach(pool.get());
  pools_.push_back(std::move(pool));
  return *pools_.back();
}

client::ClientPool& PompeCluster::add_client_pool(std::vector<NodeId> targets,
                                                  std::uint32_t width,
                                                  TimeNs start_at,
                                                  TimeNs measure_from,
                                                  TimeNs measure_to) {
  LYRA_ASSERT(!started_, "add pools before start()");
  LYRA_ASSERT(next_id_ < options_.topology.size(),
              "no topology slot left for a client pool");
  LYRA_ASSERT(!targets.empty(), "aggregated pool needs at least one target");
  auto pool = std::make_unique<client::ClientPool>(
      &sim_, network_.get(), next_id_++, std::move(targets), width, start_at,
      measure_from, measure_to);
  network_->attach(pool.get());
  pools_.push_back(std::move(pool));
  return *pools_.back();
}

workload::OpenLoopClientPool& PompeCluster::add_open_loop_pool(
    NodeId target, const workload::OpenLoopOptions& options,
    std::uint64_t run_seed) {
  LYRA_ASSERT(!started_, "add pools before start()");
  LYRA_ASSERT(next_id_ < options_.topology.size(),
              "no topology slot left for an open-loop pool");
  auto pool = std::make_unique<workload::OpenLoopClientPool>(
      &sim_, network_.get(), next_id_++, target, options, run_seed);
  network_->attach(pool.get());
  open_pools_.push_back(std::move(pool));
  return *open_pools_.back();
}

void PompeCluster::adopt_process(std::unique_ptr<sim::Process> process) {
  LYRA_ASSERT(!started_, "adopt processes before start()");
  LYRA_ASSERT(process->id() == next_id_, "process ids must stay dense");
  ++next_id_;
  network_->attach(process.get());
  extra_processes_.push_back(std::move(process));
}

void PompeCluster::start() {
  LYRA_ASSERT(!started_, "start() must run once");
  started_ = true;
  for (auto& n : nodes_) n->on_start();
  for (auto& p : pools_) p->on_start();
  for (auto& p : open_pools_) p->on_start();
  for (auto& p : extra_processes_) p->on_start();
}

bool PompeCluster::ledgers_prefix_consistent() const {
  const pompe::PompeNode* longest = nodes_.front().get();
  for (const auto& n : nodes_) {
    if (n->ledger().size() > longest->ledger().size()) longest = n.get();
  }
  const auto& ref = longest->ledger();
  for (const auto& n : nodes_) {
    const auto& l = n->ledger();
    if (l.size() > ref.size()) return false;
    for (std::size_t i = 0; i < l.size(); ++i) {
      if (l[i].batch_digest != ref[i].batch_digest ||
          l[i].assigned_ts != ref[i].assigned_ts) {
        return false;
      }
    }
  }
  return true;
}

std::size_t PompeCluster::min_ledger_length() const {
  std::size_t len = nodes_.empty() ? 0 : nodes_.front()->ledger().size();
  for (const auto& n : nodes_) len = std::min(len, n->ledger().size());
  return len;
}

}  // namespace lyra::harness
