#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "client/client_pool.hpp"
#include "crypto/keys.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "pompe/pompe_node.hpp"
#include "sim/simulation.hpp"
#include "workload/open_loop.hpp"

namespace lyra::harness {

using PompeNodeFactory = std::function<std::unique_ptr<pompe::PompeNode>(
    sim::Simulation*, net::Network*, NodeId, const pompe::PompeConfig&,
    const crypto::KeyRegistry*)>;

struct PompeClusterOptions {
  pompe::PompeConfig config;
  net::Topology topology;
  std::uint64_t seed = 1;
  PompeNodeFactory node_factory;

  /// Total execution threads (1 = serial); see LyraClusterOptions::threads.
  unsigned threads = 1;
};

/// The Pompē baseline deployment, mirroring LyraCluster's shape so the
/// benchmark harness can sweep both protocols identically.
class PompeCluster {
 public:
  explicit PompeCluster(PompeClusterOptions options);

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return *network_; }
  const crypto::KeyRegistry& registry() const { return registry_; }
  pompe::PompeNode& node(NodeId id) { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }
  const pompe::PompeConfig& config() const { return options_.config; }

  client::ClientPool& add_client_pool(NodeId target, std::uint32_t width,
                                      TimeNs start_at, TimeNs measure_from,
                                      TimeNs measure_to);
  /// Aggregated form; see LyraCluster::add_client_pool(vector).
  client::ClientPool& add_client_pool(std::vector<NodeId> targets,
                                      std::uint32_t width, TimeNs start_at,
                                      TimeNs measure_from, TimeNs measure_to);
  /// Open-loop traffic source; see LyraCluster::add_open_loop_pool.
  workload::OpenLoopClientPool& add_open_loop_pool(
      NodeId target, const workload::OpenLoopOptions& options,
      std::uint64_t run_seed);
  void adopt_process(std::unique_ptr<sim::Process> process);
  NodeId next_process_id() const { return next_id_; }

  void start();
  /// Returns the number of events executed (perf-harness metric).
  std::uint64_t run_for(TimeNs duration) {
    return sim_.run_until(sim_.now() + duration);
  }

  /// SMR-Safety across Pompē ledgers: prefix-related on
  /// (block_height, assigned_ts, digest).
  bool ledgers_prefix_consistent() const;
  std::size_t min_ledger_length() const;

  const std::vector<std::unique_ptr<client::ClientPool>>& pools() const {
    return pools_;
  }
  const std::vector<std::unique_ptr<workload::OpenLoopClientPool>>&
  open_pools() const {
    return open_pools_;
  }

 private:
  PompeClusterOptions options_;
  sim::Simulation sim_;
  crypto::KeyRegistry registry_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<pompe::PompeNode>> nodes_;
  std::vector<std::unique_ptr<client::ClientPool>> pools_;
  std::vector<std::unique_ptr<workload::OpenLoopClientPool>> open_pools_;
  std::vector<std::unique_ptr<sim::Process>> extra_processes_;
  NodeId next_id_;
  bool started_ = false;
};

}  // namespace lyra::harness
