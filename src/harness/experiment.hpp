#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace lyra::harness {

/// One benchmark run: a protocol, a cluster size, and a closed-loop client
/// load, on the paper's 3-continent topology (§VI-A).
struct RunConfig {
  enum class Protocol { kLyra, kPompe };

  Protocol protocol = Protocol::kLyra;
  std::size_t n = 4;
  std::uint32_t clients_per_node = 1600;  // closed-loop width per node

  TimeNs duration = ms(6000);
  TimeNs measure_from = ms(2500);
  TimeNs client_start = ms(900);  // after Lyra's distance warm-up
  std::uint64_t seed = 42;

  // Protocol knobs (paper defaults).
  std::size_t batch_size = 800;
  SeqNum lambda = ms(5);
  bool obfuscate = true;                 // Lyra commit-reveal on/off
  std::size_t max_outstanding = 3;       // Lyra proposal pacing
  std::size_t byzantine_silent = 0;      // crash-faulty Lyra nodes

  /// Effective per-node egress (DESIGN.md: sustained cross-continent TCP
  /// goodput, not the NIC line rate).
  double bandwidth_bytes_per_sec = 125e6;

  /// Crash-restart schedule (Lyra only). Each entry tears the node down at
  /// `crash_at` and rebuilds it from its WAL + snapshots at `restart_at`
  /// (absolute run times). Non-empty schedules enable durable storage.
  struct CrashRestart {
    NodeId node = 0;
    TimeNs crash_at = 0;
    TimeNs restart_at = 0;
  };
  std::vector<CrashRestart> crash_restarts;

  std::size_t f() const { return (n - 1) / 3; }
};

struct RunResult {
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double throughput_tps = 0.0;
  std::uint64_t committed_txs = 0;
  bool prefix_consistent = false;
  std::uint64_t late_accepts = 0;        // Lyra only
  double mean_decide_rounds = 0.0;       // Lyra only
  double max_decide_rounds = 0.0;        // Lyra only
  double validation_accept_rate = 1.0;   // Lyra only
  std::uint64_t proof_verifications = 0; // Pompē only

  // Crash-restart runs (empty schedule leaves these zero):
  std::uint64_t restarts = 0;
  std::uint64_t recovered_wal_records = 0;  // replayed across all restarts
  std::uint64_t recovered_snapshots = 0;    // restarts that found a snapshot
  double recovery_cpu_ms = 0.0;             // simulated CPU rebuilding state
  std::uint64_t messages_dropped = 0;       // sent to crashed nodes
};

/// Executes one run and aggregates client-side measurements.
RunResult run_experiment(const RunConfig& config);

/// Crude capacity estimate for Pompē at n nodes (tx/s), used by benches to
/// pick client widths around the saturation knee: the leader's egress
/// serializes every batch to every replica; small clusters are bounded by
/// the pipeline rate instead.
double pompe_capacity_estimate(std::size_t n, std::size_t batch_size,
                               double bandwidth_bytes_per_sec);

const char* protocol_name(RunConfig::Protocol p);

}  // namespace lyra::harness
