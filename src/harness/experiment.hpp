#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/executor_stats.hpp"
#include "support/types.hpp"
#include "workload/samplers.hpp"

namespace lyra::harness {

/// One benchmark run: a protocol, a cluster size, and a closed-loop client
/// load, on the paper's 3-continent topology (§VI-A).
struct RunConfig {
  enum class Protocol { kLyra, kPompe };

  Protocol protocol = Protocol::kLyra;
  std::size_t n = 4;
  std::uint32_t clients_per_node = 1600;  // closed-loop width per node

  /// Aggregated clients: 0 keeps one closed-loop pool process per node
  /// (the legacy shape, byte-identical to all recorded runs). k > 0 groups
  /// same-region nodes into shards of up to k and drives each shard's
  /// clients from ONE pool process (client::ClientPool aggregated form) —
  /// O(n/k) simulation objects instead of O(n), which is what makes
  /// n = 300–1000 sweeps affordable. Shards never span regions, so the
  /// client-to-node latency distribution is unchanged. Closed-loop runs
  /// only (ignored with workload.open_loop).
  std::size_t client_shard = 0;

  /// Cap on how many nodes host clients: 0 gives every node a client pool
  /// (the legacy shape); k > 0 attaches pools to nodes 0..k-1 only (the
  /// round-robin region placement keeps the subset spread across all
  /// three continents). Every instance costs O(n^2) consensus traffic and
  /// each client-bearing node proposes, so a cluster-size sweep that only
  /// needs a load *anchor* — not the saturation knee — caps the proposer
  /// set to keep wall-clock cost from growing as n^3. Closed-loop runs
  /// only (ignored with workload.open_loop).
  std::size_t client_nodes = 0;

  TimeNs duration = ms(6000);
  TimeNs measure_from = ms(2500);
  TimeNs client_start = ms(900);  // after Lyra's distance warm-up
  std::uint64_t seed = 42;

  /// Execution threads for the simulation engine (1 = serial). N > 1 runs
  /// the deterministic parallel executor with N-1 workers; the committed
  /// ledgers and client stats are identical to the serial run.
  unsigned threads = 1;

  // Protocol knobs (paper defaults).
  std::size_t batch_size = 800;
  TimeNs batch_timeout = ms(50);   // partial-batch proposal pacing
  /// Status-heartbeat period (lyra::Config::heartbeat_period). Each beat
  /// is an O(n) broadcast from every node, so idle-cluster traffic is
  /// n^2/period — the big-n scaling sweeps stretch it to stay affordable.
  TimeNs heartbeat = ms(25);
  SeqNum lambda = ms(5);
  bool obfuscate = true;                 // Lyra commit-reveal on/off
  std::size_t max_outstanding = 3;       // Lyra proposal pacing
  std::size_t byzantine_silent = 0;      // crash-faulty Lyra nodes

  /// Byzantine re-presentation traffic (Lyra only): this many nodes run
  /// the full protocol but also re-broadcast old INITs after correct
  /// processes have GC'd them, forcing repeat signature verifications.
  std::size_t replay_attackers = 0;

  /// Cache verification verdicts by (signer, value, signature) identity so
  /// re-presented Byzantine traffic verifies once (lyra::Config::
  /// memoize_verification / PompeConfig::memoize_verification).
  bool memoize_verify = false;

  /// Effective per-node egress (DESIGN.md: sustained cross-continent TCP
  /// goodput, not the NIC line rate).
  double bandwidth_bytes_per_sec = 125e6;

  /// Crash-restart schedule (Lyra only). Each entry tears the node down at
  /// `crash_at` and rebuilds it from its WAL + snapshots at `restart_at`
  /// (absolute run times). Non-empty schedules enable durable storage.
  /// The optional fault injectors make local recovery impossible, so the
  /// node comes back via peer state transfer (both force state_sync on):
  /// `wipe_disk_at` deletes every file on the node's disk at that time
  /// (crash_at < wipe_disk_at < restart_at); `corrupt_wal` flips a byte in
  /// each WAL segment midway between crash and restart.
  struct CrashRestart {
    NodeId node = 0;
    TimeNs crash_at = 0;
    TimeNs restart_at = 0;
    TimeNs wipe_disk_at = 0;  ///< 0 = no wipe
    bool corrupt_wal = false;
  };
  std::vector<CrashRestart> crash_restarts;

  /// Enable the statesync subsystem on every node (src/statesync):
  /// restarted nodes catch up on reveal holes from peers, and nodes with
  /// unrecoverable disks rejoin via full state transfer.
  bool state_sync = false;

  /// Delta state transfer (statesync::StateSyncConfig::delta_transfer): a
  /// restarting node whose WAL is corrupt but whose newest snapshot still
  /// decodes keeps that local prefix and fetches only the missing suffix
  /// from peers instead of wiping and re-transferring everything. Implies
  /// state_sync.
  bool delta_sync = false;

  /// Open-loop workload engine (docs/WORKLOAD.md). Off by default:
  /// open_loop=false leaves every node's mempool disabled and the runs
  /// byte-identical to the closed-loop harness above.
  struct Workload {
    bool open_loop = false;
    double arrival_rate = 200.0;  ///< tx/s per node (offered = n * rate)
    double burst_every_ms = 0;    ///< 0 = no burst episodes
    double burst_len_ms = 250.0;
    double burst_mult = 4.0;
    std::uint64_t accounts = 100000;
    double zipf_s = 1.0;
    std::size_t mempool_capacity = 4096;  ///< per-node bound
    workload::FeeModel fee_model = workload::FeeModel::kUniform;
    std::uint64_t base_fee = 100;
    std::uint64_t base_value = 1000;
    double value_sigma = 1.5;
    std::uint32_t max_retries = 6;
    TimeNs retry_backoff = ms(40);
    /// Economic adversary: this many nodes (highest ids) run the sandwich
    /// variant that bids fees against observed high-value victims.
    std::size_t sandwich_attackers = 0;
    std::uint64_t victim_value_threshold = 5000;
    std::uint32_t slippage_bps = 50;
  };
  Workload workload;

  std::size_t f() const { return (n - 1) / 3; }
  bool wants_state_sync() const {
    if (state_sync || delta_sync) return true;
    for (const CrashRestart& cr : crash_restarts) {
      if (cr.wipe_disk_at > 0 || cr.corrupt_wal) return true;
    }
    return false;
  }
};

struct RunResult {
  // Engine-side metrics (perf harness): how much simulator work the run
  // performed and what it cost in host time.
  std::uint64_t events_executed = 0;
  double host_seconds = 0.0;  // wall-clock time of the event loop
  double sim_seconds = 0.0;   // simulated duration covered
  /// Parallel-executor hot-path counters (all-zero for serial runs);
  /// lyra_sim --stats and bench_sim_speed report the per-event ratios.
  sim::ExecutorStats exec_stats;

  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double throughput_tps = 0.0;
  std::uint64_t committed_txs = 0;
  bool prefix_consistent = false;
  std::uint64_t late_accepts = 0;        // Lyra only
  double mean_decide_rounds = 0.0;       // Lyra only
  double max_decide_rounds = 0.0;        // Lyra only
  double validation_accept_rate = 1.0;   // Lyra only
  std::uint64_t proof_verifications = 0; // Pompē only

  // Verification memoization (RunConfig::memoize_verify) and the replay
  // traffic it absorbs; hits/misses stay zero with the cache off.
  std::uint64_t verify_cache_hits = 0;
  std::uint64_t verify_cache_misses = 0;
  std::uint64_t replays_sent = 0;  // re-presented INITs (replay_attackers)

  // Crash-restart runs (empty schedule leaves these zero):
  std::uint64_t restarts = 0;
  std::uint64_t recovered_wal_records = 0;  // replayed across all restarts
  std::uint64_t recovered_snapshots = 0;    // restarts that found a snapshot
  double recovery_cpu_ms = 0.0;             // simulated CPU rebuilding state
  std::uint64_t messages_dropped = 0;       // sent to crashed nodes
  std::uint64_t torn_tail_repairs = 0;      // restarts that truncated a tail
  std::uint64_t refused_restarts = 0;       // unrecoverable, no state sync
  std::uint64_t full_state_syncs = 0;       // rebuilt entirely from peers
  std::uint64_t delta_state_syncs = 0;      // kept local prefix, pulled suffix

  // State-sync counters, summed over all nodes (state_sync runs only):
  std::uint64_t sync_chunks_fetched = 0;
  std::uint64_t sync_chunks_local = 0;      // satisfied from local disk
  std::uint64_t sync_chunks_rejected = 0;
  std::uint64_t sync_bytes_transferred = 0;
  std::uint64_t sync_bytes_local = 0;       // bytes NOT moved over the wire
  std::uint64_t sync_serves_shed = 0;       // chunk serves dropped at the cap
  std::uint64_t sync_entries_installed = 0;
  std::uint64_t catchup_reveals = 0;
  std::uint64_t unrevealed_batches = 0;  // reveal holes left at run end

  // Open-loop workload runs (RunConfig::Workload; zero otherwise).
  double offered_tps = 0.0;  // arrivals generated inside the run
  double goodput_tps = 0.0;  // committed_in_window / window (== throughput)
  std::uint64_t offered_txs = 0;
  std::uint64_t rejected_submits = 0;   // backpressure signals to clients
  std::uint64_t terminal_rejects = 0;   // dropped after max_retries
  std::uint64_t resubmissions = 0;
  std::uint64_t mempool_evictions = 0;  // outbid and displaced
  std::uint64_t mempool_rejects = 0;    // refused at admission (full)

  // Economic front-running metric (workload.sandwich_attackers > 0).
  std::uint64_t victims_targeted = 0;
  std::uint64_t frontrun_successes = 0;
  std::uint64_t sandwich_completes = 0;
  std::uint64_t attacks_committed = 0;
  double extracted_value = 0.0;   // value units taken from victims
  double adversary_profit = 0.0;  // extracted minus fee spend
  double victim_slippage = 0.0;
};

/// Executes one run and aggregates client-side measurements.
RunResult run_experiment(const RunConfig& config);

/// Crude capacity estimate for Pompē at n nodes (tx/s), used by benches to
/// pick client widths around the saturation knee: the leader's egress
/// serializes every batch to every replica; small clusters are bounded by
/// the pipeline rate instead.
double pompe_capacity_estimate(std::size_t n, std::size_t batch_size,
                               double bandwidth_bytes_per_sec);

const char* protocol_name(RunConfig::Protocol p);

}  // namespace lyra::harness
