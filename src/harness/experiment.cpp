#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "attacks/byzantine_lyra.hpp"
#include "attacks/sandwich.hpp"
#include "harness/lyra_cluster.hpp"
#include "harness/pompe_cluster.hpp"
#include "workload/economics.hpp"
#include "workload/mempool.hpp"
#include "workload/open_loop.hpp"

namespace lyra::harness {

namespace {

/// 3-continent topology with one client-pool slot co-located with each
/// node (the paper's dedicated client machines, §VI-A).
net::Topology benchmark_topology(std::size_t n) {
  net::Topology t = net::three_continents(n, std::vector<net::Region>(n));
  for (std::size_t i = 0; i < n; ++i) {
    t.placement[n + i] = t.placement[i];
  }
  return t;
}

/// Aggregated-client layout (RunConfig::client_shard): nodes grouped into
/// same-region shards of up to `shard` targets, one pool slot per shard
/// placed in that shard's region (so client-to-node latencies match the
/// per-node layout). Nodes below `skip_below` get no clients; a nonzero
/// `max_targets` (RunConfig::client_nodes) caps the client-bearing set to
/// nodes 0..max_targets-1.
struct ShardPlan {
  std::vector<std::vector<NodeId>> shards;
  net::Topology topology;
};

ShardPlan make_shard_plan(std::size_t n, std::size_t shard,
                          std::size_t skip_below, std::size_t max_targets) {
  ShardPlan plan;
  const net::Topology base = net::three_continents(n);
  for (std::size_t r = 0; r < net::kRegionCount; ++r) {
    std::vector<NodeId> cur;
    for (NodeId i = 0; i < n; ++i) {
      if (i < skip_below) continue;  // no clients on dead nodes
      if (max_targets > 0 && i >= max_targets) break;
      if (static_cast<std::size_t>(base.placement[i]) != r) continue;
      cur.push_back(i);
      if (cur.size() == shard) {
        plan.shards.push_back(std::move(cur));
        cur.clear();
      }
    }
    if (!cur.empty()) plan.shards.push_back(std::move(cur));
  }
  std::vector<net::Region> extras;
  extras.reserve(plan.shards.size());
  for (const std::vector<NodeId>& s : plan.shards) {
    extras.push_back(base.placement[s.front()]);
  }
  plan.topology = net::three_continents(n, extras);
  return plan;
}

template <class Cluster>
RunResult collect_client_stats(Cluster& cluster, const RunConfig& config) {
  RunResult r;
  Samples all_latencies;
  double weighted_sum = 0.0;
  std::uint64_t weighted_count = 0;
  for (const auto& pool : cluster.pools()) {
    r.committed_txs += pool->committed_in_window();
    for (double v : pool->latency_ms().values()) all_latencies.add(v);
    weighted_sum +=
        pool->weighted_mean_latency_ms() *
        static_cast<double>(pool->committed_in_window());
    weighted_count += pool->committed_in_window();
  }
  const double window_s =
      to_ms(config.duration - config.measure_from) / 1000.0;
  r.throughput_tps = static_cast<double>(r.committed_txs) / window_s;
  if (weighted_count > 0) {
    r.mean_latency_ms = weighted_sum / static_cast<double>(weighted_count);
  }
  if (all_latencies.count() > 0) {
    r.p50_latency_ms = all_latencies.percentile(0.5);
    r.p99_latency_ms = all_latencies.percentile(0.99);
  }
  return r;
}

workload::OpenLoopOptions make_open_loop_options(const RunConfig& config) {
  const RunConfig::Workload& w = config.workload;
  workload::OpenLoopOptions o;
  o.arrival_rate = w.arrival_rate;
  o.burst_every_ms = w.burst_every_ms;
  o.burst_len_ms = w.burst_len_ms;
  o.burst_mult = w.burst_mult;
  o.accounts = w.accounts;
  o.zipf_s = w.zipf_s;
  o.fee_model = w.fee_model;
  o.base_fee = w.base_fee;
  o.base_value = w.base_value;
  o.value_sigma = w.value_sigma;
  o.max_retries = w.max_retries;
  o.retry_backoff = w.retry_backoff;
  o.start_at = config.client_start;
  o.measure_from = config.measure_from;
  o.measure_to = config.duration;
  return o;
}

attacks::SandwichOptions make_sandwich_options(const RunConfig& config) {
  attacks::SandwichOptions o;
  o.value_threshold = config.workload.victim_value_threshold;
  return o;
}

/// Aggregates open-loop pool measurements (latency, goodput, offered load,
/// backpressure) in place of the closed-loop collect_client_stats.
template <class Cluster>
RunResult collect_open_loop_stats(Cluster& cluster, const RunConfig& config) {
  RunResult r;
  Samples all_latencies;
  std::uint64_t offered = 0;
  for (const auto& pool : cluster.open_pools()) {
    const workload::OpenLoopStats& s = pool->stats();
    r.committed_txs += s.committed_in_window;
    offered += s.offered;
    r.rejected_submits += s.rejected_events;
    r.terminal_rejects += s.terminal_rejects;
    r.resubmissions += s.resubmissions;
    for (double v : pool->latency_ms().values()) all_latencies.add(v);
  }
  const double window_s =
      to_ms(config.duration - config.measure_from) / 1000.0;
  const double offered_s =
      to_ms(config.duration - config.client_start) / 1000.0;
  r.throughput_tps = static_cast<double>(r.committed_txs) / window_s;
  r.goodput_tps = r.throughput_tps;
  r.offered_txs = offered;
  r.offered_tps = static_cast<double>(offered) / offered_s;
  if (all_latencies.count() > 0) {
    r.mean_latency_ms = all_latencies.mean();
    r.p50_latency_ms = all_latencies.percentile(0.5);
    r.p99_latency_ms = all_latencies.percentile(0.99);
  }
  return r;
}

void fold_economics(const workload::EconomicsReport& rep, RunResult* r) {
  r->victims_targeted = rep.victims_targeted;
  r->frontrun_successes = rep.frontrun_successes;
  r->sandwich_completes = rep.sandwich_completes;
  r->attacks_committed = rep.attack_committed;
  r->extracted_value = rep.extracted_value;
  r->adversary_profit = rep.adversary_profit;
  r->victim_slippage = rep.victim_slippage;
}

RunResult run_lyra(const RunConfig& config) {
  LyraClusterOptions opts;
  opts.config.n = config.n;
  opts.config.f = config.f();
  opts.config.delta = ms(160);  // 1.2x the longest one-way leg
  opts.config.lambda = config.lambda;
  opts.config.batch_size = config.batch_size;
  opts.config.batch_timeout = config.batch_timeout;
  opts.config.heartbeat_period = config.heartbeat;
  opts.config.obfuscate = config.obfuscate;
  opts.config.max_outstanding_proposals = config.max_outstanding;
  opts.config.memoize_verification = config.memoize_verify;
  // Flat host memory by default; serving reveal catch-up needs the bytes,
  // and so does the economics evaluation of an open-loop ledger.
  opts.config.retain_payloads =
      config.wants_state_sync() || config.workload.open_loop;
  if (config.workload.open_loop) {
    opts.config.mempool_capacity = config.workload.mempool_capacity;
  }
  const bool sharded_clients =
      config.client_shard > 0 && !config.workload.open_loop;
  ShardPlan plan;
  if (sharded_clients) {
    plan = make_shard_plan(config.n, config.client_shard,
                           config.byzantine_silent, config.client_nodes);
    opts.topology = std::move(plan.topology);
  } else {
    opts.topology = benchmark_topology(config.n);
  }
  opts.seed = config.seed;
  opts.threads = config.threads;
  opts.durable_storage = !config.crash_restarts.empty();
  opts.state_sync = config.wants_state_sync();
  opts.statesync_config.delta_transfer = config.delta_sync;
  const std::size_t sandwichers =
      config.workload.open_loop ? config.workload.sandwich_attackers : 0;
  if (config.byzantine_silent > 0 || config.replay_attackers > 0 ||
      sandwichers > 0) {
    const std::size_t silent = config.byzantine_silent;
    const std::size_t replayers = config.replay_attackers;
    const std::size_t n = config.n;
    const attacks::SandwichOptions sw = make_sandwich_options(config);
    opts.node_factory = [silent, replayers, sandwichers, n, sw](
                            sim::Simulation* sim, net::Network* net,
                            NodeId id, const core::Config& cfg,
                            const crypto::KeyRegistry* reg)
        -> std::unique_ptr<core::LyraNode> {
      if (id < silent) {
        return std::make_unique<attacks::SilentLyraNode>(sim, net, id, cfg,
                                                         reg);
      }
      if (id < silent + replayers) {
        return std::make_unique<attacks::ReplayInitLyraNode>(sim, net, id,
                                                             cfg, reg);
      }
      if (id >= n - sandwichers) {
        return std::make_unique<attacks::SandwichLyraNode>(sim, net, id,
                                                           cfg, reg, sw);
      }
      return std::make_unique<core::LyraNode>(sim, net, id, cfg, reg);
    };
  }

  LyraCluster cluster(std::move(opts));
  cluster.network().set_bandwidth(config.bandwidth_bytes_per_sec);
  const workload::OpenLoopOptions open_opts = make_open_loop_options(config);
  if (sharded_clients) {
    for (std::vector<NodeId>& shard : plan.shards) {
      cluster.add_client_pool(std::move(shard), config.clients_per_node,
                              config.client_start, config.measure_from,
                              config.duration);
    }
  } else {
    for (NodeId i = 0; i < config.n; ++i) {
      if (i < config.byzantine_silent) continue;  // no clients on dead nodes
      if (config.workload.open_loop) {
        cluster.add_open_loop_pool(i, open_opts, config.seed);
      } else {
        if (config.client_nodes > 0 && i >= config.client_nodes) continue;
        cluster.add_client_pool(i, config.clients_per_node,
                                config.client_start, config.measure_from,
                                config.duration);
      }
    }
  }
  for (const RunConfig::CrashRestart& cr : config.crash_restarts) {
    cluster.schedule_crash_restart(cr.node, cr.crash_at, cr.restart_at);
    const NodeId id = cr.node;
    if (cr.wipe_disk_at > 0) {
      cluster.simulation().schedule_at(
          cr.wipe_disk_at, [&cluster, id] { cluster.wipe_disk(id); });
    }
    if (cr.corrupt_wal) {
      const TimeNs at = cr.crash_at + (cr.restart_at - cr.crash_at) / 2;
      cluster.simulation().schedule_at(
          at, [&cluster, id] { cluster.corrupt_wal(id); });
    }
  }
  cluster.start();
  const auto host_start = std::chrono::steady_clock::now();
  const std::uint64_t executed = cluster.run_for(config.duration);
  const std::chrono::duration<double> host_elapsed =
      std::chrono::steady_clock::now() - host_start;

  RunResult r = config.workload.open_loop
                    ? collect_open_loop_stats(cluster, config)
                    : collect_client_stats(cluster, config);
  r.events_executed = executed;
  r.host_seconds = host_elapsed.count();
  r.sim_seconds = to_ms(config.duration) / 1000.0;
  r.exec_stats = cluster.simulation().executor_stats();
  r.prefix_consistent = cluster.ledgers_prefix_consistent();
  r.late_accepts = cluster.total_late_accepts();
  if (config.workload.open_loop) {
    for (NodeId i = 0; i < config.n; ++i) {
      if (!cluster.node_alive(i)) continue;
      if (const workload::Mempool* mp = cluster.node(i).mempool()) {
        r.mempool_rejects += mp->stats().rejected_full;
        r.mempool_evictions += mp->stats().evicted;
      }
    }
    // Ledger order is identical on every correct node (prefix consistency
    // below checks that); evaluate economics on the first non-silent one.
    workload::EconomicsParams ep;
    ep.slippage_bps = config.workload.slippage_bps;
    const NodeId correct = static_cast<NodeId>(config.byzantine_silent);
    fold_economics(
        attacks::evaluate_lyra_economics(cluster.node(correct), ep), &r);
  }
  r.restarts = cluster.restarts();
  r.messages_dropped = cluster.network().messages_dropped();
  for (NodeId i = 0; i < config.n; ++i) {
    const NodeRecoveryInfo& info = cluster.recovery_info(i);
    if (!info.happened) continue;
    r.recovered_wal_records += info.stats.replayed_records;
    if (info.stats.snapshot_loaded) ++r.recovered_snapshots;
    r.recovery_cpu_ms += to_ms(info.recovery_cpu);
    if (info.stats.torn_tail_bytes > 0) ++r.torn_tail_repairs;
    if (info.outcome == RestartOutcome::kStateSync) ++r.full_state_syncs;
    if (info.outcome == RestartOutcome::kDeltaSync) ++r.delta_state_syncs;
    if (!info.error.empty()) ++r.refused_restarts;
  }
  const statesync::StateSyncStats sync = cluster.statesync_totals();
  r.sync_chunks_fetched = sync.chunks_fetched;
  r.sync_chunks_local = sync.chunks_local;
  r.sync_chunks_rejected = sync.chunks_rejected;
  r.sync_bytes_transferred = sync.bytes_transferred;
  r.sync_bytes_local = sync.bytes_local;
  r.sync_serves_shed = sync.serves_shed;
  r.sync_entries_installed = sync.entries_installed;
  r.catchup_reveals = sync.catchup_reveals;
  for (NodeId i = 0; i < config.n; ++i) {
    if (!cluster.node_alive(i)) continue;
    for (const core::CommittedBatch& cb : cluster.node(i).ledger()) {
      if (cb.revealed_at == 0) ++r.unrevealed_batches;
    }
  }

  Samples rounds;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  for (NodeId i = static_cast<NodeId>(config.byzantine_silent);
       i < config.n; ++i) {
    if (!cluster.node_alive(i)) continue;  // crashed, never restarted
    const auto& stats = cluster.node(i).stats();
    for (double v : stats.decide_rounds.values()) rounds.add(v);
    ok += stats.validations_ok;
    rejected += stats.validations_rejected;
    r.verify_cache_hits += stats.verify_cache_hits;
    r.verify_cache_misses += stats.verify_cache_misses;
    if (const auto* rep = dynamic_cast<const attacks::ReplayInitLyraNode*>(
            &cluster.node(i))) {
      r.replays_sent += rep->replays_sent();
    }
  }
  r.mean_decide_rounds = rounds.mean();
  r.max_decide_rounds = rounds.count() ? rounds.max() : 0.0;
  if (ok + rejected > 0) {
    r.validation_accept_rate =
        static_cast<double>(ok) / static_cast<double>(ok + rejected);
  }
  return r;
}

RunResult run_pompe(const RunConfig& config) {
  PompeClusterOptions opts;
  opts.config.n = config.n;
  opts.config.f = config.f();
  opts.config.delta = ms(160);
  opts.config.batch_size = config.batch_size;
  opts.config.batch_timeout = config.batch_timeout;
  opts.config.initial_leader = 0;  // Oregon
  opts.config.memoize_verification = config.memoize_verify;
  if (config.workload.open_loop) {
    opts.config.mempool_capacity = config.workload.mempool_capacity;
  }
  const bool sharded_clients =
      config.client_shard > 0 && !config.workload.open_loop;
  ShardPlan plan;
  if (sharded_clients) {
    plan = make_shard_plan(config.n, config.client_shard, /*skip_below=*/0,
                           config.client_nodes);
    opts.topology = std::move(plan.topology);
  } else {
    opts.topology = benchmark_topology(config.n);
  }
  opts.seed = config.seed;
  opts.threads = config.threads;
  const std::size_t sandwichers =
      config.workload.open_loop ? config.workload.sandwich_attackers : 0;
  if (sandwichers > 0) {
    const std::size_t n = config.n;
    const attacks::SandwichOptions sw = make_sandwich_options(config);
    opts.node_factory = [sandwichers, n, sw](
                            sim::Simulation* sim, net::Network* net,
                            NodeId id, const pompe::PompeConfig& cfg,
                            const crypto::KeyRegistry* reg)
        -> std::unique_ptr<pompe::PompeNode> {
      if (id >= n - sandwichers) {
        return std::make_unique<attacks::SandwichPompeNode>(sim, net, id,
                                                            cfg, reg, sw);
      }
      return std::make_unique<pompe::PompeNode>(sim, net, id, cfg, reg);
    };
  }

  PompeCluster cluster(std::move(opts));
  cluster.network().set_bandwidth(config.bandwidth_bytes_per_sec);
  const workload::OpenLoopOptions open_opts = make_open_loop_options(config);
  if (sharded_clients) {
    for (std::vector<NodeId>& shard : plan.shards) {
      cluster.add_client_pool(std::move(shard), config.clients_per_node,
                              config.client_start, config.measure_from,
                              config.duration);
    }
  } else {
    for (NodeId i = 0; i < config.n; ++i) {
      if (config.workload.open_loop) {
        cluster.add_open_loop_pool(i, open_opts, config.seed);
      } else {
        if (config.client_nodes > 0 && i >= config.client_nodes) continue;
        cluster.add_client_pool(i, config.clients_per_node,
                                config.client_start, config.measure_from,
                                config.duration);
      }
    }
  }
  cluster.start();
  const auto host_start = std::chrono::steady_clock::now();
  const std::uint64_t executed = cluster.run_for(config.duration);
  const std::chrono::duration<double> host_elapsed =
      std::chrono::steady_clock::now() - host_start;

  RunResult r = config.workload.open_loop
                    ? collect_open_loop_stats(cluster, config)
                    : collect_client_stats(cluster, config);
  r.events_executed = executed;
  r.host_seconds = host_elapsed.count();
  r.sim_seconds = to_ms(config.duration) / 1000.0;
  r.exec_stats = cluster.simulation().executor_stats();
  r.prefix_consistent = cluster.ledgers_prefix_consistent();
  for (NodeId i = 0; i < config.n; ++i) {
    r.proof_verifications += cluster.node(i).stats().proof_verifications;
    r.verify_cache_hits += cluster.node(i).stats().verify_cache_hits;
    r.verify_cache_misses += cluster.node(i).stats().verify_cache_misses;
  }
  if (config.workload.open_loop) {
    for (NodeId i = 0; i < config.n; ++i) {
      if (const workload::Mempool* mp = cluster.node(i).mempool()) {
        r.mempool_rejects += mp->stats().rejected_full;
        r.mempool_evictions += mp->stats().evicted;
      }
    }
    workload::EconomicsParams ep;
    ep.slippage_bps = config.workload.slippage_bps;
    fold_economics(attacks::evaluate_pompe_economics(cluster.node(0), ep),
                   &r);
  }
  return r;
}

}  // namespace

RunResult run_experiment(const RunConfig& config) {
  return config.protocol == RunConfig::Protocol::kLyra ? run_lyra(config)
                                                       : run_pompe(config);
}

double pompe_capacity_estimate(std::size_t n, std::size_t batch_size,
                               double bandwidth_bytes_per_sec) {
  // Leader egress: each committed batch is re-broadcast inside a block to
  // n-1 replicas, costing ~ (32 B/tx * batch + proof) bytes each.
  const double batch_bytes =
      static_cast<double>(batch_size) * 32.0 + 2.0 * n / 3.0 * 72.0 + 64.0;
  const double egress_limit =
      bandwidth_bytes_per_sec / (batch_bytes * static_cast<double>(n - 1)) *
      static_cast<double>(batch_size);
  // Pipeline bound: ~8 blocks/s (one per quorum RTT) of ~16 batches.
  const double pipeline_limit = 8.0 * 16.0 * static_cast<double>(batch_size);
  return std::min(egress_limit, pipeline_limit);
}

const char* protocol_name(RunConfig::Protocol p) {
  return p == RunConfig::Protocol::kLyra ? "lyra" : "pompe";
}

}  // namespace lyra::harness
