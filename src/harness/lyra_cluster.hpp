#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/client_pool.hpp"
#include "crypto/keys.hpp"
#include "lyra/lyra_node.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "storage/disk.hpp"
#include "storage/journal.hpp"
#include "storage/recovery.hpp"
#include "workload/open_loop.hpp"

namespace lyra::harness {

/// Factory for one consensus node — override to drop Byzantine variants
/// into chosen slots.
using NodeFactory = std::function<std::unique_ptr<core::LyraNode>(
    sim::Simulation*, net::Network*, NodeId, const core::Config&,
    const crypto::KeyRegistry*)>;

struct LyraClusterOptions {
  core::Config config;
  net::Topology topology;  // >= config.n placements; extras host clients
  std::uint64_t seed = 1;
  NodeFactory node_factory;  // default: correct LyraNode

  /// Give every consensus node an in-memory disk with a WAL+snapshot
  /// journal. Required for crash_node()/restart_node(); off by default so
  /// benches keep the volatile fast path.
  bool durable_storage = false;
  storage::DurableJournal::Options journal;

  /// Give every consensus node a StateSyncManager (src/statesync): nodes
  /// serve peer sync requests, a restarted node catches up on reveal holes,
  /// and a node whose disk is unrecoverable rejoins via full state
  /// transfer instead of staying down. Requires durable_storage.
  bool state_sync = false;
  statesync::StateSyncConfig statesync_config;

  /// Total execution threads for the simulation (1 = serial). N > 1 runs
  /// the deterministic parallel executor with N-1 workers; results are
  /// identical to the serial run for the same seed.
  unsigned threads = 1;
};

/// How a restart_node() call resolved.
enum class RestartOutcome {
  kNone,           ///< never restarted
  kLocalRecovery,  ///< disk state decoded; rejoined via the resync gate
  kStateSync,      ///< disk unusable; wiped and rebuilt via peer transfer
  /// WAL unusable but a snapshot decoded and delta transfer is on: kept
  /// the snapshot prefix and pulled only the missing suffix from peers.
  kDeltaSync,
  // Refusals (restart_node returned false; node stays down). Only
  // reachable with state_sync off — with it on these become kStateSync.
  kRefusedWalCorrupt,        ///< mid-log CRC failure
  kRefusedSnapshotsCorrupt,  ///< snapshots exist but none decodes
  kRefusedEmptyDisk,         ///< nothing on disk to restart from
};

const char* to_string(RestartOutcome outcome);

/// What a node's last restart cost: recovery stats from disk plus the
/// simulated CPU the node spent rebuilding its in-memory state.
struct NodeRecoveryInfo {
  bool happened = false;
  RestartOutcome outcome = RestartOutcome::kNone;
  std::string error;  ///< non-empty iff the restart was refused
  TimeNs restarted_at = 0;
  TimeNs recovery_cpu = 0;
  storage::RecoveryStats stats;
};

/// Assembles a full Lyra deployment on the simulator: key registry,
/// network, consensus nodes, and optional closed-loop client pools.
class LyraCluster {
 public:
  explicit LyraCluster(LyraClusterOptions options);

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return *network_; }
  const crypto::KeyRegistry& registry() const { return registry_; }
  core::LyraNode& node(NodeId id) { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }
  const core::Config& config() const { return options_.config; }

  /// Attaches a closed-loop client pool targeting `target`. The pool's
  /// process id is the next free id; its topology slot must exist.
  client::ClientPool& add_client_pool(NodeId target, std::uint32_t width,
                                      TimeNs start_at, TimeNs measure_from,
                                      TimeNs measure_to);

  /// Aggregated form: one pool process drives `width` logical clients at
  /// *each* of `targets` through shared timers — O(1) simulation objects
  /// per shard instead of per node, which is what makes n=300–1000
  /// sweeps affordable. Consumes a single topology slot (place shards so
  /// that slot shares a region with the targets to preserve latencies).
  client::ClientPool& add_client_pool(std::vector<NodeId> targets,
                                      std::uint32_t width, TimeNs start_at,
                                      TimeNs measure_from, TimeNs measure_to);

  /// Attaches an open-loop traffic source targeting `target`
  /// (docs/WORKLOAD.md). Arrival and field streams derive from `run_seed`
  /// and the pool's process id, so pool placement order does not matter.
  workload::OpenLoopClientPool& add_open_loop_pool(
      NodeId target, const workload::OpenLoopOptions& options,
      std::uint64_t run_seed);

  /// Registers an externally-constructed process (attacker, bespoke
  /// client) with the network.
  void adopt_process(std::unique_ptr<sim::Process> process);

  NodeId next_process_id() const { return next_id_; }

  /// Calls on_start on every process. Must run before the simulation.
  void start();

  /// Returns the number of events executed (perf-harness metric).
  std::uint64_t run_for(TimeNs duration) {
    return sim_.run_until(sim_.now() + duration);
  }

  // --- crash / restart (requires durable_storage) ---

  /// Tears the node down mid-run: detaches it from the network (in-flight
  /// and future messages to it drop) and destroys the process, which
  /// cancels its timers. The node's disk survives for restart_node().
  void crash_node(NodeId id);

  /// Rebuilds the node from its disk (snapshot + WAL suffix), re-attaches
  /// it, and starts it. The node re-probes distances and rejoins the
  /// Commit protocol from its recovered state. When the disk is
  /// unrecoverable (corrupt WAL, undecodable snapshots, or wiped) the
  /// node instead rejoins via peer state transfer if `state_sync` is on;
  /// otherwise the restart is refused: returns false, the node stays
  /// down, and recovery_info(id) carries the outcome and error.
  bool restart_node(NodeId id);

  /// Schedules a crash_node/restart_node pair at absolute simulation
  /// times. Call before or during the run; restart_at must be > crash_at.
  void schedule_crash_restart(NodeId id, TimeNs crash_at, TimeNs restart_at);

  // --- disk fault injection (node must be down) ---

  /// Total media loss: every file on the node's disk is deleted.
  void wipe_disk(NodeId id);

  /// Bit rot inside the first frame of every WAL segment. With two or
  /// more journaled records this is a mid-log CRC failure (recovery
  /// escalates); a single-record WAL degrades to a tolerated torn tail.
  void corrupt_wal(NodeId id);

  bool node_alive(NodeId id) const { return nodes_.at(id) != nullptr; }
  storage::MemDisk* disk(NodeId id) { return disks_.at(id).get(); }
  const NodeRecoveryInfo& recovery_info(NodeId id) const {
    return recovery_info_.at(id);
  }
  std::uint64_t restarts() const { return restarts_; }

  /// StateSyncStats summed over the live nodes (zeroes when state_sync is
  /// off). Per-node figures: node(id).statesync()->stats().
  statesync::StateSyncStats statesync_totals() const;

  // --- cross-node invariants (used by tests) ---

  /// SMR-Safety: every pair of ledgers must be prefix-related on
  /// (seq, cipher_id).
  bool ledgers_prefix_consistent() const;

  /// Shortest ledger across correct nodes.
  std::size_t min_ledger_length() const;
  std::size_t max_ledger_length() const;

  /// Sum of late_accepts across nodes (must be 0, Lemma 6 completeness).
  std::uint64_t total_late_accepts() const;

  const std::vector<std::unique_ptr<client::ClientPool>>& pools() const {
    return pools_;
  }
  const std::vector<std::unique_ptr<workload::OpenLoopClientPool>>&
  open_pools() const {
    return open_pools_;
  }

 private:
  std::unique_ptr<core::LyraNode> build_node(NodeId id);

  LyraClusterOptions options_;
  sim::Simulation sim_;
  crypto::KeyRegistry registry_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<core::LyraNode>> nodes_;
  std::vector<std::unique_ptr<client::ClientPool>> pools_;
  std::vector<std::unique_ptr<workload::OpenLoopClientPool>> open_pools_;
  std::vector<std::unique_ptr<sim::Process>> extra_processes_;
  // Per consensus node; disks outlive crashes, journals are rebuilt on
  // restart (a journal must never append to a torn pre-crash segment).
  std::vector<std::unique_ptr<storage::MemDisk>> disks_;
  std::vector<std::unique_ptr<storage::Journal>> journals_;
  std::vector<NodeRecoveryInfo> recovery_info_;
  std::uint64_t restarts_ = 0;
  NodeId next_id_;
  bool started_ = false;
};

}  // namespace lyra::harness
