#include "net/network.hpp"

#include "support/assert.hpp"

namespace lyra::net {

Network::Network(sim::Simulation* sim, std::unique_ptr<LatencyModel> latency,
                 std::size_t consensus_count)
    : sim_(sim),
      latency_(std::move(latency)),
      consensus_count_(consensus_count) {
  LYRA_ASSERT(sim_ != nullptr, "network needs a simulation");
  LYRA_ASSERT(latency_ != nullptr, "network needs a latency model");
}

void Network::attach(sim::Process* process) {
  LYRA_ASSERT(process != nullptr, "cannot attach a null process");
  const NodeId id = process->id();
  if (processes_.size() <= id) processes_.resize(id + 1, nullptr);
  LYRA_ASSERT(processes_[id] == nullptr, "duplicate process id");
  processes_[id] = process;
}

void Network::detach(NodeId id) {
  LYRA_ASSERT(id < processes_.size() && processes_[id] != nullptr,
              "detach of a process that was never attached");
  processes_[id] = nullptr;
}

TimeNs Network::nic_book(NodeId from, std::uint64_t bytes) {
  if (bandwidth_ <= 0.0) return 0;
  if (nic_floor_.size() <= from) nic_floor_.resize(from + 1, 0);
  const auto serialize = static_cast<TimeNs>(
      static_cast<double>(bytes) / bandwidth_ *
      static_cast<double>(kNsPerSec));
  const TimeNs depart = std::max(sim_->now(), nic_floor_[from]) + serialize;
  nic_floor_[from] = depart;
  return depart - sim_->now();
}

void Network::deliver_one(NodeId from, NodeId to, sim::PayloadPtr payload,
                          TimeNs egress_delay) {
  LYRA_ASSERT(to < processes_.size(), "send to unknown process");
  if (processes_[to] == nullptr) {
    // Destination is down (crashed slot): the connection attempt fails and
    // the message is lost, as with TCP to a dead host.
    ++messages_dropped_;
    return;
  }
  sim::Envelope env;
  env.from = from;
  env.to = to;
  env.sent_at = sim_->now();
  env.payload = std::move(payload);

  // Engine-internal stream: latency jitter and adversary draws must not
  // perturb the handler-visible rng(), and under parallel execution they
  // happen on the scheduler thread at commit time.
  TimeNs delay = latency_->sample(from, to, sim_->net_rng());
  if (adversary_ != nullptr) {
    delay = adversary_->delay(env, delay, sim_->net_rng());
  }
  LYRA_ASSERT(delay >= 0, "negative message delay");
  delay += egress_delay;

  // FIFO channel: a message never overtakes an earlier one on the same
  // directed pair.
  const std::uint64_t channel =
      (static_cast<std::uint64_t>(from) << 32) | to;
  TimeNs& floor = channel_floor_[channel];
  const TimeNs deliver_at = std::max(sim_->now() + delay, floor);
  floor = deliver_at;
  delay = deliver_at - sim_->now();

  ++messages_delivered_;
  sim_->schedule_delivery_in(delay, this, std::move(env));
}

void Network::send(NodeId from, NodeId to, sim::PayloadPtr payload) {
  const TimeNs egress = nic_book(from, payload->wire_size());
  deliver_one(from, to, std::move(payload), egress);
}

void Network::send_all(NodeId from, sim::PayloadPtr payload) {
  // One NIC booking for the whole fan-out: every copy departs when the
  // broadcast finishes serializing, as fair packet interleaving across
  // flows produces in practice.
  const TimeNs egress =
      nic_book(from, payload->wire_size() *
                         static_cast<std::uint64_t>(consensus_count_));
  for (NodeId to = 0; to < consensus_count_; ++to) {
    deliver_one(from, to, payload, egress);
  }
}

TimeNs Network::nic_backlog(NodeId from) const {
  if (from >= nic_floor_.size()) return 0;
  const TimeNs floor = nic_floor_[from];
  return floor > sim_->now() ? floor - sim_->now() : 0;
}

}  // namespace lyra::net
