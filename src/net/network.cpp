#include "net/network.hpp"

#include "support/assert.hpp"

namespace lyra::net {

namespace {
/// Separates the network's jitter-stream family from any other
/// derive_stream consumer of the same root seed.
constexpr std::uint64_t kJitterStreamSalt = 0x6e65746a69747472ULL;
}  // namespace

Network::Network(sim::Simulation* sim, std::unique_ptr<LatencyModel> latency,
                 std::size_t consensus_count)
    : sim_(sim),
      latency_(std::move(latency)),
      consensus_count_(consensus_count) {
  LYRA_ASSERT(sim_ != nullptr, "network needs a simulation");
  LYRA_ASSERT(latency_ != nullptr, "network needs a latency model");
  jitter_seed_ = derive_stream(sim_->seed(), kJitterStreamSalt, 0);
}

void Network::attach(sim::Process* process) {
  LYRA_ASSERT(process != nullptr, "cannot attach a null process");
  const NodeId id = process->id();
  if (processes_.size() <= id) processes_.resize(id + 1, nullptr);
  LYRA_ASSERT(processes_[id] == nullptr, "duplicate process id");
  processes_[id] = process;
}

void Network::detach(NodeId id) {
  LYRA_ASSERT(id < processes_.size() && processes_[id] != nullptr,
              "detach of a process that was never attached");
  processes_[id] = nullptr;
}

TimeNs Network::nic_book(NodeId from, std::uint64_t bytes) {
  if (bandwidth_ <= 0.0) return 0;
  if (nic_floor_.size() <= from) nic_floor_.resize(from + 1, 0);
  const auto serialize = static_cast<TimeNs>(
      static_cast<double>(bytes) / bandwidth_ *
      static_cast<double>(kNsPerSec));
  const TimeNs depart = std::max(sim_->now(), nic_floor_[from]) + serialize;
  nic_floor_[from] = depart;
  return depart - sim_->now();
}

void Network::deliver_one(NodeId from, NodeId to, sim::PayloadPtr payload,
                          TimeNs egress_delay) {
  LYRA_ASSERT(to < processes_.size(), "send to unknown process");
  if (processes_[to] == nullptr) {
    // Destination is down (crashed slot): the connection attempt fails and
    // the message is lost, as with TCP to a dead host.
    ++messages_dropped_;
    return;
  }
  sim::Envelope env;
  env.from = from;
  env.to = to;
  env.sent_at = sim_->now();
  env.payload = std::move(payload);

  // Sharded engine-internal stream: this message's latency and adversary
  // draws come from a throwaway Rng whose seed depends only on
  // (simulation seed, sender, sender's message ordinal). Besides keeping
  // jitter out of the handler-visible rng(), this makes each sender's
  // jitter sequence independent of every other sender's traffic — adding
  // or removing one flow does not reshuffle the rest of the run the way a
  // single shared stream would (docs/PERF.md §7).
  if (jitter_counter_.size() <= from) jitter_counter_.resize(from + 1, 0);
  Rng jitter(derive_stream(jitter_seed_, from, jitter_counter_[from]++));
  TimeNs delay = latency_->sample(from, to, jitter);
  if (adversary_ != nullptr) {
    delay = adversary_->delay(env, delay, jitter);
  }
  LYRA_ASSERT(delay >= 0, "negative message delay");
  delay += egress_delay;

  // FIFO channel: a message never overtakes an earlier one on the same
  // directed pair.
  const std::uint64_t channel =
      (static_cast<std::uint64_t>(from) << 32) | to;
  TimeNs& floor = channel_floor_[channel];
  const TimeNs deliver_at = std::max(sim_->now() + delay, floor);
  floor = deliver_at;
  delay = deliver_at - sim_->now();

  ++messages_delivered_;
  sim_->schedule_delivery_in(delay, this, std::move(env));
}

void Network::send(NodeId from, NodeId to, sim::PayloadPtr payload) {
  const TimeNs egress = nic_book(from, payload->wire_size());
  deliver_one(from, to, std::move(payload), egress);
}

void Network::send_all(NodeId from, sim::PayloadPtr payload) {
  // One NIC booking for the whole fan-out: every copy departs when the
  // broadcast finishes serializing, as fair packet interleaving across
  // flows produces in practice.
  const TimeNs egress =
      nic_book(from, payload->wire_size() *
                         static_cast<std::uint64_t>(consensus_count_));
  for (NodeId to = 0; to < consensus_count_; ++to) {
    deliver_one(from, to, payload, egress);
  }
}

TimeNs Network::nic_backlog(NodeId from) const {
  if (from >= nic_floor_.size()) return 0;
  const TimeNs floor = nic_floor_[from];
  return floor > sim_->now() ? floor - sim_->now() : 0;
}

}  // namespace lyra::net
