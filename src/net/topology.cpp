#include "net/topology.hpp"

#include "support/assert.hpp"

namespace lyra::net {

namespace {

/// Symmetric one-way mean latencies in milliseconds, indexed by Region.
/// Sources: public inter-region RTT tables (cloudping-style measurements),
/// halved. Tokyo<->Mumbai is set to its historically bad direct route.
constexpr double kOneWayMs[kRegionCount][kRegionCount] = {
    //              Oregon Ireland Sydney  Tokyo  Sing.  Mumbai
    /* Oregon    */ {0.25, 62.0, 70.0, 49.0, 82.0, 108.0},
    /* Ireland   */ {62.0, 0.25, 131.0, 106.0, 87.0, 61.0},
    /* Sydney    */ {70.0, 131.0, 0.25, 52.0, 46.0, 76.0},
    /* Tokyo     */ {49.0, 106.0, 52.0, 0.25, 34.0, 68.0},
    /* Singapore */ {82.0, 87.0, 46.0, 34.0, 0.25, 28.0},
    /* Mumbai    */ {108.0, 61.0, 76.0, 68.0, 28.0, 0.25},
};

}  // namespace

const char* region_name(Region r) {
  switch (r) {
    case Region::kOregon:
      return "oregon";
    case Region::kIreland:
      return "ireland";
    case Region::kSydney:
      return "sydney";
    case Region::kTokyo:
      return "tokyo";
    case Region::kSingapore:
      return "singapore";
    case Region::kMumbai:
      return "mumbai";
  }
  return "unknown";
}

TimeNs region_latency(Region a, Region b) {
  return ms(kOneWayMs[static_cast<std::size_t>(a)]
                     [static_cast<std::size_t>(b)]);
}

std::unique_ptr<MatrixLatency> Topology::make_latency_model() const {
  LYRA_ASSERT(!placement.empty(), "topology has no processes");
  std::vector<std::vector<TimeNs>> matrix(
      placement.size(), std::vector<TimeNs>(placement.size()));
  for (std::size_t i = 0; i < placement.size(); ++i) {
    for (std::size_t j = 0; j < placement.size(); ++j) {
      matrix[i][j] = region_latency(placement[i], placement[j]);
    }
  }
  return std::make_unique<MatrixLatency>(std::move(matrix), jitter_sigma);
}

Topology three_continents(std::size_t nodes,
                          const std::vector<Region>& extra) {
  static constexpr Region kSites[3] = {Region::kOregon, Region::kIreland,
                                       Region::kSydney};
  Topology t;
  t.placement.reserve(nodes + extra.size());
  for (std::size_t i = 0; i < nodes; ++i) {
    t.placement.push_back(kSites[i % 3]);
  }
  for (Region r : extra) t.placement.push_back(r);
  return t;
}

Topology triangle_violation(std::size_t nodes) {
  // Alice (Tokyo) and Mallory (Singapore) are appended after the consensus
  // nodes; one consensus node is forced to Mumbai so Carole exists.
  Topology t = three_continents(
      nodes, {Region::kTokyo, Region::kSingapore});
  LYRA_ASSERT(nodes >= 1, "need at least one consensus node");
  t.placement[nodes - 1] = Region::kMumbai;
  return t;
}

Topology single_region(std::size_t nodes, Region r) {
  Topology t;
  t.placement.assign(nodes, r);
  t.jitter_sigma = 0.02;
  return t;
}

}  // namespace lyra::net
