#include "net/latency_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace lyra::net {

namespace {
/// Mean-preserving log-normal multiplier.
TimeNs with_jitter(TimeNs base, double sigma, Rng& rng) {
  if (sigma <= 0.0) return base;
  const double factor =
      std::exp(sigma * rng.next_gaussian() - sigma * sigma / 2.0);
  return static_cast<TimeNs>(static_cast<double>(base) * factor);
}
}  // namespace

UniformLatency::UniformLatency(TimeNs base, double jitter_sigma,
                               TimeNs loopback)
    : base_(base), jitter_sigma_(jitter_sigma), loopback_(loopback) {}

TimeNs UniformLatency::sample(NodeId from, NodeId to, Rng& rng) const {
  if (from == to) return loopback_;
  return std::max<TimeNs>(loopback_, with_jitter(base_, jitter_sigma_, rng));
}

TimeNs UniformLatency::base(NodeId from, NodeId to) const {
  return from == to ? loopback_ : base_;
}

MatrixLatency::MatrixLatency(std::vector<std::vector<TimeNs>> base_matrix,
                             double jitter_sigma, TimeNs loopback)
    : base_(std::move(base_matrix)),
      jitter_sigma_(jitter_sigma),
      loopback_(loopback) {
  LYRA_ASSERT(!base_.empty(), "latency matrix must not be empty");
  for (const auto& row : base_) {
    LYRA_ASSERT(row.size() == base_.size(), "latency matrix must be square");
  }
}

TimeNs MatrixLatency::sample(NodeId from, NodeId to, Rng& rng) const {
  if (from == to) return loopback_;
  LYRA_ASSERT(from < base_.size() && to < base_.size(),
              "node id outside latency matrix");
  return std::max<TimeNs>(loopback_,
                          with_jitter(base_[from][to], jitter_sigma_, rng));
}

TimeNs MatrixLatency::base(NodeId from, NodeId to) const {
  if (from == to) return loopback_;
  LYRA_ASSERT(from < base_.size() && to < base_.size(),
              "node id outside latency matrix");
  return base_[from][to];
}

TimeNs MatrixLatency::max_base() const {
  TimeNs max = 0;
  for (const auto& row : base_) {
    for (TimeNs v : row) max = std::max(max, v);
  }
  return max;
}

}  // namespace lyra::net
