#pragma once

#include "sim/message.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace lyra::net {

/// Message-delay adversary of the partial-synchrony model (§II-A): before
/// GST it may add arbitrary (finite) delays; after GST every message between
/// correct processes is delivered within Delta. Channels stay reliable —
/// the adversary can delay, never drop or tamper.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Returns the (possibly inflated) delay for a message. `base_delay` is
  /// the honest network sample. Implementations must return at least
  /// `base_delay`: the adversary only adds delay, never accelerates — a
  /// contract the parallel executor's lookahead window also relies on
  /// (delays below the latency model's floor would break determinism).
  virtual TimeNs delay(const sim::Envelope& env, TimeNs base_delay,
                       Rng& rng) = 0;
};

/// Adds random delays up to `max_extra` to every message sent before GST.
class PreGstDelayAdversary final : public Adversary {
 public:
  PreGstDelayAdversary(TimeNs gst, TimeNs max_extra)
      : gst_(gst), max_extra_(max_extra) {}

  TimeNs delay(const sim::Envelope& env, TimeNs base_delay,
               Rng& rng) override;

  TimeNs gst() const { return gst_; }

 private:
  TimeNs gst_;
  TimeNs max_extra_;
};

/// Targets one victim: delays every message from/to it before GST (models
/// an adversary isolating a correct process during asynchrony).
class TargetedDelayAdversary final : public Adversary {
 public:
  TargetedDelayAdversary(TimeNs gst, TimeNs extra, NodeId victim)
      : gst_(gst), extra_(extra), victim_(victim) {}

  TimeNs delay(const sim::Envelope& env, TimeNs base_delay,
               Rng& rng) override;

 private:
  TimeNs gst_;
  TimeNs extra_;
  NodeId victim_;
};

}  // namespace lyra::net
