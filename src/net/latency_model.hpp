#pragma once

#include <memory>
#include <vector>

#include "support/random.hpp"
#include "support/types.hpp"

namespace lyra::net {

/// Samples the one-way delay of a message. Implementations must be
/// deterministic given the Rng stream.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  virtual TimeNs sample(NodeId from, NodeId to, Rng& rng) const = 0;

  /// Mean one-way delay (no jitter), used by protocols to pick Delta.
  virtual TimeNs base(NodeId from, NodeId to) const = 0;

  /// Largest base one-way delay across all pairs: a safe Delta estimate.
  virtual TimeNs max_base() const = 0;
};

/// Constant base delay for every distinct pair plus log-normal jitter.
/// Self-messages (from == to) use a small loopback delay.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(TimeNs base, double jitter_sigma = 0.0,
                 TimeNs loopback = 50 * kNsPerUs);

  TimeNs sample(NodeId from, NodeId to, Rng& rng) const override;
  TimeNs base(NodeId from, NodeId to) const override;
  TimeNs max_base() const override { return base_; }

 private:
  TimeNs base_;
  double jitter_sigma_;
  TimeNs loopback_;
};

/// Full per-pair base-latency matrix plus log-normal jitter, the model used
/// for WAN topologies. Jitter multiplies the base delay by
/// exp(sigma * N(0,1) - sigma^2/2), preserving the mean.
class MatrixLatency final : public LatencyModel {
 public:
  MatrixLatency(std::vector<std::vector<TimeNs>> base_matrix,
                double jitter_sigma = 0.05,
                TimeNs loopback = 50 * kNsPerUs);

  TimeNs sample(NodeId from, NodeId to, Rng& rng) const override;
  TimeNs base(NodeId from, NodeId to) const override;
  TimeNs max_base() const override;

  std::size_t size() const { return base_.size(); }

 private:
  std::vector<std::vector<TimeNs>> base_;
  double jitter_sigma_;
  TimeNs loopback_;
};

}  // namespace lyra::net
