#pragma once

#include <memory>
#include <vector>

#include "support/random.hpp"
#include "support/types.hpp"

namespace lyra::net {

/// Samples the one-way delay of a message. Implementations must be
/// deterministic given the Rng stream.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Must never return less than min_delay_bound(), for any pair and any
  /// jitter draw — the parallel executor's lookahead window relies on it.
  virtual TimeNs sample(NodeId from, NodeId to, Rng& rng) const = 0;

  /// Mean one-way delay (no jitter), used by protocols to pick Delta.
  virtual TimeNs base(NodeId from, NodeId to) const = 0;

  /// Largest base one-way delay across all pairs: a safe Delta estimate.
  virtual TimeNs max_base() const = 0;

  /// Hard lower bound on every sampled delay (loopback included): the
  /// conservative lookahead the parallel executor may advance by.
  virtual TimeNs min_delay_bound() const = 0;
};

/// Constant base delay for every distinct pair plus log-normal jitter.
/// Self-messages (from == to) use a small loopback delay.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(TimeNs base, double jitter_sigma = 0.0,
                 TimeNs loopback = 50 * kNsPerUs);

  TimeNs sample(NodeId from, NodeId to, Rng& rng) const override;
  TimeNs base(NodeId from, NodeId to) const override;
  TimeNs max_base() const override { return base_; }
  // sample() clamps cross-pair delays to >= loopback and self-delivery is
  // exactly loopback, so loopback bounds every delay from below.
  TimeNs min_delay_bound() const override { return loopback_; }

 private:
  TimeNs base_;
  double jitter_sigma_;
  TimeNs loopback_;
};

/// Full per-pair base-latency matrix plus log-normal jitter, the model used
/// for WAN topologies. Jitter multiplies the base delay by
/// exp(sigma * N(0,1) - sigma^2/2), preserving the mean.
class MatrixLatency final : public LatencyModel {
 public:
  MatrixLatency(std::vector<std::vector<TimeNs>> base_matrix,
                double jitter_sigma = 0.05,
                TimeNs loopback = 50 * kNsPerUs);

  TimeNs sample(NodeId from, NodeId to, Rng& rng) const override;
  TimeNs base(NodeId from, NodeId to) const override;
  TimeNs max_base() const override;
  TimeNs min_delay_bound() const override { return loopback_; }

  std::size_t size() const { return base_.size(); }

 private:
  std::vector<std::vector<TimeNs>> base_;
  double jitter_sigma_;
  TimeNs loopback_;
};

}  // namespace lyra::net
