#include "net/adversary.hpp"

namespace lyra::net {

TimeNs PreGstDelayAdversary::delay(const sim::Envelope& env,
                                   TimeNs base_delay, Rng& rng) {
  if (env.sent_at >= gst_) return base_delay;
  const TimeNs extra =
      max_extra_ > 0
          ? static_cast<TimeNs>(rng.next_below(
                static_cast<std::uint64_t>(max_extra_)))
          : 0;
  // After GST the network is synchronous, so even a pre-GST message is
  // delivered by GST + (its synchronous delay) at the latest: cap the total
  // delay so delivery never exceeds gst_ + base_delay.
  const TimeNs capped =
      std::min(base_delay + extra, gst_ + base_delay - env.sent_at);
  return std::max(base_delay, capped);
}

TimeNs TargetedDelayAdversary::delay(const sim::Envelope& env,
                                     TimeNs base_delay, Rng& /*rng*/) {
  if (env.sent_at >= gst_) return base_delay;
  if (env.from != victim_ && env.to != victim_) return base_delay;
  const TimeNs capped =
      std::min(base_delay + extra_, gst_ + base_delay - env.sent_at);
  return std::max(base_delay, capped);
}

}  // namespace lyra::net
