#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/adversary.hpp"
#include "net/latency_model.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace lyra::net {

/// Reliable authenticated point-to-point network (§II-A) over the
/// discrete-event simulator. Messages are delivered exactly once, untampered
/// (payloads are immutable shared objects), after a delay sampled from the
/// latency model and optionally inflated by the adversary. Each ordered
/// pair of processes forms a FIFO channel (as TCP provides to the paper's
/// prototype): jitter never reorders two messages on the same channel,
/// though it freely reorders across channels.
///
/// Bandwidth is not a modeled bottleneck (the paper's 32-byte transactions
/// batched at 800 stay well under WAN link capacity); CPU is, via the
/// Process cost model.
class Network final : public sim::Transport, public sim::ProcessDirectory {
 public:
  /// `consensus_count` processes participate in broadcast (ids 0..n-1);
  /// clients and attackers attach with higher ids.
  Network(sim::Simulation* sim, std::unique_ptr<LatencyModel> latency,
          std::size_t consensus_count);

  /// Registers a process under its id. Ids must be dense before run start.
  /// Re-attaching into a slot vacated by detach() models a node restart.
  void attach(sim::Process* process);

  /// Vacates a process slot (simulated crash). Messages already in flight
  /// to the node, and any sent while the slot stays vacant, are dropped.
  /// The FIFO channel floors survive, so a restarted node's channels keep
  /// their ordering guarantees.
  void detach(NodeId id);

  /// sim::ProcessDirectory: deliveries resolve their destination here at
  /// delivery time, so a detached node's in-flight messages fall away.
  sim::Process* process_at(NodeId id) const override {
    return id < processes_.size() ? processes_[id] : nullptr;
  }

  void send(NodeId from, NodeId to, sim::PayloadPtr payload) override;
  void send_all(NodeId from, sim::PayloadPtr payload) override;
  std::size_t node_count() const override { return consensus_count_; }

  const LatencyModel& latency() const { return *latency_; }

  /// Lower bound on every message delivery delay (the latency model's
  /// floor; FIFO channel floors, NIC egress booking, and the adversaries
  /// only ever add delay). This is the lookahead window handed to
  /// Simulation::set_parallelism.
  TimeNs delivery_floor() const { return latency_->min_delay_bound(); }

  /// Installs a message-delay adversary (nullptr to remove).
  void set_adversary(Adversary* adversary) { adversary_ = adversary; }

  /// Models each process's NIC egress capacity: a message occupies the
  /// sender's link for wire_size / bandwidth before it departs, so a
  /// broadcast of n copies pays n serializations. This is what saturates a
  /// HotStuff leader fanning out large blocks to every replica (Fig. 3's
  /// Pompē decline). 0 (the default) disables the model.
  void set_bandwidth(double bytes_per_sec) { bandwidth_ = bytes_per_sec; }
  double bandwidth() const { return bandwidth_; }

  /// Egress backlog of one sender (diagnostics): how far its NIC is booked
  /// into the future.
  TimeNs nic_backlog(NodeId from) const;

  std::uint64_t messages_delivered() const { return messages_delivered_; }

  /// Messages addressed to a vacant (crashed) slot at send time.
  std::uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  /// Books `bytes` on the sender's NIC; returns the egress delay.
  TimeNs nic_book(NodeId from, std::uint64_t bytes);
  void deliver_one(NodeId from, NodeId to, sim::PayloadPtr payload,
                   TimeNs egress_delay);

  sim::Simulation* sim_;
  std::unique_ptr<LatencyModel> latency_;
  std::size_t consensus_count_;
  std::vector<sim::Process*> processes_;
  Adversary* adversary_ = nullptr;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  /// Root of the per-sender jitter stream family (derived from the
  /// simulation seed). Each message's latency and adversary draws come
  /// from a throwaway Rng seeded by derive_stream(jitter_seed_, sender,
  /// ordinal), where `ordinal` is that sender's message count — so one
  /// sender's jitter sequence never depends on other senders' traffic.
  std::uint64_t jitter_seed_;
  std::vector<std::uint64_t> jitter_counter_;
  // FIFO floor per directed channel, keyed by (from << 32) | to.
  std::unordered_map<std::uint64_t, TimeNs> channel_floor_;
  double bandwidth_ = 0.0;  // bytes/sec; 0 = unlimited
  std::vector<TimeNs> nic_floor_;
};

}  // namespace lyra::net
