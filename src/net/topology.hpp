#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/latency_model.hpp"
#include "support/types.hpp"

namespace lyra::net {

/// AWS-style regions used by the paper's deployment and motivation figure.
enum class Region : std::uint8_t {
  kOregon,     // us-west-2
  kIreland,    // eu-west-1
  kSydney,     // ap-southeast-2
  kTokyo,      // ap-northeast-1 (Alice in Fig. 1)
  kSingapore,  // ap-southeast-1 (Mallory in Fig. 1)
  kMumbai,     // ap-south-1 (Carole in Fig. 1: triangle violation target)
};

constexpr std::size_t kRegionCount = 6;

const char* region_name(Region r);

/// Mean one-way latency between two regions, approximating public AWS
/// inter-region RTT measurements (one-way = RTT / 2). The Tokyo -> Mumbai
/// path is deliberately routed badly (as observed in practice for some
/// region pairs) so that
///   d(Tokyo, Singapore) + d(Singapore, Mumbai) < d(Tokyo, Mumbai),
/// the triangle-inequality violation that Fig. 1's front-running attack
/// exploits.
TimeNs region_latency(Region a, Region b);

/// Assignment of every simulated process to a region.
struct Topology {
  std::vector<Region> placement;  // placement[i] = region of process i
  /// Log-normal jitter of the one-way delay. Production WAN paths are
  /// stable (Mouchet et al. [26], cited in SVI-B): ~1% of the mean, i.e.
  /// +/-1.5 ms on the longest leg - comfortably inside the paper's
  /// lambda = 5 ms validation window.
  double jitter_sigma = 0.012;

  std::size_t size() const { return placement.size(); }

  /// Latency model induced by the placement.
  std::unique_ptr<MatrixLatency> make_latency_model() const;
};

/// The paper's deployment (§VI-A): processes split evenly across Oregon,
/// Ireland and Sydney, round-robin. `extra` processes (clients, attackers)
/// are appended with the given placements.
Topology three_continents(std::size_t nodes,
                          const std::vector<Region>& extra = {});

/// Fig. 1 scenario: consensus nodes across 3 continents plus Alice in
/// Tokyo, Mallory in Singapore, Carole (a consensus node) in Mumbai.
Topology triangle_violation(std::size_t nodes);

/// All processes in one datacenter (LAN), for protocol unit tests.
Topology single_region(std::size_t nodes, Region r = Region::kOregon);

}  // namespace lyra::net
