#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "crypto/cost_model.hpp"
#include "crypto/keys.hpp"
#include "hotstuff/block.hpp"
#include "hotstuff/messages.hpp"
#include "sim/message.hpp"

namespace lyra::hotstuff {

/// Event-driven chained HotStuff (Yin et al., PODC'19): the consensus
/// substrate under the Pompē baseline and the plain leader-based SMR used
/// by the censorship demo.
///
/// One block per quorum round-trip; a block commits when it heads a
/// three-chain of consecutive quorum certificates. The pacemaker rotates
/// the leader on timeout (NewView with the highest known QC). Votes are
/// threshold-signature shares; a QC is the combined signature.
///
/// The class is transport-agnostic: the owning sim::Process supplies hooks
/// for sending, timers, CPU accounting, command collection and commit
/// delivery, which keeps HotStuff reusable (PompeNode composes it).
class HotStuffCore {
 public:
  struct Hooks {
    std::function<void(sim::PayloadPtr)> broadcast;
    std::function<void(NodeId, sim::PayloadPtr)> send;
    std::function<void(TimeNs, std::function<void()>)> set_timer;
    std::function<void(TimeNs)> charge;
    /// Leader pulls proposable entries, up to `max_bytes` of payload.
    std::function<std::vector<BlockEntry>(std::uint64_t max_bytes)> collect;
    /// A block became committed (three-chain head). Called in height order.
    std::function<void(const Block&)> on_commit;
  };

  struct Options {
    std::size_t n = 4;
    std::size_t f = 1;
    NodeId self = 0;
    NodeId initial_leader = 0;
    std::uint64_t max_block_bytes = 512 * 1024;
    TimeNs view_timeout = 0;  // 0 = derived as 10 * delta by the caller
    crypto::CryptoCosts costs;
    double cpu_parallelism = 16.0;
  };

  HotStuffCore(Options options, const crypto::KeyRegistry* registry,
               Hooks hooks);

  void on_start();

  /// Routes HotStuff messages; returns false if the payload is not ours.
  bool handle(const sim::Envelope& env);

  /// New commands are available: the leader may propose.
  void kick();

  // --- introspection ---
  NodeId current_leader() const { return leader_of(view_); }
  std::uint64_t view() const { return view_; }
  std::uint64_t committed_height() const { return committed_height_; }
  std::uint64_t blocks_proposed() const { return blocks_proposed_; }
  std::uint64_t blocks_committed() const { return blocks_committed_; }
  const QuorumCert& high_qc() const { return high_qc_; }

  /// Overridden by a Byzantine-leader subclass to censor entries.
  std::function<void(std::vector<BlockEntry>&)> entry_filter;

 private:
  NodeId leader_of(std::uint64_t view) const {
    return static_cast<NodeId>((options_.initial_leader + view) %
                               options_.n);
  }
  bool is_leader() const { return current_leader() == options_.self; }

  void try_propose();
  void handle_proposal(const sim::Envelope& env, const ProposalMsg& m);
  void handle_vote(const sim::Envelope& env, const BlockVoteMsg& m);
  void handle_new_view(const sim::Envelope& env, const NewViewMsg& m);
  void update_high_qc(const QuorumCert& qc);
  void commit_chain(const Block& anchor);
  BlockPtr lookup(const crypto::Digest& d) const;
  Bytes vote_message(std::uint64_t height, const crypto::Digest& block) const;
  void arm_pacemaker();
  void on_pacemaker_timeout();
  TimeNs ccost(TimeNs base) const {
    return static_cast<TimeNs>(static_cast<double>(base) /
                               options_.cpu_parallelism);
  }

  Options options_;
  const crypto::KeyRegistry* registry_;
  crypto::Signer signer_;
  Hooks hooks_;

  std::unordered_map<crypto::Digest, BlockPtr, crypto::DigestHash> blocks_;
  crypto::Digest genesis_digest_{};
  QuorumCert high_qc_;
  QuorumCert locked_qc_;
  std::uint64_t voted_height_ = 0;
  std::uint64_t voted_view_ = 0;
  std::uint64_t view_ = 0;
  std::uint64_t committed_height_ = 0;
  std::uint64_t last_proposed_height_ = 0;
  std::uint64_t last_proposed_view_ = 0;
  std::uint64_t highest_nonempty_height_ = 0;

  // Leader vote aggregation per block digest.
  struct VotePool {
    std::uint64_t height = 0;
    std::vector<crypto::SigShare> shares;
    std::vector<bool> seen;
    bool formed = false;
  };
  std::unordered_map<crypto::Digest, VotePool, crypto::DigestHash> votes_;

  // NewView aggregation per view.
  std::map<std::uint64_t, std::vector<bool>> new_view_from_;
  std::map<std::uint64_t, std::size_t> new_view_count_;

  std::uint64_t pacemaker_generation_ = 0;
  TimeNs current_timeout_ = 0;

  std::uint64_t blocks_proposed_ = 0;
  std::uint64_t blocks_committed_ = 0;
};

}  // namespace lyra::hotstuff
