#include "hotstuff/hotstuff_core.hpp"

#include <algorithm>

#include "sim/payload_pool.hpp"
#include "support/pool.hpp"

#include "support/assert.hpp"

namespace lyra::hotstuff {

HotStuffCore::HotStuffCore(Options options,
                           const crypto::KeyRegistry* registry, Hooks hooks)
    : options_(options),
      registry_(registry),
      signer_(registry->signer_for(options.self)),
      hooks_(std::move(hooks)) {
  LYRA_ASSERT(options_.n > 3 * options_.f, "need n > 3f");
  LYRA_ASSERT(options_.view_timeout > 0, "view_timeout must be set");

  auto genesis = support::make_pooled<Block>();
  genesis->height = 0;
  genesis_digest_ = genesis->digest();
  blocks_.emplace(genesis_digest_, std::move(genesis));

  high_qc_.genesis = true;
  high_qc_.block = genesis_digest_;
  locked_qc_ = high_qc_;
  current_timeout_ = options_.view_timeout;
}

void HotStuffCore::on_start() {
  arm_pacemaker();
  if (is_leader()) try_propose();
}

bool HotStuffCore::handle(const sim::Envelope& env) {
  const sim::Payload& p = *env.payload;
  switch (p.kind()) {
    case sim::MsgKind::kHsProposal:
      handle_proposal(env, static_cast<const ProposalMsg&>(p));
      return true;
    case sim::MsgKind::kHsVote:
      handle_vote(env, static_cast<const BlockVoteMsg&>(p));
      return true;
    case sim::MsgKind::kHsNewView:
      handle_new_view(env, static_cast<const NewViewMsg&>(p));
      return true;
    default:
      return false;
  }
}

void HotStuffCore::kick() {
  if (is_leader()) try_propose();
}

void HotStuffCore::try_propose() {
  if (!is_leader()) return;
  const std::uint64_t next_height = high_qc_.height + 1;
  // One proposal per height per view: wait for the QC, unless a view
  // change made us leader again at the same height.
  if (next_height <= last_proposed_height_ && view_ <= last_proposed_view_) {
    return;
  }

  std::vector<BlockEntry> entries = hooks_.collect(options_.max_block_bytes);
  if (entry_filter) entry_filter(entries);
  if (entries.empty()) {
    // Propose an empty block only to flush the three-chain pipeline: block
    // h commits when replicas receive the proposal at h+3 (whose justify
    // completes the three-chain), so keep extending until everything
    // non-empty has committed.
    if (highest_nonempty_height_ <= committed_height_) return;
  }

  auto block = support::make_pooled<Block>();
  block->height = next_height;
  block->view = view_;
  block->proposer = options_.self;
  block->parent = high_qc_.block;
  block->justify = high_qc_;
  block->entries = std::move(entries);

  last_proposed_height_ = next_height;
  last_proposed_view_ = view_;
  ++blocks_proposed_;
  hooks_.charge(ccost(options_.costs.hash_cost(block->wire_bytes())));

  auto msg = sim::make_payload<ProposalMsg>();
  msg->block = block;
  hooks_.broadcast(std::move(msg));  // self-delivery makes the leader vote
}

void HotStuffCore::handle_proposal(const sim::Envelope& env,
                                   const ProposalMsg& m) {
  if (!m.block) return;
  const Block& b = *m.block;
  if (env.from != b.proposer) return;  // relayed proposals are not a thing
  if (b.proposer != leader_of(b.view)) return;
  if (b.parent != b.justify.block || b.height != b.justify.height + 1) {
    return;  // malformed chain
  }

  // Verify the justify QC (combined threshold signature, O(1)).
  if (!b.justify.genesis) {
    hooks_.charge(ccost(options_.costs.threshold_verify));
    if (!registry_->threshold_verify(
            b.justify.sig, vote_message(b.justify.height, b.justify.block))) {
      return;
    }
  }
  hooks_.charge(ccost(options_.costs.hash_cost(b.wire_bytes())));

  const crypto::Digest digest = b.digest();
  blocks_.emplace(digest, m.block);
  if (!b.entries.empty()) {
    highest_nonempty_height_ =
        std::max(highest_nonempty_height_, b.height);
  }
  if (b.view > view_) view_ = b.view;  // adopt the proposer's view

  update_high_qc(b.justify);

  // Locking rule: lock on the one-chain head b' = justify(justify(b*)).
  if (const BlockPtr parent = lookup(b.parent);
      parent && !parent->justify.genesis &&
      parent->justify.height > locked_qc_.height) {
    locked_qc_ = parent->justify;
  }

  // Commit rule: three consecutive QCs commit the tail.
  commit_chain(b);

  // Vote once per (view, height), and only on blocks that respect the
  // lock: extend the locked block or carry a higher justify.
  const bool fresh =
      std::pair{b.view, b.height} > std::pair{voted_view_, voted_height_};
  const bool extends_locked =
      locked_qc_.genesis || b.parent == locked_qc_.block ||
      b.justify.height > locked_qc_.height;
  if (fresh && extends_locked) {
    voted_view_ = b.view;
    voted_height_ = b.height;
    auto vote = sim::make_payload<BlockVoteMsg>();
    vote->height = b.height;
    vote->block = digest;
    hooks_.charge(ccost(options_.costs.share_sign));
    vote->share = signer_.share_sign(vote_message(b.height, digest));
    hooks_.send(b.proposer, std::move(vote));
  }

  arm_pacemaker();  // proposal = progress
  if (is_leader()) try_propose();
}

void HotStuffCore::handle_vote(const sim::Envelope& env,
                               const BlockVoteMsg& m) {
  if (env.from >= options_.n) return;
  VotePool& pool = votes_[m.block];
  if (pool.seen.empty()) pool.seen.assign(options_.n, false);
  if (pool.formed || pool.seen[env.from]) return;
  pool.seen[env.from] = true;
  pool.height = m.height;
  hooks_.charge(ccost(options_.costs.share_verify));
  pool.shares.push_back(m.share);

  if (pool.shares.size() < 2 * options_.f + 1) return;
  hooks_.charge(ccost(options_.costs.share_combine));
  const auto sig =
      registry_->share_combine(vote_message(m.height, m.block), pool.shares);
  if (!sig) return;  // bogus shares present; wait for more votes
  pool.formed = true;

  QuorumCert qc;
  qc.height = m.height;
  qc.block = m.block;
  qc.sig = *sig;
  update_high_qc(qc);
  try_propose();
}

void HotStuffCore::handle_new_view(const sim::Envelope& env,
                                   const NewViewMsg& m) {
  if (env.from >= options_.n || m.view < view_) return;
  update_high_qc(m.high_qc);
  // View synchronization: adopt the highest view observed, so timed-out
  // replicas converge instead of drifting apart on local backoffs.
  if (m.view > view_) {
    view_ = m.view;
    arm_pacemaker();
  }
  auto& seen = new_view_from_[m.view];
  if (seen.empty()) seen.assign(options_.n, false);
  if (seen[env.from]) return;
  seen[env.from] = true;
  if (++new_view_count_[m.view] >= 2 * options_.f + 1 &&
      leader_of(m.view) == options_.self) {
    try_propose();
  }
}

void HotStuffCore::update_high_qc(const QuorumCert& qc) {
  if (qc.genesis) return;
  if (high_qc_.genesis || qc.height > high_qc_.height) {
    high_qc_ = qc;
  }
}

void HotStuffCore::commit_chain(const Block& b_star) {
  // b* -> b'' (justify) -> b' -> b: commit b when b''..b are consecutive.
  const BlockPtr b2 = lookup(b_star.justify.block);
  if (!b2 || b2->justify.genesis) return;
  const BlockPtr b1 = lookup(b2->justify.block);
  if (!b1 || b1->justify.genesis) return;
  const BlockPtr b0 = lookup(b1->justify.block);
  if (!b0) return;
  if (b2->parent != b2->justify.block || b1->parent != b1->justify.block) {
    return;
  }
  if (b2->height != b1->height + 1 || b1->height != b0->height + 1) return;
  if (b0->height <= committed_height_) return;

  // Commit b0 and any uncommitted ancestors, oldest first.
  std::vector<BlockPtr> chain;
  BlockPtr cursor = b0;
  while (cursor && cursor->height > committed_height_) {
    chain.push_back(cursor);
    cursor = lookup(cursor->parent);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    committed_height_ = (*it)->height;
    ++blocks_committed_;
    hooks_.on_commit(**it);
  }
  arm_pacemaker();
  current_timeout_ = options_.view_timeout;  // progress resets backoff
}

BlockPtr HotStuffCore::lookup(const crypto::Digest& d) const {
  const auto it = blocks_.find(d);
  return it == blocks_.end() ? nullptr : it->second;
}

Bytes HotStuffCore::vote_message(std::uint64_t height,
                                 const crypto::Digest& block) const {
  const crypto::Digest d =
      crypto::Hasher().add_str("hs-vote").add_u64(height).add(block).digest();
  return Bytes(d.begin(), d.end());
}

void HotStuffCore::arm_pacemaker() {
  const std::uint64_t generation = ++pacemaker_generation_;
  hooks_.set_timer(current_timeout_, [this, generation] {
    if (generation == pacemaker_generation_) on_pacemaker_timeout();
  });
}

void HotStuffCore::on_pacemaker_timeout() {
  // No progress: move to the next view and hand the highest QC to its
  // leader. Exponential backoff keeps views long enough to converge.
  ++view_;
  current_timeout_ = std::min<TimeNs>(current_timeout_ * 2,
                                      options_.view_timeout * 16);
  // Broadcast so every replica converges on the new view (self-delivery
  // registers our own NewView with the counting logic).
  auto msg = sim::make_payload<NewViewMsg>();
  msg->view = view_;
  msg->high_qc = high_qc_;
  hooks_.broadcast(std::move(msg));
  arm_pacemaker();
}

}  // namespace lyra::hotstuff
