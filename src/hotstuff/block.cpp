#include "hotstuff/block.hpp"

namespace lyra::hotstuff {

crypto::Digest Block::digest() const {
  crypto::Hasher h;
  h.add_str("hs-block")
      .add_u64(height)
      .add_u64(view)
      .add_u32(proposer)
      .add(parent)
      .add_u64(justify.height)
      .add(justify.block);
  for (const BlockEntry& e : entries) {
    h.add(e.batch_digest).add_i64(e.assigned_ts).add_u32(e.proposer);
  }
  return h.digest();
}

std::uint64_t Block::wire_bytes() const {
  std::uint64_t bytes = 256;  // header + QC
  for (const BlockEntry& e : entries) {
    bytes += 64 + e.nominal_bytes + e.proof_bytes;
  }
  return bytes;
}

}  // namespace lyra::hotstuff
