#pragma once

#include <memory>
#include <vector>

#include "crypto/hash.hpp"
#include "crypto/keys.hpp"
#include "support/types.hpp"

namespace lyra::hotstuff {

/// One command carried by a block. For the Pompē baseline this is a
/// sequenced transaction batch: its content digest, its assigned (median)
/// timestamp, and accounting metadata. The timestamp proof travels
/// separately in the SequenceMsg and is verified before the entry becomes
/// proposable; `proof_bytes` accounts for its wire size inside the block.
struct BlockEntry {
  crypto::Digest batch_digest{};
  SeqNum assigned_ts = kNoSeq;
  NodeId proposer = kNoNode;
  std::uint32_t tx_count = 0;
  std::uint64_t nominal_bytes = 0;
  std::uint64_t proof_bytes = 0;
};

/// Quorum certificate over (height, block digest): 2f+1 combined signature
/// shares. `genesis` marks the implicit QC of the genesis block.
struct QuorumCert {
  std::uint64_t height = 0;
  crypto::Digest block{};
  crypto::ThresholdSig sig;
  bool genesis = false;
};

/// A chained-HotStuff block.
struct Block {
  std::uint64_t height = 0;
  std::uint64_t view = 0;
  NodeId proposer = kNoNode;
  crypto::Digest parent{};
  QuorumCert justify;
  std::vector<BlockEntry> entries;

  crypto::Digest digest() const;

  /// Bytes the block occupies on the wire: header + entries with their
  /// payloads and timestamp proofs (the prototype proposes full commands).
  std::uint64_t wire_bytes() const;
};

using BlockPtr = std::shared_ptr<const Block>;

}  // namespace lyra::hotstuff
