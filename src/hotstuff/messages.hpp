#pragma once

#include "hotstuff/block.hpp"
#include "sim/message.hpp"

namespace lyra::hotstuff {

using sim::MsgKind;

/// Leader -> replicas: a new block.
struct ProposalMsg final : sim::Payload {
  BlockPtr block;

  const char* name() const override { return "HS_PROPOSAL"; }
  MsgKind kind() const override { return MsgKind::kHsProposal; }
  std::size_t wire_size() const override {
    return block ? block->wire_bytes() : 64;
  }
};

/// Replica -> leader: a partial signature over (height, block digest).
struct BlockVoteMsg final : sim::Payload {
  std::uint64_t height = 0;
  crypto::Digest block{};
  crypto::SigShare share;

  const char* name() const override { return "HS_VOTE"; }
  MsgKind kind() const override { return MsgKind::kHsVote; }
  std::size_t wire_size() const override { return 120; }
};

/// Replica -> next leader after a local timeout: carries the highest QC
/// the replica knows so the new leader can extend it.
struct NewViewMsg final : sim::Payload {
  std::uint64_t view = 0;
  QuorumCert high_qc;

  const char* name() const override { return "HS_NEWVIEW"; }
  MsgKind kind() const override { return MsgKind::kHsNewView; }
  std::size_t wire_size() const override { return 260; }
};

}  // namespace lyra::hotstuff
