#pragma once

#include <utility>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/vss.hpp"
#include "sim/message.hpp"
#include "support/bytes.hpp"
#include "support/types.hpp"
#include "workload/types.hpp"

namespace lyra::core {

using sim::MsgKind;

/// One accepted transaction (batch) as exchanged by the Commit protocol:
/// enough to identify and order it.
struct AcceptedEntry {
  crypto::Digest cipher_id{};
  SeqNum seq = kNoSeq;
  InstanceId inst;

  friend bool operator==(const AcceptedEntry&, const AcceptedEntry&) = default;
};

/// Commit-protocol piggyback (Alg. 4 lines 74-78) riding on every protocol
/// message: the sender's locally-locked prefix, its lowest pending sequence
/// number, and the accepted transactions it learned since its previous
/// broadcast. `counter` makes status application monotone per sender.
/// `chain_hash` is a running hash of the sender's committed prefix — the
/// compact stand-in for the paper's "hash trees in lieu of older prefixes"
/// that lets nodes (and tests) cross-check prefix agreement cheaply.
struct StatusPiggyback {
  std::uint64_t counter = 0;
  SeqNum locked = kNoSeq;       // seq_i - L
  SeqNum min_pending = kMaxSeq; // kMaxSeq when no transaction is pending
  std::vector<AcceptedEntry> accepted_delta;
  SeqNum committed = kNoSeq;    // sender's committed watermark
  crypto::Digest chain_hash{};  // hash chain over the committed prefix
};

/// Base of every Lyra protocol message: all of them carry the status
/// piggyback.
struct LyraMsg : sim::Payload {
  StatusPiggyback status;
};

/// Round-1 VVB INIT (Alg. 1 line 3): the broadcaster's obfuscated batch,
/// its prediction set S_t, and its signature binding both.
struct InitMsg final : LyraMsg {
  InstanceId inst;
  crypto::VssCipher cipher;           // c_t
  std::vector<SeqNum> predictions;    // S_t
  std::uint32_t tx_count = 0;         // client transactions inside the batch
  std::uint64_t nominal_bytes = 0;    // modeled batch size on the wire
  crypto::Signature sig;              // broadcaster's signature over value_id

  const char* name() const override { return "INIT"; }
  MsgKind kind() const override { return MsgKind::kInit; }
  std::size_t wire_size() const override {
    return 160 + nominal_bytes + predictions.size() * 8;
  }
};

/// Round-1 VVB VOTE (Alg. 1 lines 8/10): the binary validation verdict. A
/// 1-vote carries the signature share proving validation and the voter's
/// perceived sequence number (piggybacked for the broadcaster's distance
/// table, §VI-B).
struct VoteMsg final : LyraMsg {
  InstanceId inst;
  bool value = false;
  crypto::SigShare share;   // meaningful only when value == true
  SeqNum perceived = kNoSeq;

  const char* name() const override { return "VOTE"; }
  MsgKind kind() const override { return MsgKind::kVote; }
  std::size_t wire_size() const override { return 140; }
};

/// VVB DELIVER (Alg. 1 lines 13/17): threshold proof that 2f+1 processes
/// validated the value; makes (1, m) delivery uniform.
struct DeliverMsg final : LyraMsg {
  InstanceId inst;
  crypto::ThresholdSig proof;

  const char* name() const override { return "DELIVER"; }
  MsgKind kind() const override { return MsgKind::kDeliver; }
  // Modeled as a production combined threshold signature (constant size);
  // the in-simulation share list is the functional stand-in (DESIGN.md).
  std::size_t wire_size() const override { return 200; }
};

/// Binary-value broadcast for DBFT rounds >= 2 (Alg. 3 line 35). The value
/// m is already fixed and proven unique by round 1, so later rounds
/// exchange plain binary estimates with BV-broadcast semantics.
struct EstMsg final : LyraMsg {
  InstanceId inst;
  Round round = 0;
  bool value = false;

  const char* name() const override { return "EST"; }
  MsgKind kind() const override { return MsgKind::kEst; }
  std::size_t wire_size() const override { return 90; }
};

/// Weak-coordinator broadcast (Alg. 3 line 39).
struct CoordMsg final : LyraMsg {
  InstanceId inst;
  Round round = 0;
  bool value = false;

  const char* name() const override { return "COORD"; }
  MsgKind kind() const override { return MsgKind::kCoord; }
  std::size_t wire_size() const override { return 90; }
};

/// AUX broadcast (Alg. 3 line 42): the set of values the sender saw
/// delivered by the round's (V)VB.
struct AuxMsg final : LyraMsg {
  InstanceId inst;
  Round round = 0;
  bool has_zero = false;
  bool has_one = false;

  const char* name() const override { return "AUX"; }
  MsgKind kind() const override { return MsgKind::kAux; }
  std::size_t wire_size() const override { return 92; }
};

/// Commit-reveal decryption shares (Alg. 4 line 95), batched across all
/// ciphers the sender committed in one wave.
struct SharesMsg final : LyraMsg {
  std::vector<std::pair<crypto::Digest, crypto::VssShare>> shares;

  const char* name() const override { return "SHARES"; }
  MsgKind kind() const override { return MsgKind::kShares; }
  std::size_t wire_size() const override { return 80 + shares.size() * 104; }
};

/// Periodic status carrier so the Commit protocol progresses on idle nodes.
struct HeartbeatMsg final : LyraMsg {
  const char* name() const override { return "HEARTBEAT"; }
  MsgKind kind() const override { return MsgKind::kHeartbeat; }
  std::size_t wire_size() const override { return 80; }
};

/// Warm-up distance probe (§IV-B1): the broadcaster's reference sequence
/// number. Probes are padded to a full batch's wire size — the paper's
/// warm-up "broadcasts transactions only to measure distances", and the
/// measured distance must include the fan-out serialization a real batch
/// experiences, or the first predictions undershoot by the egress time.
struct ProbeMsg final : LyraMsg {
  SeqNum s_ref = kNoSeq;
  std::uint64_t pad_bytes = 0;  // typical batch size

  const char* name() const override { return "PROBE"; }
  MsgKind kind() const override { return MsgKind::kProbe; }
  std::size_t wire_size() const override { return 88 + pad_bytes; }
};

/// ...and the receiver's perceived sequence number, sent back directly.
struct ProbeReplyMsg final : LyraMsg {
  SeqNum s_ref = kNoSeq;
  SeqNum perceived = kNoSeq;

  const char* name() const override { return "PROBE_REPLY"; }
  MsgKind kind() const override { return MsgKind::kProbeReply; }
  std::size_t wire_size() const override { return 96; }
};

/// Pull request for an INIT a process learned about indirectly (via a
/// DELIVER proof or an accepted-set delta) without having received the
/// broadcast itself — only possible with a Byzantine broadcaster.
struct ReqInitMsg final : LyraMsg {
  InstanceId inst;

  const char* name() const override { return "REQ_INIT"; }
  MsgKind kind() const override { return MsgKind::kReqInit; }
  std::size_t wire_size() const override { return 92; }
};

/// Relay of an INIT: either the answer to a ReqInitMsg or the obligation
/// forwarding after the VVB expiration timeout (Alg. 1, VVB-Obligation).
/// The inner message keeps the broadcaster's signature, so a relay cannot
/// tamper with it.
struct InitRelayMsg final : LyraMsg {
  std::shared_ptr<const InitMsg> inner;

  const char* name() const override { return "INIT_RELAY"; }
  MsgKind kind() const override { return MsgKind::kInitRelay; }
  std::size_t wire_size() const override {
    return 80 + (inner ? inner->wire_size() : 0);
  }
};

/// Post-restart accepted-set resync request: a recovered node broadcasts
/// its extraction cursor and peers answer with every accepted entry above
/// it. One-shot accepted_delta piggybacks broadcast while the node was
/// down are gone for good; without this pull a recovered node could
/// extract past a hole in its accepted set and fork its ledger. The
/// requester gates commit extraction until f+1 peers answered — at least
/// one is correct, and Lemma 6 (completeness) puts every extractable
/// entry in any correct peer's accepted set.
struct ResyncReqMsg final : LyraMsg {
  SeqNum cursor_seq = kNoSeq;   // last extracted entry, kNoSeq when none
  crypto::Digest cursor_id{};

  const char* name() const override { return "RESYNC_REQ"; }
  MsgKind kind() const override { return MsgKind::kResyncReq; }
  std::size_t wire_size() const override { return 120; }
};

/// ...and the answer: the responder's accepted entries above the cursor.
struct ResyncReplyMsg final : LyraMsg {
  std::vector<AcceptedEntry> entries;

  const char* name() const override { return "RESYNC_REPLY"; }
  MsgKind kind() const override { return MsgKind::kResyncReply; }
  std::size_t wire_size() const override { return 88 + entries.size() * 52; }
};

/// Client -> node transaction submission. `txs` carries real payloads in
/// the examples; the benchmark workload submits compact aggregates
/// (`count` transactions of 32 bytes each) to keep host memory flat. The
/// open-loop workload engine instead fills `wtxs` with individually
/// identified transactions that go through mempool admission.
struct SubmitMsg final : sim::Payload {
  std::uint32_t count = 0;
  TimeNs submitted_at = 0;
  std::vector<Bytes> txs;  // optional explicit payloads (size <= count)
  std::vector<workload::WorkloadTx> wtxs;  // open-loop path (size == count)

  const char* name() const override { return "SUBMIT"; }
  MsgKind kind() const override { return MsgKind::kSubmit; }
  std::size_t wire_size() const override {
    return wtxs.empty() ? 48 + count * 32
                        : 48 + wtxs.size() * workload::kTxRecordBytes;
  }
};

/// Node -> client commit notification for one submitted chunk; closed-loop
/// clients resubmit upon receiving it. For open-loop chunks, `tx_ids`
/// names exactly which transactions committed.
struct CommitNotifyMsg final : sim::Payload {
  std::uint32_t count = 0;
  TimeNs submitted_at = 0;
  SeqNum seq = kNoSeq;
  std::vector<std::uint64_t> tx_ids;  // open-loop path (size == count)

  const char* name() const override { return "COMMIT_NOTIFY"; }
  MsgKind kind() const override { return MsgKind::kCommitNotify; }
  std::size_t wire_size() const override { return 56 + tx_ids.size() * 8; }
};

/// Node -> client backpressure: the named transactions were refused by
/// (or evicted from) the bounded mempool. The client retries with backoff
/// or gives up after its retry budget — that terminal reject is the
/// client's signal, not a separate message.
struct MempoolRejectMsg final : sim::Payload {
  std::vector<std::uint64_t> tx_ids;

  const char* name() const override { return "MEMPOOL_REJECT"; }
  MsgKind kind() const override { return MsgKind::kMempoolReject; }
  std::size_t wire_size() const override { return 32 + tx_ids.size() * 8; }
};

}  // namespace lyra::core
