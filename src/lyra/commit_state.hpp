#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "crypto/hash.hpp"
#include "lyra/config.hpp"
#include "lyra/messages.hpp"
#include "support/types.hpp"

namespace lyra::core {

/// Bookkeeping of the Commit protocol (Alg. 4): pending and accepted
/// transactions, the per-peer status tables R and S, and the
/// locked / stable / committed watermarks. Pure state machine — the node
/// feeds it events and reads back what to commit; it never touches the
/// network.
class CommitState {
 public:
  explicit CommitState(const Config& config);

  // --- validation-side bookkeeping (Alg. 4 lines 65-66, 70-73) ---

  /// A transaction this node validated joined its pending set P.
  void add_pending(const crypto::Digest& cipher_id, SeqNum seq);

  /// The transaction's BOC instance resolved (accepted or rejected):
  /// removed from P either way.
  void resolve_pending(const crypto::Digest& cipher_id);

  bool is_pending(const crypto::Digest& cipher_id) const;

  /// min-pending: lowest requested sequence number in P; kMaxSeq when P is
  /// empty (no pending constraint on the stable prefix).
  SeqNum min_pending() const;

  // --- accepted set A (lines 71, 82) ---

  /// Merges one accepted transaction (own decision or peer piggyback).
  /// Returns true if it was new.
  bool add_accepted(const AcceptedEntry& entry);

  bool is_accepted(const crypto::Digest& cipher_id) const;
  std::size_t accepted_count() const { return accepted_index_.size(); }

  // --- peer status intake (lines 79-81) ---

  /// Applies a peer's piggybacked status. Stale statuses (counter not
  /// newer than the last applied) update nothing; accepted deltas are
  /// merged by the caller separately.
  void on_status(NodeId from, const StatusPiggyback& status);

  // --- watermarks (lines 83-87) ---

  /// Recomputes locked / stable / committed. Returns true when the
  /// committed watermark advanced.
  bool recompute();

  SeqNum locked() const { return locked_; }
  SeqNum stable() const { return stable_; }
  SeqNum committed() const { return committed_; }

  // --- commit extraction (lines 89-92) ---

  /// wait-pending: true while some locally pending transaction has a
  /// requested sequence number within the committed prefix.
  bool has_pending_at_or_below(SeqNum x) const;

  /// Accepted transactions inside the committed prefix not yet handed out,
  /// ordered by (seq, cipher_id). Empty while wait-pending holds.
  std::vector<AcceptedEntry> take_committable();

  /// Entries accepted since the previous call (for the status piggyback's
  /// accepted_delta).
  std::vector<AcceptedEntry> drain_accepted_delta();

  /// Number of accepted entries that arrived below an already-extracted
  /// commit watermark. Always zero in a correct run (Lemma 6
  /// completeness); integration tests assert on it.
  std::uint64_t late_accepts() const { return late_accepts_; }

  // --- durable storage hooks (storage snapshot / recovery) ---

  /// The accepted set in (seq, cipher_id) order, for snapshotting.
  std::vector<AcceptedEntry> accepted_snapshot() const;

  /// Accepted entries strictly after the (seq, id) cursor — what a
  /// restarted peer asks for in a ResyncReq (all of A when seq is kNoSeq).
  std::vector<AcceptedEntry> accepted_after(SeqNum cursor_seq,
                                            const crypto::Digest& cursor_id)
      const;

  /// Re-seeds the accepted set on a freshly constructed CommitState
  /// (restart path). Does not populate the delta buffer: the recovered
  /// entries were already announced to peers before the crash.
  void restore_accepted(const std::vector<AcceptedEntry>& entries);

  /// Restores the extraction cursor so already-committed entries are not
  /// handed out a second time after restart. `cursor_seq`/`cursor_id`
  /// identify the last extracted entry (kNoSeq when nothing was).
  void restore_extraction(SeqNum committed, SeqNum cursor_seq,
                          const crypto::Digest& cursor_id);

  /// Inserts an entry adopted from a peer state transfer: no delta-buffer
  /// announcement (every peer already has it — that is how it got here)
  /// and no late-accept count (it lands below the synced cursor by
  /// construction, which is installation, not a completeness violation).
  void install_synced(const AcceptedEntry& entry);

 private:
  const Config* config_;

  // P: pending transactions with a multiset of their sequence numbers for
  // O(log) min-pending.
  std::unordered_map<crypto::Digest, SeqNum, crypto::DigestHash> pending_;
  std::multiset<SeqNum> pending_seqs_;

  // A: accepted transactions, indexed by id and ordered by (seq, id).
  std::unordered_map<crypto::Digest, SeqNum, crypto::DigestHash>
      accepted_index_;
  std::map<std::pair<SeqNum, crypto::Digest>, AcceptedEntry> accepted_ordered_;

  // R and S (locally locked prefixes / min-pendings per peer), plus the
  // last applied status counter per peer.
  std::vector<SeqNum> peer_locked_;
  std::vector<SeqNum> peer_min_pending_;
  std::vector<std::uint64_t> peer_status_counter_;

  SeqNum locked_ = kNoSeq;
  SeqNum stable_ = kNoSeq;
  SeqNum committed_ = kNoSeq;

  // Extraction cursor: everything <= handed_out_ was already returned.
  std::pair<SeqNum, crypto::Digest> cursor_{kNoSeq, crypto::kZeroDigest};
  SeqNum handed_out_watermark_ = kNoSeq;

  std::vector<AcceptedEntry> delta_buffer_;
  std::uint64_t late_accepts_ = 0;
};

/// min over the 2f+1 highest entries of `values` (Alg. 4 lines 83-85);
/// kNoSeq when fewer than 2f+1 entries are known. Exposed for unit tests.
SeqNum quorum_low_watermark(const std::vector<SeqNum>& values,
                            std::size_t quorum);

}  // namespace lyra::core
