#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/keys.hpp"
#include "lyra/messages.hpp"
#include "support/types.hpp"

namespace lyra::core {

/// State of one Byzantine-Ordered-Consensus instance at one process:
/// round-1 VVB (Alg. 1) plus the modified DBFT binary consensus (Alg. 3).
/// Pure data — LyraNode drives the transitions.
struct BocInstance {
  InstanceId inst;

  // --- the value m = (c_t, S_t), learned from the INIT ---
  std::shared_ptr<const InitMsg> init;  // null until the INIT arrives
  crypto::Digest value_id{};            // H(inst, cipher_id, S_t)
  SeqNum requested = kNoSeq;            // (n-f)-th prediction
  SeqNum perceived = kNoSeq;            // our clock at INIT receipt
  bool validated = false;               // validation-function verdict

  // --- round-1 VVB (Alg. 1) ---
  bool voted_one = false;   // VVB-Unicity: 1 is broadcast at most once
  bool voted_zero = false;  // 0 is also broadcast at most once
  std::vector<bool> vote_one_from;   // senders of (VOTE, 1)
  std::vector<bool> vote_zero_from;  // senders of (VOTE, 0)
  std::size_t vote_one_count = 0;
  std::size_t vote_zero_count = 0;
  std::vector<crypto::SigShare> shares;  // verified validation shares
  bool deliver_broadcast = false;        // DELIVER sent (built or relayed)
  std::optional<crypto::ThresholdSig> proof;  // held until INIT arrives
  bool init_forwarded = false;
  std::uint64_t expire_timer = 0;  // E = 2*Delta (Alg. 1 line 6)
  bool expire_armed = false;

  // --- DBFT (Alg. 3) ---
  struct RoundState {
    bool vv_zero = false;  // vvals
    bool vv_one = false;
    // BV-broadcast bookkeeping for rounds >= 2.
    std::vector<bool> est_zero_from;
    std::vector<bool> est_one_from;
    std::size_t est_zero_count = 0;
    std::size_t est_one_count = 0;
    bool est_zero_sent = false;
    bool est_one_sent = false;
    // Coordinator.
    int coord_value = -1;  // -1 = none received
    bool coord_sent = false;
    // AUX.
    std::vector<std::uint8_t> aux_from;  // 0 none, 1 {0}, 2 {1}, 3 {0,1}
    std::size_t aux_count = 0;
    bool aux_sent = false;
    bool timer_expired = false;
    std::uint64_t timer_id = 0;
    bool advanced = false;  // this round's decision step already ran
  };

  Round round = 0;  // 0 = not yet joined; first round is 1
  bool est = false; // current binary estimate b (meaningful from round 2)
  std::map<Round, RoundState> rounds;

  bool decided = false;
  bool decision = false;
  Round decided_round = 0;
  bool done = false;      // exited the loop (Alg. 3 line 50)
  TimeNs joined_at = 0;
  TimeNs decided_at = 0;

  RoundState& round_state(Round r, std::size_t n) {
    RoundState& rs = rounds[r];
    if (rs.aux_from.empty()) {
      rs.est_zero_from.assign(n, false);
      rs.est_one_from.assign(n, false);
      rs.aux_from.assign(n, 0);
    }
    return rs;
  }
};

}  // namespace lyra::core
