#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/cost_model.hpp"
#include "support/types.hpp"

namespace lyra::core {

/// Parameters of a Lyra deployment. Defaults follow the paper's benchmark
/// configuration (§VI-B): batch size 800, lambda = 5 ms.
struct Config {
  std::size_t n = 4;  ///< consensus processes
  std::size_t f = 1;  ///< tolerated Byzantine processes, f < n/3

  /// Post-GST bound on message delay (Delta, §II-A). Known to processes;
  /// drives the VVB expiration timer (2*Delta), the per-round timer
  /// (Delta), and the acceptance window L = 3*Delta.
  TimeNs delta = ms(150);

  /// Security parameter lambda (Definition 6): a prediction is valid when
  /// it lands within lambda of the perceived sequence number. The paper's
  /// experiments run at 5 ms (§VI-B).
  SeqNum lambda = ms(5);

  /// Consensus batching (§VI-A/B): a proposal carries up to `batch_size`
  /// client transactions; a partial batch is proposed after
  /// `batch_timeout` anyway.
  std::size_t batch_size = 800;
  TimeNs batch_timeout = ms(50);

  /// Proposal pacing (§VI-B: a node starts a new BOC instance per batch,
  /// paced by its previous proposals): at most this many of the node's own
  /// batches may be in flight (proposed but not yet committed+revealed).
  /// Bounds each node's contribution, so aggregate throughput grows with
  /// the node count — the leaderless scaling of Fig. 3.
  std::size_t max_outstanding_proposals = 3;

  /// How many times a rejected (decided-0) own batch is re-proposed
  /// before it is dropped and its mempool transactions reinstated.
  /// SMR-Liveness (Lemma 8) wants effectively unbounded retries, hence
  /// the large default; tests shrink it to reach the drop path quickly.
  std::uint32_t max_batch_resubmissions = 10'000;

  /// Period of the status heartbeat carrying the Commit-protocol
  /// piggybacks when a node has no other traffic.
  TimeNs heartbeat_period = ms(25);

  /// §VI-D mitigation: reject transactions whose requested sequence number
  /// lies further than this in the future (memory-exhaustion defence).
  SeqNum future_bound = ms(1500);

  /// EWMA smoothing for the distance table D_i.
  double distance_alpha = 0.2;

  /// Warm-up: number of probe rounds used to learn D_i before proposing,
  /// and their spacing.
  std::size_t warmup_probes = 4;
  TimeNs probe_period = ms(120);

  /// Maximum absolute clock offset of a node from true time. The paper
  /// assumes no synchronization (§II-D); offsets are absorbed by d_ij.
  /// Default matches NTP/chrony-grade skew on cloud VMs (~1-2 ms).
  TimeNs clock_offset_spread = ms(2);

  /// Commit-reveal obfuscation on/off (off = ablation: Lyra ordering
  /// without payload hiding). The VSS key shares live in GF(256), so
  /// obfuscated deployments cap at n = 255 — and the 2f+1 reconstruction
  /// threshold itself outgrows any byte field past n ~ 380. Scaling
  /// sweeps beyond the cap run the ordering core with this off.
  bool obfuscate = true;

  /// Keep revealed batch payloads in the ledger. Benchmarks switch this
  /// off to keep host memory flat over long runs; the reveal hook still
  /// sees every payload.
  bool retain_payloads = true;

  /// Bounded fee-priority mempool in front of batch formation (open-loop
  /// workload engine, docs/WORKLOAD.md). 0 — the default — bypasses the
  /// mempool entirely: submissions feed the BatchAssembler directly and
  /// every existing run replays bit-identically.
  std::size_t mempool_capacity = 0;

  /// Memoize per-node signature-verification verdicts keyed by
  /// (signer, message, mac). Repeated presentations of the same signed
  /// statement (relayed DELIVER proofs, re-broadcast INITs) answer from
  /// the cache and skip the modeled verification CryptoCosts — only
  /// misses pay. Changes no protocol decision, only counters and
  /// simulated CPU charges; off by default so existing runs replay
  /// bit-identically.
  bool memoize_verification = false;

  /// Simulated crypto CPU costs, divided by `cpu_parallelism`: the paper's
  /// testbed VMs have 16 vCPUs and crypto verification parallelizes.
  crypto::CryptoCosts costs;
  double cpu_parallelism = 16.0;

  /// Base CPU cost of ingesting any message (deserialize + dispatch).
  TimeNs message_overhead = us(1);

  /// How often each node re-evaluates the Commit-protocol watermarks.
  TimeNs commit_poll = ms(5);

  /// Decided instances are garbage-collected after this much inactivity.
  TimeNs instance_gc_idle = ms(2000);

  /// Sender-side pacing: assumed egress bandwidth used to space out own
  /// proposals so a batch broadcast never queues behind the previous one
  /// on the NIC (kernel pacing / TCP flow control do this in a real
  /// deployment). Keeps the proposer's own fan-out delay out of the
  /// perceived-sequence-number error that lambda validates.
  double pacing_bandwidth = 125e6;

  /// Acceptance window: the maximum latency L = 3*Delta of one BOC
  /// instance during synchrony (Alg. 4 line 52).
  TimeNs max_latency() const { return 3 * delta; }

  std::size_t quorum() const { return 2 * f + 1; }

  TimeNs crypto_cost(TimeNs base) const {
    return static_cast<TimeNs>(static_cast<double>(base) / cpu_parallelism);
  }
};

}  // namespace lyra::core
