#pragma once

#include <deque>
#include <vector>

#include "support/bytes.hpp"
#include "support/types.hpp"

namespace lyra::core {

/// Accumulates client submissions and carves consensus batches of at most
/// `batch_size` transactions (§VI-B: proposals carry full batches; a
/// partial batch goes out on the batch timeout). Shared by the Lyra and
/// Pompē proposers so both batch identically.
///
/// Submissions are either explicit transaction payloads (examples) or
/// count-aggregates (benchmark workload); aggregates are materialized as
/// unique markers so batch contents never collide across proposers.
class BatchAssembler {
 public:
  struct Chunk {
    NodeId client = kNoNode;
    std::uint32_t count = 0;
    TimeNs submitted_at = 0;
    /// Per-transaction ids for mempool-carved (open-loop) batches; empty
    /// on the legacy count-aggregate and explicit-payload paths.
    std::vector<std::uint64_t> tx_ids;
  };

  struct Carved {
    Bytes payload;
    std::uint32_t tx_count = 0;
    std::uint64_t nominal_bytes = 0;
    std::vector<Chunk> chunks;
  };

  BatchAssembler(std::size_t batch_size, NodeId self)
      : batch_size_(batch_size), self_(self) {}

  void add(NodeId client, std::uint32_t count, TimeNs submitted_at,
           const std::vector<Bytes>& txs) {
    if (count == 0) return;
    pending_.push_back(Pending{client, count, submitted_at, txs});
    pending_txs_ += count;
  }

  std::size_t pending_txs() const { return pending_txs_; }
  bool has_full_batch() const { return pending_txs_ >= batch_size_; }
  bool empty() const { return pending_txs_ == 0; }

  /// Carves up to batch_size transactions into one batch.
  Carved carve() {
    Carved out;
    while (!pending_.empty() && out.tx_count < batch_size_) {
      Pending& p = pending_.front();
      const auto take = static_cast<std::uint32_t>(
          std::min<std::size_t>(p.count, batch_size_ - out.tx_count));

      out.chunks.push_back({p.client, take, p.submitted_at, {}});
      out.tx_count += take;

      if (!p.txs.empty()) {
        // Explicit payloads: move the first `take` transactions.
        for (std::uint32_t i = 0; i < take; ++i) {
          const Bytes& tx = p.txs[i];
          append_u64(out.payload, tx.size());
          append(out.payload, tx);
          out.nominal_bytes += 16 + tx.size();
        }
        p.txs.erase(p.txs.begin(), p.txs.begin() + take);
      } else {
        // Count aggregate: one unique marker stands in for `take` opaque
        // 32-byte transactions.
        append_u64(out.payload, take);
        append_u64(out.payload, static_cast<std::uint64_t>(p.submitted_at));
        append_u32(out.payload, p.client);
        append_u32(out.payload, self_);
        append_u64(out.payload, nonce_++);
        out.nominal_bytes += static_cast<std::uint64_t>(take) * 32;
      }

      p.count -= take;
      pending_txs_ -= take;
      if (p.count == 0) pending_.pop_front();
    }
    return out;
  }

 private:
  struct Pending {
    NodeId client;
    std::uint32_t count;
    TimeNs submitted_at;
    std::vector<Bytes> txs;  // empty for count aggregates
  };

  std::size_t batch_size_;
  NodeId self_;
  std::deque<Pending> pending_;
  std::size_t pending_txs_ = 0;
  std::uint64_t nonce_ = 0;
};

}  // namespace lyra::core
