#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/verify_cache.hpp"
#include "crypto/vss.hpp"
#include "lyra/batching.hpp"
#include "lyra/boc_instance.hpp"
#include "lyra/commit_state.hpp"
#include "lyra/config.hpp"
#include "lyra/messages.hpp"
#include "net/network.hpp"
#include "ordering/distance_table.hpp"
#include "ordering/ordering_clock.hpp"
#include "sim/process.hpp"
#include "statesync/manager.hpp"
#include "storage/journal.hpp"
#include "storage/recovery.hpp"
#include "support/stats.hpp"
#include "workload/mempool.hpp"

namespace lyra::core {

/// A batch of client transactions carved by the proposer's assembler.
struct PendingBatch {
  Bytes payload;  // serialized transactions
  std::uint32_t tx_count = 0;
  std::uint64_t nominal_bytes = 0;
  std::vector<BatchAssembler::Chunk> chunks;
  std::uint32_t attempts = 0;  // resubmissions after rejection
};

/// One entry of the node's SMR output: a committed (and eventually
/// revealed) batch, in commit order.
struct CommittedBatch {
  SeqNum seq = kNoSeq;
  InstanceId inst;
  crypto::Digest cipher_id{};
  std::uint32_t tx_count = 0;
  TimeNs committed_at = 0;
  TimeNs revealed_at = 0;  // 0 until the payload was reconstructed
  Bytes payload;           // empty until revealed
};

struct NodeStats {
  std::uint64_t proposals = 0;
  std::uint64_t accepted_own = 0;
  std::uint64_t rejected_own = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t dropped_batches = 0;  // resubmission cap reached
  std::uint64_t committed_batches = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t revealed_batches = 0;
  std::uint64_t validations_ok = 0;
  std::uint64_t validations_rejected = 0;
  std::uint64_t instances_joined = 0;
  // Verification memoization (config.memoize_verification): verdicts
  // answered from cache vs. actually computed (and charged).
  std::uint64_t verify_cache_hits = 0;
  std::uint64_t verify_cache_misses = 0;
  Samples decide_rounds;  // DBFT rounds per decision (3-delay ablation)
  Samples prediction_error_ms;  // |seq_i(t) - S_t[i]| at validation
  // Per-phase latency of this node's own batches (milliseconds):
  Samples phase_batch_wait_ms;   // client submit -> proposal
  Samples phase_consensus_ms;    // proposal -> BOC decision
  Samples phase_commit_wait_ms;  // decision -> commit watermark
  Samples phase_reveal_ms;       // commit -> payload reconstruction
};

/// A Lyra SMR node: runs the BOC protocol (Alg. 1-3) for every instance it
/// observes, the Commit protocol (Alg. 4) over the accepted transactions,
/// and the commit-reveal scheme on top. Byzantine behaviours subclass this
/// and override the virtual hooks.
class LyraNode : public sim::Process, public statesync::StateSyncHost {
 public:
  LyraNode(sim::Simulation* sim, net::Network* network, NodeId id,
           const Config& config, const crypto::KeyRegistry* registry);

  void on_start() override;

  /// Injects client transactions directly (tests/examples). `submitted_at`
  /// defaults to now.
  void submit_local(BytesView tx, NodeId reply_to = kNoNode,
                    TimeNs submitted_at = -1);

  // --- read-side API ---
  const Config& config() const { return config_; }
  const std::vector<CommittedBatch>& ledger() const { return ledger_; }
  const NodeStats& stats() const { return stats_; }
  const CommitState& commit_state() const { return commit_; }
  const ordering::DistanceTable& distances() const { return distances_; }
  crypto::Digest chain_hash() const { return chain_hash_; }
  bool warmed_up() const { return warmed_up_; }
  /// True while a restarted node still gates extraction on peer resync.
  bool resync_pending() const { return resync_pending_; }
  /// Distinct non-self repliers counted when the resync gate last opened
  /// (0 = gate never opened post-restart). Lemma 6 needs f+1 of them; the
  /// fuzzer's resync-gate-quorum invariant checks this directly because
  /// the miscount is unobservable from ledgers alone under <= f faults.
  std::uint32_t resync_peer_replies_at_open() const {
    return resync_peer_replies_at_open_;
  }
  /// Last status-update counter published (epoch-strided on restart).
  std::uint64_t status_counter() const { return status_counter_; }
  SeqNum clock_now() const { return clock_.now(); }
  std::size_t live_instances() const { return instances_.size(); }

  /// Invoked for every batch as soon as its payload is revealed, in commit
  /// order per node (execution layer hook: KV store, AMM, ...).
  void set_reveal_hook(std::function<void(const CommittedBatch&)> hook) {
    reveal_hook_ = std::move(hook);
  }

  /// Bounded fee-priority admission in front of the assembler; nullptr
  /// unless config.mempool_capacity > 0 (docs/WORKLOAD.md).
  workload::Mempool* mempool() { return mempool_.get(); }
  const workload::Mempool* mempool() const { return mempool_.get(); }
  /// Runtime capacity change (fuzz admission-flap fault); shrink-evicted
  /// transactions earn their clients a MempoolReject. No-op without a
  /// mempool.
  void set_mempool_capacity(std::size_t capacity);

  // --- durability (src/storage) ---

  /// Installs the durability backend (nullptr = volatile node, the
  /// default; hot paths then pay only an untaken branch). The journal must
  /// outlive the node.
  void set_journal(storage::Journal* journal) { journal_ = journal; }
  storage::Journal* journal() const { return journal_; }

  /// Point-in-time image of the durable state, fed to
  /// Journal::write_snapshot.
  storage::Snapshot make_snapshot() const;

  /// Re-seeds a freshly constructed node from recovered on-disk state.
  /// Call before on_start(): rebuilds the accepted set, ledger, chain
  /// hash, and reveal bookkeeping, and skips the status counter to a new
  /// epoch so this incarnation's piggybacks never look stale to peers.
  void restore(const storage::RecoveredState& recovered);

  // --- peer state transfer & catch-up (src/statesync) ---

  /// Creates this node's StateSyncManager so it serves peer sync requests
  /// and can itself sync/catch up. Without it, 4xx messages are dropped.
  void enable_state_sync(statesync::StateSyncConfig cfg = {});
  statesync::StateSyncManager* statesync() { return statesync_.get(); }
  const statesync::StateSyncManager* statesync() const {
    return statesync_.get();
  }

  // StateSyncHost (callbacks driven by the manager; public because the
  // interface is, but not meant for direct use).
  NodeId sync_self() const override;
  void sync_send(NodeId to, std::shared_ptr<LyraMsg> msg) override;
  void sync_broadcast(std::shared_ptr<LyraMsg> msg) override;
  std::uint64_t sync_set_timer(TimeNs delay,
                               std::function<void()> fn) override;
  void sync_charge_hash(std::size_t bytes) override;
  std::uint64_t sync_ledger_length() const override;
  std::vector<AcceptedEntry> sync_committed_entries(
      std::uint64_t first, std::size_t count) const override;
  bool sync_lookup_reveal(const crypto::Digest& cipher_id,
                          crypto::Digest& payload_digest,
                          std::uint32_t& tx_count,
                          Bytes& payload) const override;
  bool sync_verify_payload(BytesView payload,
                           const crypto::Digest& digest) const override;
  bool sync_install_prefix(const std::vector<AcceptedEntry>& entries) override;
  std::vector<crypto::Digest> sync_unrevealed(std::size_t limit) const override;
  bool sync_install_payload(const crypto::Digest& cipher_id,
                            const Bytes& payload,
                            const crypto::Digest& payload_digest,
                            std::uint32_t tx_count) override;
  void sync_completed() override;

 protected:
  void on_message(const sim::Envelope& env) override;

  // --- Byzantine-overridable behaviour hooks ---

  /// validation-function (Alg. 4 lines 62-69): Eq. 1 prediction check,
  /// acceptance window, and the §VI-D future bound.
  virtual bool validate_init(const InitMsg& m, SeqNum perceived,
                             SeqNum requested) const;

  /// S_t = {s_ref + d_ij} (Alg. 2 line 28).
  virtual std::vector<SeqNum> build_predictions(SeqNum s_ref) const;

  /// Commit-protocol piggyback values (Alg. 4 lines 74-77).
  virtual void fill_status(StatusPiggyback& status, bool broadcast);

  /// Whether to take part in an instance at all (silent-Byzantine hook).
  virtual bool participate(const InstanceId& inst) const;

  // --- proposing ---
  void maybe_propose();
  void flush_partial_batch();
  void arm_batch_timer();
  void propose_batch(PendingBatch batch);
  /// Admits open-loop submissions; rejected/evicted transactions earn
  /// their clients a MempoolReject (grouped per client).
  void admit_workload(NodeId from,
                      const std::vector<workload::WorkloadTx>& txs);
  void send_mempool_rejects(
      const std::map<NodeId, std::vector<std::uint64_t>>& rejects);
  /// Carves the highest-fee mempool transactions into a batch whose
  /// chunks carry per-transaction ids (client-grouped, carve order).
  PendingBatch carve_mempool(std::size_t max_txs);
  /// Settles a mempool-carved batch with the mempool: committed batches
  /// release the carve stash (ids stay deduplicated forever), dropped
  /// batches reinstate their transactions so they compete for the next
  /// carve instead of being duplicate-suppressed while never committed.
  void settle_carved_batch(const std::vector<BatchAssembler::Chunk>& chunks,
                           bool committed);

  // --- message handlers ---
  void handle_submit(const sim::Envelope& env, const SubmitMsg& m);
  void handle_init(const sim::Envelope& env, const InitMsg& m);
  void handle_vote(const sim::Envelope& env, const VoteMsg& m);
  void handle_deliver(const sim::Envelope& env, const DeliverMsg& m);
  void handle_est(const sim::Envelope& env, const EstMsg& m);
  void handle_coord(const sim::Envelope& env, const CoordMsg& m);
  void handle_aux(const sim::Envelope& env, const AuxMsg& m);
  void handle_shares(const sim::Envelope& env, const SharesMsg& m);
  void handle_probe(const sim::Envelope& env, const ProbeMsg& m);
  void handle_probe_reply(const sim::Envelope& env, const ProbeReplyMsg& m);
  void handle_req_init(const sim::Envelope& env);
  void handle_init_relay(const sim::Envelope& env);
  void handle_resync_req(const sim::Envelope& env, const ResyncReqMsg& m);
  void handle_resync_reply(const sim::Envelope& env, const ResyncReplyMsg& m);

  /// Broadcasts the post-restart accepted-set pull; re-arms itself until
  /// f+1 peers answered (see ResyncReqMsg in messages.hpp).
  void send_resync_request();

  // --- BOC machinery ---
  BocInstance& join_instance(const InstanceId& inst);
  void adopt_init(BocInstance& b, std::shared_ptr<const InitMsg> init);
  void vote(BocInstance& b, bool value);
  void try_deliver_one(BocInstance& b);
  void deliver_value(BocInstance& b, Round round, bool value);
  void enter_round(BocInstance& b, Round round);
  void maybe_progress(BocInstance& b);
  void decide(BocInstance& b, bool value);
  void on_round_timer(const InstanceId& inst, Round round);
  void on_expire_timer(const InstanceId& inst);
  void forward_init(BocInstance& b);
  void gc_sweep();

  // --- Commit protocol / reveal ---
  void apply_status(NodeId from, const StatusPiggyback& status);
  void merge_accepted(const AcceptedEntry& entry, NodeId learned_from);
  void schedule_commit_poll();
  void try_commit();
  void try_reveal(const crypto::Digest& cipher_id);
  /// Runs when the cipher of an already-committed entry finally arrives
  /// (Byzantine broadcaster path): share + reveal catch-up.
  void on_cipher_for_committed(const crypto::Digest& cipher_id);
  void finalize_reveal(const crypto::Digest& cipher_id, Bytes payload);
  void notify_clients(const InstanceId& inst, SeqNum seq);

  // --- helpers ---
  crypto::Digest compute_value_id(const InstanceId& inst,
                                  const crypto::Digest& cipher_id,
                                  const std::vector<SeqNum>& preds) const;
  Bytes value_id_bytes(const crypto::Digest& value_id) const;
  template <class Msg>
  void broadcast_msg(std::shared_ptr<Msg> msg);
  template <class Msg>
  void send_msg(NodeId to, std::shared_ptr<Msg> msg);
  bool is_coordinator(Round round) const {
    return id() == (round % config_.n);
  }
  TimeNs ccost(TimeNs base) const { return config_.crypto_cost(base); }
  /// Verifies an INIT signature over `value_id`, optionally through the
  /// memo cache (charges CryptoCosts only when actually verifying).
  bool check_init_sig(const crypto::Digest& value_id,
                      const crypto::Signature& sig, NodeId proposer,
                      std::uint64_t nominal_bytes);
  /// Same for a combined threshold signature over `value_id`.
  bool check_threshold_proof(const crypto::ThresholdSig& proof,
                             const crypto::Digest& value_id);

  // --- state ---
  Config config_;
  const crypto::KeyRegistry* registry_;
  crypto::Signer signer_;
  crypto::VerifyCache verify_cache_;
  crypto::Vss vss_;
  ordering::OrderingClock clock_;
  ordering::DistanceTable distances_;
  CommitState commit_;

  std::unordered_map<InstanceId, BocInstance> instances_;
  std::uint64_t next_proposal_index_ = 0;

  // Proposer-side batch state.
  BatchAssembler assembler_;
  std::unique_ptr<workload::Mempool> mempool_;  // null = legacy direct path
  bool batch_timer_armed_ = false;
  TimeNs next_proposal_at_ = 0;  // NIC pacing floor
  std::unordered_map<InstanceId, PendingBatch> own_batches_;
  std::unordered_map<InstanceId, SeqNum> own_s_ref_;
  std::unordered_map<InstanceId, TimeNs> own_proposed_at_;
  /// Own batches recovered from disk whose clients were never
  /// commit-notified (payload is gone; only the notification chunks
  /// survive). Kept apart from own_batches_ so they neither consume
  /// proposal slots nor look re-proposable.
  std::unordered_map<InstanceId, std::vector<BatchAssembler::Chunk>>
      pending_notify_;

  // Reveal state per accepted cipher.
  struct RevealRecord {
    crypto::VssCipher cipher;
    bool have_cipher = false;
    InstanceId inst;
    SeqNum seq = kNoSeq;
    std::uint32_t tx_count = 0;
    std::vector<crypto::VssShare> shares;
    bool committed = false;
    bool share_broadcast = false;
    bool revealed = false;
    std::size_t ledger_slot = 0;
    /// Digest of the revealed payload (zero until known). Kept after the
    /// payload bytes are dropped so this node can serve state-sync digest
    /// votes; persisted via the reveal WAL record and snapshots.
    crypto::Digest payload_digest{};
  };
  std::unordered_map<crypto::Digest, RevealRecord, crypto::DigestHash>
      reveal_;

  std::vector<CommittedBatch> ledger_;
  crypto::Digest chain_hash_{};
  NodeStats stats_;

  bool warmed_up_ = false;
  std::size_t probes_sent_ = 0;
  std::uint64_t status_counter_ = 0;
  bool commit_poll_scheduled_ = false;
  std::function<void(const CommittedBatch&)> reveal_hook_;
  storage::Journal* journal_ = nullptr;
  std::unique_ptr<statesync::StateSyncManager> statesync_;

  // Post-restart resync gate: no commit extraction until f+1 peers
  // answered the accepted-set pull (restore() arms it, see lyra_node.cpp).
  bool resync_pending_ = false;
  std::vector<bool> resync_replied_;
  std::size_t resync_replies_ = 0;
  std::uint32_t resync_peer_replies_ = 0;
  std::uint32_t resync_peer_replies_at_open_ = 0;
};

template <class Msg>
void LyraNode::broadcast_msg(std::shared_ptr<Msg> msg) {
  fill_status(msg->status, /*broadcast=*/true);
  broadcast(std::move(msg));
}

template <class Msg>
void LyraNode::send_msg(NodeId to, std::shared_ptr<Msg> msg) {
  fill_status(msg->status, /*broadcast=*/false);
  send(to, std::move(msg));
}

}  // namespace lyra::core
