#include "lyra/lyra_node.hpp"

#include <algorithm>

#include "sim/payload_pool.hpp"

#include "support/assert.hpp"
#include "support/mutation.hpp"

namespace lyra::core {

namespace {
/// Clock offsets are deterministic per node id so that a cluster can be
/// assembled in any order: offset_i in [-spread, +spread].
TimeNs offset_for(NodeId id, TimeNs spread, std::uint64_t seed) {
  if (spread == 0) return 0;
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  return rng.next_in_range(-spread, spread);
}
}  // namespace

LyraNode::LyraNode(sim::Simulation* sim, net::Network* network, NodeId id,
                   const Config& config, const crypto::KeyRegistry* registry)
    : Process(sim, network, id),
      config_(config),
      registry_(registry),
      signer_(registry->signer_for(id)),
      vss_(registry, static_cast<std::uint32_t>(config.n),
           static_cast<std::uint32_t>(config.quorum())),
      clock_(sim, offset_for(id, config.clock_offset_spread, 0xc10c)),
      distances_(config.n, config.distance_alpha),
      commit_(config_),
      assembler_(config.batch_size, id) {
  LYRA_ASSERT(config.n > 3 * config.f, "need n > 3f");
  if (config.mempool_capacity > 0) {
    mempool_ = workload::make_fee_priority_mempool(config.mempool_capacity);
  }
}

void LyraNode::on_start() {
  // Heartbeat keeps the Commit protocol moving on idle nodes.
  const auto heartbeat = [this](auto&& self) -> void {
    auto msg = sim::make_payload<HeartbeatMsg>();
    broadcast_msg(msg);
    set_timer(config_.heartbeat_period,
              [this, self] { self(self); });
  };
  set_timer(config_.heartbeat_period,
            [this, heartbeat] { heartbeat(heartbeat); });

  // Warm-up probes to learn the distance table D_i (§IV-B1).
  const auto probe = [this](auto&& self) -> void {
    auto msg = sim::make_payload<ProbeMsg>();
    msg->s_ref = clock_.now();
    msg->pad_bytes = static_cast<std::uint64_t>(config_.batch_size) * 32;
    broadcast_msg(msg);
    ++probes_sent_;
    if (probes_sent_ < config_.warmup_probes) {
      set_timer(config_.probe_period, [this, self] { self(self); });
    }
  };
  set_timer(us(10), [this, probe] { probe(probe); });

  // Periodic Commit-protocol evaluation and instance garbage collection.
  const auto poll = [this](auto&& self) -> void {
    try_commit();
    set_timer(config_.commit_poll, [this, self] { self(self); });
  };
  set_timer(config_.commit_poll, [this, poll] { poll(poll); });

  const auto gc = [this](auto&& self) -> void {
    gc_sweep();
    set_timer(config_.instance_gc_idle, [this, self] { self(self); });
  };
  set_timer(config_.instance_gc_idle, [this, gc] { gc(gc); });

  // A restarted incarnation pulls the accepted entries it slept through
  // before extracting anything (restore() armed the gate).
  if (resync_pending_) send_resync_request();
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void LyraNode::on_message(const sim::Envelope& env) {
  // Ingest cost is parallelized like crypto: the prototype's runtime
  // spreads connection handling over the VM's 16 vCPUs.
  charge(ccost(config_.message_overhead * 16));

  const sim::Payload& p = *env.payload;
  const sim::MsgKind kind = p.kind();

  // Every Lyra protocol message (kInit..kResyncReply, plus the 4xx
  // statesync range) carries the Commit-protocol piggyback; client
  // messages do not.
  const bool statesync_kind = kind >= sim::MsgKind::kSyncManifestReq &&
                              kind <= sim::MsgKind::kRevealReply;
  if ((kind >= sim::MsgKind::kInit && kind <= sim::MsgKind::kResyncReply) ||
      statesync_kind) {
    apply_status(env.from, static_cast<const LyraMsg&>(p).status);
  }
  if (statesync_kind) {
    if (statesync_ != nullptr) statesync_->on_message(env);
    return;
  }

  switch (kind) {
    case sim::MsgKind::kSubmit:
      handle_submit(env, static_cast<const SubmitMsg&>(p));
      break;
    case sim::MsgKind::kInit:
      handle_init(env, static_cast<const InitMsg&>(p));
      break;
    case sim::MsgKind::kVote:
      handle_vote(env, static_cast<const VoteMsg&>(p));
      break;
    case sim::MsgKind::kDeliver:
      handle_deliver(env, static_cast<const DeliverMsg&>(p));
      break;
    case sim::MsgKind::kEst:
      handle_est(env, static_cast<const EstMsg&>(p));
      break;
    case sim::MsgKind::kCoord:
      handle_coord(env, static_cast<const CoordMsg&>(p));
      break;
    case sim::MsgKind::kAux:
      handle_aux(env, static_cast<const AuxMsg&>(p));
      break;
    case sim::MsgKind::kShares:
      handle_shares(env, static_cast<const SharesMsg&>(p));
      break;
    case sim::MsgKind::kProbe:
      handle_probe(env, static_cast<const ProbeMsg&>(p));
      break;
    case sim::MsgKind::kProbeReply:
      handle_probe_reply(env, static_cast<const ProbeReplyMsg&>(p));
      break;
    case sim::MsgKind::kReqInit:
      handle_req_init(env);
      break;
    case sim::MsgKind::kInitRelay:
      handle_init_relay(env);
      break;
    case sim::MsgKind::kResyncReq:
      handle_resync_req(env, static_cast<const ResyncReqMsg&>(p));
      break;
    case sim::MsgKind::kResyncReply:
      handle_resync_reply(env, static_cast<const ResyncReplyMsg&>(p));
      break;
    case sim::MsgKind::kHeartbeat:  // piggyback already applied
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Client intake and proposing (Alg. 2)
// ---------------------------------------------------------------------------

void LyraNode::submit_local(BytesView tx, NodeId reply_to,
                            TimeNs submitted_at) {
  SubmitMsg m;
  m.count = 1;
  m.submitted_at = submitted_at < 0 ? now() : submitted_at;
  m.txs.emplace_back(tx.begin(), tx.end());
  sim::Envelope env;
  env.from = reply_to;
  env.to = id();
  handle_submit(env, m);
}

void LyraNode::handle_submit(const sim::Envelope& env, const SubmitMsg& m) {
  if (mempool_ != nullptr && !m.wtxs.empty()) {
    admit_workload(env.from, m.wtxs);
    maybe_propose();
    if (mempool_ != nullptr && !mempool_->empty()) arm_batch_timer();
    return;
  }
  assembler_.add(env.from, m.count, m.submitted_at, m.txs);
  maybe_propose();
  if (!assembler_.empty()) arm_batch_timer();
}

void LyraNode::admit_workload(NodeId from,
                              const std::vector<workload::WorkloadTx>& txs) {
  std::map<NodeId, std::vector<std::uint64_t>> rejects;
  for (const workload::WorkloadTx& tx : txs) {
    auto result = mempool_->admit(tx);
    if (result.outcome == workload::Mempool::Outcome::kRejected) {
      rejects[tx.client == kNoNode ? from : tx.client].push_back(tx.id);
    }
    for (const workload::WorkloadTx& evicted : result.evicted) {
      rejects[evicted.client].push_back(evicted.id);
    }
  }
  send_mempool_rejects(rejects);
}

void LyraNode::send_mempool_rejects(
    const std::map<NodeId, std::vector<std::uint64_t>>& rejects) {
  for (const auto& [client, ids] : rejects) {
    // Self-submitted transactions (an adversary feeding its own node)
    // have no retry loop to signal.
    if (client == kNoNode || client == id()) continue;
    auto msg = sim::make_payload<MempoolRejectMsg>();
    msg->tx_ids = ids;
    send(client, std::move(msg));
  }
}

void LyraNode::set_mempool_capacity(std::size_t capacity) {
  if (mempool_ == nullptr) return;
  std::map<NodeId, std::vector<std::uint64_t>> rejects;
  for (const workload::WorkloadTx& evicted :
       mempool_->set_capacity(capacity)) {
    rejects[evicted.client].push_back(evicted.id);
  }
  send_mempool_rejects(rejects);
}

PendingBatch LyraNode::carve_mempool(std::size_t max_txs) {
  PendingBatch batch;
  const std::vector<workload::WorkloadTx> txs = mempool_->take(max_txs);
  batch.payload = workload::encode_batch(txs);
  batch.tx_count = static_cast<std::uint32_t>(txs.size());
  batch.nominal_bytes = batch.payload.size();
  for (const workload::WorkloadTx& tx : txs) {
    if (batch.chunks.empty() || batch.chunks.back().client != tx.client) {
      batch.chunks.push_back({tx.client, 0, tx.submitted_at, {}});
    }
    BatchAssembler::Chunk& chunk = batch.chunks.back();
    ++chunk.count;
    chunk.submitted_at = std::min(chunk.submitted_at, tx.submitted_at);
    chunk.tx_ids.push_back(tx.id);
  }
  return batch;
}

void LyraNode::settle_carved_batch(
    const std::vector<BatchAssembler::Chunk>& chunks, bool committed) {
  if (mempool_ == nullptr) return;
  std::vector<std::uint64_t> ids;
  for (const BatchAssembler::Chunk& chunk : chunks) {
    ids.insert(ids.end(), chunk.tx_ids.begin(), chunk.tx_ids.end());
  }
  if (ids.empty()) return;  // assembler-fed batches carry no ids
  if (committed) {
    mempool_->confirm(ids);
    return;
  }
  // Dropped without committing: put the transactions back in contention.
  // Whatever the pool refuses under current pressure gets the standard
  // backpressure signal so the client's retry ladder takes over; without
  // this the ids would stay duplicate-suppressed and the txs could never
  // commit (carved-batch retention liveness bug).
  std::map<NodeId, std::vector<std::uint64_t>> rejects;
  for (const workload::WorkloadTx& tx : mempool_->reinstate(ids)) {
    rejects[tx.client].push_back(tx.id);
  }
  send_mempool_rejects(rejects);
  if (!mempool_->empty()) arm_batch_timer();
}

void LyraNode::arm_batch_timer() {
  if (batch_timer_armed_) return;
  batch_timer_armed_ = true;
  set_timer(config_.batch_timeout, [this] {
    batch_timer_armed_ = false;
    maybe_propose();
    flush_partial_batch();
  });
}

void LyraNode::maybe_propose() {
  if (!warmed_up_) return;
  const auto mempool_full = [this] {
    return mempool_ != nullptr && mempool_->size() >= config_.batch_size;
  };
  while ((assembler_.has_full_batch() || mempool_full()) &&
         own_batches_.size() < config_.max_outstanding_proposals) {
    if (now() < next_proposal_at_) {
      // NIC pacing: let the previous batch's fan-out drain first, or its
      // queueing delay would corrupt the perceived sequence numbers.
      set_timer(next_proposal_at_ - now(), [this] { maybe_propose(); });
      return;
    }
    PendingBatch batch;
    if (assembler_.has_full_batch()) {
      BatchAssembler::Carved carved = assembler_.carve();
      batch.payload = std::move(carved.payload);
      batch.tx_count = carved.tx_count;
      batch.nominal_bytes = carved.nominal_bytes;
      batch.chunks = std::move(carved.chunks);
    } else {
      batch = carve_mempool(config_.batch_size);
    }
    propose_batch(std::move(batch));
  }
}

void LyraNode::flush_partial_batch() {
  const bool mempool_pending = mempool_ != nullptr && !mempool_->empty();
  if (!warmed_up_ || (assembler_.empty() && !mempool_pending)) return;
  if (own_batches_.size() >= config_.max_outstanding_proposals) {
    arm_batch_timer();  // retry once a slot frees up
    return;
  }
  PendingBatch batch;
  if (!assembler_.empty()) {
    BatchAssembler::Carved carved = assembler_.carve();
    batch.payload = std::move(carved.payload);
    batch.tx_count = carved.tx_count;
    batch.nominal_bytes = carved.nominal_bytes;
    batch.chunks = std::move(carved.chunks);
  } else {
    batch = carve_mempool(config_.batch_size);
  }
  propose_batch(std::move(batch));
  // Rare mixed-source case: whichever source still holds transactions
  // flushes on the next timeout.
  if (!assembler_.empty() || (mempool_ != nullptr && !mempool_->empty())) {
    arm_batch_timer();
  }
}

void LyraNode::propose_batch(PendingBatch batch) {
  const InstanceId inst{id(), next_proposal_index_++};
  // Journal the consumed index before the INIT leaves: a restarted node
  // must never reuse an instance id peers may have seen. The client chunks
  // ride along so a restarted incarnation can still commit-notify them
  // (rejected instances leave a dead record behind; it dies with the next
  // snapshot since only still-pending batches are snapshotted).
  if (journal_ != nullptr) {
    journal_->proposal(inst.index);
    storage::OwnBatchRecord rec;
    rec.inst = inst;
    rec.chunks.reserve(batch.chunks.size());
    for (const BatchAssembler::Chunk& chunk : batch.chunks) {
      rec.chunks.push_back({chunk.client, chunk.count, chunk.submitted_at});
    }
    journal_->own_batch(rec);
  }

  // ordered-propose (Alg. 2): remember s_ref, predict S_t, obfuscate,
  // submit to binary consensus by broadcasting the INIT.
  const SeqNum s_ref = clock_.now();
  own_s_ref_[inst] = s_ref;
  own_proposed_at_[inst] = now();
  TimeNs earliest_submit = kMaxSeq;
  for (const auto& chunk : batch.chunks) {
    earliest_submit = std::min(earliest_submit, chunk.submitted_at);
  }
  if (earliest_submit != kMaxSeq) {
    stats_.phase_batch_wait_ms.add(to_ms(now() - earliest_submit));
  }

  auto msg = sim::make_payload<InitMsg>();
  msg->inst = inst;
  msg->predictions = build_predictions(s_ref);
  msg->tx_count = batch.tx_count;
  msg->nominal_bytes = batch.nominal_bytes;

  charge(ccost(config_.costs.vss_encrypt_base) +
         ccost(config_.costs.hash_cost(batch.nominal_bytes)));
  if (config_.obfuscate) {
    msg->cipher = vss_.encrypt(batch.payload, sim().rng());
  } else {
    // Ablation mode: the "cipher" carries the payload in the clear.
    msg->cipher.ciphertext = batch.payload;
    msg->cipher.payload_digest =
        crypto::Hasher().add_str("clear").add(batch.payload).digest();
  }

  const crypto::Digest value_id =
      compute_value_id(inst, msg->cipher.cipher_id(), msg->predictions);
  charge(ccost(config_.costs.sign));
  msg->sig = signer_.sign(value_id_bytes(value_id));

  own_batches_[inst] = std::move(batch);
  ++stats_.proposals;
  if (config_.pacing_bandwidth > 0) {
    const double fanout_bytes = static_cast<double>(msg->wire_size()) *
                                static_cast<double>(config_.n);
    next_proposal_at_ =
        now() + static_cast<TimeNs>(fanout_bytes / config_.pacing_bandwidth *
                                    static_cast<double>(kNsPerSec));
  }
  broadcast_msg(msg);
}

std::vector<SeqNum> LyraNode::build_predictions(SeqNum s_ref) const {
  return distances_.predict(s_ref);
}

// ---------------------------------------------------------------------------
// Validation (Alg. 4 lines 62-69)
// ---------------------------------------------------------------------------

bool LyraNode::validate_init(const InitMsg& m, SeqNum perceived,
                             SeqNum requested) const {
  if (m.predictions.size() != config_.n) return false;
  // Eq. 1: the broadcaster predicted our perceived sequence number within
  // lambda.
  const SeqNum predicted_for_us = m.predictions[id()];
  const SeqNum err = perceived > predicted_for_us
                         ? perceived - predicted_for_us
                         : predicted_for_us - perceived;
  if (err > config_.lambda) return false;
  // Acceptance window: the requested sequence number must not fall into
  // our locally locked prefix (older than L = 3*Delta)...
  if (requested <= perceived - config_.max_latency()) return false;
  // ...nor absurdly far in the future (§VI-D memory-exhaustion defence).
  if (requested > perceived + config_.future_bound) return false;
  return true;
}

bool LyraNode::participate(const InstanceId&) const { return true; }

// ---------------------------------------------------------------------------
// VVB round 1 (Alg. 1)
// ---------------------------------------------------------------------------

BocInstance& LyraNode::join_instance(const InstanceId& inst) {
  auto [it, inserted] = instances_.try_emplace(inst);
  BocInstance& b = it->second;
  if (inserted) {
    b.inst = inst;
    b.vote_one_from.assign(config_.n, false);
    b.vote_zero_from.assign(config_.n, false);
    b.joined_at = now();
    ++stats_.instances_joined;
    enter_round(b, 1);
    // VVB expiration (Alg. 1 line 6/23): fall back to 0 and forward the
    // INIT if the instance makes no progress within E = 2*Delta.
    b.expire_armed = true;
    b.expire_timer =
        set_timer(2 * config_.delta, [this, inst] { on_expire_timer(inst); });
  }
  return b;
}

void LyraNode::handle_init(const sim::Envelope& env, const InitMsg& m) {
  if (!participate(m.inst)) return;
  BocInstance& b = join_instance(m.inst);
  if (b.init) return;  // duplicate or equivocation: first INIT wins
  // Perceive the transaction at its *arrival* time (kernel timestamp),
  // independent of how long the message sat behind a busy handler; CPU
  // queueing must not masquerade as network distance.
  b.perceived = env.delivered_at + clock_.offset();

  // Verify the broadcaster's signature (Alg. 1 line 4) and the batch body.
  const crypto::Digest value_id =
      compute_value_id(m.inst, m.cipher.cipher_id(), m.predictions);
  if (!check_init_sig(value_id, m.sig, m.inst.proposer, m.nominal_bytes)) {
    return;
  }
  adopt_init(b, std::static_pointer_cast<const InitMsg>(env.payload));
}

void LyraNode::adopt_init(BocInstance& b,
                          std::shared_ptr<const InitMsg> init) {
  b.init = std::move(init);
  b.value_id = compute_value_id(b.inst, b.init->cipher.cipher_id(),
                                b.init->predictions);
  if (b.perceived == kNoSeq) b.perceived = clock_.now();  // relay path
  b.requested = b.init->predictions.size() > config_.f
                    ? ordering::DistanceTable::requested_seq(
                          b.init->predictions, config_.f)
                    : kNoSeq;

  // A reveal record may already exist (accepted via a peer's delta before
  // we saw the INIT); attach the cipher now.
  if (const auto it = reveal_.find(b.init->cipher.cipher_id());
      it != reveal_.end() && !it->second.have_cipher) {
    it->second.cipher = b.init->cipher;
    it->second.have_cipher = true;
    it->second.tx_count = b.init->tx_count;
    if (it->second.committed) on_cipher_for_committed(it->first);
  }

  if (!b.voted_one && !b.voted_zero) {
    if (b.init->predictions.size() == config_.n) {
      const SeqNum predicted = b.init->predictions[id()];
      stats_.prediction_error_ms.add(
          to_ms(b.perceived > predicted ? b.perceived - predicted
                                        : predicted - b.perceived));
    }
    b.validated =
        b.requested != kNoSeq && validate_init(*b.init, b.perceived,
                                               b.requested);
    if (b.validated) {
      ++stats_.validations_ok;
      commit_.add_pending(b.init->cipher.cipher_id(), b.requested);
      vote(b, true);
    } else {
      ++stats_.validations_rejected;
      vote(b, false);
    }
  }

  // A DELIVER proof may have arrived before the INIT.
  if (b.proof && !b.round_state(1, config_.n).vv_one) {
    if (check_threshold_proof(*b.proof, b.value_id)) {
      if (!b.deliver_broadcast) {
        b.deliver_broadcast = true;
        auto out = sim::make_payload<DeliverMsg>();
        out->inst = b.inst;
        out->proof = *b.proof;
        broadcast_msg(out);
      }
      deliver_value(b, 1, true);
    }
  }
  maybe_progress(b);
}

void LyraNode::vote(BocInstance& b, bool value) {
  if (value) {
    // VVB-Unicity: a correct process broadcasts 1 (with its validation
    // share) at most once per instance.
    if (b.voted_one) return;
    b.voted_one = true;
    auto msg = sim::make_payload<VoteMsg>();
    msg->inst = b.inst;
    msg->value = true;
    charge(ccost(config_.costs.share_sign));
    msg->share = signer_.share_sign(value_id_bytes(b.value_id));
    msg->perceived = b.perceived;  // distance-table piggyback (§VI-B)
    broadcast_msg(msg);
  } else {
    if (b.voted_zero) return;
    b.voted_zero = true;
    auto msg = sim::make_payload<VoteMsg>();
    msg->inst = b.inst;
    msg->value = false;
    // 0-votes also piggyback the perceived clock (SVI-B): a broadcaster
    // whose predictions went stale (e.g. across GST) must be able to
    // re-learn distances from its rejected proposals.
    msg->perceived = b.perceived;
    broadcast_msg(msg);
  }
}

void LyraNode::handle_vote(const sim::Envelope& env, const VoteMsg& m) {
  if (!participate(m.inst)) return;
  BocInstance& b = join_instance(m.inst);
  const NodeId j = env.from;
  if (j >= config_.n) return;

  // The broadcaster refines d_ij from any voter's perceived sequence
  // number (SIV-B1) -- 1-votes and 0-votes alike.
  if (m.inst.proposer == id() && m.perceived != kNoSeq) {
    if (const auto it = own_s_ref_.find(m.inst); it != own_s_ref_.end()) {
      distances_.observe(j, m.perceived - it->second);
    }
  }

  if (m.value) {
    if (b.vote_one_from[j]) return;
    b.vote_one_from[j] = true;
    ++b.vote_one_count;
    charge(ccost(config_.costs.share_verify));
    b.shares.push_back(m.share);

    try_deliver_one(b);
  } else {
    if (b.vote_zero_from[j]) return;
    b.vote_zero_from[j] = true;
    ++b.vote_zero_count;
    // Alg. 1 line 19: f+1 zeros force a correct process to echo 0.
    if (b.vote_zero_count >= config_.f + 1) vote(b, false);
    if (b.vote_zero_count >= config_.n - config_.f) {
      deliver_value(b, 1, false);
    }
  }
}

void LyraNode::try_deliver_one(BocInstance& b) {
  BocInstance::RoundState& r1 = b.round_state(1, config_.n);
  if (r1.vv_one || !b.init) return;
  if (b.vote_one_count < config_.n - config_.f) return;

  charge(ccost(config_.costs.share_combine));
  const auto proof =
      registry_->share_combine(value_id_bytes(b.value_id), b.shares);
  if (!proof) return;  // some shares were bogus; wait for more votes

  if (!b.deliver_broadcast) {
    b.deliver_broadcast = true;
    auto msg = sim::make_payload<DeliverMsg>();
    msg->inst = b.inst;
    msg->proof = *proof;
    broadcast_msg(msg);
  }
  deliver_value(b, 1, true);
}

void LyraNode::handle_deliver(const sim::Envelope& env, const DeliverMsg& m) {
  if (!participate(m.inst)) return;
  BocInstance& b = join_instance(m.inst);
  if (b.round_state(1, config_.n).vv_one) return;

  if (!b.init) {
    // Keep the proof and pull the INIT we are missing.
    if (!b.proof) {
      b.proof = m.proof;
      auto req = sim::make_payload<ReqInitMsg>();
      req->inst = m.inst;
      send_msg(env.from, req);
    }
    return;
  }

  if (!check_threshold_proof(m.proof, b.value_id)) {
    return;
  }
  if (!b.deliver_broadcast) {
    // Alg. 1 line 17: relay the proof so delivery is uniform.
    b.deliver_broadcast = true;
    auto out = sim::make_payload<DeliverMsg>();
    out->inst = m.inst;
    out->proof = m.proof;
    broadcast_msg(out);
  }
  deliver_value(b, 1, true);
}

void LyraNode::on_expire_timer(const InstanceId& inst) {
  const auto it = instances_.find(inst);
  if (it == instances_.end()) return;
  BocInstance& b = it->second;
  b.expire_armed = false;
  const BocInstance::RoundState& r1 = b.round_state(1, config_.n);
  if (r1.vv_zero || r1.vv_one) return;  // progress was made
  // Alg. 1 line 23: fall back to 0 so some value is eventually delivered,
  // and forward the INIT for VVB-Obligation.
  vote(b, false);
  forward_init(b);
}

void LyraNode::forward_init(BocInstance& b) {
  if (!b.init || b.init_forwarded) return;
  b.init_forwarded = true;
  auto relay = sim::make_payload<InitRelayMsg>();
  relay->inner = b.init;
  broadcast_msg(relay);
}

void LyraNode::handle_req_init(const sim::Envelope& env) {
  const auto* m = sim::payload_as<ReqInitMsg>(env);
  const auto it = instances_.find(m->inst);
  if (it == instances_.end() || !it->second.init) return;
  auto relay = sim::make_payload<InitRelayMsg>();
  relay->inner = it->second.init;
  send_msg(env.from, relay);
}

void LyraNode::handle_init_relay(const sim::Envelope& env) {
  const auto* m = sim::payload_as<InitRelayMsg>(env);
  if (!m->inner) return;
  sim::Envelope inner_env = env;
  inner_env.payload = m->inner;
  handle_init(inner_env, *m->inner);
}

// ---------------------------------------------------------------------------
// Post-restart accepted-set resync
// ---------------------------------------------------------------------------

void LyraNode::send_resync_request() {
  if (!resync_pending_) return;
  auto msg = sim::make_payload<ResyncReqMsg>();
  if (!ledger_.empty()) {
    msg->cursor_seq = ledger_.back().seq;
    msg->cursor_id = ledger_.back().cipher_id;
  }
  broadcast_msg(msg);
  // Re-ask until f+1 peers answered (some may be down themselves).
  set_timer(2 * config_.delta, [this] { send_resync_request(); });
}

void LyraNode::handle_resync_req(const sim::Envelope& env,
                                 const ResyncReqMsg& m) {
  auto reply = sim::make_payload<ResyncReplyMsg>();
  reply->entries = commit_.accepted_after(m.cursor_seq, m.cursor_id);
  send_msg(env.from, reply);
}

void LyraNode::handle_resync_reply(const sim::Envelope& env,
                                   const ResyncReplyMsg& m) {
  // Broadcast loops the request back to us and we answer it like any peer;
  // that self-reply carries nothing we lack and must not count toward the
  // quorum, or only f *other* nodes — possibly all Byzantine — would gate
  // extraction. The mutation hook (docs/FUZZING.md) reverts to the pre-fix
  // counting so the schedule fuzzer can prove its invariants catch it.
  if (env.from == id() &&
      !support::mutation_enabled("resync-self-reply")) {
    return;
  }
  for (const AcceptedEntry& entry : m.entries) merge_accepted(entry, env.from);
  if (!resync_pending_ || env.from >= config_.n ||
      resync_replied_[env.from]) {
    return;
  }
  resync_replied_[env.from] = true;
  if (env.from != id()) ++resync_peer_replies_;
  if (++resync_replies_ <= config_.f) return;
  // f+1 answers: at least one correct peer, whose accepted set covers every
  // extractable entry (Lemma 6). The gate opens.
  resync_peer_replies_at_open_ = resync_peer_replies_;
  resync_pending_ = false;
  LYRA_TRACE("resync", "accepted=" + std::to_string(commit_.accepted_count()));
  try_commit();
}

// ---------------------------------------------------------------------------
// DBFT binary consensus (Alg. 3)
// ---------------------------------------------------------------------------

void LyraNode::enter_round(BocInstance& b, Round round) {
  b.round = round;
  BocInstance::RoundState& rs = b.round_state(round, config_.n);
  const InstanceId inst = b.inst;
  rs.timer_id = set_timer(config_.delta,
                          [this, inst, round] { on_round_timer(inst, round); });
  if (round >= 2) {
    // vv-broadcast of the current estimate (BV-broadcast semantics: the
    // value m is fixed and proven unique by round 1).
    auto msg = sim::make_payload<EstMsg>();
    msg->inst = inst;
    msg->round = round;
    msg->value = b.est;
    (b.est ? rs.est_one_sent : rs.est_zero_sent) = true;
    broadcast_msg(msg);
  }
  maybe_progress(b);
}

void LyraNode::on_round_timer(const InstanceId& inst, Round round) {
  const auto it = instances_.find(inst);
  if (it == instances_.end()) return;
  BocInstance& b = it->second;
  b.round_state(round, config_.n).timer_expired = true;
  if (b.round == round) maybe_progress(b);
}

void LyraNode::handle_est(const sim::Envelope& env, const EstMsg& m) {
  if (!participate(m.inst) || m.round < 2 || env.from >= config_.n) return;
  BocInstance& b = join_instance(m.inst);
  BocInstance::RoundState& rs = b.round_state(m.round, config_.n);

  auto& seen = m.value ? rs.est_one_from : rs.est_zero_from;
  auto& count = m.value ? rs.est_one_count : rs.est_zero_count;
  if (seen[env.from]) return;
  seen[env.from] = true;
  ++count;

  // BV-broadcast: echo after f+1, deliver after 2f+1.
  auto& sent = m.value ? rs.est_one_sent : rs.est_zero_sent;
  if (count >= config_.f + 1 && !sent) {
    sent = true;
    auto echo = sim::make_payload<EstMsg>();
    echo->inst = m.inst;
    echo->round = m.round;
    echo->value = m.value;
    broadcast_msg(echo);
  }
  if (count >= config_.quorum()) {
    deliver_value(b, m.round, m.value);
  }

  // A decided process helps laggards: it joins any later round it observes
  // with its (immutable) decided estimate. This replaces Alg. 3 line 50's
  // fixed two help-rounds without the good-case overhead; see DESIGN.md.
  if (b.decided && !b.done && m.round > b.round) {
    b.est = b.decision;
    enter_round(b, m.round);
  }
}

void LyraNode::handle_coord(const sim::Envelope& env, const CoordMsg& m) {
  if (!participate(m.inst) || env.from >= config_.n) return;
  if (env.from != (m.round % config_.n)) return;  // not this round's coord
  BocInstance& b = join_instance(m.inst);
  BocInstance::RoundState& rs = b.round_state(m.round, config_.n);
  if (rs.coord_value < 0) rs.coord_value = m.value ? 1 : 0;
  if (b.round == m.round) maybe_progress(b);
}

void LyraNode::handle_aux(const sim::Envelope& env, const AuxMsg& m) {
  if (!participate(m.inst) || env.from >= config_.n) return;
  if (!m.has_zero && !m.has_one) return;
  BocInstance& b = join_instance(m.inst);
  BocInstance::RoundState& rs = b.round_state(m.round, config_.n);
  if (rs.aux_from[env.from] != 0) return;
  rs.aux_from[env.from] = static_cast<std::uint8_t>((m.has_zero ? 1 : 0) |
                                                    (m.has_one ? 2 : 0));
  ++rs.aux_count;
  if (b.decided && !b.done && m.round > b.round) {
    b.est = b.decision;
    enter_round(b, m.round);
  }
  if (b.round == m.round) maybe_progress(b);
}

void LyraNode::deliver_value(BocInstance& b, Round round, bool value) {
  BocInstance::RoundState& rs = b.round_state(round, config_.n);
  bool& flag = value ? rs.vv_one : rs.vv_zero;
  if (flag) return;
  flag = true;
  if (b.round == round) maybe_progress(b);
}

void LyraNode::maybe_progress(BocInstance& b) {
  if (b.done || b.round == 0) return;
  BocInstance::RoundState& rs = b.round_state(b.round, config_.n);

  // Coordinator broadcast (Alg. 3 lines 37-39): when exactly one value was
  // delivered, suggest it.
  if (is_coordinator(b.round) && !rs.coord_sent &&
      (rs.vv_zero != rs.vv_one)) {
    rs.coord_sent = true;
    auto msg = sim::make_payload<CoordMsg>();
    msg->inst = b.inst;
    msg->round = b.round;
    msg->value = rs.vv_one;
    broadcast_msg(msg);
  }

  // AUX broadcast (lines 40-42): after the round timer, echo the delivered
  // values, preferring the coordinator's suggestion when we delivered it.
  if (!rs.aux_sent && rs.timer_expired && (rs.vv_zero || rs.vv_one)) {
    rs.aux_sent = true;
    auto msg = sim::make_payload<AuxMsg>();
    msg->inst = b.inst;
    msg->round = b.round;
    const bool coord_usable =
        rs.coord_value >= 0 &&
        ((rs.coord_value == 1 && rs.vv_one) ||
         (rs.coord_value == 0 && rs.vv_zero));
    if (coord_usable) {
      msg->has_zero = rs.coord_value == 0;
      msg->has_one = rs.coord_value == 1;
    } else {
      msg->has_zero = rs.vv_zero;
      msg->has_one = rs.vv_one;
    }
    broadcast_msg(msg);
  }

  // Decision step (lines 43-49): a set s of AUX contents from n-f distinct
  // processes, every value of which we ourselves delivered.
  if (!rs.advanced && rs.aux_count >= config_.n - config_.f) {
    std::size_t usable = 0;
    bool saw_zero = false;
    bool saw_one = false;
    for (NodeId j = 0; j < config_.n; ++j) {
      const std::uint8_t mask = rs.aux_from[j];
      if (mask == 0) continue;
      const bool needs_zero = (mask & 1) != 0;
      const bool needs_one = (mask & 2) != 0;
      if ((needs_zero && !rs.vv_zero) || (needs_one && !rs.vv_one)) continue;
      ++usable;
      saw_zero |= needs_zero;
      saw_one |= needs_one;
    }
    if (usable >= config_.n - config_.f) {
      rs.advanced = true;
      const bool parity = (b.round % 2) == 1;
      if (saw_zero != saw_one) {
        const bool v = saw_one;
        b.est = v;
        if (v == parity && !b.decided) decide(b, v);
      } else {
        b.est = parity;
      }
      if (!b.decided) {
        enter_round(b, b.round + 1);
      }
    }
  }
}

void LyraNode::decide(BocInstance& b, bool value) {
  b.decided = true;
  b.decision = value;
  b.decided_round = b.round;
  b.decided_at = now();
  stats_.decide_rounds.add(static_cast<double>(b.round));
  LYRA_TRACE("decide", "inst=" + std::to_string(b.inst.proposer) + "/" +
                           std::to_string(b.inst.index) +
                           " value=" + std::to_string(value ? 1 : 0) +
                           " round=" + std::to_string(b.round));

  const crypto::Digest cipher_id =
      b.init ? b.init->cipher.cipher_id() : crypto::kZeroDigest;
  if (b.init) commit_.resolve_pending(cipher_id);

  if (value) {
    LYRA_ASSERT(b.init != nullptr, "decided 1 without a delivered value");
    if (b.inst.proposer == id()) {
      ++stats_.accepted_own;
      if (const auto it = own_proposed_at_.find(b.inst);
          it != own_proposed_at_.end()) {
        stats_.phase_consensus_ms.add(to_ms(now() - it->second));
      }
    }
    AcceptedEntry entry;
    entry.cipher_id = cipher_id;
    entry.seq = b.requested;
    entry.inst = b.inst;
    merge_accepted(entry, id());
    try_commit();
  } else if (b.inst.proposer == id()) {
    ++stats_.rejected_own;
    const auto it = own_batches_.find(b.inst);
    if (it != own_batches_.end()) {
      PendingBatch batch = std::move(it->second);
      own_batches_.erase(it);
      own_s_ref_.erase(b.inst);
      if (++batch.attempts <= config_.max_batch_resubmissions) {
        // SMR-Liveness (Lemma 8) rests on correct processes continuously
        // re-inputting rejected transactions; pre-GST rejections are
        // expected, so retry patiently (one Delta) and effectively
        // unboundedly.
        ++stats_.resubmissions;
        set_timer(config_.delta, [this, batch = std::move(batch)]() mutable {
          propose_batch(std::move(batch));
        });
      } else {
        ++stats_.dropped_batches;
        settle_carved_batch(batch.chunks, /*committed=*/false);
      }
    }
  }
}

void LyraNode::gc_sweep() {
  const TimeNs cutoff = now() - config_.instance_gc_idle;
  for (auto it = instances_.begin(); it != instances_.end();) {
    BocInstance& b = it->second;
    if (b.decided && b.decided_at < cutoff) {
      if (b.expire_armed) cancel_timer(b.expire_timer);
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Commit protocol (Alg. 4) and commit-reveal
// ---------------------------------------------------------------------------

void LyraNode::apply_status(NodeId from, const StatusPiggyback& status) {
  if (from >= config_.n) return;
  commit_.on_status(from, status);
  for (const AcceptedEntry& entry : status.accepted_delta) {
    merge_accepted(entry, from);
  }
}

void LyraNode::merge_accepted(const AcceptedEntry& entry, NodeId from) {
  if (!commit_.add_accepted(entry)) return;
  if (journal_ != nullptr) journal_->accepted(entry);
  commit_.resolve_pending(entry.cipher_id);
  RevealRecord& rec = reveal_[entry.cipher_id];
  rec.inst = entry.inst;
  rec.seq = entry.seq;
  if (!rec.have_cipher) {
    const auto it = instances_.find(entry.inst);
    if (it != instances_.end() && it->second.init) {
      rec.cipher = it->second.init->cipher;
      rec.have_cipher = true;
      rec.tx_count = it->second.init->tx_count;
    } else if (from != id()) {
      auto req = sim::make_payload<ReqInitMsg>();
      req->inst = entry.inst;
      send_msg(from, req);
    }
  }
}

void LyraNode::try_commit() {
  commit_.recompute();
  // Post-restart: the accepted set may have holes until f+1 peers answered
  // the resync; extracting across a hole would fork this ledger. Likewise
  // while a snapshot transfer runs: extraction would race the install.
  if (resync_pending_ ||
      (statesync_ != nullptr && statesync_->sync_active())) {
    return;
  }
  const std::vector<AcceptedEntry> wave = commit_.take_committable();
  if (wave.empty()) return;

  auto shares_msg = sim::make_payload<SharesMsg>();
  for (const AcceptedEntry& entry : wave) {
    RevealRecord& rec = reveal_[entry.cipher_id];
    rec.committed = true;
    rec.inst = entry.inst;
    rec.seq = entry.seq;

    CommittedBatch cb;
    cb.seq = entry.seq;
    cb.inst = entry.inst;
    cb.cipher_id = entry.cipher_id;
    cb.tx_count = rec.tx_count;
    cb.committed_at = now();
    rec.ledger_slot = ledger_.size();
    ledger_.push_back(std::move(cb));
    ++stats_.committed_batches;
    if (entry.inst.proposer == id()) {
      if (const auto it = instances_.find(entry.inst);
          it != instances_.end() && it->second.decided) {
        stats_.phase_commit_wait_ms.add(to_ms(now() - it->second.decided_at));
      }
    }

    chain_hash_ = crypto::Hasher()
                      .add(chain_hash_)
                      .add_i64(entry.seq)
                      .add(entry.cipher_id)
                      .digest();
    if (journal_ != nullptr) journal_->committed(entry, rec.tx_count);
    LYRA_TRACE("commit", "seq=" + std::to_string(entry.seq));

    if (!rec.have_cipher) {
      // Share + reveal catch up when the cipher arrives; if it never does
      // (GC'd everywhere), the statesync reveal catch-up fills the hole.
      if (statesync_ != nullptr) statesync_->note_unrevealed_commit();
      continue;
    }
    if (config_.obfuscate) {
      charge(ccost(config_.costs.vss_partial_decrypt));
      const crypto::VssShare share = vss_.partial_decrypt(rec.cipher, signer_);
      rec.shares.push_back(share);
      rec.share_broadcast = true;
      shares_msg->shares.emplace_back(entry.cipher_id, share);
      try_reveal(entry.cipher_id);
    } else {
      finalize_reveal(entry.cipher_id, rec.cipher.ciphertext);
    }
  }
  if (!shares_msg->shares.empty()) broadcast_msg(shares_msg);
  if (journal_ != nullptr && journal_->snapshot_due()) {
    journal_->write_snapshot(make_snapshot());
  }
}

void LyraNode::on_cipher_for_committed(const crypto::Digest& cipher_id) {
  RevealRecord& rec = reveal_[cipher_id];
  if (!rec.committed || rec.revealed || !rec.have_cipher) return;
  if (ledger_.size() > rec.ledger_slot) {
    ledger_[rec.ledger_slot].tx_count = rec.tx_count;
  }
  if (!config_.obfuscate) {
    finalize_reveal(cipher_id, rec.cipher.ciphertext);
    return;
  }
  if (!rec.share_broadcast) {
    charge(ccost(config_.costs.vss_partial_decrypt));
    const crypto::VssShare share = vss_.partial_decrypt(rec.cipher, signer_);
    rec.shares.push_back(share);
    rec.share_broadcast = true;
    auto msg = sim::make_payload<SharesMsg>();
    msg->shares.emplace_back(cipher_id, share);
    broadcast_msg(msg);
  }
  try_reveal(cipher_id);
}

void LyraNode::handle_shares(const sim::Envelope& env, const SharesMsg& m) {
  (void)env;
  for (const auto& [cipher_id, share] : m.shares) {
    RevealRecord& rec = reveal_[cipher_id];
    if (rec.revealed) continue;
    if (rec.shares.size() > config_.n) continue;  // bound Byzantine spam
    const bool duplicate = std::any_of(
        rec.shares.begin(), rec.shares.end(),
        [&](const crypto::VssShare& s) { return s.owner == share.owner; });
    if (!duplicate) {
      rec.shares.push_back(share);
      try_reveal(cipher_id);
    }
  }
}

void LyraNode::try_reveal(const crypto::Digest& cipher_id) {
  RevealRecord& rec = reveal_[cipher_id];
  if (rec.revealed || !rec.committed || !rec.have_cipher) return;
  if (!config_.obfuscate) return;
  if (rec.shares.size() < config_.quorum()) return;

  charge(ccost(config_.costs.vss_combine) +
         ccost(config_.costs.hash_cost(rec.cipher.ciphertext.size())));
  auto payload = vss_.decrypt(rec.cipher, rec.shares);
  if (!payload) return;  // not enough *valid* shares yet
  finalize_reveal(cipher_id, std::move(*payload));
}

void LyraNode::finalize_reveal(const crypto::Digest& cipher_id,
                               Bytes payload) {
  RevealRecord& rec = reveal_[cipher_id];
  LYRA_ASSERT(rec.committed && !rec.revealed, "reveal before commit");
  rec.revealed = true;
  // Normal path: the digest comes from the cipher. Catch-up installs have
  // no cipher; sync_install_payload stamped rec.payload_digest already.
  if (rec.have_cipher) rec.payload_digest = rec.cipher.payload_digest;

  CommittedBatch& cb = ledger_[rec.ledger_slot];
  cb.revealed_at = now();
  cb.tx_count = rec.tx_count != 0 ? rec.tx_count : cb.tx_count;
  if (journal_ != nullptr) {
    journal_->revealed(cipher_id, rec.payload_digest, cb.tx_count);
  }
  cb.payload = std::move(payload);
  ++stats_.revealed_batches;
  stats_.committed_txs += cb.tx_count;

  if (cb.inst.proposer == id() && cb.committed_at > 0) {
    stats_.phase_reveal_ms.add(to_ms(now() - cb.committed_at));
  }
  LYRA_TRACE("reveal", "seq=" + std::to_string(cb.seq) +
                           " txs=" + std::to_string(cb.tx_count));
  if (reveal_hook_) reveal_hook_(cb);
  if (!config_.retain_payloads) {
    cb.payload.clear();
    cb.payload.shrink_to_fit();
  }
  if (cb.inst.proposer == id()) notify_clients(cb.inst, cb.seq);

  // Free the bulky cipher; the instance map still holds the INIT for
  // late ReqInit pulls until GC.
  rec.cipher = crypto::VssCipher{};
  rec.shares.clear();
  rec.shares.shrink_to_fit();
}

void LyraNode::notify_clients(const InstanceId& inst, SeqNum seq) {
  const auto notify = [&](const std::vector<BatchAssembler::Chunk>& chunks) {
    for (const BatchAssembler::Chunk& chunk : chunks) {
      if (chunk.client == kNoNode || chunk.client == id()) continue;
      auto msg = sim::make_payload<CommitNotifyMsg>();
      msg->count = chunk.count;
      msg->submitted_at = chunk.submitted_at;
      msg->seq = seq;
      msg->tx_ids = chunk.tx_ids;
      send(chunk.client, msg);
    }
  };
  const auto it = own_batches_.find(inst);
  if (it != own_batches_.end()) {
    notify(it->second.chunks);
    settle_carved_batch(it->second.chunks, /*committed=*/true);
    own_batches_.erase(it);
    own_s_ref_.erase(inst);
    own_proposed_at_.erase(inst);
    // A proposal slot freed up; drain any backlog.
    maybe_propose();
    if (!assembler_.empty() || (mempool_ != nullptr && !mempool_->empty())) {
      arm_batch_timer();
    }
    return;
  }
  // Replay path: a batch proposed by a pre-crash incarnation just
  // committed+revealed; its clients are still waiting on the notification.
  const auto pit = pending_notify_.find(inst);
  if (pit == pending_notify_.end()) return;
  notify(pit->second);
  pending_notify_.erase(pit);
}

// ---------------------------------------------------------------------------
// Warm-up probes (§IV-B1)
// ---------------------------------------------------------------------------

void LyraNode::handle_probe(const sim::Envelope& env, const ProbeMsg& m) {
  auto reply = sim::make_payload<ProbeReplyMsg>();
  reply->s_ref = m.s_ref;
  reply->perceived = clock_.now();
  send_msg(env.from, reply);
}

void LyraNode::handle_probe_reply(const sim::Envelope& env,
                                  const ProbeReplyMsg& m) {
  if (env.from >= config_.n) return;
  distances_.observe(env.from, m.perceived - m.s_ref);
  if (!warmed_up_ && distances_.ready(config_.n - config_.f)) {
    warmed_up_ = true;
    maybe_propose();
    flush_partial_batch();
  }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void LyraNode::fill_status(StatusPiggyback& status, bool broadcast) {
  status.counter = ++status_counter_;
  status.locked = clock_.now() - config_.max_latency();
  status.min_pending = commit_.min_pending();
  status.committed = commit_.committed();
  status.chain_hash = chain_hash_;
  if (broadcast) {
    status.accepted_delta = commit_.drain_accepted_delta();
  }
}

crypto::Digest LyraNode::compute_value_id(
    const InstanceId& inst, const crypto::Digest& cipher_id,
    const std::vector<SeqNum>& preds) const {
  crypto::Hasher h;
  h.add_str("lyra-value").add_u32(inst.proposer).add_u64(inst.index);
  h.add(cipher_id);
  for (SeqNum s : preds) h.add_i64(s);
  return h.digest();
}

Bytes LyraNode::value_id_bytes(const crypto::Digest& value_id) const {
  return Bytes(value_id.begin(), value_id.end());
}

bool LyraNode::check_init_sig(const crypto::Digest& value_id,
                              const crypto::Signature& sig, NodeId proposer,
                              std::uint64_t nominal_bytes) {
  if (config_.memoize_verification) {
    if (const auto hit = verify_cache_.lookup(proposer, value_id, sig.mac)) {
      ++stats_.verify_cache_hits;
      return *hit;
    }
    ++stats_.verify_cache_misses;
  }
  charge(ccost(config_.costs.verify) +
         ccost(config_.costs.hash_cost(nominal_bytes)));
  const bool ok =
      registry_->verify(value_id_bytes(value_id), sig, proposer);
  if (config_.memoize_verification) {
    verify_cache_.store(proposer, value_id, sig.mac, ok);
  }
  return ok;
}

bool LyraNode::check_threshold_proof(const crypto::ThresholdSig& proof,
                                     const crypto::Digest& value_id) {
  crypto::Digest proof_key{};
  if (config_.memoize_verification) {
    // kNoNode marks threshold entries; real signers are always < n.
    proof_key = crypto::VerifyCache::fold_threshold(proof);
    if (const auto hit = verify_cache_.lookup(kNoNode, value_id, proof_key)) {
      ++stats_.verify_cache_hits;
      return *hit;
    }
    ++stats_.verify_cache_misses;
  }
  charge(ccost(config_.costs.threshold_verify));
  const bool ok =
      registry_->threshold_verify(proof, value_id_bytes(value_id));
  if (config_.memoize_verification) {
    verify_cache_.store(kNoNode, value_id, proof_key, ok);
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Durability (src/storage)
// ---------------------------------------------------------------------------

storage::Snapshot LyraNode::make_snapshot() const {
  storage::Snapshot snap;
  snap.node = id();
  snap.status_counter = status_counter_;
  snap.next_proposal_index = next_proposal_index_;
  snap.committed = commit_.committed();
  // Ledger appends happen in extraction order, so the last ledger entry is
  // exactly the CommitState cursor.
  if (!ledger_.empty()) {
    snap.cursor_seq = ledger_.back().seq;
    snap.cursor_id = ledger_.back().cipher_id;
  }
  snap.chain_hash = chain_hash_;
  snap.accepted = commit_.accepted_snapshot();
  snap.ledger.reserve(ledger_.size());
  for (const CommittedBatch& cb : ledger_) {
    storage::LedgerEntryRecord rec;
    rec.entry.cipher_id = cb.cipher_id;
    rec.entry.seq = cb.seq;
    rec.entry.inst = cb.inst;
    rec.tx_count = cb.tx_count;
    rec.revealed = cb.revealed_at > 0;
    const auto it = reveal_.find(cb.cipher_id);
    if (it != reveal_.end()) {
      rec.share_released = it->second.share_broadcast;
      rec.payload_digest = it->second.payload_digest;
    }
    snap.ledger.push_back(rec);
  }
  // Un-notified own batches: both live ones and replay leftovers from a
  // previous incarnation. Rejected-and-resubmitted instances are absent
  // from both maps, so their stale WAL records die here.
  const auto add_own = [&](const InstanceId& inst,
                           const std::vector<BatchAssembler::Chunk>& chunks) {
    storage::OwnBatchRecord rec;
    rec.inst = inst;
    rec.chunks.reserve(chunks.size());
    for (const BatchAssembler::Chunk& chunk : chunks) {
      rec.chunks.push_back({chunk.client, chunk.count, chunk.submitted_at});
    }
    snap.own_batches.push_back(std::move(rec));
  };
  for (const auto& [inst, batch] : own_batches_) add_own(inst, batch.chunks);
  for (const auto& [inst, chunks] : pending_notify_) add_own(inst, chunks);
  // Hash-map iteration order would otherwise leak into the serialized
  // snapshot (and through it into statesync chunk digests); sort so the
  // bytes depend only on logical state.
  std::sort(snap.own_batches.begin(), snap.own_batches.end(),
            [](const storage::OwnBatchRecord& a,
               const storage::OwnBatchRecord& b) { return a.inst < b.inst; });
  return snap;
}

void LyraNode::restore(const storage::RecoveredState& recovered) {
  LYRA_ASSERT(ledger_.empty() && commit_.accepted_count() == 0,
              "restore on a node that already ran");
  // Any restarted incarnation — even one whose disk was empty — slept
  // through accepted_delta broadcasts; gate extraction until peers fill
  // the holes (see send_resync_request).
  resync_pending_ = true;
  resync_replied_.assign(config_.n, false);
  resync_replies_ = 0;
  resync_peer_replies_ = 0;
  resync_peer_replies_at_open_ = 0;

  // New status-counter epoch: peers that saw pre-crash counters must never
  // treat this incarnation's piggybacks as stale. The recovered value is
  // only a lower bound (the counter is snapshotted, not WAL'd), and a flat
  // +2^32 would collide across repeated crashes with no intervening
  // snapshot — so the skip scales with the durable restart count: every
  // recovered incarnation journals a kRestart marker, and we stride past
  // each one that ran since the base snapshot, plus ourselves.
  status_counter_ = recovered.status_counter +
                    (recovered.restarts + 1) * (1ULL << 32);
  if (!recovered.found) {
    // Wiped or virgin disk: no durable restart count to stride by, so a
    // second wipe would land on the same epoch. Fold the clock in —
    // strictly increasing across restarts, and still far above any
    // pre-crash counter.
    status_counter_ += static_cast<std::uint64_t>(now());
    return;
  }

  next_proposal_index_ = recovered.next_proposal_index;
  commit_.restore_accepted(recovered.accepted);

  ledger_.reserve(recovered.ledger.size());
  for (const storage::LedgerEntryRecord& rec : recovered.ledger) {
    RevealRecord& rr = reveal_[rec.entry.cipher_id];
    rr.inst = rec.entry.inst;
    rr.seq = rec.entry.seq;
    rr.tx_count = rec.tx_count;
    rr.committed = true;
    // The share (if released pre-crash) is public; never re-derive or
    // re-release one the old incarnation did not. The cipher itself is
    // not persisted — a ReqInit pull refills it if a reveal is still due.
    rr.share_broadcast = rec.share_released;
    rr.revealed = rec.revealed;
    rr.payload_digest = rec.payload_digest;
    rr.ledger_slot = ledger_.size();

    CommittedBatch cb;
    cb.seq = rec.entry.seq;
    cb.inst = rec.entry.inst;
    cb.cipher_id = rec.entry.cipher_id;
    cb.tx_count = rec.tx_count;
    cb.committed_at = now();  // recovery instant; original times are gone
    cb.revealed_at = rec.revealed ? now() : 0;
    ledger_.push_back(std::move(cb));

    // Rebuild the running chain hash link by link (real recovery work:
    // charge it to the CPU model).
    charge(ccost(config_.costs.hash_cost(72)));
    chain_hash_ = crypto::Hasher()
                      .add(chain_hash_)
                      .add_i64(rec.entry.seq)
                      .add(rec.entry.cipher_id)
                      .digest();
    ++stats_.committed_batches;
    if (rec.revealed) {
      ++stats_.revealed_batches;
      stats_.committed_txs += rec.tx_count;
    }
  }
  if (!ledger_.empty()) {
    commit_.restore_extraction(ledger_.back().seq, ledger_.back().seq,
                               ledger_.back().cipher_id);
  }

  // Own batches journaled but never client-notified. Notification happens
  // in the same instant as the reveal (finalize_reveal), so a batch whose
  // ledger entry is revealed was notified pre-crash; everything else is
  // queued for replay when its entry finally reveals.
  std::unordered_map<InstanceId, bool> inst_revealed;
  for (const storage::LedgerEntryRecord& rec : recovered.ledger) {
    inst_revealed[rec.entry.inst] = rec.revealed;
  }
  for (const storage::OwnBatchRecord& rec : recovered.own_batches) {
    const auto it = inst_revealed.find(rec.inst);
    if (it != inst_revealed.end() && it->second) continue;  // notified
    std::vector<BatchAssembler::Chunk> chunks;
    chunks.reserve(rec.chunks.size());
    for (const storage::OwnBatchChunk& chunk : rec.chunks) {
      chunks.push_back({chunk.client, chunk.count, chunk.submitted_at, {}});
    }
    pending_notify_.emplace(rec.inst, std::move(chunks));
  }
  LYRA_TRACE("recover",
             "ledger=" + std::to_string(ledger_.size()) +
                 " accepted=" + std::to_string(commit_.accepted_count()) +
                 " replayed=" + std::to_string(recovered.stats.replayed_records));
}

// ---------------------------------------------------------------------------
// Peer state transfer & catch-up (src/statesync)
// ---------------------------------------------------------------------------

void LyraNode::enable_state_sync(statesync::StateSyncConfig cfg) {
  statesync_ = std::make_unique<statesync::StateSyncManager>(
      this, config_.n, config_.f, config_.delta, cfg);
}

NodeId LyraNode::sync_self() const { return id(); }

void LyraNode::sync_send(NodeId to, std::shared_ptr<LyraMsg> msg) {
  fill_status(msg->status, /*broadcast=*/false);
  send(to, std::move(msg));
}

void LyraNode::sync_broadcast(std::shared_ptr<LyraMsg> msg) {
  fill_status(msg->status, /*broadcast=*/true);
  broadcast(std::move(msg));
}

std::uint64_t LyraNode::sync_set_timer(TimeNs delay,
                                       std::function<void()> fn) {
  return set_timer(delay, std::move(fn));
}

void LyraNode::sync_charge_hash(std::size_t bytes) {
  charge(ccost(config_.costs.hash_cost(bytes)));
}

std::uint64_t LyraNode::sync_ledger_length() const { return ledger_.size(); }

std::vector<AcceptedEntry> LyraNode::sync_committed_entries(
    std::uint64_t first, std::size_t count) const {
  std::vector<AcceptedEntry> out;
  if (first >= ledger_.size()) return out;
  count = std::min<std::uint64_t>(count, ledger_.size() - first);
  out.reserve(count);
  // Serve the range out of the durable snapshot image where it covers it —
  // the chunk server then streams from storage instead of walking the
  // resident ledger — and top up the post-snapshot tail from memory.
  if (journal_ != nullptr) {
    journal_->read_ledger_entries(first, count, out);
  }
  for (std::size_t i = first + out.size(); out.size() < count; ++i) {
    AcceptedEntry e;
    e.cipher_id = ledger_[i].cipher_id;
    e.seq = ledger_[i].seq;
    e.inst = ledger_[i].inst;
    out.push_back(e);
  }
  return out;
}

bool LyraNode::sync_lookup_reveal(const crypto::Digest& cipher_id,
                                  crypto::Digest& payload_digest,
                                  std::uint32_t& tx_count,
                                  Bytes& payload) const {
  const auto it = reveal_.find(cipher_id);
  if (it == reveal_.end() || !it->second.revealed) return false;
  payload_digest = it->second.payload_digest;
  tx_count = it->second.tx_count;
  payload.clear();
  if (config_.retain_payloads && ledger_.size() > it->second.ledger_slot) {
    payload = ledger_[it->second.ledger_slot].payload;
  }
  return true;
}

bool LyraNode::sync_verify_payload(BytesView payload,
                                   const crypto::Digest& digest) const {
  // Same digest convention the proposer used (vss.cpp / propose_batch's
  // ablation branch) — which one depends on the deployment's obfuscation
  // setting, which is why this check lives on the node, not the manager.
  const crypto::Digest computed =
      config_.obfuscate
          ? crypto::Hasher().add_str("vss-payload").add(payload).digest()
          : crypto::Hasher().add_str("clear").add(payload).digest();
  return computed == digest;
}

bool LyraNode::sync_install_prefix(
    const std::vector<AcceptedEntry>& entries) {
  // f+1 distinct peers vouched for this prefix, so at least one correct
  // node committed it. Our own ledger was extracted under the same quorum
  // rules; a divergence here would mean the protocol's safety broke.
  // Refuse structurally (the manager renegotiates the cut) instead of
  // aborting — the fuzzer drives this path with injected faults.
  if (entries.size() < ledger_.size()) {
    LYRA_TRACE("statesync", "refused synced cut below the local ledger");
    return false;
  }
  for (std::size_t i = 0; i < ledger_.size(); ++i) {
    if (ledger_[i].cipher_id != entries[i].cipher_id) {
      LYRA_TRACE("statesync",
                 "refused synced cut: local ledger is not a prefix of it");
      return false;
    }
  }
  for (std::size_t i = ledger_.size(); i < entries.size(); ++i) {
    const AcceptedEntry& e = entries[i];
    // An amnesiac proposer must never reuse an instance id that peers
    // already decided; the synced prefix names every committed one.
    if (e.inst.proposer == id()) {
      next_proposal_index_ = std::max(next_proposal_index_, e.inst.index + 1);
    }
    commit_.install_synced(e);
    RevealRecord& rec = reveal_[e.cipher_id];
    rec.inst = e.inst;
    rec.seq = e.seq;
    rec.committed = true;
    rec.ledger_slot = ledger_.size();

    CommittedBatch cb;
    cb.seq = e.seq;
    cb.inst = e.inst;
    cb.cipher_id = e.cipher_id;
    cb.tx_count = rec.tx_count;
    cb.committed_at = now();
    ledger_.push_back(std::move(cb));
    ++stats_.committed_batches;

    charge(ccost(config_.costs.hash_cost(72)));
    chain_hash_ = crypto::Hasher()
                      .add(chain_hash_)
                      .add_i64(e.seq)
                      .add(e.cipher_id)
                      .digest();
    if (journal_ != nullptr) journal_->committed(e, rec.tx_count);
    // The cipher may already be here (InitRelay raced the sync): share and
    // reveal right away instead of waiting for catch-up.
    if (rec.have_cipher) on_cipher_for_committed(e.cipher_id);
  }
  if (!ledger_.empty()) {
    commit_.restore_extraction(
        std::max(commit_.committed(), ledger_.back().seq),
        ledger_.back().seq, ledger_.back().cipher_id);
  }
  LYRA_TRACE("statesync",
             "installed prefix len=" + std::to_string(ledger_.size()));
  return true;
}

std::vector<crypto::Digest> LyraNode::sync_unrevealed(
    std::size_t limit) const {
  std::vector<crypto::Digest> out;
  for (const CommittedBatch& cb : ledger_) {
    if (out.size() >= limit) break;
    const auto it = reveal_.find(cb.cipher_id);
    const bool revealed = it != reveal_.end() && it->second.revealed;
    // A restored entry can be revealed on record yet hold no bytes: the
    // journal keeps the reveal digest, not the payload. When payloads are
    // retained, that is still a hole catch-up must close.
    const bool bytes_missing = config_.retain_payloads && cb.payload.empty();
    if (!revealed || bytes_missing) out.push_back(cb.cipher_id);
  }
  return out;
}

bool LyraNode::sync_install_payload(const crypto::Digest& cipher_id,
                                    const Bytes& payload,
                                    const crypto::Digest& payload_digest,
                                    std::uint32_t tx_count) {
  const auto it = reveal_.find(cipher_id);
  if (it == reveal_.end()) return false;
  RevealRecord& rec = it->second;
  if (!rec.committed) return false;
  if (rec.revealed) {
    // Reveal digest survived in the journal but the bytes did not. Our
    // own durable digest outranks the peer vote quorum: reject anything
    // that does not match it, and only refill — the reveal was already
    // finalized (and clients notified) by the pre-crash incarnation.
    CommittedBatch& cb = ledger_[rec.ledger_slot];
    if (!config_.retain_payloads || !cb.payload.empty()) return false;
    if (payload_digest != rec.payload_digest) return false;
    cb.payload = payload;
    return true;
  }
  rec.payload_digest = payload_digest;
  rec.tx_count = tx_count;
  finalize_reveal(cipher_id, payload);
  return true;
}

void LyraNode::sync_completed() {
  // The install moved the extraction cursor; the commit machinery may
  // already hold entries beyond it. Also cut a snapshot so the adopted
  // prefix does not ride on the WAL alone.
  try_commit();
  if (journal_ != nullptr) journal_->write_snapshot(make_snapshot());
}

}  // namespace lyra::core
