#include "lyra/commit_state.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace lyra::core {

SeqNum quorum_low_watermark(const std::vector<SeqNum>& values,
                            std::size_t quorum) {
  std::vector<SeqNum> known;
  known.reserve(values.size());
  for (SeqNum v : values) {
    if (v != kNoSeq) known.push_back(v);
  }
  if (known.size() < quorum) return kNoSeq;
  // The minimum of the `quorum` highest values is the quorum-th largest:
  // Byzantine peers reporting artificially low values cannot hold the
  // watermark back (Alg. 4 lines 83-85).
  std::nth_element(known.begin(), known.begin() + (quorum - 1), known.end(),
                   std::greater<SeqNum>());
  return known[quorum - 1];
}

CommitState::CommitState(const Config& config)
    : config_(&config),
      peer_locked_(config.n, kNoSeq),
      peer_min_pending_(config.n, kNoSeq),
      peer_status_counter_(config.n, 0) {}

void CommitState::add_pending(const crypto::Digest& cipher_id, SeqNum seq) {
  const auto [it, inserted] = pending_.emplace(cipher_id, seq);
  if (inserted) pending_seqs_.insert(seq);
}

void CommitState::resolve_pending(const crypto::Digest& cipher_id) {
  const auto it = pending_.find(cipher_id);
  if (it == pending_.end()) return;
  const auto seq_it = pending_seqs_.find(it->second);
  LYRA_ASSERT(seq_it != pending_seqs_.end(), "pending multiset out of sync");
  pending_seqs_.erase(seq_it);
  pending_.erase(it);
}

bool CommitState::is_pending(const crypto::Digest& cipher_id) const {
  return pending_.contains(cipher_id);
}

SeqNum CommitState::min_pending() const {
  return pending_seqs_.empty() ? kMaxSeq : *pending_seqs_.begin();
}

bool CommitState::add_accepted(const AcceptedEntry& entry) {
  const auto [it, inserted] =
      accepted_index_.emplace(entry.cipher_id, entry.seq);
  if (!inserted) return false;
  accepted_ordered_.emplace(std::pair{entry.seq, entry.cipher_id}, entry);
  delta_buffer_.push_back(entry);
  if (handed_out_watermark_ != kNoSeq &&
      std::pair{entry.seq, entry.cipher_id} <= cursor_) {
    ++late_accepts_;  // would violate prefix completeness (Lemma 6)
  }
  return true;
}

bool CommitState::is_accepted(const crypto::Digest& cipher_id) const {
  return accepted_index_.contains(cipher_id);
}

void CommitState::on_status(NodeId from, const StatusPiggyback& status) {
  if (from >= peer_locked_.size()) return;
  if (status.counter <= peer_status_counter_[from] && status.counter != 0) {
    return;  // stale (per-channel FIFO makes this rare, but peers restart)
  }
  peer_status_counter_[from] = status.counter;
  peer_locked_[from] = std::max(peer_locked_[from], status.locked);
  peer_min_pending_[from] = status.min_pending;
}

bool CommitState::recompute() {
  const std::size_t q = config_->quorum();
  locked_ = quorum_low_watermark(peer_locked_, q);

  const SeqNum pending_watermark = quorum_low_watermark(peer_min_pending_, q);
  stable_ = (locked_ == kNoSeq || pending_watermark == kNoSeq)
                ? kNoSeq
                : std::min(locked_, pending_watermark);

  const SeqNum before = committed_;
  if (stable_ != kNoSeq) {
    // committed = max accepted sequence number <= stable (Alg. 4 line 87).
    auto last = accepted_ordered_.lower_bound(
        std::pair{stable_ + 1, crypto::Digest{}});
    if (last != accepted_ordered_.begin()) {
      --last;
      committed_ = std::max(committed_, last->first.first);
    }
  }
  return committed_ != before;
}

bool CommitState::has_pending_at_or_below(SeqNum x) const {
  return !pending_seqs_.empty() && *pending_seqs_.begin() <= x;
}

std::vector<AcceptedEntry> CommitState::take_committable() {
  std::vector<AcceptedEntry> out;
  if (committed_ == kNoSeq) return out;
  // wait-pending (Alg. 4 line 90): a pending transaction inside the
  // committed prefix must resolve first; BOC termination guarantees it
  // will.
  if (has_pending_at_or_below(committed_)) return out;

  auto it = handed_out_watermark_ == kNoSeq
                ? accepted_ordered_.begin()
                : accepted_ordered_.upper_bound(cursor_);
  const auto end = accepted_ordered_.lower_bound(
      std::pair{committed_ + 1, crypto::Digest{}});
  for (; it != end; ++it) {
    out.push_back(it->second);
    cursor_ = it->first;
    handed_out_watermark_ = it->first.first;
  }
  return out;
}

std::vector<AcceptedEntry> CommitState::accepted_after(
    SeqNum cursor_seq, const crypto::Digest& cursor_id) const {
  std::vector<AcceptedEntry> out;
  auto it = cursor_seq == kNoSeq
                ? accepted_ordered_.begin()
                : accepted_ordered_.upper_bound(std::pair{cursor_seq,
                                                          cursor_id});
  for (; it != accepted_ordered_.end(); ++it) out.push_back(it->second);
  return out;
}

std::vector<AcceptedEntry> CommitState::accepted_snapshot() const {
  std::vector<AcceptedEntry> out;
  out.reserve(accepted_ordered_.size());
  for (const auto& [key, entry] : accepted_ordered_) out.push_back(entry);
  return out;
}

void CommitState::restore_accepted(const std::vector<AcceptedEntry>& entries) {
  for (const AcceptedEntry& entry : entries) add_accepted(entry);
  delta_buffer_.clear();  // peers saw these before the crash
  late_accepts_ = 0;      // the cursor is restored separately, afterwards
}

void CommitState::restore_extraction(SeqNum committed, SeqNum cursor_seq,
                                     const crypto::Digest& cursor_id) {
  committed_ = committed;
  if (cursor_seq != kNoSeq) {
    cursor_ = {cursor_seq, cursor_id};
    handed_out_watermark_ = cursor_seq;
  }
}

void CommitState::install_synced(const AcceptedEntry& entry) {
  const auto [it, inserted] =
      accepted_index_.emplace(entry.cipher_id, entry.seq);
  if (!inserted) return;
  accepted_ordered_.emplace(std::pair{entry.seq, entry.cipher_id}, entry);
}

std::vector<AcceptedEntry> CommitState::drain_accepted_delta() {
  std::vector<AcceptedEntry> out;
  out.swap(delta_buffer_);
  return out;
}

}  // namespace lyra::core
