#pragma once

#include <vector>

#include "crypto/keys.hpp"
#include "sim/message.hpp"
#include "support/bytes.hpp"
#include "support/types.hpp"

namespace lyra::pompe {

using sim::MsgKind;

/// Phase-1 ordering request (Pompē [32]): the proposer broadcasts its batch
/// in the clear and asks every process for a signed timestamp. The clear
/// payload is exactly what the Fig. 1 front-running attack reads.
struct TsRequestMsg final : sim::Payload {
  crypto::Digest batch_digest{};
  NodeId proposer = kNoNode;
  std::uint32_t tx_count = 0;
  std::uint64_t nominal_bytes = 0;
  Bytes payload;  // transactions in the clear

  const char* name() const override { return "TS_REQUEST"; }
  MsgKind kind() const override { return MsgKind::kTsRequest; }
  std::size_t wire_size() const override { return 120 + nominal_bytes; }
};

/// A process's signed timestamp for one batch.
struct TsReplyMsg final : sim::Payload {
  crypto::Digest batch_digest{};
  SeqNum ts = kNoSeq;
  crypto::Signature sig;  // over (batch_digest, ts)

  const char* name() const override { return "TS_REPLY"; }
  MsgKind kind() const override { return MsgKind::kTsReply; }
  std::size_t wire_size() const override { return 120; }
};

/// One signed timestamp inside a sequencing proof.
struct SignedTs {
  SeqNum ts = kNoSeq;
  crypto::Signature sig;
};

/// Phase-2 announcement: the batch was assigned the median of 2f+1 signed
/// timestamps; the proof carries all of them. Every process verifies every
/// timestamp — the quadratic signature-verification load Lyra's evaluation
/// calls out (§VI-C).
struct SequenceMsg final : sim::Payload {
  crypto::Digest batch_digest{};
  NodeId proposer = kNoNode;
  SeqNum assigned_ts = kNoSeq;
  std::uint32_t tx_count = 0;
  std::uint64_t nominal_bytes = 0;
  std::vector<SignedTs> proof;

  const char* name() const override { return "SEQUENCE"; }
  MsgKind kind() const override { return MsgKind::kSequence; }
  std::size_t wire_size() const override { return 120 + proof.size() * 72; }
};

}  // namespace lyra::pompe
