#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/verify_cache.hpp"
#include "hotstuff/hotstuff_core.hpp"
#include "lyra/batching.hpp"
#include "lyra/messages.hpp"  // client SubmitMsg / CommitNotifyMsg
#include "net/network.hpp"
#include "ordering/ordering_clock.hpp"
#include "pompe/messages.hpp"
#include "sim/process.hpp"
#include "support/stats.hpp"
#include "workload/mempool.hpp"

namespace lyra::pompe {

/// Parameters of a Pompē deployment: same batching and testbed knobs as
/// Lyra's Config so head-to-head runs compare like for like.
struct PompeConfig {
  std::size_t n = 4;
  std::size_t f = 1;
  TimeNs delta = ms(150);
  std::size_t batch_size = 800;
  TimeNs batch_timeout = ms(50);
  TimeNs clock_offset_spread = ms(2);  // NTP-grade skew
  NodeId initial_leader = 0;
  std::uint64_t max_block_bytes = 512 * 1024;
  crypto::CryptoCosts costs;
  double cpu_parallelism = 16.0;
  TimeNs message_overhead = us(1);

  /// Memoize per-node verification verdicts for timestamp signatures
  /// (same semantics as lyra::Config::memoize_verification: verdicts are
  /// unchanged, only cache-hit charges are skipped; off by default).
  bool memoize_verification = false;

  /// Bounded fee-priority mempool in front of batch formation — same
  /// semantics as lyra::Config::mempool_capacity, 0 = off (the default,
  /// bit-identical legacy behaviour).
  std::size_t mempool_capacity = 0;

  std::size_t quorum() const { return 2 * f + 1; }
};

struct PompeStats {
  std::uint64_t proposals = 0;        // phase-1 batches started
  std::uint64_t sequenced = 0;        // batches with a timestamp proof
  std::uint64_t committed_batches = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t proof_verifications = 0;  // individual timestamp sigs
  // Verification memoization (PompeConfig::memoize_verification).
  std::uint64_t verify_cache_hits = 0;
  std::uint64_t verify_cache_misses = 0;
};

/// One committed batch in Pompē's output, ordered by assigned timestamp
/// within each committed block.
struct PompeCommitted {
  SeqNum assigned_ts = kNoSeq;
  crypto::Digest batch_digest{};
  NodeId proposer = kNoNode;
  std::uint32_t tx_count = 0;
  TimeNs committed_at = 0;
  std::uint64_t block_height = 0;
};

/// A Pompē replica (Zhang et al., OSDI'20, rebuilt per DESIGN.md): phase 1
/// collects 2f+1 signed timestamps and assigns their median; phase 2 runs
/// the sequenced batches through chained HotStuff. Leader-based: the
/// HotStuff leader carries every batch to every replica.
class PompeNode : public sim::Process {
 public:
  PompeNode(sim::Simulation* sim, net::Network* network, NodeId id,
            const PompeConfig& config, const crypto::KeyRegistry* registry);

  void on_start() override;

  void submit_local(BytesView tx, NodeId reply_to = kNoNode,
                    TimeNs submitted_at = -1);

  const PompeConfig& config() const { return config_; }
  const std::vector<PompeCommitted>& ledger() const { return ledger_; }
  const PompeStats& stats() const { return stats_; }
  const hotstuff::HotStuffCore& hotstuff() const { return hotstuff_; }
  hotstuff::HotStuffCore& hotstuff() { return hotstuff_; }
  SeqNum clock_now() const { return clock_.now(); }

  /// Payload of a batch this node stores (empty if unknown). Used by the
  /// execution layer and the attack demos.
  const Bytes* batch_payload(const crypto::Digest& digest) const;

  /// Called for every committed batch in execution order.
  void set_commit_hook(std::function<void(const PompeCommitted&)> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Bounded fee-priority admission (nullptr unless mempool_capacity > 0).
  workload::Mempool* mempool() { return mempool_.get(); }
  const workload::Mempool* mempool() const { return mempool_.get(); }
  /// Runtime capacity change (fuzz admission-flap fault); shrink-evicted
  /// transactions earn their clients a MempoolReject.
  void set_mempool_capacity(std::size_t capacity);

 protected:
  void on_message(const sim::Envelope& env) override;

  // --- Byzantine/attack hooks ---
  /// Timestamp this node reports for a batch (Byzantine nodes may skew it).
  virtual SeqNum timestamp_for(const TsRequestMsg& m);
  /// Observation hook: every clear-text batch this node receives in
  /// phase 1 (the front-runner taps this).
  virtual void observe_batch(const TsRequestMsg& m) { (void)m; }

  void handle_submit(const sim::Envelope& env, const core::SubmitMsg& m);
  void maybe_propose();
  void flush_partial_batch();
  void propose_carved(core::BatchAssembler::Carved carved);
  void admit_workload(NodeId from,
                      const std::vector<workload::WorkloadTx>& txs);
  void send_mempool_rejects(
      const std::map<NodeId, std::vector<std::uint64_t>>& rejects);
  core::BatchAssembler::Carved carve_mempool(std::size_t max_txs);
  void arm_batch_timer();
  void handle_ts_request(const sim::Envelope& env, const TsRequestMsg& m);
  void handle_ts_reply(const sim::Envelope& env, const TsReplyMsg& m);
  void handle_sequence(const sim::Envelope& env, const SequenceMsg& m);
  void on_block_commit(const hotstuff::Block& block);

  Bytes ts_message(const crypto::Digest& digest, SeqNum ts) const;
  TimeNs ccost(TimeNs base) const {
    return static_cast<TimeNs>(static_cast<double>(base) /
                               config_.cpu_parallelism);
  }
  /// Verifies one signed timestamp, optionally through the memo cache
  /// (charges the modeled verify cost only when actually verifying).
  /// `count_proof` ticks stats_.proof_verifications for computed checks.
  bool check_ts_sig(const crypto::Digest& batch_digest, SeqNum ts,
                    const crypto::Signature& sig, NodeId signer,
                    bool count_proof);

  PompeConfig config_;
  const crypto::KeyRegistry* registry_;
  crypto::Signer signer_;
  crypto::VerifyCache verify_cache_;
  ordering::OrderingClock clock_;
  hotstuff::HotStuffCore hotstuff_;

  // Proposer-side batch accumulation (same closed-loop client protocol as
  // Lyra).
  struct OwnBatch {
    Bytes payload;
    std::uint32_t tx_count = 0;
    std::uint64_t nominal_bytes = 0;
    std::vector<core::BatchAssembler::Chunk> chunks;
    std::vector<SignedTs> replies;
    std::vector<bool> replied;
    bool sequenced = false;
  };
  core::BatchAssembler assembler_;
  std::unique_ptr<workload::Mempool> mempool_;  // null = legacy direct path
  bool batch_timer_armed_ = false;

  std::unordered_map<crypto::Digest, OwnBatch, crypto::DigestHash>
      own_batches_;

  // Batches observed in phase 1 (payload store) and sequencing state.
  struct KnownBatch {
    Bytes payload;
    NodeId proposer = kNoNode;
    std::uint32_t tx_count = 0;
  };
  std::unordered_map<crypto::Digest, KnownBatch, crypto::DigestHash> known_;
  std::vector<hotstuff::BlockEntry> proposable_;
  std::unordered_set<crypto::Digest, crypto::DigestHash> seen_sequenced_;
  std::unordered_set<crypto::Digest, crypto::DigestHash> executed_;

  std::vector<PompeCommitted> ledger_;
  PompeStats stats_;
  std::function<void(const PompeCommitted&)> commit_hook_;
};

}  // namespace lyra::pompe
