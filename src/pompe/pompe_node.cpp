#include "pompe/pompe_node.hpp"

#include <algorithm>

#include "sim/payload_pool.hpp"

#include "support/assert.hpp"

namespace lyra::pompe {

namespace {
TimeNs offset_for(NodeId id, TimeNs spread) {
  if (spread == 0) return 0;
  Rng rng(0x90'4d'be ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  return rng.next_in_range(-spread, spread);
}
}  // namespace

PompeNode::PompeNode(sim::Simulation* sim, net::Network* network, NodeId id,
                     const PompeConfig& config,
                     const crypto::KeyRegistry* registry)
    : Process(sim, network, id),
      config_(config),
      registry_(registry),
      signer_(registry->signer_for(id)),
      clock_(sim, offset_for(id, config.clock_offset_spread)),
      assembler_(config.batch_size, id),
      hotstuff_(
          [&] {
            hotstuff::HotStuffCore::Options o;
            o.n = config.n;
            o.f = config.f;
            o.self = id;
            o.initial_leader = config.initial_leader;
            o.max_block_bytes = config.max_block_bytes;
            o.view_timeout = 10 * config.delta;
            o.costs = config.costs;
            o.cpu_parallelism = config.cpu_parallelism;
            return o;
          }(),
          registry,
          hotstuff::HotStuffCore::Hooks{
              .broadcast = [this](sim::PayloadPtr p) { broadcast(std::move(p)); },
              .send = [this](NodeId to,
                             sim::PayloadPtr p) { send(to, std::move(p)); },
              .set_timer =
                  [this](TimeNs delay, std::function<void()> fn) {
                    set_timer(delay, std::move(fn));
                  },
              .charge = [this](TimeNs cost) { charge(cost); },
              .collect =
                  [this](std::uint64_t max_bytes) {
                    std::vector<hotstuff::BlockEntry> out;
                    std::uint64_t used = 0;
                    while (!proposable_.empty()) {
                      const auto& e = proposable_.front();
                      const std::uint64_t sz =
                          64 + e.nominal_bytes + e.proof_bytes;
                      if (used + sz > max_bytes && !out.empty()) break;
                      used += sz;
                      out.push_back(e);
                      proposable_.erase(proposable_.begin());
                    }
                    return out;
                  },
              .on_commit =
                  [this](const hotstuff::Block& b) { on_block_commit(b); },
          }) {
  LYRA_ASSERT(config.n > 3 * config.f, "need n > 3f");
  if (config.mempool_capacity > 0) {
    mempool_ = workload::make_fee_priority_mempool(config.mempool_capacity);
  }
}

void PompeNode::on_start() { hotstuff_.on_start(); }

void PompeNode::on_message(const sim::Envelope& env) {
  charge(config_.message_overhead);
  const sim::Payload& p = *env.payload;
  switch (p.kind()) {
    case sim::MsgKind::kSubmit:
      handle_submit(env, static_cast<const core::SubmitMsg&>(p));
      break;
    case sim::MsgKind::kTsRequest:
      handle_ts_request(env, static_cast<const TsRequestMsg&>(p));
      break;
    case sim::MsgKind::kTsReply:
      handle_ts_reply(env, static_cast<const TsReplyMsg&>(p));
      break;
    case sim::MsgKind::kSequence:
      handle_sequence(env, static_cast<const SequenceMsg&>(p));
      break;
    default:
      hotstuff_.handle(env);
      break;
  }
}

// ---------------------------------------------------------------------------
// Client intake (same protocol as Lyra's)
// ---------------------------------------------------------------------------

void PompeNode::submit_local(BytesView tx, NodeId reply_to,
                             TimeNs submitted_at) {
  core::SubmitMsg m;
  m.count = 1;
  m.submitted_at = submitted_at < 0 ? now() : submitted_at;
  m.txs.emplace_back(tx.begin(), tx.end());
  sim::Envelope env;
  env.from = reply_to;
  env.to = id();
  handle_submit(env, m);
}

void PompeNode::handle_submit(const sim::Envelope& env,
                              const core::SubmitMsg& m) {
  if (mempool_ != nullptr && !m.wtxs.empty()) {
    admit_workload(env.from, m.wtxs);
    maybe_propose();
    if (mempool_ != nullptr && !mempool_->empty()) arm_batch_timer();
    return;
  }
  assembler_.add(env.from, m.count, m.submitted_at, m.txs);
  maybe_propose();
  if (!assembler_.empty()) arm_batch_timer();
}

void PompeNode::arm_batch_timer() {
  if (batch_timer_armed_) return;
  batch_timer_armed_ = true;
  set_timer(config_.batch_timeout, [this] {
    batch_timer_armed_ = false;
    maybe_propose();
    flush_partial_batch();
  });
}

void PompeNode::admit_workload(NodeId from,
                               const std::vector<workload::WorkloadTx>& txs) {
  std::map<NodeId, std::vector<std::uint64_t>> rejects;
  for (const workload::WorkloadTx& tx : txs) {
    auto result = mempool_->admit(tx);
    if (result.outcome == workload::Mempool::Outcome::kRejected) {
      rejects[tx.client == kNoNode ? from : tx.client].push_back(tx.id);
    }
    for (const workload::WorkloadTx& evicted : result.evicted) {
      rejects[evicted.client].push_back(evicted.id);
    }
  }
  send_mempool_rejects(rejects);
}

void PompeNode::send_mempool_rejects(
    const std::map<NodeId, std::vector<std::uint64_t>>& rejects) {
  for (const auto& [client, ids] : rejects) {
    if (client == kNoNode || client == id()) continue;
    auto msg = sim::make_payload<core::MempoolRejectMsg>();
    msg->tx_ids = ids;
    send(client, std::move(msg));
  }
}

void PompeNode::set_mempool_capacity(std::size_t capacity) {
  if (mempool_ == nullptr) return;
  std::map<NodeId, std::vector<std::uint64_t>> rejects;
  for (const workload::WorkloadTx& evicted :
       mempool_->set_capacity(capacity)) {
    rejects[evicted.client].push_back(evicted.id);
  }
  send_mempool_rejects(rejects);
}

core::BatchAssembler::Carved PompeNode::carve_mempool(std::size_t max_txs) {
  core::BatchAssembler::Carved carved;
  const std::vector<workload::WorkloadTx> txs = mempool_->take(max_txs);
  carved.payload = workload::encode_batch(txs);
  carved.tx_count = static_cast<std::uint32_t>(txs.size());
  carved.nominal_bytes = carved.payload.size();
  for (const workload::WorkloadTx& tx : txs) {
    if (carved.chunks.empty() || carved.chunks.back().client != tx.client) {
      carved.chunks.push_back({tx.client, 0, tx.submitted_at, {}});
    }
    core::BatchAssembler::Chunk& chunk = carved.chunks.back();
    ++chunk.count;
    chunk.submitted_at = std::min(chunk.submitted_at, tx.submitted_at);
    chunk.tx_ids.push_back(tx.id);
  }
  return carved;
}

void PompeNode::maybe_propose() {
  while (assembler_.has_full_batch()) propose_carved(assembler_.carve());
  while (mempool_ != nullptr && mempool_->size() >= config_.batch_size) {
    propose_carved(carve_mempool(config_.batch_size));
  }
}

void PompeNode::flush_partial_batch() {
  if (!assembler_.empty()) propose_carved(assembler_.carve());
  if (mempool_ != nullptr && !mempool_->empty()) {
    propose_carved(carve_mempool(config_.batch_size));
  }
}

void PompeNode::propose_carved(core::BatchAssembler::Carved carved) {
  auto msg = sim::make_payload<TsRequestMsg>();
  msg->proposer = id();
  msg->tx_count = carved.tx_count;
  msg->nominal_bytes = carved.nominal_bytes;
  msg->payload = std::move(carved.payload);
  msg->batch_digest =
      crypto::Hasher().add_str("pompe-batch").add(msg->payload).digest();
  charge(ccost(config_.costs.hash_cost(msg->nominal_bytes)));

  OwnBatch own;
  own.payload = msg->payload;
  own.tx_count = msg->tx_count;
  own.nominal_bytes = msg->nominal_bytes;
  own.chunks = std::move(carved.chunks);
  own.replied.assign(config_.n, false);
  own_batches_.emplace(msg->batch_digest, std::move(own));

  ++stats_.proposals;
  broadcast(std::move(msg));
}

// ---------------------------------------------------------------------------
// Phase 1: ordering by 2f+1 signed timestamps
// ---------------------------------------------------------------------------

SeqNum PompeNode::timestamp_for(const TsRequestMsg& m) {
  (void)m;
  return clock_.now();
}

void PompeNode::handle_ts_request(const sim::Envelope& env,
                                  const TsRequestMsg& m) {
  // Store the payload for execution; the batch travels in the clear —
  // which is exactly what a front-running observer exploits.
  if (!known_.contains(m.batch_digest)) {
    known_.emplace(m.batch_digest,
                   KnownBatch{m.payload, m.proposer, m.tx_count});
    charge(ccost(config_.costs.hash_cost(m.nominal_bytes)));
  }
  observe_batch(m);

  auto reply = sim::make_payload<TsReplyMsg>();
  reply->batch_digest = m.batch_digest;
  reply->ts = timestamp_for(m);
  charge(ccost(config_.costs.sign));
  reply->sig = signer_.sign(ts_message(m.batch_digest, reply->ts));
  send(env.from, std::move(reply));
}

void PompeNode::handle_ts_reply(const sim::Envelope& env,
                                const TsReplyMsg& m) {
  const auto it = own_batches_.find(m.batch_digest);
  if (it == own_batches_.end() || it->second.sequenced) return;
  OwnBatch& own = it->second;
  if (env.from >= config_.n || own.replied[env.from]) return;

  if (!check_ts_sig(m.batch_digest, m.ts, m.sig, env.from,
                    /*count_proof=*/false)) {
    return;
  }
  own.replied[env.from] = true;
  own.replies.push_back({m.ts, m.sig});
  if (own.replies.size() < config_.quorum()) return;

  // Assign the median of the first 2f+1 valid timestamps (Pompē: the
  // median of any 2f+1 lies within the range of correct clocks).
  own.sequenced = true;
  ++stats_.sequenced;
  std::vector<SignedTs> proof = own.replies;
  std::sort(proof.begin(), proof.end(),
            [](const SignedTs& a, const SignedTs& b) { return a.ts < b.ts; });
  const SeqNum assigned = proof[config_.f].ts;  // median of 2f+1

  auto msg = sim::make_payload<SequenceMsg>();
  msg->batch_digest = m.batch_digest;
  msg->proposer = id();
  msg->assigned_ts = assigned;
  msg->tx_count = own.tx_count;
  msg->nominal_bytes = own.nominal_bytes;
  msg->proof = std::move(proof);
  broadcast(std::move(msg));
}

void PompeNode::handle_sequence(const sim::Envelope& env,
                                const SequenceMsg& m) {
  (void)env;
  if (seen_sequenced_.contains(m.batch_digest)) return;
  if (m.proof.size() < config_.quorum()) return;

  // Verify every signed timestamp in the proof — each node pays 2f+1
  // verifications per batch from every proposer: the quadratic load.
  std::vector<bool> signer_seen(config_.n, false);
  std::size_t valid = 0;
  std::vector<SeqNum> ts_values;
  for (const SignedTs& st : m.proof) {
    const NodeId who = st.sig.signer;
    if (who >= config_.n || signer_seen[who]) {
      // Malformed or duplicate signer: screening still pays one verify.
      charge(ccost(config_.costs.verify));
      ++stats_.proof_verifications;
      continue;
    }
    if (!check_ts_sig(m.batch_digest, st.ts, st.sig, who,
                      /*count_proof=*/true)) {
      continue;
    }
    signer_seen[who] = true;
    ++valid;
    ts_values.push_back(st.ts);
  }
  if (valid < config_.quorum()) return;
  std::sort(ts_values.begin(), ts_values.end());
  if (ts_values[config_.f] != m.assigned_ts) return;  // median mismatch

  seen_sequenced_.insert(m.batch_digest);
  LYRA_TRACE("sequence", "ts=" + std::to_string(m.assigned_ts) +
                             " proposer=" + std::to_string(m.proposer));
  hotstuff::BlockEntry entry;
  entry.batch_digest = m.batch_digest;
  entry.assigned_ts = m.assigned_ts;
  entry.proposer = m.proposer;
  entry.tx_count = m.tx_count;
  entry.nominal_bytes = m.nominal_bytes;
  entry.proof_bytes = m.proof.size() * 72;
  proposable_.push_back(entry);
  hotstuff_.kick();
}

// ---------------------------------------------------------------------------
// Phase 2: execution on HotStuff commit
// ---------------------------------------------------------------------------

void PompeNode::on_block_commit(const hotstuff::Block& block) {
  // Execute the block's batches in assigned-timestamp order (Pompē orders
  // by sequence number); blocks themselves commit in chain order.
  std::vector<hotstuff::BlockEntry> entries = block.entries;
  std::sort(entries.begin(), entries.end(),
            [](const hotstuff::BlockEntry& a, const hotstuff::BlockEntry& b) {
              return std::pair{a.assigned_ts, a.batch_digest} <
                     std::pair{b.assigned_ts, b.batch_digest};
            });
  for (const hotstuff::BlockEntry& e : entries) {
    if (!executed_.insert(e.batch_digest).second) continue;  // view-change dup
    PompeCommitted pc;
    pc.assigned_ts = e.assigned_ts;
    pc.batch_digest = e.batch_digest;
    pc.proposer = e.proposer;
    pc.tx_count = e.tx_count;
    pc.committed_at = now();
    pc.block_height = block.height;
    ledger_.push_back(pc);
    ++stats_.committed_batches;
    stats_.committed_txs += e.tx_count;
    LYRA_TRACE("commit", "ts=" + std::to_string(e.assigned_ts) +
                             " height=" + std::to_string(block.height));
    if (commit_hook_) commit_hook_(pc);

    // Closed-loop client notification by the batch's proposer.
    if (e.proposer == id()) {
      const auto it = own_batches_.find(e.batch_digest);
      if (it != own_batches_.end()) {
        for (const core::BatchAssembler::Chunk& chunk : it->second.chunks) {
          if (chunk.client == kNoNode || chunk.client == id()) continue;
          auto msg = sim::make_payload<core::CommitNotifyMsg>();
          msg->count = chunk.count;
          msg->submitted_at = chunk.submitted_at;
          msg->seq = e.assigned_ts;
          msg->tx_ids = chunk.tx_ids;
          send(chunk.client, std::move(msg));
        }
        if (mempool_ != nullptr) {
          std::vector<std::uint64_t> ids;
          for (const core::BatchAssembler::Chunk& chunk : it->second.chunks) {
            ids.insert(ids.end(), chunk.tx_ids.begin(), chunk.tx_ids.end());
          }
          // Pompē never drops an ordered batch, so commit is the only
          // settlement point for the mempool's carve stash.
          mempool_->confirm(ids);
        }
        own_batches_.erase(it);
      }
    }
  }
}

const Bytes* PompeNode::batch_payload(const crypto::Digest& digest) const {
  const auto it = known_.find(digest);
  return it == known_.end() ? nullptr : &it->second.payload;
}

Bytes PompeNode::ts_message(const crypto::Digest& digest, SeqNum ts) const {
  const crypto::Digest d = crypto::Hasher()
                               .add_str("pompe-ts")
                               .add(digest)
                               .add_i64(ts)
                               .digest();
  return Bytes(d.begin(), d.end());
}

bool PompeNode::check_ts_sig(const crypto::Digest& batch_digest, SeqNum ts,
                             const crypto::Signature& sig, NodeId signer,
                             bool count_proof) {
  crypto::Digest key{};
  if (config_.memoize_verification) {
    key = crypto::VerifyCache::fold_scalar(batch_digest,
                                           static_cast<std::uint64_t>(ts));
    if (const auto hit = verify_cache_.lookup(signer, key, sig.mac)) {
      ++stats_.verify_cache_hits;
      return *hit;
    }
    ++stats_.verify_cache_misses;
  }
  charge(ccost(config_.costs.verify));
  if (count_proof) ++stats_.proof_verifications;
  const bool ok =
      registry_->verify(ts_message(batch_digest, ts), sig, signer);
  if (config_.memoize_verification) {
    verify_cache_.store(signer, key, sig.mac, ok);
  }
  return ok;
}

}  // namespace lyra::pompe
