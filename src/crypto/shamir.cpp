#include "crypto/shamir.hpp"

#include <algorithm>

#include "crypto/gf256.hpp"
#include "support/assert.hpp"

namespace lyra::crypto {

std::vector<ShamirShare> Shamir::split(BytesView secret, std::uint32_t n,
                                       std::uint32_t k, Rng& rng) {
  LYRA_ASSERT(k > 0 && k <= n && n <= 255, "need 0 < k <= n <= 255");

  std::vector<ShamirShare> shares(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    shares[i].x = static_cast<std::uint8_t>(i + 1);
    shares[i].y.resize(secret.size());
  }

  // Draw every random coefficient up front, byte-major — the exact RNG
  // order the original per-byte loop used, so seeded runs reproduce
  // identical shares.
  const std::size_t len = secret.size();
  std::vector<std::uint8_t> coeffs(len * k);
  for (std::size_t byte = 0; byte < len; ++byte) {
    coeffs[byte * k] = secret[byte];
    for (std::uint32_t d = 1; d < k; ++d) {
      coeffs[byte * k + d] = static_cast<std::uint8_t>(rng.next_u64());
    }
  }

  // Evaluate share-major: each share multiplies only by its own x, so one
  // 256-byte product row serves the whole polynomial (Horner at x = i+1).
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t* mul_x = Gf256::row(shares[i].x);
    std::uint8_t* y = shares[i].y.data();
    for (std::size_t byte = 0; byte < len; ++byte) {
      const std::uint8_t* c = &coeffs[byte * k];
      std::uint8_t acc = 0;
      for (std::uint32_t d = k; d-- > 0;) {
        acc = static_cast<std::uint8_t>(mul_x[acc] ^ c[d]);
      }
      y[byte] = acc;
    }
  }
  return shares;
}

std::optional<Bytes> Shamir::combine(const std::vector<ShamirShare>& shares,
                                     std::uint32_t k) {
  if (shares.size() < k || k == 0) return std::nullopt;

  // Use the first k shares; validate distinct x and equal lengths.
  std::vector<const ShamirShare*> used;
  used.reserve(k);
  for (const auto& s : shares) {
    if (s.x == 0) return std::nullopt;
    const bool dup = std::any_of(used.begin(), used.end(), [&](auto* u) {
      return u->x == s.x;
    });
    if (dup) continue;
    if (!used.empty() && s.y.size() != used.front()->y.size()) {
      return std::nullopt;
    }
    used.push_back(&s);
    if (used.size() == k) break;
  }
  if (used.size() < k) return std::nullopt;

  // Lagrange basis at x = 0: l_i(0) = prod_{j != i} x_j / (x_j - x_i).
  std::vector<std::uint8_t> lagrange(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    std::uint8_t num = 1;
    std::uint8_t den = 1;
    for (std::uint32_t j = 0; j < k; ++j) {
      if (i == j) continue;
      num = Gf256::mul(num, used[j]->x);
      den = Gf256::mul(den, Gf256::sub(used[j]->x, used[i]->x));
    }
    lagrange[i] = Gf256::div(num, den);
  }

  const std::size_t len = used.front()->y.size();
  Bytes secret(len, 0);
  for (std::uint32_t i = 0; i < k; ++i) {
    Gf256::mul_xor(secret.data(), used[i]->y.data(), lagrange[i], len);
  }
  return secret;
}

}  // namespace lyra::crypto
