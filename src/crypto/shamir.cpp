#include "crypto/shamir.hpp"

#include <algorithm>

#include "crypto/gf256.hpp"
#include "support/assert.hpp"

namespace lyra::crypto {

std::vector<ShamirShare> Shamir::split(BytesView secret, std::uint32_t n,
                                       std::uint32_t k, Rng& rng) {
  LYRA_ASSERT(k > 0 && k <= n && n <= 255, "need 0 < k <= n <= 255");

  std::vector<ShamirShare> shares(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    shares[i].x = static_cast<std::uint8_t>(i + 1);
    shares[i].y.resize(secret.size());
  }

  std::vector<std::uint8_t> coeffs(k);
  for (std::size_t byte = 0; byte < secret.size(); ++byte) {
    coeffs[0] = secret[byte];
    for (std::uint32_t d = 1; d < k; ++d) {
      coeffs[d] = static_cast<std::uint8_t>(rng.next_u64());
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      // Horner evaluation at x = i+1.
      std::uint8_t acc = 0;
      for (std::uint32_t d = k; d-- > 0;) {
        acc = Gf256::add(Gf256::mul(acc, shares[i].x), coeffs[d]);
      }
      shares[i].y[byte] = acc;
    }
  }
  return shares;
}

std::optional<Bytes> Shamir::combine(const std::vector<ShamirShare>& shares,
                                     std::uint32_t k) {
  if (shares.size() < k || k == 0) return std::nullopt;

  // Use the first k shares; validate distinct x and equal lengths.
  std::vector<const ShamirShare*> used;
  used.reserve(k);
  for (const auto& s : shares) {
    if (s.x == 0) return std::nullopt;
    const bool dup = std::any_of(used.begin(), used.end(), [&](auto* u) {
      return u->x == s.x;
    });
    if (dup) continue;
    if (!used.empty() && s.y.size() != used.front()->y.size()) {
      return std::nullopt;
    }
    used.push_back(&s);
    if (used.size() == k) break;
  }
  if (used.size() < k) return std::nullopt;

  // Lagrange basis at x = 0: l_i(0) = prod_{j != i} x_j / (x_j - x_i).
  std::vector<std::uint8_t> lagrange(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    std::uint8_t num = 1;
    std::uint8_t den = 1;
    for (std::uint32_t j = 0; j < k; ++j) {
      if (i == j) continue;
      num = Gf256::mul(num, used[j]->x);
      den = Gf256::mul(den, Gf256::sub(used[j]->x, used[i]->x));
    }
    lagrange[i] = Gf256::div(num, den);
  }

  const std::size_t len = used.front()->y.size();
  Bytes secret(len);
  for (std::size_t byte = 0; byte < len; ++byte) {
    std::uint8_t acc = 0;
    for (std::uint32_t i = 0; i < k; ++i) {
      acc = Gf256::add(acc, Gf256::mul(lagrange[i], used[i]->y[byte]));
    }
    secret[byte] = acc;
  }
  return secret;
}

}  // namespace lyra::crypto
