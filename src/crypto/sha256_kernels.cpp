#include "crypto/sha256_kernels.hpp"

#include <cstdlib>
#include <cstring>

#if defined(LYRA_SHA256_HAVE_SHANI)
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace lyra::crypto::detail {

namespace {

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

// One round with explicit register naming; callers rotate the argument
// order instead of shuffling eight variables through a..h each round.
#define LYRA_SHA_ROUND(a, b, c, d, e, f, g, h, i)                       \
  do {                                                                  \
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);    \
    const std::uint32_t ch = (e & f) ^ (~e & g);                        \
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];          \
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);    \
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);              \
    d += t1;                                                            \
    h = t1 + s0 + maj;                                                  \
  } while (0)

}  // namespace

void compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t nblocks) {
  std::uint32_t w[64];
  for (; nblocks > 0; --nblocks, blocks += 64) {
    for (int i = 0; i < 16; i += 4) {
      w[i + 0] = load_be32(blocks + 4 * i);
      w[i + 1] = load_be32(blocks + 4 * i + 4);
      w[i + 2] = load_be32(blocks + 4 * i + 8);
      w[i + 3] = load_be32(blocks + 4 * i + 12);
    }
    // Message schedule, four lanes per iteration.
    for (int i = 16; i < 64; i += 4) {
      for (int j = i; j < i + 4; ++j) {
        const std::uint32_t s0 =
            rotr(w[j - 15], 7) ^ rotr(w[j - 15], 18) ^ (w[j - 15] >> 3);
        const std::uint32_t s1 =
            rotr(w[j - 2], 17) ^ rotr(w[j - 2], 19) ^ (w[j - 2] >> 10);
        w[j] = w[j - 16] + s0 + w[j - 7] + s1;
      }
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; i += 8) {
      LYRA_SHA_ROUND(a, b, c, d, e, f, g, h, i + 0);
      LYRA_SHA_ROUND(h, a, b, c, d, e, f, g, i + 1);
      LYRA_SHA_ROUND(g, h, a, b, c, d, e, f, i + 2);
      LYRA_SHA_ROUND(f, g, h, a, b, c, d, e, i + 3);
      LYRA_SHA_ROUND(e, f, g, h, a, b, c, d, i + 4);
      LYRA_SHA_ROUND(d, e, f, g, h, a, b, c, i + 5);
      LYRA_SHA_ROUND(c, d, e, f, g, h, a, b, i + 6);
      LYRA_SHA_ROUND(b, c, d, e, f, g, h, a, i + 7);
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#undef LYRA_SHA_ROUND

#if defined(LYRA_SHA256_HAVE_SHANI)

bool cpu_supports_sha_ni() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool sha = (ebx & (1u << 29)) != 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool ssse3 = (ecx & (1u << 9)) != 0;
  const bool sse41 = (ecx & (1u << 19)) != 0;
  return sha && ssse3 && sse41;
}

// SHA-NI two-rounds-per-instruction kernel, the standard Intel schedule:
// four 16-byte message words cycle through sha256msg1/msg2 while
// sha256rnds2 advances the state two rounds at a time.
__attribute__((target("sha,ssse3,sse4.1"))) void compress_shani(
    std::uint32_t* state, const std::uint8_t* blocks, std::size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  const auto kvec = [](int i) {
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(&kSha256K[i]));
  };

  // state memory order is a..h; the kernel wants ABEF / CDGH lanes.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  for (; nblocks > 0; --nblocks, blocks += 64) {
    const __m128i save0 = state0;
    const __m128i save1 = state1;
    __m128i msg, msgtmp;

    // Rounds 0-3.
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks)), kShuffle);
    msg = _mm_add_epi32(msg0, kvec(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)),
        kShuffle);
    msg = _mm_add_epi32(msg1, kvec(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)),
        kShuffle);
    msg = _mm_add_epi32(msg2, kvec(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)),
        kShuffle);
    msg = _mm_add_epi32(msg3, kvec(12));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-51: three full rotations of the four message registers.
#define LYRA_SHANI_QUAD(m0, m1, m2, m3, k)                \
    msg = _mm_add_epi32(m0, kvec(k));                     \
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);  \
    msgtmp = _mm_alignr_epi8(m0, m3, 4);                  \
    m1 = _mm_add_epi32(m1, msgtmp);                       \
    m1 = _mm_sha256msg2_epu32(m1, m0);                    \
    msg = _mm_shuffle_epi32(msg, 0x0E);                   \
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);  \
    m3 = _mm_sha256msg1_epu32(m3, m0)

    LYRA_SHANI_QUAD(msg0, msg1, msg2, msg3, 16);
    LYRA_SHANI_QUAD(msg1, msg2, msg3, msg0, 20);
    LYRA_SHANI_QUAD(msg2, msg3, msg0, msg1, 24);
    LYRA_SHANI_QUAD(msg3, msg0, msg1, msg2, 28);
    LYRA_SHANI_QUAD(msg0, msg1, msg2, msg3, 32);
    LYRA_SHANI_QUAD(msg1, msg2, msg3, msg0, 36);
    LYRA_SHANI_QUAD(msg2, msg3, msg0, msg1, 40);
    LYRA_SHANI_QUAD(msg3, msg0, msg1, msg2, 44);
    LYRA_SHANI_QUAD(msg0, msg1, msg2, msg3, 48);
#undef LYRA_SHANI_QUAD

    // Rounds 52-55 (schedule for w[56..63] still pending, no more msg1).
    msg = _mm_add_epi32(msg1, kvec(52));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(msg2, kvec(56));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(msg3, kvec(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);
  }

  // ABEF / CDGH back to a..h memory order.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // LYRA_SHA256_HAVE_SHANI

namespace {

struct Backend {
  CompressFn fn;
  const char* name;
};

Backend resolve_backend() {
  const char* force = std::getenv("LYRA_SHA256_BACKEND");
  if (force != nullptr && std::strcmp(force, "scalar") == 0) {
    return {&compress_scalar, "scalar"};
  }
#if defined(LYRA_SHA256_HAVE_SHANI)
  if (cpu_supports_sha_ni()) return {&compress_shani, "sha-ni"};
#endif
  return {&compress_scalar, "scalar"};
}

const Backend& backend() {
  static const Backend b = resolve_backend();
  return b;
}

}  // namespace

void sha256_compress(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t nblocks) {
  backend().fn(state, blocks, nblocks);
}

const char* sha256_backend_name() { return backend().name; }

}  // namespace lyra::crypto::detail
