#include "crypto/hmac.hpp"

#include <array>

namespace lyra::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad.data(), ipad.size());
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad.data(), opad.size());
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finalize();
}

}  // namespace lyra::crypto
