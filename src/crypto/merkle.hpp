#pragma once

#include <vector>

#include "crypto/hash.hpp"
#include "support/bytes.hpp"

namespace lyra::crypto {

/// One step of a Merkle inclusion proof: the sibling digest and whether the
/// sibling sits on the left of the path node.
struct MerkleStep {
  Digest sibling{};
  bool sibling_is_left = false;
};

using MerkleProof = std::vector<MerkleStep>;

/// Binary Merkle tree over leaf digests. The Commit protocol uses Merkle
/// roots "in lieu of older prefixes to reduce message size" (paper §V-C):
/// processes piggyback the root of their accepted-transaction prefix instead
/// of the prefix itself.
///
/// Leaves and interior nodes are domain-separated (leaf = H(0x00 || d),
/// node = H(0x01 || l || r)) so a leaf can never be confused with an
/// interior node. Odd nodes are promoted unhashed to the next level.
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Digest> leaves);

  std::size_t leaf_count() const { return leaf_count_; }

  /// Root of the tree. The empty tree has the all-zero root.
  Digest root() const;

  /// Inclusion proof for the leaf at `index`.
  MerkleProof prove(std::size_t index) const;

  /// Verifies that `leaf` is at `index` in a tree with the given root.
  static bool verify(const Digest& leaf, std::size_t index,
                     const MerkleProof& proof, const Digest& root);

  static Digest hash_leaf(const Digest& d);
  static Digest hash_node(const Digest& left, const Digest& right);

 private:
  std::size_t leaf_count_;
  // levels_[0] = hashed leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

}  // namespace lyra::crypto
