#include "crypto/keys.hpp"

#include <algorithm>

#include "crypto/hmac.hpp"
#include "support/assert.hpp"

namespace lyra::crypto {

namespace {
constexpr std::string_view kSignDomain = "sig";
constexpr std::string_view kShareDomain = "thr";
constexpr std::string_view kSealDomain = "seal";

Bytes domain_tagged(std::string_view domain, BytesView message) {
  Bytes input;
  input.reserve(domain.size() + 1 + message.size());
  append(input, BytesView(reinterpret_cast<const std::uint8_t*>(domain.data()),
                          domain.size()));
  input.push_back(0);
  append(input, message);
  return input;
}
}  // namespace

KeyRegistry::KeyRegistry(std::size_t num_processes, std::size_t threshold,
                         Rng& rng)
    : threshold_(threshold) {
  LYRA_ASSERT(num_processes > 0, "registry needs at least one process");
  LYRA_ASSERT(threshold > 0 && threshold <= num_processes,
              "threshold must be in [1, n]");
  secrets_.reserve(num_processes);
  for (std::size_t i = 0; i < num_processes; ++i) {
    Bytes secret(32);
    for (auto& b : secret) b = static_cast<std::uint8_t>(rng.next_u64());
    secrets_.push_back(std::move(secret));
  }
}

Signer KeyRegistry::signer_for(NodeId id) const {
  LYRA_ASSERT(id < secrets_.size(), "unknown process id");
  return Signer(this, id);
}

Digest KeyRegistry::mac_for(NodeId id, BytesView message,
                            std::string_view domain) const {
  LYRA_ASSERT(id < secrets_.size(), "unknown process id");
  const Bytes input = domain_tagged(domain, message);
  return hmac_sha256(secrets_[id], input);
}

bool KeyRegistry::verify(BytesView message, const Signature& sig,
                         NodeId claimed) const {
  if (sig.signer != claimed || claimed >= secrets_.size()) return false;
  return mac_for(claimed, message, kSignDomain) == sig.mac;
}

bool KeyRegistry::share_verify(BytesView message, const SigShare& share,
                               NodeId claimed) const {
  if (share.signer != claimed || claimed >= secrets_.size()) return false;
  return mac_for(claimed, message, kShareDomain) == share.mac;
}

std::optional<ThresholdSig> KeyRegistry::share_combine(
    BytesView message, const std::vector<SigShare>& shares) const {
  ThresholdSig out;
  out.message_digest = Sha256::hash(message);
  for (const SigShare& s : shares) {
    if (!share_verify(message, s, s.signer)) continue;
    const bool duplicate =
        std::any_of(out.shares.begin(), out.shares.end(),
                    [&](const SigShare& t) { return t.signer == s.signer; });
    if (!duplicate) out.shares.push_back(s);
  }
  if (out.shares.size() < threshold_) return std::nullopt;
  out.shares.resize(threshold_);  // a proof needs exactly `threshold` shares
  return out;
}

bool KeyRegistry::threshold_verify(const ThresholdSig& sig,
                                   BytesView message) const {
  if (sig.message_digest != Sha256::hash(message)) return false;
  if (sig.shares.size() < threshold_) return false;
  std::vector<NodeId> seen;
  for (const SigShare& s : sig.shares) {
    if (!share_verify(message, s, s.signer)) return false;
    if (std::find(seen.begin(), seen.end(), s.signer) != seen.end()) {
      return false;
    }
    seen.push_back(s.signer);
  }
  return true;
}

Signature Signer::sign(BytesView message) const {
  return Signature{id_, registry_->mac_for(id_, message, kSignDomain)};
}

SigShare Signer::share_sign(BytesView message) const {
  return SigShare{id_, registry_->mac_for(id_, message, kShareDomain)};
}

Digest Signer::derive_secret(BytesView context) const {
  return registry_->mac_for(id_, context, kSealDomain);
}

}  // namespace lyra::crypto
