#include "crypto/merkle.hpp"

#include "support/assert.hpp"

namespace lyra::crypto {

Digest MerkleTree::hash_leaf(const Digest& d) {
  return Hasher().add_str("leaf").add(d).digest();
}

Digest MerkleTree::hash_node(const Digest& left, const Digest& right) {
  return Hasher().add_str("node").add(left).add(right).digest();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) return;

  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Digest& d : leaves) level.push_back(hash_leaf(d));
  levels_.push_back(std::move(level));

  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(hash_node(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());
    levels_.push_back(std::move(next));
  }
}

Digest MerkleTree::root() const {
  if (levels_.empty()) return kZeroDigest;
  return levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  LYRA_ASSERT(index < leaf_count_, "leaf index out of range");
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.push_back({level[sibling], sibling < pos});
    }
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& leaf, std::size_t index,
                        const MerkleProof& proof, const Digest& root) {
  Digest acc = hash_leaf(leaf);
  std::size_t pos = index;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_is_left ? hash_node(step.sibling, acc)
                               : hash_node(acc, step.sibling);
    pos /= 2;
  }
  (void)pos;
  return acc == root;
}

}  // namespace lyra::crypto
