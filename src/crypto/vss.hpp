#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hash.hpp"
#include "crypto/keys.hpp"
#include "crypto/shamir.hpp"
#include "support/bytes.hpp"
#include "support/random.hpp"

namespace lyra::crypto {

/// A decryption share (paper: `vss-partial-decrypt`): process `owner`'s
/// Shamir share of the symmetric key protecting one ciphertext.
struct VssShare {
  NodeId owner = kNoNode;
  ShamirShare key_share;

  friend bool operator==(const VssShare&, const VssShare&) = default;
};

/// A (2f+1, n) verifiably-secret-shared ciphertext (paper: `vss-encrypt`).
///
/// Construction: the payload is encrypted under a fresh 32-byte symmetric
/// key with a SHA-256-CTR stream cipher; the key is split into n Shamir
/// shares over GF(2^8). Share i is *sealed* for process i by XORing it with
/// a keystream derived from process i's long-term secret and this cipher's
/// identity (the stand-in for encrypting the share under i's public key, so
/// the whole object can travel in a single broadcast). Every share is
/// committed to with a hash so that a wrong or corrupted share is detected
/// during reconstruction (the "verifiable" in VSS).
struct VssCipher {
  Bytes ciphertext;
  Digest payload_digest{};                // binds the plaintext
  std::vector<Bytes> sealed_shares;       // sealed_shares[i] for process i
  std::vector<Digest> share_commitments;  // H(cipher_id || i || share_i)

  /// Identity of this cipher: digest over ciphertext and payload digest.
  Digest cipher_id() const;
};

class Vss {
 public:
  /// n processes; `threshold` shares reconstruct (the paper uses 2f+1).
  Vss(const KeyRegistry* registry, std::uint32_t n, std::uint32_t threshold);

  std::uint32_t threshold() const { return threshold_; }

  /// paper: vss-encrypt(m).
  VssCipher encrypt(BytesView payload, Rng& rng) const;

  /// paper: vss-partial-decrypt(c_m). Unseals the caller's share. Only the
  /// holder of `signer`'s key can produce a share that verifies against the
  /// commitment.
  VssShare partial_decrypt(const VssCipher& cipher, const Signer& signer) const;

  /// Checks a received share against the cipher's commitment for its owner.
  bool verify_share(const VssCipher& cipher, const VssShare& share) const;

  /// paper: vss-decrypt(c_m, {rho_m}). Combines >= threshold verified
  /// shares; returns nullopt if not enough valid shares or if the decrypted
  /// payload does not match the bound digest.
  std::optional<Bytes> decrypt(const VssCipher& cipher,
                               const std::vector<VssShare>& shares) const;

 private:
  Digest seal_key(const Signer& signer, const Digest& cipher_id) const;
  Digest share_commitment(const Digest& cipher_id, NodeId owner,
                          const ShamirShare& share) const;

  const KeyRegistry* registry_;
  std::uint32_t n_;
  std::uint32_t threshold_;
};

}  // namespace lyra::crypto
