#pragma once

#include "crypto/hash.hpp"
#include "support/bytes.hpp"
#include "support/random.hpp"

namespace lyra::crypto {

/// Hash-based commitment in the style of Halevi-Micali [13]: the commitment
/// is H(r || m) for a 32-byte random blinding r. Hiding rests on the hash
/// behaving as a random oracle over the high-entropy prefix; binding rests
/// on collision resistance. The paper's prototype (§VI-A) uses exactly this
/// kind of scheme to obfuscate transactions.
struct Commitment {
  Digest value{};

  friend bool operator==(const Commitment&, const Commitment&) = default;
};

struct CommitmentOpening {
  Bytes blinding;  // 32 random bytes
  Bytes message;
};

Commitment commit(BytesView message, Rng& rng, CommitmentOpening& opening_out);

bool verify_opening(const Commitment& c, const CommitmentOpening& opening);

}  // namespace lyra::crypto
