#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "support/types.hpp"

namespace lyra::crypto {

/// Per-node memo of signature-verification verdicts, keyed by
/// (signer, message digest, mac). A node that sees the same signed
/// statement twice — a relayed DELIVER proof, a re-broadcast INIT, a
/// duplicated timestamp proof — answers from the cache instead of
/// recomputing the MAC, and (the part that matters in the simulation)
/// skips the modeled CryptoCosts charge: only misses pay.
///
/// Correctness: the verdict is a pure function of the key. The mac is
/// part of the key, so a forged signature over a cached message can never
/// inherit the genuine verdict; at worst an attacker fills the cache with
/// `false` entries for keys nobody will present again. Memoization
/// therefore changes no protocol decision, only counters and simulated
/// CPU charges — the determinism guard pins this.
///
/// The map is bounded: when `cap` entries are reached it resets
/// wholesale. Crude, but deterministic and O(1), and a full reset only
/// costs re-verification.
class VerifyCache {
 public:
  explicit VerifyCache(std::size_t cap = 1 << 16) : cap_(cap) {}

  std::optional<bool> lookup(NodeId signer, const Digest& msg,
                             const Digest& mac) {
    const auto it = map_.find(Key{signer, msg, mac});
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  void store(NodeId signer, const Digest& msg, const Digest& mac, bool ok) {
    if (map_.size() >= cap_) map_.clear();
    map_.emplace(Key{signer, msg, mac}, ok);
  }

  /// Folds a combined threshold signature into one digest usable as the
  /// cache mac: proofs with identical content (same message, same share
  /// set) collide onto one entry, anything else cannot.
  static Digest fold_threshold(const ThresholdSig& proof) {
    Sha256 h;
    h.update(proof.message_digest.data(), proof.message_digest.size());
    for (const SigShare& s : proof.shares) {
      h.update(&s.signer, sizeof(s.signer));
      h.update(s.mac.data(), s.mac.size());
    }
    return h.finalize();
  }

  /// Folds a small scalar (e.g. a Pompē timestamp) into a message digest
  /// so (digest, scalar) pairs key distinct entries.
  static Digest fold_scalar(const Digest& msg, std::uint64_t v) {
    Digest d = msg;
    std::uint64_t head;
    std::memcpy(&head, d.data(), sizeof(head));
    head ^= v * 0x9e3779b97f4a7c15ULL;  // spread low-entropy scalars
    std::memcpy(d.data(), &head, sizeof(head));
    return d;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return map_.size(); }

 private:
  struct Key {
    NodeId signer;
    Digest msg;
    Digest mac;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // The mac is an HMAC output: already uniform, so eight bytes of it
      // mixed with the message prefix make a full-strength hash.
      std::uint64_t a, b;
      std::memcpy(&a, k.mac.data(), sizeof(a));
      std::memcpy(&b, k.msg.data(), sizeof(b));
      return static_cast<std::size_t>(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                                      k.signer);
    }
  };

  std::size_t cap_;
  std::unordered_map<Key, bool, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lyra::crypto
