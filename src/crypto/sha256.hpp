#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace lyra::crypto {

/// 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4). From-scratch implementation, verified
/// against the NIST test vectors in tests/crypto/sha256_test.cpp. The
/// block compression dispatches at runtime to the fastest kernel the host
/// CPU supports (x86 SHA extensions when present, unrolled portable code
/// otherwise) — see crypto/sha256_kernels.hpp.
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  void update(const void* data, std::size_t len);

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without calling reset().
  Digest finalize();

  void reset();

  /// One-shot convenience.
  static Digest hash(BytesView data);

  /// Name of the compression kernel selected at runtime ("sha-ni" or
  /// "scalar").
  static const char* backend_name();

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace lyra::crypto
