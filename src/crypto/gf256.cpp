#include "crypto/gf256.hpp"

#include "support/assert.hpp"

namespace lyra::crypto {

namespace {

struct LogTables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 256> exp{};
};

constexpr LogTables build_log_tables() {
  LogTables t{};
  // 0x03 generates the multiplicative group of GF(2^8)/0x11b.
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    x = Gf256::mul_slow(x, 0x03);
  }
  t.exp[255] = t.exp[0];  // wraparound convenience
  return t;
}

constexpr LogTables kLog = build_log_tables();

// Full 64 KiB product table: kMul[a][b] == a*b. Row a is the
// multiply-by-a map used by the batched helpers.
struct MulTable {
  std::array<std::array<std::uint8_t, 256>, 256> row{};
};

constexpr MulTable build_mul_table() {
  // Built from the log/exp tables rather than mul_slow so the whole 64 KiB
  // fits well inside the compilers' constexpr evaluation budgets. The
  // gf256 tests cross-check every entry against mul_slow at runtime.
  MulTable t{};
  for (std::size_t a = 1; a < 256; ++a) {
    for (std::size_t b = 1; b < 256; ++b) {
      const int sum = kLog.log[a] + kLog.log[b];
      t.row[a][b] = kLog.exp[static_cast<std::size_t>(sum % 255)];
    }
  }
  return t;
}

constexpr MulTable kMul = build_mul_table();

}  // namespace

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) {
  return kMul.row[a][b];
}

const std::uint8_t* Gf256::row(std::uint8_t a) { return kMul.row[a].data(); }

void Gf256::mul_xor(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint8_t scalar, std::size_t n) {
  const std::uint8_t* r = kMul.row[scalar].data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i + 0] ^= r[src[i + 0]];
    dst[i + 1] ^= r[src[i + 1]];
    dst[i + 2] ^= r[src[i + 2]];
    dst[i + 3] ^= r[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= r[src[i]];
}

std::uint8_t Gf256::inv(std::uint8_t a) {
  LYRA_ASSERT(a != 0, "zero has no inverse in GF(256)");
  return kLog.exp[static_cast<std::size_t>((255 - kLog.log[a]) % 255)];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  return mul(a, inv(b));
}

}  // namespace lyra::crypto
