#include "crypto/gf256.hpp"

#include "support/assert.hpp"

namespace lyra::crypto {

namespace {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 256> exp{};
};

constexpr Tables build_tables() {
  Tables t{};
  // 0x03 generates the multiplicative group of GF(2^8)/0x11b.
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    x = Gf256::mul_slow(x, 0x03);
  }
  t.exp[255] = t.exp[0];  // wraparound convenience
  return t;
}

constexpr Tables kTables = build_tables();

}  // namespace

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const int sum = kTables.log[a] + kTables.log[b];
  return kTables.exp[static_cast<std::size_t>(sum % 255)];
}

std::uint8_t Gf256::inv(std::uint8_t a) {
  LYRA_ASSERT(a != 0, "zero has no inverse in GF(256)");
  return kTables.exp[static_cast<std::size_t>((255 - kTables.log[a]) % 255)];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  return mul(a, inv(b));
}

}  // namespace lyra::crypto
