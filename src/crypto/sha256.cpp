#include "crypto/sha256.hpp"

#include <cstring>

#include "crypto/sha256_kernels.hpp"

namespace lyra::crypto {

namespace {

constexpr std::array<std::uint32_t, 8> kInit = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  state_ = kInit;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::update(BytesView data) { update(data.data(), data.size()); }

void Sha256::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      detail::sha256_compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  if (len >= 64) {
    // All whole blocks go through the kernel in one call so the
    // dispatched implementation amortizes its setup across the run.
    const std::size_t nblocks = len / 64;
    detail::sha256_compress(state_.data(), p, nblocks);
    p += nblocks * 64;
    len -= nblocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffer_len_ = len;
  }
}

Digest Sha256::finalize() {
  const std::uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, zeros, then the 64-bit big-endian message length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  update(pad, pad_len);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(len_be, 8);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::hash(BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

const char* Sha256::backend_name() { return detail::sha256_backend_name(); }

}  // namespace lyra::crypto
