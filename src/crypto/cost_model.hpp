#pragma once

#include <cstddef>

#include "support/types.hpp"

namespace lyra::crypto {

/// Simulated CPU cost of cryptographic operations, in nanoseconds of node
/// CPU time. The HMAC-based simulation executes in microseconds of *host*
/// time, but the protocols must pay the cost of the *real* primitives the
/// paper assumes (ed25519-class signatures, threshold-BLS-class shares):
/// per-node throughput limits — in particular Pompē's quadratic timestamp
/// verification and the HotStuff leader bottleneck — come from these costs.
///
/// Defaults approximate a 2020-era Xeon vCPU (the paper's testbed uses
/// 16-vCPU Xeon VMs): ~20 us ed25519 sign, ~60 us verify, share operations
/// slightly above single-signature cost, hashing ~2 ns/byte (SHA-256 at
/// ~500 MB/s per core).
struct CryptoCosts {
  TimeNs sign = 20 * kNsPerUs;
  TimeNs verify = 60 * kNsPerUs;
  TimeNs share_sign = 30 * kNsPerUs;
  TimeNs share_verify = 70 * kNsPerUs;
  TimeNs share_combine = 120 * kNsPerUs;
  TimeNs threshold_verify = 150 * kNsPerUs;
  TimeNs vss_encrypt_base = 100 * kNsPerUs;   // key split + commitments
  TimeNs vss_partial_decrypt = 20 * kNsPerUs;
  TimeNs vss_combine = 80 * kNsPerUs;         // Lagrange + payload check
  double hash_ns_per_byte = 2.0;

  TimeNs hash_cost(std::size_t bytes) const {
    return static_cast<TimeNs>(hash_ns_per_byte *
                               static_cast<double>(bytes));
  }

  /// Cost of verifying a combined threshold signature made of k shares when
  /// the verifier must check each share (our simulation's combined
  /// signature is a share list; a production BLS signature would be O(1),
  /// which `threshold_verify` models — this helper is for the share-list
  /// fallback paths).
  TimeNs share_list_verify(std::size_t k) const {
    return static_cast<TimeNs>(k) * share_verify;
  }
};

}  // namespace lyra::crypto
