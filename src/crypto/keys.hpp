#pragma once

#include <optional>
#include <vector>

#include "crypto/hash.hpp"
#include "support/bytes.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace lyra::crypto {

/// A signature under the paper's `private-sign` API.
///
/// Substitution note (see DESIGN.md): instead of elliptic-curve signatures we
/// use HMAC-SHA256 under a per-process secret held by the KeyRegistry, which
/// plays the role of the PKI that permissioned blockchains set up at genesis.
/// Verification recomputes the MAC with the claimed signer's secret. Within
/// the simulation this is unforgeable: processes (including Byzantine ones)
/// can only sign through their own Signer handle, which is bound to their
/// identity, and never see other processes' secrets. The *cost* of real
/// signatures is charged separately through CryptoCosts.
struct Signature {
  NodeId signer = kNoNode;
  Digest mac{};

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// A threshold-signature share (paper: `share-sign`).
struct SigShare {
  NodeId signer = kNoNode;
  Digest mac{};

  friend bool operator==(const SigShare&, const SigShare&) = default;
};

/// A combined (2f+1, n) threshold signature (paper: `share-combine`).
/// Carries the shares that formed it; `threshold_verify` recounts them.
struct ThresholdSig {
  Digest message_digest{};
  std::vector<SigShare> shares;
};

class Signer;

/// Holds the long-term key material of all processes and implements the
/// paper's cryptographic API (§II-B): private-sign / public-verify,
/// share-sign / share-verify / share-combine / share-threshold.
class KeyRegistry {
 public:
  /// Creates keys for `num_processes` processes. `threshold` is the number
  /// of shares required by share-combine; the paper uses 2f+1.
  KeyRegistry(std::size_t num_processes, std::size_t threshold, Rng& rng);

  std::size_t size() const { return secrets_.size(); }
  std::size_t threshold() const { return threshold_; }

  /// Returns the signing handle for one process. Each process must only
  /// ever hold its own handle; this is the simulation's stand-in for
  /// private-key secrecy.
  Signer signer_for(NodeId id) const;

  /// paper: public-verify(m, sigma_m, j).
  bool verify(BytesView message, const Signature& sig, NodeId claimed) const;

  /// paper: share-verify(m, pi_m, j).
  bool share_verify(BytesView message, const SigShare& share,
                    NodeId claimed) const;

  /// paper: share-combine({pi_m}). Validates and deduplicates shares;
  /// returns nullopt if fewer than `threshold` distinct valid shares.
  std::optional<ThresholdSig> share_combine(
      BytesView message, const std::vector<SigShare>& shares) const;

  /// paper: share-threshold(Pi_m, m).
  bool threshold_verify(const ThresholdSig& sig, BytesView message) const;

 private:
  friend class Signer;

  Digest mac_for(NodeId id, BytesView message, std::string_view domain) const;

  std::vector<Bytes> secrets_;
  std::size_t threshold_;
};

/// A process's signing capability. Move-only handle is unnecessary; it is
/// cheap and copyable, but protocol code treats it as private state.
class Signer {
 public:
  Signer(const KeyRegistry* registry, NodeId id)
      : registry_(registry), id_(id) {}

  NodeId id() const { return id_; }

  /// paper: private-sign(m).
  Signature sign(BytesView message) const;

  /// paper: share-sign(m).
  SigShare share_sign(BytesView message) const;

  /// Derives a secret key bound to (this process, context). Used by the VSS
  /// scheme to seal per-recipient shares (stand-in for encrypting a share
  /// under the recipient's public key).
  Digest derive_secret(BytesView context) const;

 private:
  const KeyRegistry* registry_;
  NodeId id_;
};

}  // namespace lyra::crypto
