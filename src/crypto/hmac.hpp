#pragma once

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace lyra::crypto {

/// HMAC-SHA256 (RFC 2104), verified against RFC 4231 test vectors.
Digest hmac_sha256(BytesView key, BytesView message);

}  // namespace lyra::crypto
