#include "crypto/hash.hpp"

#include "support/hex.hpp"

namespace lyra::crypto {

namespace {
void add_len_prefixed(Sha256& h, const void* data, std::uint64_t len) {
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i) {
    len_le[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  h.update(len_le, sizeof len_le);
  h.update(data, static_cast<std::size_t>(len));
}
}  // namespace

Hasher& Hasher::add(BytesView bytes) {
  add_len_prefixed(inner_, bytes.data(), bytes.size());
  return *this;
}

Hasher& Hasher::add(const Digest& d) {
  add_len_prefixed(inner_, d.data(), d.size());
  return *this;
}

Hasher& Hasher::add_u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  add_len_prefixed(inner_, b, sizeof b);
  return *this;
}

Hasher& Hasher::add_i64(std::int64_t v) {
  return add_u64(static_cast<std::uint64_t>(v));
}

Hasher& Hasher::add_u32(std::uint32_t v) {
  return add_u64(static_cast<std::uint64_t>(v));
}

Hasher& Hasher::add_str(std::string_view s) {
  add_len_prefixed(inner_, s.data(), s.size());
  return *this;
}

Digest Hasher::digest() { return inner_.finalize(); }

std::string digest_hex(const Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

std::string digest_short(const Digest& d) {
  return digest_hex(d).substr(0, 8);
}

}  // namespace lyra::crypto
