#include "crypto/stream_cipher.hpp"

namespace lyra::crypto {

Bytes xor_keystream(const Digest& key, BytesView data) {
  Bytes out(data.begin(), data.end());
  std::uint64_t counter = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    Sha256 h;
    h.update(key.data(), key.size());
    std::uint8_t ctr_le[8];
    for (int i = 0; i < 8; ++i) {
      ctr_le[i] = static_cast<std::uint8_t>(counter >> (8 * i));
    }
    h.update(ctr_le, sizeof ctr_le);
    const Digest block = h.finalize();

    const std::size_t take = std::min(block.size(), out.size() - pos);
    for (std::size_t i = 0; i < take; ++i) out[pos + i] ^= block[i];
    pos += take;
    ++counter;
  }
  return out;
}

}  // namespace lyra::crypto
