#pragma once

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace lyra::crypto {

/// SHA-256 in counter mode as a keystream generator. Block i of the
/// keystream is SHA256(key || i); encryption XORs the keystream into the
/// payload. Symmetric: apply twice to recover the plaintext.
Bytes xor_keystream(const Digest& key, BytesView data);

}  // namespace lyra::crypto
