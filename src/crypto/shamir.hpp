#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/bytes.hpp"
#include "support/random.hpp"

namespace lyra::crypto {

/// One Shamir share: the evaluation of the per-byte polynomials at x.
struct ShamirShare {
  std::uint8_t x = 0;  // non-zero evaluation point
  Bytes y;             // one byte per secret byte

  friend bool operator==(const ShamirShare&, const ShamirShare&) = default;
};

/// (k, n) Shamir secret sharing over GF(2^8), applied byte-wise: each secret
/// byte is the constant term of an independent random polynomial of degree
/// k-1. Any k shares reconstruct via Lagrange interpolation at x = 0; fewer
/// than k shares are information-theoretically independent of the secret.
class Shamir {
 public:
  /// Splits `secret` into n shares with reconstruction threshold k.
  /// Requires 0 < k <= n <= 255.
  static std::vector<ShamirShare> split(BytesView secret, std::uint32_t n,
                                        std::uint32_t k, Rng& rng);

  /// Reconstructs the secret from at least k shares with distinct x and
  /// equal length. Returns nullopt on malformed input (duplicate x,
  /// mismatched lengths, or fewer than k shares).
  static std::optional<Bytes> combine(const std::vector<ShamirShare>& shares,
                                      std::uint32_t k);
};

}  // namespace lyra::crypto
