#include "crypto/vss.hpp"

#include "crypto/stream_cipher.hpp"
#include "support/assert.hpp"

namespace lyra::crypto {

Digest VssCipher::cipher_id() const {
  return Hasher().add_str("vss-cipher").add(ciphertext).add(payload_digest)
      .digest();
}

Vss::Vss(const KeyRegistry* registry, std::uint32_t n, std::uint32_t threshold)
    : registry_(registry), n_(n), threshold_(threshold) {
  LYRA_ASSERT(registry != nullptr, "VSS needs a key registry");
  LYRA_ASSERT(threshold > 0 && threshold <= n, "threshold must be in [1, n]");
  LYRA_ASSERT(n <= registry->size(), "more shareholders than keys");
}

Digest Vss::seal_key(const Signer& signer, const Digest& cipher_id) const {
  Bytes context;
  append(context, BytesView(cipher_id.data(), cipher_id.size()));
  return signer.derive_secret(context);
}

Digest Vss::share_commitment(const Digest& cipher_id, NodeId owner,
                             const ShamirShare& share) const {
  return Hasher()
      .add_str("vss-share")
      .add(cipher_id)
      .add_u32(owner)
      .add_u32(share.x)
      .add(share.y)
      .digest();
}

VssCipher Vss::encrypt(BytesView payload, Rng& rng) const {
  Digest key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());

  VssCipher cipher;
  cipher.ciphertext = xor_keystream(key, payload);
  cipher.payload_digest =
      Hasher().add_str("vss-payload").add(payload).digest();
  const Digest id = cipher.cipher_id();

  const auto shares =
      Shamir::split(BytesView(key.data(), key.size()), n_, threshold_, rng);
  cipher.sealed_shares.resize(n_);
  cipher.share_commitments.resize(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    cipher.share_commitments[i] = share_commitment(id, i, shares[i]);
    const Digest seal = seal_key(registry_->signer_for(i), id);
    cipher.sealed_shares[i] = xor_keystream(seal, shares[i].y);
  }
  return cipher;
}

VssShare Vss::partial_decrypt(const VssCipher& cipher,
                              const Signer& signer) const {
  LYRA_ASSERT(signer.id() < cipher.sealed_shares.size(),
              "no share for this process in the cipher");
  const Digest id = cipher.cipher_id();
  const Digest seal = seal_key(signer, id);

  VssShare share;
  share.owner = signer.id();
  share.key_share.x = static_cast<std::uint8_t>(signer.id() + 1);
  share.key_share.y = xor_keystream(seal, cipher.sealed_shares[signer.id()]);
  return share;
}

bool Vss::verify_share(const VssCipher& cipher, const VssShare& share) const {
  if (share.owner >= cipher.share_commitments.size()) return false;
  if (share.key_share.x != static_cast<std::uint8_t>(share.owner + 1)) {
    return false;
  }
  const Digest id = cipher.cipher_id();
  return cipher.share_commitments[share.owner] ==
         share_commitment(id, share.owner, share.key_share);
}

std::optional<Bytes> Vss::decrypt(const VssCipher& cipher,
                                  const std::vector<VssShare>& shares) const {
  std::vector<ShamirShare> valid;
  for (const VssShare& s : shares) {
    if (verify_share(cipher, s)) valid.push_back(s.key_share);
    if (valid.size() == threshold_) break;
  }
  const auto key_bytes = Shamir::combine(valid, threshold_);
  if (!key_bytes || key_bytes->size() != 32) return std::nullopt;

  Digest key;
  std::copy(key_bytes->begin(), key_bytes->end(), key.begin());
  Bytes payload = xor_keystream(key, cipher.ciphertext);

  // A dealer that committed to a bogus digest produced an invalid cipher;
  // reconstruction proves it to every correct process.
  const Digest check = Hasher().add_str("vss-payload").add(payload).digest();
  if (check != cipher.payload_digest) return std::nullopt;
  return payload;
}

}  // namespace lyra::crypto
