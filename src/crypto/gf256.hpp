#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace lyra::crypto {

/// Arithmetic in GF(2^8) with the AES reduction polynomial
/// x^8 + x^4 + x^3 + x + 1 (0x11b). Used by the Shamir secret-sharing
/// substrate of the VSS scheme. Multiplication reads a full 256x256
/// product table built at compile time (one load, no branches, no mod);
/// inversion keeps the compile-time log/antilog tables. Batched helpers
/// (row(), mul_xor()) let share evaluation and Lagrange interpolation
/// stream a single 256-byte table row through whole buffers.
class Gf256 {
 public:
  static constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;
  }

  static constexpr std::uint8_t sub(std::uint8_t a, std::uint8_t b) {
    return a ^ b;  // characteristic 2: subtraction == addition
  }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);

  /// Multiplicative inverse; a must be non-zero.
  static std::uint8_t inv(std::uint8_t a);

  /// a / b; b must be non-zero.
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);

  /// The 256-entry product row of `a`: row(a)[b] == mul(a, b). Hoist it
  /// out of a loop to multiply a whole buffer by a constant with one
  /// table lookup per byte.
  static const std::uint8_t* row(std::uint8_t a);

  /// dst[i] ^= scalar * src[i] for i in [0, n) — the GF(256) "axpy" that
  /// Lagrange interpolation and share recombination reduce to.
  static void mul_xor(std::uint8_t* dst, const std::uint8_t* src,
                      std::uint8_t scalar, std::size_t n);

  /// Slow bitwise ("Russian peasant") multiplication, used to cross-check
  /// the tables in tests.
  static constexpr std::uint8_t mul_slow(std::uint8_t a, std::uint8_t b) {
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & 1) p ^= a;
      const bool carry = (a & 0x80) != 0;
      a = static_cast<std::uint8_t>(a << 1);
      if (carry) a ^= 0x1b;
      b >>= 1;
    }
    return p;
  }
};

}  // namespace lyra::crypto
