#pragma once

#include <array>
#include <cstdint>

namespace lyra::crypto {

/// Arithmetic in GF(2^8) with the AES reduction polynomial
/// x^8 + x^4 + x^3 + x + 1 (0x11b). Used by the Shamir secret-sharing
/// substrate of the VSS scheme. Multiplication and inversion go through
/// log/antilog tables built at compile time from the generator 0x03.
class Gf256 {
 public:
  static constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;
  }

  static constexpr std::uint8_t sub(std::uint8_t a, std::uint8_t b) {
    return a ^ b;  // characteristic 2: subtraction == addition
  }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);

  /// Multiplicative inverse; a must be non-zero.
  static std::uint8_t inv(std::uint8_t a);

  /// a / b; b must be non-zero.
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);

  /// Slow bitwise ("Russian peasant") multiplication, used to cross-check
  /// the tables in tests.
  static constexpr std::uint8_t mul_slow(std::uint8_t a, std::uint8_t b) {
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & 1) p ^= a;
      const bool carry = (a & 0x80) != 0;
      a = static_cast<std::uint8_t>(a << 1);
      if (carry) a ^= 0x1b;
      b >>= 1;
    }
    return p;
  }
};

}  // namespace lyra::crypto
