#pragma once

#include <cstddef>
#include <cstdint>

// Internal SHA-256 compression kernels (not part of the public crypto
// API). Sha256 feeds whole 64-byte blocks through sha256_compress(),
// which resolves once at startup to the fastest kernel the CPU offers:
//
//   * compress_shani  — x86 SHA extensions (sha256rnds2/msg1/msg2),
//                       ~an order of magnitude over portable code;
//   * compress_scalar — portable fallback, message schedule and round
//                       function unrolled four rounds per iteration with
//                       full register rotation (no per-round shuffling).
//
// Both kernels are exported so tests can run them side by side against
// the NIST vectors regardless of which one dispatch picks.
namespace lyra::crypto::detail {

inline constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

/// Compresses `nblocks` consecutive 64-byte blocks into `state` (eight
/// little-endian words a..h, FIPS 180-4 order).
using CompressFn = void (*)(std::uint32_t* state, const std::uint8_t* blocks,
                            std::size_t nblocks);

void compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t nblocks);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LYRA_SHA256_HAVE_SHANI 1
/// True when CPUID reports the SHA extensions (leaf 7 EBX bit 29) plus
/// the SSSE3/SSE4.1 baseline the kernel needs.
bool cpu_supports_sha_ni();
void compress_shani(std::uint32_t* state, const std::uint8_t* blocks,
                    std::size_t nblocks);
#endif

/// Dispatched entry point used by Sha256. Set LYRA_SHA256_BACKEND=scalar
/// in the environment (before first use) to pin the portable kernel.
void sha256_compress(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t nblocks);

/// Name of the kernel dispatch selected ("sha-ni" or "scalar").
const char* sha256_backend_name();

}  // namespace lyra::crypto::detail
