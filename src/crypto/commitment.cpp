#include "crypto/commitment.hpp"

namespace lyra::crypto {

namespace {
Digest commitment_digest(BytesView blinding, BytesView message) {
  return Hasher().add_str("commit").add(blinding).add(message).digest();
}
}  // namespace

Commitment commit(BytesView message, Rng& rng,
                  CommitmentOpening& opening_out) {
  opening_out.blinding.resize(32);
  for (auto& b : opening_out.blinding) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  opening_out.message.assign(message.begin(), message.end());
  return Commitment{commitment_digest(opening_out.blinding, message)};
}

bool verify_opening(const Commitment& c, const CommitmentOpening& opening) {
  return c.value == commitment_digest(opening.blinding, opening.message);
}

}  // namespace lyra::crypto
