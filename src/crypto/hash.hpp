#pragma once

#include <string>

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"
#include "support/types.hpp"

namespace lyra::crypto {

/// Builder for hashing structured values. Fields are length/tag separated so
/// that distinct field sequences never produce colliding inputs.
class Hasher {
 public:
  Hasher& add(BytesView bytes);
  Hasher& add(const Digest& d);
  Hasher& add_u64(std::uint64_t v);
  Hasher& add_i64(std::int64_t v);
  Hasher& add_u32(std::uint32_t v);
  Hasher& add_str(std::string_view s);

  Digest digest();

 private:
  Sha256 inner_;
};

/// Hex string of a digest (for logs and debugging).
std::string digest_hex(const Digest& d);

/// Short hex prefix (8 chars) for trace output.
std::string digest_short(const Digest& d);

constexpr Digest kZeroDigest{};

/// Hash functor for using Digest as an unordered-map key. Digests are
/// uniformly distributed, so the first 8 bytes suffice.
struct DigestHash {
  std::size_t operator()(const Digest& d) const noexcept {
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | d[static_cast<std::size_t>(i)];
    return h;
  }
};

}  // namespace lyra::crypto
