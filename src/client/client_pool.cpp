#include "client/client_pool.hpp"

namespace lyra::client {

using core::CommitNotifyMsg;
using core::SubmitMsg;

ClientPool::ClientPool(sim::Simulation* sim, sim::Transport* transport,
                       NodeId id, NodeId target_node, std::uint32_t width,
                       TimeNs start_at, TimeNs measure_from,
                       TimeNs measure_to)
    : Process(sim, transport, id),
      target_(target_node),
      width_(width),
      start_at_(start_at),
      measure_from_(measure_from),
      measure_to_(measure_to) {}

void ClientPool::on_start() {
  set_timer(start_at_, [this] { submit(width_); });
}

void ClientPool::submit(std::uint32_t count) {
  if (count == 0) return;
  auto msg = std::make_shared<SubmitMsg>();
  msg->count = count;
  msg->submitted_at = now();
  send(target_, std::move(msg));
}

void ClientPool::on_message(const sim::Envelope& env) {
  const auto* notify = sim::payload_as<CommitNotifyMsg>(env);
  if (notify == nullptr) return;

  committed_total_ += notify->count;
  const double latency = to_ms(now() - notify->submitted_at);
  if (now() >= measure_from_ && now() <= measure_to_) {
    committed_in_window_ += notify->count;
    latency_ms_.add(latency);
    weighted_latency_sum_ms_ += latency * notify->count;
    weighted_count_ += notify->count;
  }
  // Closed loop: every committed transaction triggers its client's next
  // submission.
  submit(notify->count);
}

double ClientPool::weighted_mean_latency_ms() const {
  if (weighted_count_ == 0) return 0.0;
  return weighted_latency_sum_ms_ / static_cast<double>(weighted_count_);
}

}  // namespace lyra::client
