#include "client/client_pool.hpp"

#include <algorithm>

#include "sim/payload_pool.hpp"
#include "support/mutation.hpp"

namespace lyra::client {

using core::CommitNotifyMsg;
using core::SubmitMsg;

ClientPool::ClientPool(sim::Simulation* sim, sim::Transport* transport,
                       NodeId id, NodeId target_node, std::uint32_t width,
                       TimeNs start_at, TimeNs measure_from,
                       TimeNs measure_to)
    : ClientPool(sim, transport, id, std::vector<NodeId>{target_node}, width,
                 start_at, measure_from, measure_to) {}

ClientPool::ClientPool(sim::Simulation* sim, sim::Transport* transport,
                       NodeId id, std::vector<NodeId> targets,
                       std::uint32_t width, TimeNs start_at,
                       TimeNs measure_from, TimeNs measure_to)
    : Process(sim, transport, id),
      targets_(std::move(targets)),
      width_(width),
      start_at_(start_at),
      measure_from_(measure_from),
      measure_to_(measure_to) {}

void ClientPool::on_start() {
  set_timer(start_at_, [this] {
    for (NodeId target : targets_) submit(width_, target);
  });
}

void ClientPool::submit(std::uint32_t count, NodeId target) {
  if (count == 0) return;
  submitted_total_ += count;
  auto msg = sim::make_payload<SubmitMsg>();
  msg->count = count;
  msg->submitted_at = now();
  if (resubmit_timeout_ > 0) {
    auto& wave = outstanding_[{now(), target}];
    wave.count += count;
    wave.last_attempt = now();
    arm_resubmit_timer();
  }
  send(target, std::move(msg));
}

void ClientPool::arm_resubmit_timer() {
  if (resubmit_timeout_ <= 0 || outstanding_.empty()) return;
  if (support::mutation_enabled("client-resubmit-fixed-period")) {
    // Mutation hook (docs/FUZZING.md): the pre-fix behaviour armed a fixed
    // period from "now" instead of aiming at the earliest outstanding
    // deadline, so a wave submitted just after arming waited almost a full
    // extra period. The fuzzer's client-resubmit-lag invariant must flag
    // this.
    if (resubmit_timer_armed_) return;
    resubmit_timer_armed_ = true;
    resubmit_deadline_ = now() + resubmit_timeout_;
    resubmit_timer_ =
        set_timer(resubmit_timeout_, [this] { check_resubmit(); });
    return;
  }
  TimeNs earliest = 0;
  bool first = true;
  for (const auto& [key, wave] : outstanding_) {
    const TimeNs deadline = wave.last_attempt + resubmit_timeout_;
    if (first || deadline < earliest) {
      earliest = deadline;
      first = false;
    }
  }
  if (resubmit_timer_armed_) {
    if (resubmit_deadline_ <= earliest) return;  // fires early enough
    cancel_timer(resubmit_timer_);  // a new wave is due sooner: re-aim
  }
  resubmit_timer_armed_ = true;
  resubmit_deadline_ = earliest;
  const TimeNs delay = earliest > now() ? earliest - now() : 0;
  resubmit_timer_ = set_timer(delay, [this] { check_resubmit(); });
}

void ClientPool::check_resubmit() {
  resubmit_timer_armed_ = false;
  if (outstanding_.empty()) return;
  for (auto& [key, wave] : outstanding_) {
    if (now() - wave.last_attempt < resubmit_timeout_) continue;
    max_resubmit_lag_ = std::max(
        max_resubmit_lag_, now() - (wave.last_attempt + resubmit_timeout_));
    auto msg = sim::make_payload<SubmitMsg>();
    msg->count = wave.count;
    // Latency stays measured from the first attempt: the retry carries the
    // original submission time.
    msg->submitted_at = key.first;
    send(key.second, std::move(msg));
    wave.last_attempt = now();
    ++resubmissions_;
    submitted_total_ += wave.count;
  }
  arm_resubmit_timer();
}

void ClientPool::on_message(const sim::Envelope& env) {
  const auto* notify = sim::payload_as<CommitNotifyMsg>(env);
  if (notify == nullptr) return;

  if (resubmit_timeout_ > 0) {
    auto it = outstanding_.find({notify->submitted_at, env.from});
    if (it == outstanding_.end()) {
      // Both the original and the retry of a resubmitted wave committed
      // (the original's notify was late, not lost). The first notify
      // settled the stats and re-triggered the closed loop; counting this
      // one too would double-count commits and grow the pool's in-flight
      // width past its configured width for the rest of the run.
      ++duplicate_notifies_;
      return;
    }
    if (it->second.count <= notify->count) {
      outstanding_.erase(it);
    } else {
      it->second.count -= notify->count;
    }
  }

  committed_total_ += notify->count;
  const double latency = to_ms(now() - notify->submitted_at);
  if (now() >= measure_from_ && now() <= measure_to_) {
    committed_in_window_ += notify->count;
    latency_ms_.add(latency);
    weighted_latency_sum_ms_ += latency * notify->count;
    weighted_count_ += notify->count;
  }
  // Closed loop: every committed transaction triggers its client's next
  // submission, back at the node that just served it (the notify sender is
  // the wave's target, which keeps per-target loops independent).
  submit(notify->count, env.from);
}

double ClientPool::weighted_mean_latency_ms() const {
  if (weighted_count_ == 0) return 0.0;
  return weighted_latency_sum_ms_ / static_cast<double>(weighted_count_);
}

}  // namespace lyra::client
