#pragma once

#include <map>
#include <utility>
#include <vector>

#include "lyra/messages.hpp"
#include "sim/process.hpp"
#include "support/stats.hpp"

namespace lyra::client {

/// A pool of closed-loop clients co-located with one consensus node (the
/// paper's methodology, §VI-A: dedicated client machines, each client keeps
/// exactly one transaction in flight and submits the next one when the
/// previous commits).
///
/// The pool aggregates its clients into count-based submissions: one
/// SubmitMsg stands for `count` independent 32-byte transactions submitted
/// at the same instant. This keeps the event count per batch O(1) instead
/// of O(batch) while preserving closed-loop dynamics and per-transaction
/// latency accounting (all transactions of a chunk share a submission
/// time).
class ClientPool final : public sim::Process {
 public:
  /// `width` = number of virtual closed-loop clients in the pool.
  /// Latency samples are only recorded inside [measure_from, measure_to].
  ClientPool(sim::Simulation* sim, sim::Transport* transport, NodeId id,
             NodeId target_node, std::uint32_t width, TimeNs start_at,
             TimeNs measure_from, TimeNs measure_to);

  /// Aggregated form: one process drives `width` logical clients at *each*
  /// node in `targets` (so width * targets.size() clients total) through
  /// shared timers and per-target closed loops. Commit notifications route
  /// back to the wave's target via the notify's sender, so the loops stay
  /// independent. With a single target this is bit-identical to the
  /// per-node constructor.
  ClientPool(sim::Simulation* sim, sim::Transport* transport, NodeId id,
             std::vector<NodeId> targets, std::uint32_t width, TimeNs start_at,
             TimeNs measure_from, TimeNs measure_to);

  void on_start() override;

  /// Enables at-least-once resubmission: a submission wave that has not
  /// been acknowledged by a CommitNotify within `timeout` is sent again
  /// (and again every `timeout` until acknowledged). Resubmissions reuse
  /// the original submission time, so latency is measured from the first
  /// attempt. 0 (the default) disables the timer entirely — the pool is a
  /// pure closed loop and a lost submission stalls its clients, which is
  /// the behaviour all existing runs were recorded with. Call before
  /// start().
  void set_resubmit_timeout(TimeNs timeout) { resubmit_timeout_ = timeout; }

  /// Number of resubmission sends performed (0 unless the timeout is set).
  std::uint64_t resubmissions() const { return resubmissions_; }

  /// Transactions submitted, counting every resubmission send again (so
  /// submitted_total - resubmitted load = distinct transactions offered).
  std::uint64_t submitted_total() const { return submitted_total_; }

  /// CommitNotify messages for waves already fully acknowledged — the
  /// original and the retry of a resubmitted wave both committed. These are
  /// dropped instead of being counted (and re-triggering the closed loop) a
  /// second time.
  std::uint64_t duplicate_notifies() const { return duplicate_notifies_; }

  /// Worst observed wait past a wave's resubmit deadline (how late the
  /// timer fired relative to last_attempt + timeout). Stays ~0 while the
  /// timer re-aims at the earliest outstanding deadline; the schedule
  /// fuzzer's client-resubmit-lag invariant alarms on anything larger
  /// than scheduling slack.
  TimeNs max_resubmit_lag() const { return max_resubmit_lag_; }

  /// Per-chunk commit latency in milliseconds (each sample is one
  /// submission wave of the pool).
  const Samples& latency_ms() const { return latency_ms_; }

  /// Transaction-weighted latency statistics.
  double weighted_mean_latency_ms() const;

  /// Transactions committed inside the measurement window.
  std::uint64_t committed_in_window() const { return committed_in_window_; }
  std::uint64_t committed_total() const { return committed_total_; }

 protected:
  void on_message(const sim::Envelope& env) override;

 private:
  void submit(std::uint32_t count, NodeId target);
  void arm_resubmit_timer();
  void check_resubmit();

  std::vector<NodeId> targets_;
  std::uint32_t width_;
  TimeNs start_at_;
  TimeNs measure_from_;
  TimeNs measure_to_;

  // Unacknowledged submission waves, keyed by (original submission time,
  // target) — ordered so resubmission scans oldest-first,
  // deterministically, and so concurrent waves to different targets stay
  // distinct.
  struct Outstanding {
    std::uint32_t count = 0;
    TimeNs last_attempt = 0;
  };
  std::map<std::pair<TimeNs, NodeId>, Outstanding> outstanding_;
  TimeNs resubmit_timeout_ = 0;
  // The timer always targets the earliest outstanding deadline
  // (min over waves of last_attempt + timeout). A fixed-period timer is
  // not enough: a wave submitted just after the timer was armed would be
  // skipped at the first firing and wait almost a full extra period.
  bool resubmit_timer_armed_ = false;
  TimerId resubmit_timer_ = 0;
  TimeNs resubmit_deadline_ = 0;
  std::uint64_t resubmissions_ = 0;
  std::uint64_t submitted_total_ = 0;
  std::uint64_t duplicate_notifies_ = 0;
  TimeNs max_resubmit_lag_ = 0;

  Samples latency_ms_;
  double weighted_latency_sum_ms_ = 0.0;
  std::uint64_t weighted_count_ = 0;
  std::uint64_t committed_in_window_ = 0;
  std::uint64_t committed_total_ = 0;
};

}  // namespace lyra::client
