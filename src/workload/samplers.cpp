#include "workload/samplers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lyra::workload {
namespace {

constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();

TimeNs to_ns(double ns) {
  if (!(ns > 0)) return 1;
  if (ns >= 9e18) return kNever;
  return static_cast<TimeNs>(ns);
}

}  // namespace

PoissonArrivals::PoissonArrivals(const Options& options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  if (options_.burst_every_ms > 0) {
    const double gap_ns =
        rng_.next_exponential(options_.burst_every_ms * 1e6);
    burst_start_ = to_ns(gap_ns);
    burst_end_ = burst_start_ + to_ns(options_.burst_len_ms * 1e6);
  } else {
    burst_start_ = kNever;
    burst_end_ = kNever;
  }
}

void PoissonArrivals::advance_episodes(TimeNs t) {
  while (burst_end_ != kNever && t >= burst_end_) {
    const double gap_ns =
        rng_.next_exponential(options_.burst_every_ms * 1e6);
    burst_start_ = burst_end_ + to_ns(gap_ns);
    burst_end_ = burst_start_ + to_ns(options_.burst_len_ms * 1e6);
  }
}

double PoissonArrivals::rate_at(TimeNs t) const {
  if (t >= burst_start_ && t < burst_end_) {
    return options_.base_rate * options_.burst_mult;
  }
  return options_.base_rate;
}

TimeNs PoissonArrivals::current_boundary(TimeNs t) const {
  if (t < burst_start_) return burst_start_;
  if (t < burst_end_) return burst_end_;
  return kNever;
}

bool PoissonArrivals::in_burst(TimeNs t) const {
  return t >= burst_start_ && t < burst_end_;
}

TimeNs PoissonArrivals::next(TimeNs now) {
  if (options_.base_rate <= 0) return kNever;
  TimeNs t = now;
  for (;;) {
    advance_episodes(t);
    // One exponential (= one uniform) per segment. If the draw crosses the
    // next rate boundary we jump to the boundary and redraw — valid by
    // memorylessness, and it keeps the consumed-uniform count a pure
    // function of the arrival history.
    const double dt_ns = rng_.next_exponential(1e9 / rate_at(t));
    const TimeNs boundary = current_boundary(t);
    if (boundary != kNever && dt_ns >= static_cast<double>(boundary - t)) {
      t = boundary;
      continue;
    }
    TimeNs arrival = t + to_ns(dt_ns);
    if (arrival <= now) arrival = now + 1;
    return arrival;
  }
}

ZipfSampler::ZipfSampler(std::uint64_t accounts, double s)
    : accounts_(accounts == 0 ? 1 : accounts), s_(s < 0 ? 0.0 : s) {
  const double n = static_cast<double>(accounts_) + 1.0;
  if (std::abs(s_ - 1.0) < 1e-9) {
    h_all_ = std::log(n);
  } else {
    h_all_ = (std::pow(n, 1.0 - s_) - 1.0) / (1.0 - s_);
  }
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double target = rng.next_double() * h_all_;
  double x;
  if (std::abs(s_ - 1.0) < 1e-9) {
    x = std::exp(target);
  } else {
    x = std::pow(target * (1.0 - s_) + 1.0, 1.0 / (1.0 - s_));
  }
  if (!(x >= 1.0)) x = 1.0;
  const auto rank = static_cast<std::uint64_t>(x) - 1;
  return std::min(rank, accounts_ - 1);
}

bool fee_model_from_string(std::string_view name, FeeModel* out) {
  if (name == "constant") {
    *out = FeeModel::kConstant;
  } else if (name == "uniform") {
    *out = FeeModel::kUniform;
  } else if (name == "lognormal") {
    *out = FeeModel::kLognormal;
  } else {
    return false;
  }
  return true;
}

std::string fee_model_name(FeeModel model) {
  switch (model) {
    case FeeModel::kConstant:
      return "constant";
    case FeeModel::kUniform:
      return "uniform";
    case FeeModel::kLognormal:
      return "lognormal";
  }
  return "?";
}

std::uint64_t sample_fee(FeeModel model, std::uint64_t base_fee, Rng& rng) {
  const std::uint64_t base = std::max<std::uint64_t>(1, base_fee);
  switch (model) {
    case FeeModel::kConstant:
      return base;
    case FeeModel::kUniform:
      return 1 + rng.next_below(2 * base);
    case FeeModel::kLognormal: {
      const double f = static_cast<double>(base) * rng.next_lognormal(0, 1.0);
      if (!(f >= 1.0)) return 1;
      if (f >= 1e18) return static_cast<std::uint64_t>(1e18);
      return static_cast<std::uint64_t>(f);
    }
  }
  return base;
}

std::uint64_t sample_value(std::uint64_t base_value, double sigma, Rng& rng) {
  const double v =
      static_cast<double>(base_value) * rng.next_lognormal(0, sigma);
  if (!(v >= 1.0)) return 1;
  if (v >= 1e18) return static_cast<std::uint64_t>(1e18);
  return static_cast<std::uint64_t>(v);
}

}  // namespace lyra::workload
