#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "workload/types.hpp"

namespace lyra::workload {

struct MempoolStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;  // newcomer refused (fee too low, pool full)
  std::uint64_t evicted = 0;        // resident pushed out by a higher bid
  std::uint64_t duplicates = 0;     // resubmission of a known tx, dropped
  std::uint64_t carved = 0;         // handed to batch formation
};

/// Admission interface in front of batch formation. Both LyraNode and
/// PompeNode own one (when `mempool_capacity > 0`) and speak the same
/// backpressure protocol: a rejected or evicted transaction earns its
/// client a MempoolReject, and the client retries with backoff.
class Mempool {
 public:
  enum class Outcome : std::uint8_t {
    kAdmitted = 0,
    kRejected = 1,   // refused; the client should back off and retry
    kDuplicate = 2,  // already pending or carved; dropped silently
  };
  struct Admission {
    Outcome outcome = Outcome::kRejected;
    /// Lower-fee residents displaced to make room (each owed a reject).
    std::vector<WorkloadTx> evicted;
  };

  virtual ~Mempool() = default;

  virtual Admission admit(const WorkloadTx& tx) = 0;

  /// Removes and returns up to `max_txs` highest-priority transactions in
  /// carve order. Carved ids stay known, so a straggling retry of an
  /// in-flight transaction is dropped as a duplicate rather than
  /// re-executed.
  virtual std::vector<WorkloadTx> take(std::size_t max_txs) = 0;

  /// Shrinks or grows the bound; shrinking evicts the lowest-priority
  /// residents, which are returned (each owed a reject). Used by the fuzz
  /// admission-flap fault.
  virtual std::vector<WorkloadTx> set_capacity(std::size_t capacity) = 0;

  virtual std::size_t size() const = 0;
  virtual bool empty() const = 0;
  virtual std::size_t capacity() const = 0;
  virtual bool knows(std::uint64_t id) const = 0;
  virtual const MempoolStats& stats() const = 0;
};

/// Bounded max-fee priority pool. Ties broken by tx id so admission,
/// eviction, and carve order are fully deterministic.
class FeePriorityMempool final : public Mempool {
 public:
  explicit FeePriorityMempool(std::size_t capacity);

  Admission admit(const WorkloadTx& tx) override;
  std::vector<WorkloadTx> take(std::size_t max_txs) override;
  std::vector<WorkloadTx> set_capacity(std::size_t capacity) override;

  std::size_t size() const override { return by_id_.size(); }
  bool empty() const override { return by_id_.empty(); }
  std::size_t capacity() const override { return capacity_; }
  bool knows(std::uint64_t id) const override { return seen_.count(id) != 0; }
  const MempoolStats& stats() const override { return stats_; }

 private:
  struct Key {
    std::uint64_t fee;
    std::uint64_t id;
    bool operator<(const Key& o) const {
      if (fee != o.fee) return fee > o.fee;  // highest fee first
      return id < o.id;
    }
  };

  WorkloadTx evict_lowest();

  std::size_t capacity_;
  std::set<Key> order_;
  std::map<std::uint64_t, WorkloadTx> by_id_;
  // Pending plus carved ids. Evicted/rejected ids are NOT kept here: their
  // clients retry, and the retry must be admissible.
  std::unordered_set<std::uint64_t> seen_;
  MempoolStats stats_;
};

std::unique_ptr<Mempool> make_fee_priority_mempool(std::size_t capacity);

}  // namespace lyra::workload
