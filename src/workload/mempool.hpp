#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "workload/types.hpp"

namespace lyra::workload {

struct MempoolStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;  // newcomer refused (fee too low, pool full)
  std::uint64_t evicted = 0;        // resident pushed out by a higher bid
  std::uint64_t duplicates = 0;     // resubmission of a known tx, dropped
  std::uint64_t carved = 0;         // handed to batch formation
  std::uint64_t reinstated = 0;     // returned from a dropped batch
};

/// Admission interface in front of batch formation. Both LyraNode and
/// PompeNode own one (when `mempool_capacity > 0`) and speak the same
/// backpressure protocol: a rejected or evicted transaction earns its
/// client a MempoolReject, and the client retries with backoff.
class Mempool {
 public:
  enum class Outcome : std::uint8_t {
    kAdmitted = 0,
    kRejected = 1,   // refused; the client should back off and retry
    kDuplicate = 2,  // already pending or carved; dropped silently
  };
  struct Admission {
    Outcome outcome = Outcome::kRejected;
    /// Lower-fee residents displaced to make room (each owed a reject).
    std::vector<WorkloadTx> evicted;
  };

  virtual ~Mempool() = default;

  virtual Admission admit(const WorkloadTx& tx) = 0;

  /// Removes and returns up to `max_txs` highest-priority transactions in
  /// carve order. Carved ids stay known, so a straggling retry of an
  /// in-flight transaction is dropped as a duplicate rather than
  /// re-executed. Every carved id must later be settled exactly one way:
  /// confirm() when its batch commits, reinstate() when its batch is
  /// dropped.
  virtual std::vector<WorkloadTx> take(std::size_t max_txs) = 0;

  /// Batch containing these carved ids committed: the ids stay known
  /// forever (late retries keep deduping) but the carve-side bookkeeping
  /// is released. Unknown ids are ignored.
  virtual void confirm(const std::vector<std::uint64_t>& ids) {
    (void)ids;
  }

  /// Batch containing these carved ids was dropped without committing
  /// (e.g. the proposer gave up after max resubmissions): forget the ids
  /// and re-admit the stashed transactions so they compete for the next
  /// carve. Returns the transactions that could NOT be re-admitted
  /// (refused or displaced under current pressure) — each is owed a
  /// MempoolReject so its client's retry ladder takes over. Unknown ids
  /// are ignored.
  virtual std::vector<WorkloadTx> reinstate(
      const std::vector<std::uint64_t>& ids) {
    (void)ids;
    return {};
  }

  /// Shrinks or grows the bound; shrinking evicts the lowest-priority
  /// residents, which are returned (each owed a reject). Used by the fuzz
  /// admission-flap fault.
  virtual std::vector<WorkloadTx> set_capacity(std::size_t capacity) = 0;

  virtual std::size_t size() const = 0;
  virtual bool empty() const = 0;
  virtual std::size_t capacity() const = 0;
  virtual bool knows(std::uint64_t id) const = 0;
  /// The id is admitted and waiting for the next carve.
  virtual bool pending(std::uint64_t id) const { return knows(id); }
  /// The id was carved into a batch that has not been settled yet
  /// (neither confirm()ed nor reinstate()d).
  virtual bool in_flight(std::uint64_t id) const {
    (void)id;
    return false;
  }
  virtual const MempoolStats& stats() const = 0;
};

/// Bounded max-fee priority pool. Ties broken by tx id so admission,
/// eviction, and carve order are fully deterministic.
class FeePriorityMempool final : public Mempool {
 public:
  explicit FeePriorityMempool(std::size_t capacity);

  Admission admit(const WorkloadTx& tx) override;
  std::vector<WorkloadTx> take(std::size_t max_txs) override;
  void confirm(const std::vector<std::uint64_t>& ids) override;
  std::vector<WorkloadTx> reinstate(
      const std::vector<std::uint64_t>& ids) override;
  std::vector<WorkloadTx> set_capacity(std::size_t capacity) override;

  std::size_t size() const override { return by_id_.size(); }
  bool empty() const override { return by_id_.empty(); }
  std::size_t capacity() const override { return capacity_; }
  bool knows(std::uint64_t id) const override { return seen_.count(id) != 0; }
  bool pending(std::uint64_t id) const override {
    return by_id_.count(id) != 0;
  }
  bool in_flight(std::uint64_t id) const override {
    return carved_.count(id) != 0;
  }
  const MempoolStats& stats() const override { return stats_; }

 private:
  struct Key {
    std::uint64_t fee;
    std::uint64_t id;
    bool operator<(const Key& o) const {
      if (fee != o.fee) return fee > o.fee;  // highest fee first
      return id < o.id;
    }
  };

  WorkloadTx evict_lowest();

  std::size_t capacity_;
  std::set<Key> order_;
  std::map<std::uint64_t, WorkloadTx> by_id_;
  // Pending, carved-in-flight, and committed ids. Evicted/rejected ids are
  // NOT kept here: their clients retry, and the retry must be admissible.
  // Carved ids leave again via reinstate() if their batch is dropped, so a
  // never-committed tx is never deduplicated into oblivion.
  std::unordered_set<std::uint64_t> seen_;
  // Carved transactions awaiting confirm()/reinstate(), keyed by id.
  std::map<std::uint64_t, WorkloadTx> carved_;
  MempoolStats stats_;
};

std::unique_ptr<Mempool> make_fee_priority_mempool(std::size_t capacity);

}  // namespace lyra::workload
