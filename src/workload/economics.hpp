#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.hpp"
#include "workload/types.hpp"

namespace lyra::workload {

struct EconomicsParams {
  /// Extraction model: a successful front-run skims `slippage_bps` basis
  /// points of the victim's value (price impact the victim pays because
  /// the adversary's order executed first).
  std::uint32_t slippage_bps = 50;
};

/// What the adversary earned, computed from the committed order alone —
/// the metric is a pure function of the ledger, so Lyra and Pompē are
/// compared on identical terms.
struct EconomicsReport {
  std::uint64_t organic_committed = 0;
  std::uint64_t attack_committed = 0;   // committed front+back orders
  std::uint64_t victims_targeted = 0;   // distinct victims with a committed
                                        // attack order
  std::uint64_t frontrun_successes = 0; // front order before its victim
  std::uint64_t sandwich_completes = 0; // ... and back order after it
  std::uint64_t duplicate_txs = 0;      // same tx id committed twice (must
                                        // stay 0; fuzz invariant)
  double extracted_value = 0;   // sum of slippage skimmed from victims
  double adversary_fees = 0;    // fees paid by committed attack orders
  double adversary_profit = 0;  // extracted_value - adversary_fees
  double victim_slippage = 0;   // == extracted_value (victims' side)
};

/// Walks the committed batch payloads in ledger order, decodes workload
/// batches (non-workload payloads are skipped), and scores every
/// front/back order against the position of its victim.
EconomicsReport evaluate_economics(
    const std::vector<BytesView>& ordered_payloads,
    const EconomicsParams& params);

}  // namespace lyra::workload
