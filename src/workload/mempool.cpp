#include "workload/mempool.hpp"

#include <algorithm>

namespace lyra::workload {

FeePriorityMempool::FeePriorityMempool(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

WorkloadTx FeePriorityMempool::evict_lowest() {
  auto lowest = std::prev(order_.end());
  auto it = by_id_.find(lowest->id);
  WorkloadTx victim = it->second;
  order_.erase(lowest);
  by_id_.erase(it);
  seen_.erase(victim.id);
  ++stats_.evicted;
  return victim;
}

Mempool::Admission FeePriorityMempool::admit(const WorkloadTx& tx) {
  Admission result;
  if (seen_.count(tx.id) != 0) {
    ++stats_.duplicates;
    result.outcome = Outcome::kDuplicate;
    return result;
  }
  if (by_id_.size() >= capacity_) {
    // Full: a newcomer displaces the cheapest resident only by outbidding
    // it; ties keep the incumbent (first-come priority at equal fee).
    const Key lowest = *std::prev(order_.end());
    if (tx.fee <= lowest.fee) {
      ++stats_.rejected_full;
      result.outcome = Outcome::kRejected;
      return result;
    }
    result.evicted.push_back(evict_lowest());
  }
  order_.insert(Key{tx.fee, tx.id});
  by_id_.emplace(tx.id, tx);
  seen_.insert(tx.id);
  ++stats_.admitted;
  result.outcome = Outcome::kAdmitted;
  return result;
}

std::vector<WorkloadTx> FeePriorityMempool::take(std::size_t max_txs) {
  std::vector<WorkloadTx> out;
  out.reserve(std::min(max_txs, by_id_.size()));
  while (out.size() < max_txs && !order_.empty()) {
    auto top = order_.begin();
    auto it = by_id_.find(top->id);
    out.push_back(it->second);
    // NOT erased from seen_: the tx is in flight toward the ledger, so
    // retries racing the commit notify must dedup here. The stash lets
    // reinstate() undo that suppression if the batch is later dropped.
    carved_.emplace(it->first, it->second);
    order_.erase(top);
    by_id_.erase(it);
  }
  stats_.carved += out.size();
  return out;
}

void FeePriorityMempool::confirm(const std::vector<std::uint64_t>& ids) {
  // seen_ keeps committed ids forever; only the reinstate stash drains.
  for (std::uint64_t id : ids) carved_.erase(id);
}

std::vector<WorkloadTx> FeePriorityMempool::reinstate(
    const std::vector<std::uint64_t>& ids) {
  std::vector<WorkloadTx> refused;
  for (std::uint64_t id : ids) {
    auto it = carved_.find(id);
    if (it == carved_.end()) continue;
    WorkloadTx tx = it->second;
    carved_.erase(it);
    seen_.erase(id);  // no longer in flight: the id must be admissible
    ++stats_.reinstated;
    Admission result = admit(tx);
    if (result.outcome == Outcome::kAdmitted) {
      --stats_.admitted;  // re-entry, not a new arrival
    }
    for (WorkloadTx& victim : result.evicted) {
      refused.push_back(std::move(victim));
    }
    if (result.outcome != Outcome::kAdmitted) refused.push_back(std::move(tx));
  }
  return refused;
}

std::vector<WorkloadTx> FeePriorityMempool::set_capacity(
    std::size_t capacity) {
  capacity_ = std::max<std::size_t>(1, capacity);
  std::vector<WorkloadTx> evicted;
  while (by_id_.size() > capacity_) {
    evicted.push_back(evict_lowest());
  }
  return evicted;
}

std::unique_ptr<Mempool> make_fee_priority_mempool(std::size_t capacity) {
  return std::make_unique<FeePriorityMempool>(capacity);
}

}  // namespace lyra::workload
