#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/random.hpp"
#include "support/types.hpp"

namespace lyra::workload {

/// Open-loop arrival process: a Poisson stream at `base_rate` tx/s,
/// optionally interrupted by burst episodes during which the rate is
/// multiplied by `burst_mult`. All sampling is explicit inverse-CDF on our
/// own Rng — no <random> distributions — so arrival sequences are exact
/// goldens independent of the standard library.
///
/// Burst schedule: quiet gaps between episodes are exponential with mean
/// `burst_every_ms`; each episode lasts exactly `burst_len_ms`. Arrivals
/// inside an episode are Poisson at base_rate * burst_mult. Crossing an
/// episode boundary restarts the exponential draw (valid by memorylessness)
/// and consumes exactly one uniform, keeping the stream deterministic.
class PoissonArrivals {
 public:
  struct Options {
    double base_rate = 100.0;    // tx/s
    double burst_every_ms = 0;   // mean quiet gap; 0 disables bursts
    double burst_len_ms = 250.0;
    double burst_mult = 4.0;
  };

  PoissonArrivals(const Options& options, std::uint64_t seed);

  /// Absolute time of the next arrival strictly after `now`. Must be called
  /// with non-decreasing `now` values (it advances internal episode state).
  TimeNs next(TimeNs now);

  /// True if `t` falls inside a burst episode scheduled so far. Exposed for
  /// boundary-case tests.
  bool in_burst(TimeNs t) const;

 private:
  void advance_episodes(TimeNs t);
  double rate_at(TimeNs t) const;
  TimeNs current_boundary(TimeNs t) const;

  Options options_;
  Rng rng_;
  // The burst schedule unfolds lazily: [burst_start_, burst_end_) is the
  // next (or current) episode; everything before burst_start_ is quiet.
  TimeNs burst_start_ = 0;
  TimeNs burst_end_ = 0;
};

/// Zipf-skewed account popularity: rank r (0-based) has probability
/// proportional to 1/(r+1)^s. Sampled via the continuous inverse-CDF
/// approximation of the generalized harmonic number — O(1) per draw with no
/// per-account table, which matters when 100 pools each model 10^5
/// accounts. The skew is what creates hot-account contention; the exact
/// tail shape is not load-bearing.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t accounts, double s);

  /// 0-based account rank; rank 0 is the hottest account.
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t accounts() const { return accounts_; }

 private:
  std::uint64_t accounts_;
  double s_;
  double h_all_ = 0;  // approximate generalized harmonic H(accounts)
};

/// Fee models for priority bidding. All explicit inverse-CDF / Box-Muller
/// via Rng — no <random>.
enum class FeeModel : std::uint8_t {
  kConstant = 0,   // every tx bids base_fee
  kUniform = 1,    // uniform in [1, 2*base_fee]
  kLognormal = 2,  // base_fee * lognormal(0, 1), heavy right tail
};

/// Returns true and sets `out` on a recognized name (constant | uniform |
/// lognormal).
bool fee_model_from_string(std::string_view name, FeeModel* out);
std::string fee_model_name(FeeModel model);

/// Draws one fee bid (>= 1).
std::uint64_t sample_fee(FeeModel model, std::uint64_t base_fee, Rng& rng);

/// Draws one transaction value: base_value * lognormal(0, sigma), >= 1.
/// The heavy tail is what gives the sandwich adversary worthwhile victims.
std::uint64_t sample_value(std::uint64_t base_value, double sigma, Rng& rng);

}  // namespace lyra::workload
