#include "workload/economics.hpp"

#include <map>

namespace lyra::workload {

EconomicsReport evaluate_economics(
    const std::vector<BytesView>& ordered_payloads,
    const EconomicsParams& params) {
  EconomicsReport report;

  // Flatten the ledger into one committed sequence with positions.
  std::vector<WorkloadTx> sequence;
  for (const BytesView& payload : ordered_payloads) {
    decode_batch(payload, &sequence);
  }

  std::map<std::uint64_t, std::size_t> first_pos;
  std::vector<const WorkloadTx*> attacks;
  for (std::size_t pos = 0; pos < sequence.size(); ++pos) {
    const WorkloadTx& tx = sequence[pos];
    if (!first_pos.emplace(tx.id, pos).second) {
      ++report.duplicate_txs;
      continue;
    }
    if (tx.role == kRoleOrganic) {
      ++report.organic_committed;
    } else {
      ++report.attack_committed;
      report.adversary_fees += static_cast<double>(tx.fee);
      attacks.push_back(&sequence[pos]);
    }
  }

  // Group committed attack orders by victim; score by relative position.
  struct Sandwich {
    const WorkloadTx* front = nullptr;
    const WorkloadTx* back = nullptr;
  };
  std::map<std::uint64_t, Sandwich> by_victim;
  for (const WorkloadTx* tx : attacks) {
    Sandwich& s = by_victim[tx->target_id];
    if (tx->role == kRoleFront && s.front == nullptr) s.front = tx;
    if (tx->role == kRoleBack && s.back == nullptr) s.back = tx;
  }
  report.victims_targeted = by_victim.size();

  const double slip = static_cast<double>(params.slippage_bps) / 10000.0;
  for (const auto& [victim_id, s] : by_victim) {
    auto victim_it = first_pos.find(victim_id);
    if (victim_it == first_pos.end()) continue;  // victim never committed
    const std::size_t victim_pos = victim_it->second;
    const WorkloadTx& victim = sequence[victim_pos];
    if (s.front != nullptr && first_pos.at(s.front->id) < victim_pos) {
      ++report.frontrun_successes;
      report.extracted_value += slip * static_cast<double>(victim.value);
      if (s.back != nullptr && first_pos.at(s.back->id) > victim_pos) {
        ++report.sandwich_completes;
      }
    }
  }

  report.victim_slippage = report.extracted_value;
  report.adversary_profit = report.extracted_value - report.adversary_fees;
  return report;
}

}  // namespace lyra::workload
