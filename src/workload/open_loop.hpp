#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/process.hpp"
#include "support/stats.hpp"
#include "workload/samplers.hpp"
#include "workload/types.hpp"

namespace lyra::workload {

struct OpenLoopOptions {
  /// Offered load from this pool, tx/s. With one pool per node, total
  /// offered load is n * arrival_rate.
  double arrival_rate = 200.0;
  double burst_every_ms = 0;  // 0 = no burst episodes
  double burst_len_ms = 250.0;
  double burst_mult = 4.0;

  std::uint64_t accounts = 100000;
  double zipf_s = 1.0;

  FeeModel fee_model = FeeModel::kUniform;
  std::uint64_t base_fee = 100;
  std::uint64_t base_value = 1000;
  double value_sigma = 1.5;

  /// Backpressure response: on a MempoolReject the tx is retried after
  /// min(retry_backoff * 2^(attempt-1), retry_backoff_cap); after
  /// max_retries rejects it is dropped as a terminal reject.
  std::uint32_t max_retries = 6;
  TimeNs retry_backoff = ms(40);
  TimeNs retry_backoff_cap = ms(640);

  TimeNs start_at = ms(900);
  TimeNs stop_at = 0;  // 0 = generate until the run ends
  TimeNs measure_from = 0;
  TimeNs measure_to = 0;
};

struct OpenLoopStats {
  std::uint64_t offered = 0;    // arrivals generated
  std::uint64_t submitted = 0;  // submit sends, including retries
  std::uint64_t resubmissions = 0;
  std::uint64_t committed_total = 0;
  std::uint64_t committed_in_window = 0;
  std::uint64_t rejected_events = 0;   // backpressure signals received
  std::uint64_t terminal_rejects = 0;  // dropped after max_retries
  std::uint64_t duplicate_notifies = 0;
};

/// Open-loop traffic source co-located with one consensus node: arrivals
/// fire on a Poisson(+burst) clock regardless of commit progress — the
/// load does not adapt to the system, which is what makes overload and
/// backpressure measurable. Each arrival is one WorkloadTx with a
/// Zipf-sampled account, a fee bid, and a sampled value.
class OpenLoopClientPool final : public sim::Process {
 public:
  OpenLoopClientPool(sim::Simulation* sim, sim::Transport* transport,
                     NodeId id, NodeId target_node,
                     const OpenLoopOptions& options, std::uint64_t run_seed);

  void on_start() override;

  const OpenLoopStats& stats() const { return stats_; }
  /// Per-transaction commit latency (first submission -> notify), ms,
  /// sampled inside the measurement window.
  const Samples& latency_ms() const { return latency_ms_; }
  /// Transactions submitted and neither committed nor terminally rejected.
  std::uint64_t unresolved() const { return outstanding_.size(); }
  std::vector<std::uint64_t> unresolved_ids(std::size_t limit) const;

  // --- fault hooks for the schedule fuzzer ---
  /// Multiplies subsequent fee bids (fee-spike episode).
  void set_fee_multiplier(double m) { fee_multiplier_ = m < 0 ? 0 : m; }
  /// Emits `count` arrivals immediately (overflow-at-tick fault).
  void inject_burst(std::uint32_t count);

 protected:
  void on_message(const sim::Envelope& env) override;

 private:
  void schedule_next_arrival();
  void emit_tx();
  void submit_tx(const WorkloadTx& tx, bool is_retry);

  NodeId target_;
  OpenLoopOptions options_;
  PoissonArrivals arrivals_;
  ZipfSampler zipf_;
  Rng rng_;  // accounts, fees, values
  double fee_multiplier_ = 1.0;
  std::uint64_t next_counter_ = 0;

  struct Outstanding {
    WorkloadTx tx;
    std::uint32_t rejects = 0;
  };
  std::map<std::uint64_t, Outstanding> outstanding_;

  OpenLoopStats stats_;
  Samples latency_ms_;
};

}  // namespace lyra::workload
