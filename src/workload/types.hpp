#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.hpp"
#include "support/types.hpp"

namespace lyra::workload {

/// Adversarial role of a transaction in the economic front-running model.
/// Organic traffic comes from open-loop client pools; front/back pairs are
/// injected by the sandwich adversary around a targeted victim.
inline constexpr std::uint8_t kRoleOrganic = 0;
inline constexpr std::uint8_t kRoleFront = 1;
inline constexpr std::uint8_t kRoleBack = 2;

/// One open-loop transaction. Unlike the count-aggregated closed-loop
/// chunks, workload transactions are individually identified so the
/// mempool can admit/evict/deduplicate them and the economics evaluator
/// can match adversary orders to their victims in the committed sequence.
struct WorkloadTx {
  /// Globally unique: (origin process id << 40) | per-origin counter.
  /// Client pools and adversary nodes have disjoint process ids, so ids
  /// never collide across origins.
  std::uint64_t id = 0;
  /// Zipf-sampled hot-account key (contention model; not yet executed
  /// against an application state machine).
  std::uint64_t account = 0;
  /// Priority bid. The bounded mempool admits and carves by fee.
  std::uint64_t fee = 0;
  /// Economic value moved; what a sandwich adversary skims slippage from.
  std::uint64_t value = 0;
  /// 0 for organic traffic; the victim's tx id for front/back orders.
  std::uint64_t target_id = 0;
  /// Reply-to process for commit notifies and backpressure rejects.
  NodeId client = kNoNode;
  std::uint8_t role = kRoleOrganic;
  /// First submission time; retries keep it so latency spans all attempts.
  TimeNs submitted_at = 0;
};

/// Builds a tx id from an origin process id and that origin's counter.
inline std::uint64_t make_tx_id(NodeId origin, std::uint64_t counter) {
  return (static_cast<std::uint64_t>(origin) << 40) | (counter & ((1ull << 40) - 1));
}

inline NodeId tx_id_origin(std::uint64_t id) {
  return static_cast<NodeId>(id >> 40);
}

// --- batch payload codec -------------------------------------------------
//
// Open-loop batches serialize their transactions into the batch payload
// ("WLB1" magic + count + fixed-width records, little-endian) so that the
// committed ledger carries enough information for the economics evaluator
// — and so the Pompē cleartext leak exposes exactly this structure to the
// adversary, while Lyra's commit-reveal hides it until after ordering.

inline constexpr std::uint32_t kBatchMagic = 0x31424c57;  // "WLB1"
inline constexpr std::size_t kTxRecordBytes = 8 + 8 + 8 + 8 + 8 + 4 + 1 + 8;
inline constexpr std::size_t kBatchHeaderBytes = 8;

inline std::size_t encoded_batch_size(std::size_t count) {
  return kBatchHeaderBytes + count * kTxRecordBytes;
}

inline Bytes encode_batch(const std::vector<WorkloadTx>& txs) {
  Bytes out;
  out.reserve(encoded_batch_size(txs.size()));
  append_u32(out, kBatchMagic);
  append_u32(out, static_cast<std::uint32_t>(txs.size()));
  for (const WorkloadTx& tx : txs) {
    append_u64(out, tx.id);
    append_u64(out, tx.account);
    append_u64(out, tx.fee);
    append_u64(out, tx.value);
    append_u64(out, tx.target_id);
    append_u32(out, tx.client);
    out.push_back(tx.role);
    append_i64(out, tx.submitted_at);
  }
  return out;
}

namespace detail {
inline std::uint64_t read_u64(BytesView b, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[at + i]) << (8 * i);
  }
  return v;
}
inline std::uint32_t read_u32(BytesView b, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[at + i]) << (8 * i);
  }
  return v;
}
}  // namespace detail

inline bool is_workload_batch(BytesView payload) {
  return payload.size() >= kBatchHeaderBytes &&
         detail::read_u32(payload, 0) == kBatchMagic;
}

/// Appends the decoded transactions to `out`. Returns false (leaving `out`
/// untouched) if the payload is not a well-formed workload batch.
inline bool decode_batch(BytesView payload, std::vector<WorkloadTx>* out) {
  if (!is_workload_batch(payload)) return false;
  const std::uint32_t count = detail::read_u32(payload, 4);
  if (payload.size() < encoded_batch_size(count)) return false;
  std::size_t at = kBatchHeaderBytes;
  out->reserve(out->size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WorkloadTx tx;
    tx.id = detail::read_u64(payload, at);
    tx.account = detail::read_u64(payload, at + 8);
    tx.fee = detail::read_u64(payload, at + 16);
    tx.value = detail::read_u64(payload, at + 24);
    tx.target_id = detail::read_u64(payload, at + 32);
    tx.client = detail::read_u32(payload, at + 40);
    tx.role = payload[at + 44];
    tx.submitted_at =
        static_cast<TimeNs>(detail::read_u64(payload, at + 45));
    at += kTxRecordBytes;
    out->push_back(tx);
  }
  return true;
}

}  // namespace lyra::workload
