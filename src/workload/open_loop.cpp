#include "workload/open_loop.hpp"

#include <algorithm>

#include "lyra/messages.hpp"
#include "sim/payload_pool.hpp"

namespace lyra::workload {
namespace {
// Stream tags for derive_stream: arrival clock and tx-field sampling are
// independent streams so adding a field never perturbs arrival times.
constexpr std::uint64_t kArrivalStream = 0x6f6c2d61727276;  // "ol-arrv"
constexpr std::uint64_t kFieldStream = 0x6f6c2d74786673;    // "ol-txfs"
}  // namespace

OpenLoopClientPool::OpenLoopClientPool(sim::Simulation* sim,
                                       sim::Transport* transport, NodeId id,
                                       NodeId target_node,
                                       const OpenLoopOptions& options,
                                       std::uint64_t run_seed)
    : sim::Process(sim, transport, id),
      target_(target_node),
      options_(options),
      arrivals_(
          PoissonArrivals::Options{options.arrival_rate,
                                   options.burst_every_ms,
                                   options.burst_len_ms, options.burst_mult},
          derive_stream(run_seed, kArrivalStream, id)),
      zipf_(options.accounts, options.zipf_s),
      rng_(derive_stream(run_seed, kFieldStream, id)) {}

void OpenLoopClientPool::on_start() {
  const TimeNs first = std::max(options_.start_at, now() + 1);
  set_timer(first - now(), [this] { emit_tx(); });
}

void OpenLoopClientPool::schedule_next_arrival() {
  const TimeNs at = arrivals_.next(now());
  if (options_.stop_at > 0 && at > options_.stop_at) return;
  set_timer(at - now(), [this] { emit_tx(); });
}

void OpenLoopClientPool::emit_tx() {
  WorkloadTx tx;
  tx.id = make_tx_id(id(), ++next_counter_);
  tx.account = zipf_.sample(rng_);
  tx.fee = sample_fee(options_.fee_model, options_.base_fee, rng_);
  if (fee_multiplier_ != 1.0) {
    const double f = static_cast<double>(tx.fee) * fee_multiplier_;
    tx.fee = f >= 1e18 ? static_cast<std::uint64_t>(1e18)
                       : static_cast<std::uint64_t>(std::max(1.0, f));
  }
  tx.value = sample_value(options_.base_value, options_.value_sigma, rng_);
  tx.client = id();
  tx.role = kRoleOrganic;
  tx.submitted_at = now();
  ++stats_.offered;
  outstanding_.emplace(tx.id, Outstanding{tx, 0});
  submit_tx(tx, /*is_retry=*/false);
  schedule_next_arrival();
}

void OpenLoopClientPool::inject_burst(std::uint32_t count) {
  // Same path as organic arrivals, just `count` of them at one instant —
  // exactly what a coordinated spam tick looks like to the mempool.
  for (std::uint32_t i = 0; i < count; ++i) {
    WorkloadTx tx;
    tx.id = make_tx_id(id(), ++next_counter_);
    tx.account = zipf_.sample(rng_);
    tx.fee = sample_fee(options_.fee_model, options_.base_fee, rng_);
    tx.value = sample_value(options_.base_value, options_.value_sigma, rng_);
    tx.client = id();
    tx.role = kRoleOrganic;
    tx.submitted_at = now();
    ++stats_.offered;
    outstanding_.emplace(tx.id, Outstanding{tx, 0});
    submit_tx(tx, /*is_retry=*/false);
  }
}

void OpenLoopClientPool::submit_tx(const WorkloadTx& tx, bool is_retry) {
  auto msg = sim::make_payload<core::SubmitMsg>();
  msg->count = 1;
  // Latency spans all attempts: retries carry the original time.
  msg->submitted_at = tx.submitted_at;
  msg->wtxs.push_back(tx);
  send(target_, std::move(msg));
  ++stats_.submitted;
  if (is_retry) ++stats_.resubmissions;
}

void OpenLoopClientPool::on_message(const sim::Envelope& env) {
  if (const auto* notify = sim::payload_as<core::CommitNotifyMsg>(env)) {
    for (const std::uint64_t tx_id : notify->tx_ids) {
      auto it = outstanding_.find(tx_id);
      if (it == outstanding_.end()) {
        ++stats_.duplicate_notifies;
        continue;
      }
      ++stats_.committed_total;
      const TimeNs submitted = it->second.tx.submitted_at;
      if (submitted >= options_.measure_from && now() <= options_.measure_to) {
        ++stats_.committed_in_window;
        latency_ms_.add(static_cast<double>(now() - submitted) /
                        static_cast<double>(kNsPerMs));
      }
      outstanding_.erase(it);
    }
    return;
  }
  if (const auto* reject = sim::payload_as<core::MempoolRejectMsg>(env)) {
    for (const std::uint64_t tx_id : reject->tx_ids) {
      auto it = outstanding_.find(tx_id);
      if (it == outstanding_.end()) continue;  // already committed or dropped
      ++stats_.rejected_events;
      Outstanding& o = it->second;
      ++o.rejects;
      if (o.rejects > options_.max_retries) {
        ++stats_.terminal_rejects;
        outstanding_.erase(it);
        continue;
      }
      const int shift = static_cast<int>(std::min<std::uint32_t>(
          o.rejects - 1, 30));
      const TimeNs backoff = std::min(options_.retry_backoff_cap,
                                      options_.retry_backoff << shift);
      const std::uint64_t id_copy = tx_id;
      set_timer(backoff, [this, id_copy] {
        auto again = outstanding_.find(id_copy);
        if (again == outstanding_.end()) return;
        submit_tx(again->second.tx, /*is_retry=*/true);
      });
    }
    return;
  }
}

std::vector<std::uint64_t> OpenLoopClientPool::unresolved_ids(
    std::size_t limit) const {
  std::vector<std::uint64_t> out;
  for (const auto& [tx_id, o] : outstanding_) {
    if (out.size() >= limit) break;
    out.push_back(tx_id);
  }
  return out;
}

}  // namespace lyra::workload
