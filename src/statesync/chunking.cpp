#include "statesync/chunking.hpp"

#include <algorithm>

#include "storage/codec.hpp"

namespace lyra::statesync {

Bytes encode_sync_prefix(const std::vector<core::AcceptedEntry>& entries) {
  Bytes out;
  out.reserve(sync_prefix_bytes(entries.size()));
  append_u64(out, entries.size());
  for (const core::AcceptedEntry& e : entries) append_sync_entry(out, e);
  return out;
}

void append_sync_entry(Bytes& out, const core::AcceptedEntry& e) {
  storage::append_digest(out, e.cipher_id);
  append_i64(out, e.seq);
  storage::append_instance(out, e.inst);
}

bool decode_sync_prefix(BytesView data,
                        std::vector<core::AcceptedEntry>& out) {
  storage::ByteReader r(data);
  const std::uint64_t count = r.u64();
  // Divide, don't multiply: a tampered count near 2^64 would wrap the
  // product past the length check and then abort inside reserve().
  if (!r.ok() || r.remaining() % kSyncEntryBytes != 0 ||
      count != r.remaining() / kSyncEntryBytes) {
    return false;
  }
  std::vector<core::AcceptedEntry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    core::AcceptedEntry e;
    e.cipher_id = r.digest();
    e.seq = r.i64();
    e.inst = r.instance();
    entries.push_back(e);
  }
  if (!r.ok() || r.remaining() != 0) return false;
  out = std::move(entries);
  return true;
}

std::size_t chunk_count(std::size_t total_bytes, std::size_t chunk_bytes) {
  if (total_bytes == 0) return 0;
  return (total_bytes + chunk_bytes - 1) / chunk_bytes;
}

BytesView chunk_slice(BytesView blob, std::size_t index,
                      std::size_t chunk_bytes) {
  const std::size_t begin = index * chunk_bytes;
  if (begin >= blob.size()) return {};
  return blob.subspan(begin, std::min(chunk_bytes, blob.size() - begin));
}

crypto::Digest chunk_digest(std::uint64_t cut, std::uint32_t index,
                            BytesView data) {
  return crypto::Hasher()
      .add_str("lyra-sync-chunk")
      .add_u64(cut)
      .add_u32(index)
      .add(data)
      .digest();
}

crypto::Digest manifest_digest(std::uint64_t cut, std::uint64_t total_bytes,
                               const std::vector<crypto::Digest>& chunks) {
  crypto::Hasher h;
  h.add_str("lyra-sync-manifest").add_u64(cut).add_u64(total_bytes);
  for (const crypto::Digest& d : chunks) h.add(d);
  return h.digest();
}

}  // namespace lyra::statesync
