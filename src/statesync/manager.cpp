#include "statesync/manager.hpp"

#include <algorithm>

#include "sim/payload_pool.hpp"

#include "statesync/chunking.hpp"

namespace lyra::statesync {

namespace {
/// Hard caps on hostile inputs: a manifest claiming a multi-gigabyte blob
/// or a reveal request listing millions of ciphers is dropped outright.
constexpr std::uint64_t kMaxChunkBytes = 1u << 20;
constexpr std::size_t kMaxRevealReqIds = 1024;
}  // namespace

StateSyncManager::StateSyncManager(StateSyncHost* host, std::size_t n,
                                   std::size_t f, TimeNs delta,
                                   StateSyncConfig config)
    : host_(host),
      n_(n),
      f_(f),
      delta_(delta),
      config_(config),
      demoted_(n, false) {}

// ---------------------------------------------------------------------------
// snapshot transfer: probe -> manifest -> chunks

void StateSyncManager::begin_full_sync() {
  if (phase_ != Phase::kIdle) return;
  stats_.syncs_started++;
  if (n_ < 2) {
    // No peers exist; an empty ledger is the only consistent state.
    finish_sync({});
    return;
  }
  start_probe();
}

void StateSyncManager::start_probe() {
  phase_ = Phase::kProbe;
  round_++;
  peer_len_.assign(n_, -1);

  auto req = sim::make_payload<SyncManifestReqMsg>();
  req->want_cut = 0;
  req->chunk_bytes = config_.chunk_bytes;
  host_->sync_broadcast(req);

  const std::uint64_t round = round_;
  host_->sync_set_timer(2 * delta_, [this, round] {
    if (round_ != round || phase_ != Phase::kProbe) return;
    compute_cut();
  });
}

void StateSyncManager::compute_cut() {
  std::vector<std::int64_t> lens;
  for (NodeId id = 0; id < n_; ++id) {
    if (id != host_->sync_self() && peer_len_[id] >= 0) {
      lens.push_back(peer_len_[id]);
    }
  }
  if (lens.size() < f_ + 1) {
    // Not enough peers answered; try again (peers may still be booting).
    start_probe();
    return;
  }
  // The (f+1)-th largest reported length: at least one correct peer claims
  // a committed prefix that long, and committed prefixes never shrink, so
  // every entry below the cut is durably committed somewhere correct.
  std::sort(lens.begin(), lens.end(), std::greater<>());
  cut_ = static_cast<std::uint64_t>(lens[f_]);
  if (cut_ == 0) {
    finish_sync({});
    return;
  }
  start_manifest();
}

void StateSyncManager::start_manifest() {
  phase_ = Phase::kManifest;
  round_++;
  stats_.manifest_rounds++;
  groups_.clear();

  auto req = sim::make_payload<SyncManifestReqMsg>();
  req->want_cut = cut_;
  req->chunk_bytes = config_.chunk_bytes;
  host_->sync_broadcast(req);

  const std::uint64_t round = round_;
  host_->sync_set_timer(2 * delta_, [this, round] {
    if (round_ != round || phase_ != Phase::kManifest) return;
    // No f+1 manifest quorum in time: renegotiate the cut from fresh
    // lengths (peers may have restarted below it, or f of them lied).
    start_probe();
  });
}

void StateSyncManager::handle_manifest_reply(const sim::Envelope& env,
                                             const SyncManifestReplyMsg& m) {
  // Replies index per-peer state by sender; a reply from outside the
  // consensus group (a confused or hostile client id) must be dropped, not
  // written through peer_len_/vote bitmaps out of bounds.
  if (env.from >= n_) return;
  if (phase_ == Phase::kProbe && m.cut == 0) {
    peer_len_[env.from] =
        static_cast<std::int64_t>(std::min<std::uint64_t>(m.ledger_len, 1u << 30));
    std::size_t reports = 0;
    for (NodeId id = 0; id < n_; ++id) {
      if (id != host_->sync_self() && peer_len_[id] >= 0) reports++;
    }
    if (reports == n_ - 1) compute_cut();  // everyone answered: no need to wait
    return;
  }

  if (phase_ != Phase::kManifest || m.cut != cut_ || !m.have) return;
  // Structural checks before grouping: the blob size for a given cut is
  // determined by the codec, and the chunk list must tile it exactly. A
  // manifest failing either is malformed regardless of who signed it.
  if (m.total_bytes != sync_prefix_bytes(cut_)) return;
  if (m.chunk_digests.size() !=
      chunk_count(m.total_bytes, config_.chunk_bytes)) {
    return;
  }
  // Recompute the binding digest instead of trusting the reported one, so
  // two peers land in the same group iff they agree on every chunk digest.
  const crypto::Digest key =
      manifest_digest(m.cut, m.total_bytes, m.chunk_digests);
  if (key != m.manifest_digest) return;  // internally inconsistent reply

  ManifestGroup& g = groups_[key];
  if (g.members.empty()) {
    g.total_bytes = m.total_bytes;
    g.chunk_digests = m.chunk_digests;
  }
  if (std::find(g.members.begin(), g.members.end(), env.from) !=
      g.members.end()) {
    return;
  }
  g.members.push_back(env.from);
  if (g.members.size() >= f_ + 1) adopt_manifest(g);
}

void StateSyncManager::adopt_manifest(const ManifestGroup& group) {
  phase_ = Phase::kChunks;
  round_++;
  total_bytes_ = group.total_bytes;
  chunk_digests_ = group.chunk_digests;
  servers_ = group.members;
  next_server_ = 0;
  chunks_.assign(chunk_digests_.size(), ChunkState{});
  chunks_done_ = 0;
  inflight_ = 0;
  server_inflight_.assign(n_, 0);
  server_strikes_.assign(n_, 0);
  if (config_.delta_transfer) claim_local_chunks();
  pump_chunks();
}

void StateSyncManager::claim_local_chunks() {
  // Delta transfer: every chunk that lies entirely inside the recovered
  // local prefix can be synthesized byte-for-byte (the blob layout is
  // flat: header, then fixed-size entries) and checked against the
  // f+1-agreed chunk digest. A match is exactly as trustworthy as a
  // verified network chunk; a mismatch means the local prefix diverged,
  // and that chunk is pulled like any other.
  const std::uint64_t local =
      std::min<std::uint64_t>(host_->sync_ledger_length(), cut_);
  const std::uint64_t covered = sync_prefix_bytes(local);
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const std::uint64_t begin = i * config_.chunk_bytes;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + config_.chunk_bytes, total_bytes_);
    if (end > covered) break;  // extends past what we hold locally
    Bytes data = encode_blob_range(cut_, begin, end, /*tampered=*/false);
    host_->sync_charge_hash(data.size());
    if (data.size() != end - begin ||
        chunk_digest(cut_, static_cast<std::uint32_t>(i), data) !=
            chunk_digests_[i]) {
      continue;
    }
    chunks_[i].state = ChunkState::kDone;
    chunks_[i].data = std::move(data);
    chunks_done_++;
    stats_.chunks_local++;
    stats_.bytes_local += end - begin;
  }
}

StateSyncManager::Pick StateSyncManager::pick_server(NodeId& out) {
  bool any_alive = false;
  NodeId best = kNoNode;
  std::size_t best_pos = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const std::size_t pos = (next_server_ + i) % servers_.size();
    const NodeId id = servers_[pos];
    if (demoted_[id]) continue;
    any_alive = true;
    if (config_.max_per_server_inflight > 0 &&
        server_inflight_[id] >= config_.max_per_server_inflight) {
      continue;
    }
    // Fewest consecutive timeouts wins; the strict < keeps round-robin
    // order on ties, so timeout-free transfers pick exactly as before.
    if (best == kNoNode || server_strikes_[id] < server_strikes_[best]) {
      best = id;
      best_pos = pos;
    }
  }
  if (!any_alive) return Pick::kExhausted;
  if (best == kNoNode) return Pick::kSaturated;
  next_server_ = (best_pos + 1) % servers_.size();
  out = best;
  return Pick::kOk;
}

void StateSyncManager::exclude(NodeId peer, bool byzantine) {
  if (peer >= n_ || demoted_[peer]) return;
  demoted_[peer] = true;
  if (byzantine) stats_.peers_demoted++;
}

void StateSyncManager::release_assignment(NodeId server) {
  if (server < n_ && server_inflight_[server] > 0) {
    server_inflight_[server]--;
  }
}

void StateSyncManager::pump_chunks() {
  while (inflight_ < config_.max_inflight_chunks) {
    std::size_t next = chunks_.size();
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      if (chunks_[i].state == ChunkState::kPending) {
        next = i;
        break;
      }
    }
    if (next == chunks_.size()) break;  // nothing pending (inflight or done)
    NodeId server = kNoNode;
    const Pick pick = pick_server(server);
    if (pick == Pick::kExhausted) {
      // Every manifest-quorum member is demoted or lost the cut; the
      // quorum itself is stale. Renegotiate from scratch.
      start_probe();
      return;
    }
    if (pick == Pick::kSaturated) break;  // a reply or timeout re-pumps
    request_chunk(next, server);
  }
  if (chunks_done_ == chunks_.size()) assemble_and_install();
}

void StateSyncManager::request_chunk(std::size_t index, NodeId server) {
  ChunkState& cs = chunks_[index];
  cs.state = ChunkState::kInflight;
  cs.server = server;
  inflight_++;
  server_inflight_[server]++;

  auto req = sim::make_payload<SyncChunkReqMsg>();
  req->cut = cut_;
  req->chunk_bytes = config_.chunk_bytes;
  req->chunk = static_cast<std::uint32_t>(index);
  host_->sync_send(server, req);

  // Back off per attempt (capped): a slow-but-honest peer gets more slack
  // on retries instead of being hammered on a fixed cadence.
  const TimeNs timeout =
      2 * delta_ * static_cast<TimeNs>(std::min<std::uint32_t>(cs.attempt + 1, 4));
  const std::uint64_t round = round_;
  const std::uint32_t attempt = cs.attempt;
  host_->sync_set_timer(timeout, [this, round, index, attempt] {
    if (round_ != round || phase_ != Phase::kChunks) return;
    ChunkState& c = chunks_[index];
    if (c.state != ChunkState::kInflight || c.attempt != attempt) return;
    // Timed out: rotate to the next server. Slowness is not proof of
    // misbehaviour, so the old server is deprioritized (a strike per
    // consecutive timeout, cleared by any verified reply) rather than
    // demoted, and its outstanding slot is freed for the cap.
    stats_.chunk_timeouts++;
    if (c.server < n_) {
      release_assignment(c.server);
      server_strikes_[c.server]++;
    }
    c.state = ChunkState::kPending;
    c.server = kNoNode;
    c.attempt++;
    inflight_--;
    pump_chunks();
  });
}

void StateSyncManager::handle_chunk_reply(const sim::Envelope& env,
                                          const SyncChunkReplyMsg& m) {
  if (env.from >= n_) return;  // not a consensus peer
  if (phase_ != Phase::kChunks || m.cut != cut_ ||
      m.chunk >= chunks_.size()) {
    return;
  }
  ChunkState& cs = chunks_[m.chunk];
  if (cs.state == ChunkState::kDone) return;

  const bool assigned =
      cs.state == ChunkState::kInflight && cs.server == env.from;
  auto release = [&] {
    if (!assigned) return;
    release_assignment(env.from);
    cs.state = ChunkState::kPending;
    cs.server = kNoNode;
    cs.attempt++;
    inflight_--;
  };

  if (!m.have) {
    // The peer restarted below the cut since voting for the manifest; it
    // cannot serve this transfer any more, but it is not Byzantine.
    exclude(env.from, /*byzantine=*/false);
    release();
    pump_chunks();
    return;
  }

  host_->sync_charge_hash(m.data.size());
  if (chunk_digest(cut_, m.chunk, m.data) != chunk_digests_[m.chunk]) {
    // Garbage bytes under an f+1-agreed digest: proven misbehaviour.
    stats_.chunks_rejected++;
    exclude(env.from, /*byzantine=*/true);
    release();
    pump_chunks();
    return;
  }

  if (cs.state == ChunkState::kInflight) {
    // Whoever currently holds the assignment (env.from, or another server
    // if this is a late reply to a reassigned chunk) gets its slot back.
    release_assignment(cs.server);
    inflight_--;
  }
  server_strikes_[env.from] = 0;  // a verified reply clears slow-peer strikes
  cs.state = ChunkState::kDone;
  cs.data = m.data;
  chunks_done_++;
  stats_.chunks_fetched++;
  stats_.bytes_transferred += m.data.size();
  pump_chunks();
}

void StateSyncManager::assemble_and_install() {
  Bytes blob;
  blob.reserve(total_bytes_);
  for (ChunkState& cs : chunks_) append(blob, cs.data);

  std::vector<core::AcceptedEntry> entries;
  if (blob.size() != total_bytes_ || !decode_sync_prefix(blob, entries) ||
      entries.size() != cut_) {
    // Unreachable with a correct codec: every chunk was digest-verified
    // against an f+1 manifest quorum. Renegotiate rather than crash.
    start_probe();
    return;
  }
  finish_sync(entries);
}

void StateSyncManager::finish_sync(
    const std::vector<core::AcceptedEntry>& entries) {
  if (!entries.empty() && !host_->sync_install_prefix(entries)) {
    // The host found the quorum-voted cut conflicting with its own ledger.
    // With f+1 distinct vouchers that would take a protocol-safety break —
    // but a fuzzer-injected fault must surface as a refusal plus a
    // renegotiation, never as a process abort.
    stats_.installs_refused++;
    start_probe();
    return;
  }
  phase_ = Phase::kIdle;
  round_++;
  stats_.syncs_completed++;
  if (!entries.empty()) stats_.entries_installed += entries.size();
  host_->sync_completed();
  begin_catchup();
}

// ---------------------------------------------------------------------------
// reveal catch-up

void StateSyncManager::begin_catchup() {
  if (n_ < 2) return;
  arm_catchup(0);
}

void StateSyncManager::note_unrevealed_commit() {
  if (sync_active() || n_ < 2) return;
  // Grace period: the normal shares-in-flight path usually reveals within
  // a couple of message delays; only entries still dark after it get a
  // catch-up round.
  arm_catchup(4 * delta_);
}

void StateSyncManager::arm_catchup(TimeNs delay) {
  if (catchup_armed_) return;
  catchup_armed_ = true;
  host_->sync_set_timer(delay, [this] {
    catchup_armed_ = false;
    if (!sync_active()) catchup_tick();
  });
}

void StateSyncManager::catchup_tick() {
  const std::vector<crypto::Digest> holes =
      host_->sync_unrevealed(config_.max_reveal_batch);
  if (holes.empty()) {
    catchup_.clear();
    return;
  }
  // Drop vote state for entries that revealed through the normal path
  // since the last round, and open state for newly discovered holes.
  std::unordered_map<crypto::Digest, CatchupEntry, crypto::DigestHash> keep;
  for (const crypto::Digest& id : holes) {
    auto it = catchup_.find(id);
    keep[id] = it != catchup_.end() ? std::move(it->second) : CatchupEntry{};
  }
  catchup_ = std::move(keep);

  // One designated payload server per round (rotating past demoted peers);
  // everyone else contributes a cheap digest vote.
  NodeId server = kNoNode;
  for (std::size_t i = 0; i < n_; ++i) {
    const NodeId id = (catchup_server_rr_ + i) % n_;
    if (id != host_->sync_self() && !demoted_[id]) {
      server = id;
      catchup_server_rr_ = (id + 1) % static_cast<NodeId>(n_);
      break;
    }
  }

  auto vote_req = sim::make_payload<RevealReqMsg>();
  vote_req->cipher_ids = holes;
  vote_req->want_payload = false;
  std::shared_ptr<RevealReqMsg> payload_req;
  if (server != kNoNode) {
    payload_req = sim::make_payload<RevealReqMsg>();
    payload_req->cipher_ids = holes;
    payload_req->want_payload = true;
  }
  for (NodeId id = 0; id < n_; ++id) {
    if (id == host_->sync_self()) continue;
    if (id == server) {
      host_->sync_send(id, payload_req);
    } else {
      host_->sync_send(id, vote_req);
    }
  }
  arm_catchup(2 * delta_);  // keep ticking until no holes remain
}

void StateSyncManager::handle_reveal_reply(const sim::Envelope& env,
                                           const RevealReplyMsg& m) {
  if (env.from >= n_) return;  // vote bitmaps are indexed by sender
  for (const RevealReplyMsg::Item& item : m.items) {
    auto it = catchup_.find(item.cipher_id);
    if (it == catchup_.end()) continue;
    CatchupEntry& entry = it->second;

    auto& bitmap = entry.votes[{item.payload_digest, item.tx_count}];
    if (bitmap.empty()) bitmap.assign(n_, false);
    bitmap[env.from] = true;

    if (item.have_payload && !entry.have_payload) {
      host_->sync_charge_hash(item.payload.size());
      if (!host_->sync_verify_payload(item.payload, item.payload_digest)) {
        // Served bytes do not hash to the digest it vouched for.
        stats_.catchup_rejections++;
        exclude(env.from, /*byzantine=*/true);
      } else {
        entry.payload = item.payload;
        entry.payload_digest = item.payload_digest;
        entry.have_payload = true;
      }
    }
    try_install_catchup(item.cipher_id);
  }
}

void StateSyncManager::try_install_catchup(const crypto::Digest& cipher_id) {
  auto it = catchup_.find(cipher_id);
  if (it == catchup_.end()) return;
  CatchupEntry& entry = it->second;

  for (auto& [key, bitmap] : entry.votes) {
    const std::size_t votes = static_cast<std::size_t>(
        std::count(bitmap.begin(), bitmap.end(), true));
    if (votes < f_ + 1) continue;
    // f+1 distinct peers agree on (payload_digest, tx_count); at least one
    // is correct, so this is the digest the network revealed. A payload
    // verified against a *different* digest came from a lying server:
    // drop it and let the next round's server supply the right bytes.
    if (!entry.have_payload || entry.payload_digest != key.first) {
      entry.have_payload = false;
      entry.payload.clear();
      return;
    }
    if (host_->sync_install_payload(cipher_id, entry.payload, key.first,
                                    key.second)) {
      stats_.catchup_reveals++;
    }
    catchup_.erase(it);
    return;
  }
}

// ---------------------------------------------------------------------------
// serving side

Bytes StateSyncManager::encode_blob_range(std::uint64_t cut,
                                          std::uint64_t begin,
                                          std::uint64_t end,
                                          bool tampered) const {
  const std::uint64_t total = sync_prefix_bytes(cut);
  end = std::min(end, total);
  if (begin >= end) return {};
  // Build whole records covering [begin, end) into a staging buffer, then
  // slice. The buffer never exceeds the range by more than one entry plus
  // the 8-byte count header.
  Bytes buf;
  buf.reserve(static_cast<std::size_t>(end - begin) + kSyncEntryBytes + 8);
  std::uint64_t buf_start = 0;
  if (begin < 8) {
    append_u64(buf, cut);
  } else {
    buf_start = 8 + ((begin - 8) / kSyncEntryBytes) * kSyncEntryBytes;
  }
  const std::uint64_t first_entry =
      buf_start <= 8 ? 0 : (buf_start - 8) / kSyncEntryBytes;
  const std::uint64_t need =
      end <= 8 ? 0 : (end - 8 + kSyncEntryBytes - 1) / kSyncEntryBytes;
  if (need > first_entry) {
    const std::vector<core::AcceptedEntry> entries =
        host_->sync_committed_entries(
            first_entry, static_cast<std::size_t>(need - first_entry));
    for (const core::AcceptedEntry& e : entries) append_sync_entry(buf, e);
  }
  if (buf.size() < end - buf_start) return {};  // prefix shorter than cut
  Bytes out(buf.begin() + static_cast<std::ptrdiff_t>(begin - buf_start),
            buf.begin() + static_cast<std::ptrdiff_t>(end - buf_start));
  if (tampered && begin <= 8 && 8 < end) {
    // Self-consistent lie: tamper the blob *before* digests are computed,
    // so manifest and chunks agree with each other but with no honest peer.
    out[8 - begin] ^= 0x01;
  }
  return out;
}

Bytes StateSyncManager::serve_chunk(std::uint64_t cut, std::size_t chunk_bytes,
                                    std::uint32_t index) {
  for (ServeChunk& c : serve_lru_) {
    if (c.cut == cut && c.chunk_bytes == chunk_bytes && c.index == index) {
      c.stamp = ++serve_stamp_;
      return c.data;
    }
  }
  const std::uint64_t begin = std::uint64_t{index} * chunk_bytes;
  ServeChunk fresh;
  fresh.cut = cut;
  fresh.chunk_bytes = chunk_bytes;
  fresh.index = index;
  fresh.stamp = ++serve_stamp_;
  fresh.data =
      encode_blob_range(cut, begin, begin + chunk_bytes,
                        byzantine_ == ByzantineSyncMode::kWrongManifest);
  Bytes data = fresh.data;
  if (serve_lru_.size() < std::max<std::size_t>(config_.serve_cache_chunks, 1)) {
    serve_lru_.push_back(std::move(fresh));
  } else {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < serve_lru_.size(); ++i) {
      if (serve_lru_[i].stamp < serve_lru_[oldest].stamp) oldest = i;
    }
    serve_lru_[oldest] = std::move(fresh);
  }
  return data;
}

const std::vector<crypto::Digest>& StateSyncManager::serve_manifest(
    std::uint64_t cut, std::size_t chunk_bytes) {
  if (manifest_cache_cut_ == cut && manifest_cache_chunk_bytes_ == chunk_bytes &&
      !manifest_cache_.empty()) {
    return manifest_cache_;
  }
  const std::uint64_t total = sync_prefix_bytes(cut);
  const std::size_t count = chunk_count(total, chunk_bytes);
  manifest_cache_.clear();
  manifest_cache_.reserve(count);
  const bool tampered = byzantine_ == ByzantineSyncMode::kWrongManifest;
  for (std::size_t i = 0; i < count; ++i) {
    // Streamed, not served through the LRU: a manifest pass touches every
    // chunk once and would otherwise flush the whole cache.
    const std::uint64_t begin = std::uint64_t{i} * chunk_bytes;
    const Bytes data =
        encode_blob_range(cut, begin, begin + chunk_bytes, tampered);
    manifest_cache_.push_back(
        chunk_digest(cut, static_cast<std::uint32_t>(i), data));
  }
  manifest_cache_cut_ = cut;
  manifest_cache_chunk_bytes_ = chunk_bytes;
  return manifest_cache_;
}

void StateSyncManager::handle_manifest_req(const sim::Envelope& env,
                                           const SyncManifestReqMsg& m) {
  auto reply = sim::make_payload<SyncManifestReplyMsg>();
  reply->ledger_len = host_->sync_ledger_length();
  if (m.want_cut == 0) {
    host_->sync_send(env.from, reply);
    return;
  }
  if (m.chunk_bytes == 0 || m.chunk_bytes > kMaxChunkBytes) return;
  reply->cut = m.want_cut;
  reply->have = reply->ledger_len >= m.want_cut;
  if (reply->have) {
    reply->total_bytes = sync_prefix_bytes(m.want_cut);
    host_->sync_charge_hash(reply->total_bytes);
    reply->chunk_digests =
        serve_manifest(m.want_cut, static_cast<std::size_t>(m.chunk_bytes));
    reply->manifest_digest =
        manifest_digest(m.want_cut, reply->total_bytes, reply->chunk_digests);
  }
  host_->sync_send(env.from, reply);
}

void StateSyncManager::handle_chunk_req(const sim::Envelope& env,
                                        const SyncChunkReqMsg& m) {
  if (m.chunk_bytes == 0 || m.chunk_bytes > kMaxChunkBytes || m.cut == 0) {
    return;
  }
  auto reply = sim::make_payload<SyncChunkReplyMsg>();
  reply->cut = m.cut;
  reply->chunk = m.chunk;
  reply->have = host_->sync_ledger_length() >= m.cut;
  if (reply->have) {
    if (config_.max_concurrent_serves > 0 &&
        serves_inflight_ >= config_.max_concurrent_serves) {
      // At the serve cap: shed instead of queueing unbounded work. The
      // requester's per-chunk timeout rotates it to another quorum member.
      stats_.serves_shed++;
      return;
    }
    reply->data = serve_chunk(m.cut, static_cast<std::size_t>(m.chunk_bytes),
                              m.chunk);
    if (byzantine_ == ByzantineSyncMode::kGarbageChunks &&
        !reply->data.empty()) {
      reply->data[0] ^= 0xFF;  // honest manifest, garbage bytes
    }
    if (config_.max_concurrent_serves > 0) {
      // A serve occupies the node's modeled transfer bandwidth for ~delta.
      serves_inflight_++;
      host_->sync_set_timer(delta_, [this] {
        if (serves_inflight_ > 0) serves_inflight_--;
      });
    }
  }
  host_->sync_send(env.from, reply);
}

void StateSyncManager::handle_reveal_req(const sim::Envelope& env,
                                         const RevealReqMsg& m) {
  if (m.cipher_ids.size() > kMaxRevealReqIds) return;
  auto reply = sim::make_payload<RevealReplyMsg>();
  for (const crypto::Digest& id : m.cipher_ids) {
    RevealReplyMsg::Item item;
    item.cipher_id = id;
    Bytes payload;
    if (!host_->sync_lookup_reveal(id, item.payload_digest, item.tx_count,
                                   payload)) {
      continue;
    }
    if (m.want_payload && !payload.empty()) {
      item.have_payload = true;
      item.payload = std::move(payload);
    }
    if (byzantine_ == ByzantineSyncMode::kGarbageChunks) {
      // Corrupt both the vote and any served bytes; honest peers outvote
      // the former and digest verification catches the latter.
      item.payload_digest[0] ^= 0xFF;
      if (!item.payload.empty()) item.payload[0] ^= 0xFF;
    }
    reply->items.push_back(std::move(item));
  }
  if (!reply->items.empty()) host_->sync_send(env.from, reply);
}

// ---------------------------------------------------------------------------

void StateSyncManager::on_message(const sim::Envelope& env) {
  if (env.from == host_->sync_self()) return;  // broadcast loop-back
  switch (env.payload->kind()) {
    case sim::MsgKind::kSyncManifestReq:
      if (auto* m = sim::payload_as<SyncManifestReqMsg>(env)) {
        handle_manifest_req(env, *m);
      }
      break;
    case sim::MsgKind::kSyncManifestReply:
      if (auto* m = sim::payload_as<SyncManifestReplyMsg>(env)) {
        handle_manifest_reply(env, *m);
      }
      break;
    case sim::MsgKind::kSyncChunkReq:
      if (auto* m = sim::payload_as<SyncChunkReqMsg>(env)) {
        handle_chunk_req(env, *m);
      }
      break;
    case sim::MsgKind::kSyncChunkReply:
      if (auto* m = sim::payload_as<SyncChunkReplyMsg>(env)) {
        handle_chunk_reply(env, *m);
      }
      break;
    case sim::MsgKind::kRevealReq:
      if (auto* m = sim::payload_as<RevealReqMsg>(env)) {
        handle_reveal_req(env, *m);
      }
      break;
    case sim::MsgKind::kRevealReply:
      if (auto* m = sim::payload_as<RevealReplyMsg>(env)) {
        handle_reveal_reply(env, *m);
      }
      break;
    default:
      break;
  }
}

}  // namespace lyra::statesync
