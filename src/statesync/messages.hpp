#pragma once

#include <vector>

#include "crypto/hash.hpp"
#include "lyra/messages.hpp"
#include "support/bytes.hpp"
#include "support/types.hpp"

namespace lyra::statesync {

using sim::MsgKind;

/// Manifest probe/request. `want_cut == 0` is the length probe (round 1 of
/// the cut protocol): the receiver reports how long its committed prefix
/// is. A non-zero `want_cut` asks for the manifest of the first `want_cut`
/// committed entries, chunked at `chunk_bytes` (the requester's chunking
/// granularity travels with the request so every peer's manifest digests
/// are computed over identical chunk boundaries).
struct SyncManifestReqMsg final : core::LyraMsg {
  std::uint64_t want_cut = 0;
  std::uint64_t chunk_bytes = 0;

  const char* name() const override { return "SYNC_MANIFEST_REQ"; }
  MsgKind kind() const override { return MsgKind::kSyncManifestReq; }
  std::size_t wire_size() const override { return 96; }
};

/// Answer to a SyncManifestReqMsg. For a length probe only `ledger_len` is
/// meaningful. For a manifest request, `have` says whether the responder's
/// committed prefix reaches the cut; if so it describes the encoded prefix
/// blob: total byte size, per-chunk digests, and the manifest digest
/// binding them (see chunking.hpp). The requester adopts a manifest only
/// once f+1 distinct peers reported the same digest.
struct SyncManifestReplyMsg final : core::LyraMsg {
  std::uint64_t cut = 0;  ///< echoed want_cut (0 for a length probe)
  std::uint64_t ledger_len = 0;
  bool have = false;
  std::uint64_t total_bytes = 0;
  std::vector<crypto::Digest> chunk_digests;
  crypto::Digest manifest_digest{};

  const char* name() const override { return "SYNC_MANIFEST_REPLY"; }
  MsgKind kind() const override { return MsgKind::kSyncManifestReply; }
  std::size_t wire_size() const override {
    return 144 + chunk_digests.size() * 32;
  }
};

/// Pull one chunk of the prefix blob at `cut`.
struct SyncChunkReqMsg final : core::LyraMsg {
  std::uint64_t cut = 0;
  std::uint64_t chunk_bytes = 0;
  std::uint32_t chunk = 0;

  const char* name() const override { return "SYNC_CHUNK_REQ"; }
  MsgKind kind() const override { return MsgKind::kSyncChunkReq; }
  std::size_t wire_size() const override { return 104; }
};

/// One chunk of the encoded prefix blob; `have == false` when the
/// responder's prefix no longer serves the cut (it never shrinks, so this
/// only happens when the responder itself restarted below it).
struct SyncChunkReplyMsg final : core::LyraMsg {
  std::uint64_t cut = 0;
  std::uint32_t chunk = 0;
  bool have = false;
  Bytes data;

  const char* name() const override { return "SYNC_CHUNK_REPLY"; }
  MsgKind kind() const override { return MsgKind::kSyncChunkReply; }
  std::size_t wire_size() const override { return 104 + data.size(); }
};

/// Reveal catch-up request: for each committed-but-locally-unrevealed
/// cipher, ask what the revealed payload hashed to (and how many
/// transactions it carried). Only the designated payload server of the
/// round is asked for the payload bytes themselves (`want_payload`); every
/// other peer contributes a cheap digest vote. The requester installs a
/// payload only when f+1 distinct peers vouch for its digest.
struct RevealReqMsg final : core::LyraMsg {
  std::vector<crypto::Digest> cipher_ids;
  bool want_payload = false;

  const char* name() const override { return "REVEAL_REQ"; }
  MsgKind kind() const override { return MsgKind::kRevealReq; }
  std::size_t wire_size() const override {
    return 88 + cipher_ids.size() * 32;
  }
};

/// Per-cipher reveal facts from one peer. `payload` is present only when
/// the request asked for it and the responder still retains the bytes;
/// digest votes flow regardless (a peer that dropped the payload after
/// execution still remembers what it hashed to).
struct RevealReplyMsg final : core::LyraMsg {
  struct Item {
    crypto::Digest cipher_id{};
    crypto::Digest payload_digest{};
    std::uint32_t tx_count = 0;
    bool have_payload = false;
    Bytes payload;
  };
  std::vector<Item> items;

  const char* name() const override { return "REVEAL_REPLY"; }
  MsgKind kind() const override { return MsgKind::kRevealReply; }
  std::size_t wire_size() const override {
    std::size_t total = 88;
    for (const Item& item : items) total += 80 + item.payload.size();
    return total;
  }
};

}  // namespace lyra::statesync
