#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash.hpp"
#include "lyra/messages.hpp"
#include "support/bytes.hpp"

namespace lyra::statesync {

/// Encoded size of one prefix entry: digest (32) + seq (8) + instance
/// (proposer 4 + index 8).
inline constexpr std::size_t kSyncEntryBytes = 52;

/// Exact blob size for a prefix of `count` entries; a manifest reporting
/// any other total for its cut is malformed and dropped before grouping.
inline constexpr std::uint64_t sync_prefix_bytes(std::uint64_t count) {
  return 8 + count * kSyncEntryBytes;
}

/// Deterministic wire form of a committed prefix, shared by every correct
/// node: only the ordering facts (seq, cipher_id, instance) go in. Reveal
/// flags and transaction counts are deliberately absent — they differ
/// between correct peers at the same cut (a batch can commit before its
/// cipher arrives), so including them would split the f+1 manifest quorum.
Bytes encode_sync_prefix(const std::vector<core::AcceptedEntry>& entries);

/// Appends the kSyncEntryBytes-byte wire form of one prefix entry — the
/// unit the chunk server streams from, so a single chunk can be encoded
/// without materializing the whole blob.
void append_sync_entry(Bytes& out, const core::AcceptedEntry& entry);

/// Strict inverse; false on any truncation, trailing garbage, or length
/// lie. The entry count is bounds-checked against the blob size before any
/// allocation, so a hostile header cannot balloon memory.
bool decode_sync_prefix(BytesView data,
                        std::vector<core::AcceptedEntry>& out);

/// Number of `chunk_bytes`-sized chunks covering `total_bytes` (0 for an
/// empty blob).
std::size_t chunk_count(std::size_t total_bytes, std::size_t chunk_bytes);

/// Byte range of chunk `index` (the last chunk may be short).
BytesView chunk_slice(BytesView blob, std::size_t index,
                      std::size_t chunk_bytes);

/// Digest of one chunk, bound to its cut and position so a Byzantine peer
/// cannot replay chunk k of a different cut (or a different slot) as
/// chunk k of this one.
crypto::Digest chunk_digest(std::uint64_t cut, std::uint32_t index,
                            BytesView data);

/// Digest of the whole manifest: cut, blob size, and every chunk digest in
/// order. This is what f+1 peers must agree on before any chunk is pulled.
crypto::Digest manifest_digest(std::uint64_t cut, std::uint64_t total_bytes,
                               const std::vector<crypto::Digest>& chunks);

}  // namespace lyra::statesync
