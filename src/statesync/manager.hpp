#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/hash.hpp"
#include "statesync/messages.hpp"
#include "support/types.hpp"

namespace lyra::statesync {

/// Knobs of the state-transfer protocols. Timeouts derive from the
/// protocol's Delta (passed at construction), not wall-clock constants.
struct StateSyncConfig {
  /// Chunking granularity of the prefix blob transfer.
  std::size_t chunk_bytes = 4096;
  /// Chunk requests in flight at once (spread round-robin over the
  /// manifest quorum members).
  std::size_t max_inflight_chunks = 4;
  /// Ciphers per reveal catch-up round.
  std::size_t max_reveal_batch = 64;
  /// Requester-side cap on chunk requests outstanding at a single server
  /// (0 = unlimited). Keeps one slow-but-honest peer from absorbing the
  /// whole inflight window a timeout at a time.
  std::size_t max_per_server_inflight = 2;
  /// Serving-side LRU capacity, in encoded chunks. Chunks are produced on
  /// demand from the durable snapshot / committed prefix, so this bounds
  /// the server's transfer memory at a few chunks instead of a whole blob
  /// per cut.
  std::size_t serve_cache_chunks = 16;
  /// Serving-side cap on chunk serves in flight (each serve occupies the
  /// modeled CPU for ~delta); 0 = unlimited. Requests arriving past the
  /// cap are shed — the requester's timeout path retries elsewhere.
  std::size_t max_concurrent_serves = 0;
  /// Delta transfer: a requester that recovered a local committed prefix
  /// synthesizes every chunk lying inside it, digest-verifies it against
  /// the f+1-agreed manifest, and pulls only the missing suffix over the
  /// network. Off by default so default-path schedules stay byte-identical.
  bool delta_transfer = false;
};

struct StateSyncStats {
  std::uint64_t syncs_started = 0;
  std::uint64_t syncs_completed = 0;
  std::uint64_t manifest_rounds = 0;   ///< cut re-negotiations
  std::uint64_t chunks_fetched = 0;    ///< digest-verified chunks installed
  std::uint64_t chunks_rejected = 0;   ///< digest mismatch / size lie
  std::uint64_t chunk_timeouts = 0;    ///< reassigned after no answer
  std::uint64_t bytes_transferred = 0; ///< verified chunk payload bytes
  std::uint64_t entries_installed = 0; ///< committed entries adopted
  std::uint64_t catchup_reveals = 0;   ///< payloads installed via catch-up
  std::uint64_t catchup_rejections = 0;///< served payloads failing their digest
  std::uint64_t peers_demoted = 0;     ///< peers excluded for serving garbage
  std::uint64_t installs_refused = 0;  ///< host rejected a conflicting prefix
  std::uint64_t chunks_local = 0;      ///< delta: chunks satisfied locally
  std::uint64_t bytes_local = 0;       ///< delta: bytes never sent on the wire
  std::uint64_t serves_shed = 0;       ///< chunk requests dropped at the serve cap
};

/// Test hook: how a Byzantine node's manager misbehaves on the *serving*
/// side. kGarbageChunks agrees on the honest manifest (so it gets picked as
/// a server) but flips bytes in every chunk and reveal payload it serves;
/// kWrongManifest serves a self-consistent manifest of a tampered blob, so
/// it can never gather the f+1 quorum with honest peers.
enum class ByzantineSyncMode { kNone, kGarbageChunks, kWrongManifest };

/// Everything the manager needs from its node. LyraNode implements this;
/// the indirection keeps lyra_statesync free of a link-dependency on
/// lyra_core (which links back to this library), mirroring how lyra_storage
/// consumes lyra/messages.hpp header-only.
class StateSyncHost {
 public:
  virtual ~StateSyncHost() = default;

  virtual NodeId sync_self() const = 0;
  virtual void sync_send(NodeId to, std::shared_ptr<core::LyraMsg> msg) = 0;
  virtual void sync_broadcast(std::shared_ptr<core::LyraMsg> msg) = 0;
  virtual std::uint64_t sync_set_timer(TimeNs delay,
                                       std::function<void()> fn) = 0;
  /// Accounts simulated CPU (hashing chunks, encoding blobs) to the node.
  virtual void sync_charge_hash(std::size_t bytes) = 0;

  // --- serving side (every node, including one that is itself syncing) ---

  virtual std::uint64_t sync_ledger_length() const = 0;
  /// Committed-prefix entries [first, first+count) in commit order,
  /// preferably read out of the durable snapshot image rather than the
  /// in-memory ledger (the server never needs more than a chunk's worth
  /// resident at once). May return fewer entries when the prefix ends.
  virtual std::vector<core::AcceptedEntry> sync_committed_entries(
      std::uint64_t first, std::size_t count) const = 0;
  /// Reveal facts for one cipher: false when this node knows nothing about
  /// it. `payload` stays empty when the bytes were not retained (the digest
  /// vote still counts).
  virtual bool sync_lookup_reveal(const crypto::Digest& cipher_id,
                                  crypto::Digest& payload_digest,
                                  std::uint32_t& tx_count,
                                  Bytes& payload) const = 0;

  // --- requesting side ---

  /// True when `payload` hashes to `digest` under the deployment's payload
  /// digest convention (vss-payload / clear).
  virtual bool sync_verify_payload(BytesView payload,
                                   const crypto::Digest& digest) const = 0;
  /// Adopts a quorum-verified committed prefix; the local ledger must be a
  /// prefix of it (f+1 distinct peers vouched, at least one correct).
  /// Returns false — a structured refusal, not an abort — when the synced
  /// cut conflicts with the local ledger; the manager renegotiates the cut
  /// instead of installing.
  virtual bool sync_install_prefix(
      const std::vector<core::AcceptedEntry>& entries) = 0;
  /// Committed entries whose payload is still unknown locally, oldest
  /// first, at most `limit`.
  virtual std::vector<crypto::Digest> sync_unrevealed(
      std::size_t limit) const = 0;
  /// Installs a digest-quorum-verified payload for a committed entry.
  /// False when the entry revealed through the normal path meanwhile.
  virtual bool sync_install_payload(const crypto::Digest& cipher_id,
                                    const Bytes& payload,
                                    const crypto::Digest& payload_digest,
                                    std::uint32_t tx_count) = 0;
  /// The snapshot transfer finished (possibly trivially); the node may
  /// reopen commit extraction and cut a snapshot.
  virtual void sync_completed() = 0;
};

/// Per-node driver of the three state-transfer protocols (see
/// docs/PROTOCOL.md, "State transfer & catch-up"):
///
///  1. snapshot transfer — two-round cut negotiation (length probe, then
///     manifest at the (f+1)-th largest reported length), f+1 matching
///     manifest quorum, chunked digest-verified blob pull with per-chunk
///     timeouts and round-robin reassignment away from slow or
///     garbage-serving peers;
///  2. reveal catch-up — digest votes from f+1 distinct peers select the
///     payload of a committed-but-unrevealed entry; the payload bytes come
///     from a rotating server and are verified against the voted digest
///     before installation;
///  3. serving — answers every peer's probe/manifest/chunk/reveal request
///     from local state (a node can serve while itself catching up).
class StateSyncManager {
 public:
  StateSyncManager(StateSyncHost* host, std::size_t n, std::size_t f,
                   TimeNs delta, StateSyncConfig config);

  /// Full rejoin: negotiate a cut, pull the prefix blob, then catch up
  /// reveals. Used when local recovery was impossible (wiped/corrupt disk).
  void begin_full_sync();

  /// Reveal catch-up only (local recovery succeeded; holes may remain).
  void begin_catchup();

  /// Node-side poke: an entry just committed without its cipher. Arms a
  /// delayed catch-up round if none is pending, giving the normal
  /// shares-in-flight path a grace period first.
  void note_unrevealed_commit();

  /// True while the snapshot transfer is running; the node gates commit
  /// extraction on it (extracting mid-transfer would race the install).
  bool sync_active() const { return phase_ != Phase::kIdle; }

  /// Dispatches one 4xx-kind message (the node routes them here).
  void on_message(const sim::Envelope& env);

  const StateSyncStats& stats() const { return stats_; }

  void set_byzantine_serving(ByzantineSyncMode mode) { byzantine_ = mode; }

 private:
  enum class Phase { kIdle, kProbe, kManifest, kChunks };

  struct ChunkState {
    enum { kPending, kInflight, kDone } state = kPending;
    std::uint32_t attempt = 0;
    NodeId server = kNoNode;
    Bytes data;
  };

  struct ManifestGroup {
    std::uint64_t total_bytes = 0;
    std::vector<crypto::Digest> chunk_digests;
    std::vector<NodeId> members;
  };

  struct CatchupEntry {
    /// (payload_digest, tx_count) -> per-peer vote bitmap.
    std::map<std::pair<crypto::Digest, std::uint32_t>, std::vector<bool>>
        votes;
    Bytes payload;
    crypto::Digest payload_digest{};
    bool have_payload = false;
  };

  // requester-side protocol steps
  void start_probe();
  void compute_cut();
  void start_manifest();
  void adopt_manifest(const ManifestGroup& group);
  void claim_local_chunks();
  void pump_chunks();
  void request_chunk(std::size_t index, NodeId server);
  void assemble_and_install();
  void finish_sync(const std::vector<core::AcceptedEntry>& entries);
  /// Next server for a chunk request: among non-demoted quorum members
  /// below their outstanding cap, the one with the fewest consecutive
  /// timeouts, round-robin on ties. kOk fills `out`; kSaturated means
  /// every eligible server is at its cap (wait for a reply/timeout);
  /// kExhausted means no non-demoted server is left (renegotiate).
  enum class Pick { kOk, kSaturated, kExhausted };
  Pick pick_server(NodeId& out);
  /// Excludes a peer from serving; `byzantine` distinguishes proven
  /// misbehaviour (counted in stats) from a peer that merely lost the cut.
  void exclude(NodeId peer, bool byzantine);
  void release_assignment(NodeId server);

  // catch-up
  void arm_catchup(TimeNs delay);
  void catchup_tick();
  void try_install_catchup(const crypto::Digest& cipher_id);

  // handlers
  void handle_manifest_req(const sim::Envelope& env,
                           const SyncManifestReqMsg& m);
  void handle_manifest_reply(const sim::Envelope& env,
                             const SyncManifestReplyMsg& m);
  void handle_chunk_req(const sim::Envelope& env, const SyncChunkReqMsg& m);
  void handle_chunk_reply(const sim::Envelope& env,
                          const SyncChunkReplyMsg& m);
  void handle_reveal_req(const sim::Envelope& env, const RevealReqMsg& m);
  void handle_reveal_reply(const sim::Envelope& env,
                           const RevealReplyMsg& m);

  /// Encodes bytes [begin, end) of the blob at `cut`, streamed from the
  /// host a chunk's worth of entries at a time — the whole blob is never
  /// materialized. `tampered` applies the Byzantine wrong-manifest flip
  /// (absolute blob byte 8) so a lying server stays self-consistent.
  Bytes encode_blob_range(std::uint64_t cut, std::uint64_t begin,
                          std::uint64_t end, bool tampered) const;
  /// Chunk `index` of the blob at `cut`, through the serving LRU.
  Bytes serve_chunk(std::uint64_t cut, std::size_t chunk_bytes,
                    std::uint32_t index);
  /// Chunk digests of the blob at `cut`, memoized per (cut, chunk_bytes).
  const std::vector<crypto::Digest>& serve_manifest(std::uint64_t cut,
                                                    std::size_t chunk_bytes);

  StateSyncHost* host_;
  std::size_t n_;
  std::size_t f_;
  TimeNs delta_;
  StateSyncConfig config_;
  StateSyncStats stats_;
  ByzantineSyncMode byzantine_ = ByzantineSyncMode::kNone;

  Phase phase_ = Phase::kIdle;
  /// Generation stamp baked into every timer; a timer whose stamp no
  /// longer matches fires into the void (cheap cancellation).
  std::uint64_t round_ = 0;

  // probe round
  std::vector<std::int64_t> peer_len_;  // -1 = no report yet

  // manifest round
  std::uint64_t cut_ = 0;
  std::map<crypto::Digest, ManifestGroup> groups_;

  // chunk transfer
  std::uint64_t total_bytes_ = 0;
  std::vector<crypto::Digest> chunk_digests_;
  std::vector<ChunkState> chunks_;
  std::vector<NodeId> servers_;
  std::size_t next_server_ = 0;
  std::size_t inflight_ = 0;
  std::size_t chunks_done_ = 0;
  /// Requester-side accounting per peer: requests outstanding there and
  /// consecutive timeouts (reset by any verified reply).
  std::vector<std::uint32_t> server_inflight_;
  std::vector<std::uint32_t> server_strikes_;

  std::vector<bool> demoted_;

  // Serving side: encoded chunks at a fixed cut are immutable, so a small
  // LRU (stamped, linearly scanned — it holds a handful of entries) plus
  // per-(cut, chunk_bytes) manifest digests replace the old whole-blob
  // cache; transfer memory on a server is now a few chunks, not O(cut).
  struct ServeChunk {
    std::uint64_t cut = 0;
    std::size_t chunk_bytes = 0;
    std::uint32_t index = 0;
    std::uint64_t stamp = 0;
    Bytes data;
  };
  std::vector<ServeChunk> serve_lru_;
  std::uint64_t serve_stamp_ = 0;
  std::uint64_t manifest_cache_cut_ = 0;
  std::size_t manifest_cache_chunk_bytes_ = 0;
  std::vector<crypto::Digest> manifest_cache_;
  std::size_t serves_inflight_ = 0;

  // reveal catch-up
  bool catchup_armed_ = false;
  NodeId catchup_server_rr_ = 0;
  std::unordered_map<crypto::Digest, CatchupEntry, crypto::DigestHash>
      catchup_;
};

}  // namespace lyra::statesync
