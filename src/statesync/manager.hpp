#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/hash.hpp"
#include "statesync/messages.hpp"
#include "support/types.hpp"

namespace lyra::statesync {

/// Knobs of the state-transfer protocols. Timeouts derive from the
/// protocol's Delta (passed at construction), not wall-clock constants.
struct StateSyncConfig {
  /// Chunking granularity of the prefix blob transfer.
  std::size_t chunk_bytes = 4096;
  /// Chunk requests in flight at once (spread round-robin over the
  /// manifest quorum members).
  std::size_t max_inflight_chunks = 4;
  /// Ciphers per reveal catch-up round.
  std::size_t max_reveal_batch = 64;
};

struct StateSyncStats {
  std::uint64_t syncs_started = 0;
  std::uint64_t syncs_completed = 0;
  std::uint64_t manifest_rounds = 0;   ///< cut re-negotiations
  std::uint64_t chunks_fetched = 0;    ///< digest-verified chunks installed
  std::uint64_t chunks_rejected = 0;   ///< digest mismatch / size lie
  std::uint64_t chunk_timeouts = 0;    ///< reassigned after no answer
  std::uint64_t bytes_transferred = 0; ///< verified chunk payload bytes
  std::uint64_t entries_installed = 0; ///< committed entries adopted
  std::uint64_t catchup_reveals = 0;   ///< payloads installed via catch-up
  std::uint64_t catchup_rejections = 0;///< served payloads failing their digest
  std::uint64_t peers_demoted = 0;     ///< peers excluded for serving garbage
  std::uint64_t installs_refused = 0;  ///< host rejected a conflicting prefix
};

/// Test hook: how a Byzantine node's manager misbehaves on the *serving*
/// side. kGarbageChunks agrees on the honest manifest (so it gets picked as
/// a server) but flips bytes in every chunk and reveal payload it serves;
/// kWrongManifest serves a self-consistent manifest of a tampered blob, so
/// it can never gather the f+1 quorum with honest peers.
enum class ByzantineSyncMode { kNone, kGarbageChunks, kWrongManifest };

/// Everything the manager needs from its node. LyraNode implements this;
/// the indirection keeps lyra_statesync free of a link-dependency on
/// lyra_core (which links back to this library), mirroring how lyra_storage
/// consumes lyra/messages.hpp header-only.
class StateSyncHost {
 public:
  virtual ~StateSyncHost() = default;

  virtual NodeId sync_self() const = 0;
  virtual void sync_send(NodeId to, std::shared_ptr<core::LyraMsg> msg) = 0;
  virtual void sync_broadcast(std::shared_ptr<core::LyraMsg> msg) = 0;
  virtual std::uint64_t sync_set_timer(TimeNs delay,
                                       std::function<void()> fn) = 0;
  /// Accounts simulated CPU (hashing chunks, encoding blobs) to the node.
  virtual void sync_charge_hash(std::size_t bytes) = 0;

  // --- serving side (every node, including one that is itself syncing) ---

  virtual std::uint64_t sync_ledger_length() const = 0;
  /// First `upto` entries of the committed prefix, in commit order.
  virtual std::vector<core::AcceptedEntry> sync_committed_prefix(
      std::uint64_t upto) const = 0;
  /// Reveal facts for one cipher: false when this node knows nothing about
  /// it. `payload` stays empty when the bytes were not retained (the digest
  /// vote still counts).
  virtual bool sync_lookup_reveal(const crypto::Digest& cipher_id,
                                  crypto::Digest& payload_digest,
                                  std::uint32_t& tx_count,
                                  Bytes& payload) const = 0;

  // --- requesting side ---

  /// True when `payload` hashes to `digest` under the deployment's payload
  /// digest convention (vss-payload / clear).
  virtual bool sync_verify_payload(BytesView payload,
                                   const crypto::Digest& digest) const = 0;
  /// Adopts a quorum-verified committed prefix; the local ledger must be a
  /// prefix of it (f+1 distinct peers vouched, at least one correct).
  /// Returns false — a structured refusal, not an abort — when the synced
  /// cut conflicts with the local ledger; the manager renegotiates the cut
  /// instead of installing.
  virtual bool sync_install_prefix(
      const std::vector<core::AcceptedEntry>& entries) = 0;
  /// Committed entries whose payload is still unknown locally, oldest
  /// first, at most `limit`.
  virtual std::vector<crypto::Digest> sync_unrevealed(
      std::size_t limit) const = 0;
  /// Installs a digest-quorum-verified payload for a committed entry.
  /// False when the entry revealed through the normal path meanwhile.
  virtual bool sync_install_payload(const crypto::Digest& cipher_id,
                                    const Bytes& payload,
                                    const crypto::Digest& payload_digest,
                                    std::uint32_t tx_count) = 0;
  /// The snapshot transfer finished (possibly trivially); the node may
  /// reopen commit extraction and cut a snapshot.
  virtual void sync_completed() = 0;
};

/// Per-node driver of the three state-transfer protocols (see
/// docs/PROTOCOL.md, "State transfer & catch-up"):
///
///  1. snapshot transfer — two-round cut negotiation (length probe, then
///     manifest at the (f+1)-th largest reported length), f+1 matching
///     manifest quorum, chunked digest-verified blob pull with per-chunk
///     timeouts and round-robin reassignment away from slow or
///     garbage-serving peers;
///  2. reveal catch-up — digest votes from f+1 distinct peers select the
///     payload of a committed-but-unrevealed entry; the payload bytes come
///     from a rotating server and are verified against the voted digest
///     before installation;
///  3. serving — answers every peer's probe/manifest/chunk/reveal request
///     from local state (a node can serve while itself catching up).
class StateSyncManager {
 public:
  StateSyncManager(StateSyncHost* host, std::size_t n, std::size_t f,
                   TimeNs delta, StateSyncConfig config);

  /// Full rejoin: negotiate a cut, pull the prefix blob, then catch up
  /// reveals. Used when local recovery was impossible (wiped/corrupt disk).
  void begin_full_sync();

  /// Reveal catch-up only (local recovery succeeded; holes may remain).
  void begin_catchup();

  /// Node-side poke: an entry just committed without its cipher. Arms a
  /// delayed catch-up round if none is pending, giving the normal
  /// shares-in-flight path a grace period first.
  void note_unrevealed_commit();

  /// True while the snapshot transfer is running; the node gates commit
  /// extraction on it (extracting mid-transfer would race the install).
  bool sync_active() const { return phase_ != Phase::kIdle; }

  /// Dispatches one 4xx-kind message (the node routes them here).
  void on_message(const sim::Envelope& env);

  const StateSyncStats& stats() const { return stats_; }

  void set_byzantine_serving(ByzantineSyncMode mode) { byzantine_ = mode; }

 private:
  enum class Phase { kIdle, kProbe, kManifest, kChunks };

  struct ChunkState {
    enum { kPending, kInflight, kDone } state = kPending;
    std::uint32_t attempt = 0;
    NodeId server = kNoNode;
    Bytes data;
  };

  struct ManifestGroup {
    std::uint64_t total_bytes = 0;
    std::vector<crypto::Digest> chunk_digests;
    std::vector<NodeId> members;
  };

  struct CatchupEntry {
    /// (payload_digest, tx_count) -> per-peer vote bitmap.
    std::map<std::pair<crypto::Digest, std::uint32_t>, std::vector<bool>>
        votes;
    Bytes payload;
    crypto::Digest payload_digest{};
    bool have_payload = false;
  };

  // requester-side protocol steps
  void start_probe();
  void compute_cut();
  void start_manifest();
  void adopt_manifest(const ManifestGroup& group);
  void pump_chunks();
  bool request_chunk(std::size_t index);
  void assemble_and_install();
  void finish_sync(const std::vector<core::AcceptedEntry>& entries);
  NodeId pick_server();
  /// Excludes a peer from serving; `byzantine` distinguishes proven
  /// misbehaviour (counted in stats) from a peer that merely lost the cut.
  void exclude(NodeId peer, bool byzantine);

  // catch-up
  void arm_catchup(TimeNs delay);
  void catchup_tick();
  void try_install_catchup(const crypto::Digest& cipher_id);

  // handlers
  void handle_manifest_req(const sim::Envelope& env,
                           const SyncManifestReqMsg& m);
  void handle_manifest_reply(const sim::Envelope& env,
                             const SyncManifestReplyMsg& m);
  void handle_chunk_req(const sim::Envelope& env, const SyncChunkReqMsg& m);
  void handle_chunk_reply(const sim::Envelope& env,
                          const SyncChunkReplyMsg& m);
  void handle_reveal_req(const sim::Envelope& env, const RevealReqMsg& m);
  void handle_reveal_reply(const sim::Envelope& env,
                           const RevealReplyMsg& m);

  /// Encodes the serving-side blob for `cut` (applying the Byzantine
  /// tamper mode when set) and charges the CPU model for it.
  Bytes serving_blob(std::uint64_t cut);

  StateSyncHost* host_;
  std::size_t n_;
  std::size_t f_;
  TimeNs delta_;
  StateSyncConfig config_;
  StateSyncStats stats_;
  ByzantineSyncMode byzantine_ = ByzantineSyncMode::kNone;

  Phase phase_ = Phase::kIdle;
  /// Generation stamp baked into every timer; a timer whose stamp no
  /// longer matches fires into the void (cheap cancellation).
  std::uint64_t round_ = 0;

  // probe round
  std::vector<std::int64_t> peer_len_;  // -1 = no report yet

  // manifest round
  std::uint64_t cut_ = 0;
  std::map<crypto::Digest, ManifestGroup> groups_;

  // chunk transfer
  std::uint64_t total_bytes_ = 0;
  std::vector<crypto::Digest> chunk_digests_;
  std::vector<ChunkState> chunks_;
  std::vector<NodeId> servers_;
  std::size_t next_server_ = 0;
  std::size_t inflight_ = 0;
  std::size_t chunks_done_ = 0;

  std::vector<bool> demoted_;

  // serving-side blob cache (a committed prefix at a fixed cut is
  // immutable, so re-encoding per chunk request would be pure waste)
  std::uint64_t serve_cache_cut_ = 0;
  Bytes serve_cache_;

  // reveal catch-up
  bool catchup_armed_ = false;
  NodeId catchup_server_rr_ = 0;
  std::unordered_map<crypto::Digest, CatchupEntry, crypto::DigestHash>
      catchup_;
};

}  // namespace lyra::statesync
