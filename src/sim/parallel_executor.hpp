#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/executor_stats.hpp"
#include "sim/message.hpp"
#include "support/mpsc_ring.hpp"
#include "support/types.hpp"

namespace lyra::sim {

class Process;
class Simulation;
class Transport;

/// One engine side-effect recorded while a handler runs on a worker
/// thread, replayed on the scheduler thread when the event commits.
/// Handlers never touch shared engine state directly: everything they
/// would do to it is captured here, in call order.
struct Effect {
  enum class Kind : std::uint8_t {
    kSend,             // transport->send(from, to, payload)
    kSendAll,          // transport->send_all(from, payload)
    kSetTimer,         // proc arms timer `token` with `delay`, callback fn
    kCancelTimer,      // proc cancels timer `token`
    kTimerFired,       // timer `token` fired; drop its bookkeeping entry
    kSchedulePump,     // proc schedules its inbox pump at time `t`
    kTrace,            // trace record (text_a = category, text_b = text)
    kDeliveryDropped,  // delivery resolved to a vacant (crashed) slot
  };
  Kind kind = Kind::kSend;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  TimeNs t = 0;  // kSetTimer: delay; kSchedulePump: absolute time
  std::uint64_t token = 0;
  Process* proc = nullptr;
  Transport* transport = nullptr;
  PayloadPtr payload;
  EventQueue::Callback fn;
  std::string text_a, text_b;
};

namespace internal {
/// Effect log of the event currently executing on this worker thread;
/// nullptr on the scheduler thread and in serial mode. Process diverts its
/// engine calls here when set.
extern thread_local std::vector<Effect>* t_effect_log;
}  // namespace internal

inline std::vector<Effect>* current_effect_log() {
  return internal::t_effect_log;
}

/// Deterministic parallel executor: shard workers + in-order commit,
/// batched dispatch, lock-free handoff.
///
/// The scheduler (calling) thread keeps sole ownership of the event queue
/// and every piece of global engine state. It pops events in global
/// (time, id) order into per-owner holding heaps, hands each idle owner its
/// ENTIRE runnable slice of the lookahead window as one batch (a vector of
/// tasks in (time, id) order), and commits finished events in exactly the
/// global order by replaying their recorded effects (sends, timers,
/// traces). A handler therefore runs concurrently with other owners'
/// handlers, but every engine mutation, event id, and RNG draw happens on
/// the scheduler thread in the serial schedule's order: a parallel run is
/// bit-identical to the serial one.
///
/// Handoff is lock-free in the steady state. Batches travel to workers
/// through per-worker bounded SPSC rings (MpscRing) and come back through
/// one MPSC completion ring; per-event completion is published via a
/// per-owner atomic epoch counter the worker bumps after each task, which
/// the scheduler polls without a lock. Mutexes and condition variables are
/// only touched on the park/unpark slow paths (a worker out of work, the
/// scheduler waiting on the head) and in the RNG turn gate's blocking
/// path, so lock acquisitions and notifies amortize to far less than one
/// per event (docs/PERF.md §7 quantifies this against the one-event-per-
/// handoff design it replaces).
///
/// Safety of eager dispatch rests on the lookahead bound L (a lower bound
/// on every message delay): only events earlier than W + L are popped,
/// where W is the oldest uncommitted time, and committing an event at time
/// >= W can only create deliveries at >= W + L — never before a dispatched
/// event. Same-owner creations (timers, pumps) are ordered by a worker-
/// side stop rule: after each task the worker folds the task's timer/pump
/// effects into the earliest same-owner creation time, and stops the batch
/// before the first member that creation would precede (or after any
/// cancel-timer effect, which may target a later member). The unexecuted
/// tail is handed back to the scheduler and re-enters the holding heaps,
/// so the created event is dispatched first — exactly the serial order.
///
/// Ownerless events (harness control: crashes, restarts, disk faults) act
/// as barriers: they run inline on the scheduler once every earlier event
/// has committed, so they may mutate anything.
///
/// Hosts without usable parallelism (hardware_concurrency() <= 1, e.g. a
/// single-core CI container) get an inline mode: no worker threads are
/// spawned and the scheduler executes every task itself, in exact global
/// order, through the same effect-log/commit machinery. Dispatching real
/// threads there can only lose (each handoff is a context switch), so the
/// engine degrades to serial speed plus the effect-log overhead instead.
/// LYRA_PARALLEL_INLINE=0/1 overrides the automatic choice (used by the
/// equivalence tests to pin both paths regardless of the host).
class ParallelExecutor {
 public:
  /// `workers` >= 1 worker threads (the scheduler thread is not counted).
  ParallelExecutor(Simulation* sim, unsigned workers, TimeNs lookahead);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Runs every event with time <= deadline; returns the count executed.
  /// On return the holding tiers are empty — only events beyond the
  /// deadline remain, all still in the event queue — so serial and
  /// parallel runs may be freely interleaved.
  std::uint64_t run(TimeNs deadline, std::uint64_t max_events);

  /// Scheduler-thread cancellation that also reaches events already popped
  /// into the holding tier (the queue no longer knows their ids).
  void cancel_event(std::uint64_t id);

  /// Blocks the calling worker until its event is the oldest uncommitted
  /// one, making protocol RNG draws happen in serial order. The oldest
  /// in-flight event never blocks, so progress is guaranteed.
  void await_rng_turn();

  /// Counters accumulated since construction (across run() calls).
  ExecutorStats stats() const;

 private:
  struct Batch;

  struct Task {
    TimeNs at = 0;
    std::uint64_t id = 0;
    NodeId owner = kNoNode;
    bool is_delivery = false;
    EventQueue::Callback fn;
    Envelope env;
    ProcessDirectory* dir = nullptr;
    std::vector<Effect> effects;
    Batch* batch = nullptr;
    std::uint32_t pos = 0;        // index within batch->tasks
    std::uint64_t owner_seq = 0;  // 1-based dispatch ordinal of its owner
  };
  /// Min-order on (at, id) for the per-owner holding heaps.
  struct TaskAfter {
    bool operator()(const Task* a, const Task* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->id > b->id;
    }
  };
  using Key = std::pair<TimeNs, std::uint64_t>;

  /// Per-owner completion epoch, heap-allocated so worker-held pointers
  /// survive owners_ resizes. executed counts this owner's finished tasks;
  /// task done <=> epoch >= task.owner_seq.
  struct alignas(64) EpochCell {
    std::atomic<std::uint64_t> executed{0};
  };

  /// One owner's runnable slice of the window, dispatched as a unit.
  /// claim arbitrates worker-vs-scheduler ownership: the worker CASes
  /// kQueued->kRunning when it starts the batch; the scheduler CASes
  /// kQueued->kStolen to reclaim an unstarted batch whose first member is
  /// the head. closed (set by the worker, with the owner epoch final)
  /// publishes "this worker is done with the batch" — members beyond the
  /// epoch were not executed and are handed back to the holding heaps.
  struct Batch {
    static constexpr std::uint8_t kQueued = 0;
    static constexpr std::uint8_t kRunning = 1;
    static constexpr std::uint8_t kStolen = 2;

    NodeId owner = kNoNode;
    std::vector<Task*> tasks;
    std::uint64_t first_seq = 0;  // owner_seq of tasks[0]
    EpochCell* epoch = nullptr;
    std::atomic<std::uint8_t> claim{kQueued};
    std::atomic<bool> closed{false};

    // Scheduler-side bookkeeping (never touched by workers).
    std::uint32_t settled = 0;     // members committed or re-helded
    bool handback_done = false;    // unexecuted tail already re-helded
    bool acked = false;            // worker has dropped its reference
    bool finished = false;         // settled == size (owner went idle)
    bool recycled = false;         // already on the free list
  };

  struct OwnerState {
    bool busy = false;  // has a dispatched, not fully settled batch
    std::priority_queue<Task*, std::vector<Task*>, TaskAfter> held;
    std::unique_ptr<EpochCell> epoch;
    std::uint64_t next_seq = 0;  // dispatch ordinal source
  };

  struct Worker {
    explicit Worker(std::size_t inbox_capacity) : inbox(inbox_capacity) {}
    MpscRing<Batch*> inbox;  // scheduler -> this worker (SPSC)
    std::atomic<bool> parked{false};
    std::mutex m;
    std::condition_variable cv;       // unpark (new inbox work / stop)
    std::condition_variable gate_cv;  // RNG turn gate, waits on gate_m_
    std::thread thread;
    // Scheduler-side spill-over for a full inbox ring, flushed first on
    // every dispatch pass so batch order per worker is preserved.
    std::deque<Batch*> overflow;
    // Scheduler-side: inbox received a batch this dispatch pass, so this
    // worker (and only it) is a wake candidate.
    bool poked = false;
  };

  /// Worker-thread counters, one cache line each, aggregated by stats().
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> locks{0};
    std::atomic<std::uint64_t> notifies{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> gate_draws{0};
    std::atomic<std::uint64_t> gate_waits{0};
  };

  void ensure_workers();
  void worker_main(unsigned index);
  void run_batch(WorkerCounters& c, Batch* b);
  void execute(Task* t);
  /// Worker -> scheduler: batch done/ack published; wake the scheduler if
  /// it is parked.
  void push_completion(WorkerCounters& c, Batch* b);
  void wake_scheduler_if_parked(WorkerCounters& c);

  /// Single-threaded drive of the same task/effect pipeline (inline mode).
  std::uint64_t run_inline(TimeNs deadline, std::uint64_t max_events);

  /// Replays a committed task's effects with the clock at its time.
  void apply(Task* t);

  /// True iff the worker finished executing this task (epoch poll).
  bool task_done(const Task* t) const {
    return t->batch->epoch->executed.load(std::memory_order_acquire) >=
           t->owner_seq;
  }

  /// Moves a closed batch's unexecuted tail back into the holding heap.
  void handback(Batch* b);
  /// Settles `count` more members of b; clears the owner's busy bit when
  /// the whole batch is accounted for.
  void settle(Batch* b, std::uint32_t count);
  void try_recycle(Batch* b);
  void drain_completions();
  void publish_head(bool have, Key h);

  Task* acquire_task();
  void recycle(Task* t);
  Batch* acquire_batch();

  OwnerState& owner_state(NodeId owner);

  Simulation* sim_;
  const unsigned worker_count_;
  const TimeNs lookahead_;
  const bool inline_mode_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<WorkerCounters>> worker_counters_;
  bool workers_started_ = false;
  std::atomic<bool> stop_{false};

  // Scheduler-thread state (no lock): holding heaps, the in-flight
  // (dispatched, uncommitted) task map, pools, cancels.
  std::vector<OwnerState> owners_;
  /// Keys of every held (popped, undispatched) task: its minimum joins the
  /// window base W alongside the oldest in-flight and queue-front keys.
  std::set<Key> held_keys_;
  std::vector<NodeId> ready_;  // owners to consider at the dispatch step
  std::unordered_set<std::uint64_t> cancelled_popped_;
  std::map<Key, Task*> inflight_;
  std::vector<std::unique_ptr<Task>> task_pool_;
  std::vector<Task*> task_free_;
  std::vector<std::unique_ptr<Batch>> batch_pool_;
  std::vector<Batch*> batch_free_;

  /// Workers -> scheduler: closed batches and stolen-batch acks. Also the
  /// scheduler's wakeup channel: a push to a parked scheduler notifies it.
  MpscRing<Batch*> completions_;

  /// Event id of the oldest uncommitted event (kNoHead when idle),
  /// republished once per scheduler pass. The RNG gate admits exactly this
  /// id's holder lock-free; between publication and that event's commit
  /// the scheduler creates no events, so the head cannot be undercut.
  static constexpr std::uint64_t kNoHead = ~0ull;
  std::atomic<std::uint64_t> head_id_{kNoHead};

  // Scheduler park/unpark (the only scheduler-side blocking).
  std::mutex park_m_;
  std::condition_variable park_cv_;
  std::atomic<bool> sched_parked_{false};

  // RNG turn gate slow path: waiting workers register (event id -> worker)
  // under gate_m_; the scheduler wakes exactly the head's worker.
  std::mutex gate_m_;
  std::unordered_map<std::uint64_t, Worker*> gate_waiting_;
  std::atomic<std::uint64_t> gate_waiter_count_{0};

  // Scheduler-side stats (plain: only the scheduler writes them).
  ExecutorStats sched_stats_;
};

}  // namespace lyra::sim
