#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/message.hpp"
#include "support/types.hpp"

namespace lyra::sim {

class Process;
class Simulation;
class Transport;

/// One engine side-effect recorded while a handler runs on a worker
/// thread, replayed on the scheduler thread when the event commits.
/// Handlers never touch shared engine state directly: everything they
/// would do to it is captured here, in call order.
struct Effect {
  enum class Kind : std::uint8_t {
    kSend,             // transport->send(from, to, payload)
    kSendAll,          // transport->send_all(from, payload)
    kSetTimer,         // proc arms timer `token` with `delay`, callback fn
    kCancelTimer,      // proc cancels timer `token`
    kSchedulePump,     // proc schedules its inbox pump at time `t`
    kTrace,            // trace record (text_a = category, text_b = text)
    kDeliveryDropped,  // delivery resolved to a vacant (crashed) slot
  };
  Kind kind = Kind::kSend;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  TimeNs t = 0;  // kSetTimer: delay; kSchedulePump: absolute time
  std::uint64_t token = 0;
  Process* proc = nullptr;
  Transport* transport = nullptr;
  PayloadPtr payload;
  EventQueue::Callback fn;
  std::string text_a, text_b;
};

namespace internal {
/// Effect log of the event currently executing on this worker thread;
/// nullptr on the scheduler thread and in serial mode. Process diverts its
/// engine calls here when set.
extern thread_local std::vector<Effect>* t_effect_log;
}  // namespace internal

inline std::vector<Effect>* current_effect_log() {
  return internal::t_effect_log;
}

/// Deterministic parallel executor: shard workers + in-order commit.
///
/// The scheduler (calling) thread keeps sole ownership of the event queue
/// and every piece of global engine state. It pops events in global
/// (time, id) order into per-owner holding heaps, dispatches each owner's
/// oldest event to a worker (owner % workers) — at most one in-flight
/// event per owner — and commits finished events in exactly the global
/// order by replaying their recorded effects (sends, timers, traces). A
/// handler therefore runs concurrently with other owners' handlers, but
/// every engine mutation, event id, and RNG draw happens on the scheduler
/// thread in the serial schedule's order: a parallel run is bit-identical
/// to the serial one.
///
/// Safety of eager dispatch rests on the lookahead bound L (a lower bound
/// on every message delay): only events earlier than W + L are popped,
/// where W is the oldest uncommitted time, and committing an event at time
/// >= W can only create deliveries at >= W + L — never before a dispatched
/// event. Same-owner creations (timers, pumps, self-sends) are ordered by
/// the one-in-flight-per-owner rule: an owner's next event is dispatched
/// only after its previous one committed, and the queue is drained into
/// the holding heaps between commit and dispatch, so late same-owner
/// insertions are seen before the owner runs again.
///
/// Ownerless events (harness control: crashes, restarts, disk faults) act
/// as barriers: they run inline on the scheduler once every earlier event
/// has committed, so they may mutate anything.
///
/// Hosts without usable parallelism (hardware_concurrency() <= 1, e.g. a
/// single-core CI container) get an inline mode: no worker threads are
/// spawned and the scheduler executes every task itself, in exact global
/// order, through the same effect-log/commit machinery. Dispatching real
/// threads there can only lose (each handoff is a context switch), so the
/// engine degrades to serial speed plus the effect-log overhead instead.
/// LYRA_PARALLEL_INLINE=0/1 overrides the automatic choice (used by the
/// equivalence tests to pin both paths regardless of the host).
class ParallelExecutor {
 public:
  /// `workers` >= 1 worker threads (the scheduler thread is not counted).
  ParallelExecutor(Simulation* sim, unsigned workers, TimeNs lookahead);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Runs every event with time <= deadline; returns the count executed.
  /// On return the holding tiers are empty — only events beyond the
  /// deadline remain, all still in the event queue — so serial and
  /// parallel runs may be freely interleaved.
  std::uint64_t run(TimeNs deadline, std::uint64_t max_events);

  /// Scheduler-thread cancellation that also reaches events already popped
  /// into the holding tier (the queue no longer knows their ids).
  void cancel_event(std::uint64_t id);

  /// Blocks the calling worker until its event is the oldest uncommitted
  /// one, making protocol RNG draws happen in serial order. The oldest
  /// in-flight event never blocks, so progress is guaranteed.
  void await_rng_turn();

 private:
  struct Task {
    TimeNs at = 0;
    std::uint64_t id = 0;
    NodeId owner = kNoNode;
    bool is_delivery = false;
    EventQueue::Callback fn;
    Envelope env;
    ProcessDirectory* dir = nullptr;
    std::atomic<bool> done{false};
    std::vector<Effect> effects;
  };
  /// Min-order on (at, id) for the per-owner holding heaps.
  struct TaskAfter {
    bool operator()(const Task* a, const Task* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->id > b->id;
    }
  };
  using Key = std::pair<TimeNs, std::uint64_t>;

  struct OwnerState {
    bool busy = false;  // has a dispatched, not-yet-committed event
    std::priority_queue<Task*, std::vector<Task*>, TaskAfter> held;
  };

  struct Worker {
    std::mutex m;
    std::condition_variable cv;
    std::deque<Task*> q;
    std::thread thread;
  };

  void ensure_workers();
  void worker_main(Worker& w);
  void execute(Task* t);

  /// Single-threaded drive of the same task/effect pipeline (inline mode).
  std::uint64_t run_inline(TimeNs deadline, std::uint64_t max_events);

  /// Replays a committed task's effects with the clock at its time.
  void apply(Task* t);

  Task* acquire_task();
  void recycle(Task* t);

  OwnerState& owner_state(NodeId owner);

  Simulation* sim_;
  const unsigned worker_count_;
  const TimeNs lookahead_;
  const bool inline_mode_;

  std::vector<std::unique_ptr<Worker>> workers_;
  bool workers_started_ = false;
  std::atomic<bool> stop_{false};

  // Scheduler-thread state (no lock): holding heaps, free list, cancels.
  std::vector<OwnerState> owners_;
  /// Keys of every held (popped, undispatched) task: its minimum joins the
  /// window base W alongside the oldest in-flight and queue-front keys.
  std::set<Key> held_keys_;
  std::vector<NodeId> ready_;  // owners to consider at the dispatch step
  std::unordered_set<std::uint64_t> cancelled_popped_;
  std::vector<std::unique_ptr<Task>> task_pool_;
  std::vector<Task*> task_free_;

  // Shared state under m_: the in-flight (dispatched, uncommitted) tasks
  // and the two wait channels.
  std::mutex m_;
  std::condition_variable cv_sched_;  // workers -> scheduler: task done
  std::condition_variable cv_rng_;    // scheduler -> workers: head advanced
  std::map<Key, Task*> inflight_;
  int rng_waiters_ = 0;
  bool sched_waiting_ = false;
  /// Key of the oldest uncommitted event, republished by the scheduler
  /// once per loop pass. The RNG gate admits exactly the worker holding
  /// this key; between publication and that event's commit the scheduler
  /// creates no events, so the head cannot be undercut.
  bool head_valid_ = false;
  Key head_key_{};
};

}  // namespace lyra::sim
