#pragma once

#include <memory>

#include "support/types.hpp"

namespace lyra::sim {

/// Message-kind tags for constant-time dispatch (one range per module so
/// protocol libraries stay independent). dynamic_cast chains on the hot
/// path cost more than the handlers themselves at n = 100.
enum class MsgKind : std::uint16_t {
  kOther = 0,
  // lyra::core — 1xx
  kInit = 100,
  kVote,
  kDeliver,
  kEst,
  kCoord,
  kAux,
  kShares,
  kHeartbeat,
  kProbe,
  kProbeReply,
  kReqInit,
  kInitRelay,
  kResyncReq,
  kResyncReply,
  kSubmit,
  kCommitNotify,
  kMempoolReject,
  // hotstuff — 2xx
  kHsProposal = 200,
  kHsVote,
  kHsNewView,
  // pompe — 3xx
  kTsRequest = 300,
  kTsReply,
  kSequence,
  // statesync — 4xx (peer state transfer & catch-up)
  kSyncManifestReq = 400,
  kSyncManifestReply,
  kSyncChunkReq,
  kSyncChunkReply,
  kRevealReq,
  kRevealReply,
};

/// Base class of every protocol message payload. Payloads are immutable
/// once sent (shared between sender and receivers), which models the
/// authenticated reliable channels of the paper: a message cannot be
/// tampered with in flight.
struct Payload {
  virtual ~Payload() = default;

  /// Message-type name for traces.
  virtual const char* name() const = 0;

  /// Dispatch tag; kOther falls back to dynamic_cast-based handling.
  virtual MsgKind kind() const { return MsgKind::kOther; }

  /// Estimated serialized size in bytes, used for bandwidth accounting and
  /// per-byte CPU costs. Subclasses with large bodies override this.
  virtual std::size_t wire_size() const { return 64; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A message in flight or delivered.
struct Envelope {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  TimeNs sent_at = 0;
  TimeNs delivered_at = 0;
  PayloadPtr payload;
};

/// Typed payload accessor; returns nullptr when the payload is of a
/// different type.
template <class T>
const T* payload_as(const Envelope& env) {
  return dynamic_cast<const T*>(env.payload.get());
}

}  // namespace lyra::sim
