#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/executor_stats.hpp"
#include "sim/message.hpp"
#include "sim/trace.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace lyra::sim {

class ParallelExecutor;

namespace internal {
/// Set on parallel-executor worker threads while a handler runs: points at
/// the virtual time of the event being executed. nullptr on the scheduler
/// thread and in serial mode, so Simulation::now() stays a plain load
/// there.
extern thread_local const TimeNs* t_task_now;
}  // namespace internal

/// Discrete-event simulation driver: a virtual clock, the event queue, the
/// root RNG, and the trace sink. One Simulation instance per experiment run;
/// all protocol components hold a pointer to it.
///
/// Two RNG streams with distinct roles:
///  * rng() — protocol randomness drawn inside process handlers (VSS
///    encryption, Byzantine behaviour). Draws happen in event order, which
///    the parallel executor preserves by gating worker access (see
///    ParallelExecutor).
///  * net_rng() — engine-internal randomness (latency jitter, adversary
///    delays), drawn only on the scheduler thread while messages are
///    scheduled. Keeping it out of rng() means the handler-visible stream
///    is identical whether or not the network samples jitter.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimeNs now() const {
    if (parallel_active_.load(std::memory_order_relaxed)) {
      if (const TimeNs* t = internal::t_task_now) return *t;
    }
    return now_;
  }

  /// `owner` tags the event with the process whose state the callback
  /// touches; see EventQueue::schedule_at. Ownerless events act as barriers
  /// under parallel execution.
  std::uint64_t schedule_in(TimeNs delay, EventQueue::Callback fn,
                            NodeId owner = kNoNode) {
    return queue_.schedule_at(now() + delay, std::move(fn), owner);
  }

  std::uint64_t schedule_at(TimeNs at, EventQueue::Callback fn,
                            NodeId owner = kNoNode) {
    const TimeNs t = now();
    return queue_.schedule_at(at < t ? t : at, std::move(fn), owner);
  }

  void cancel(std::uint64_t event_id);

  /// Message-delivery fast path: no callback allocation per message. The
  /// destination (env.to) is resolved through `dir` at delivery time, so
  /// crashed processes drop their in-flight messages instead of dangling.
  void schedule_delivery_in(TimeNs delay, ProcessDirectory* dir,
                            Envelope env) {
    queue_.schedule_delivery(now() + delay, dir, std::move(env));
  }

  /// Runs events until the queue drains or the clock passes `deadline`.
  /// Events scheduled at exactly `deadline` still run. Returns the number
  /// of events executed.
  std::uint64_t run_until(TimeNs deadline);

  /// Runs until the queue drains; `max_events` guards against protocol
  /// livelock in tests.
  std::uint64_t run_all(std::uint64_t max_events = 500'000'000);

  /// Enables parallel event execution: `threads` worker threads (<= 1
  /// keeps the serial path) sharded by event owner, with the conservative
  /// lookahead window set to `lookahead` — a lower bound on every
  /// cross-process message delay, normally net::Network::delivery_floor().
  /// Must be called before the first run_* call; the run is equivalent,
  /// event for event, to the serial schedule (see docs/PERF.md).
  void set_parallelism(unsigned threads, TimeNs lookahead);
  unsigned threads() const { return threads_; }

  /// Hot-path counters of the parallel executor, accumulated across every
  /// run_* call so far. All-zero when the run is serial (threads <= 1).
  ExecutorStats executor_stats() const;

  /// Protocol randomness (handler context). In a parallel run a worker
  /// calling this blocks until its event is the oldest uncommitted one, so
  /// draws happen in exactly the serial order.
  Rng& rng() {
    if (parallel_active_.load(std::memory_order_relaxed) &&
        internal::t_task_now != nullptr) {
      await_rng_turn();
    }
    return rng_;
  }

  /// Engine-internal randomness (adversary schedules and other
  /// engine-side draws). Only touched on the scheduler thread; never
  /// gated. Latency jitter no longer draws from this shared stream — the
  /// network derives per-sender counter-based streams from seed() instead,
  /// so one sender's draw sequence does not depend on every other
  /// sender's traffic.
  Rng& net_rng() { return net_rng_; }

  /// The root seed this run was constructed with. Sharded consumers (the
  /// network's per-sender jitter streams) derive their own streams from it
  /// via derive_stream().
  std::uint64_t seed() const { return seed_; }

  Trace& trace() { return trace_; }

 private:
  friend class ParallelExecutor;

  void await_rng_turn();

  EventQueue queue_;
  TimeNs now_ = 0;
  std::uint64_t seed_;
  Rng rng_;
  Rng net_rng_;
  Trace trace_;

  unsigned threads_ = 1;
  TimeNs lookahead_ = 0;
  /// True while a parallel run is in flight. Relaxed reads are enough: the
  /// flag is constant for the duration of a run and flips only while the
  /// workers are parked (the dispatch mutex orders the flip against them).
  std::atomic<bool> parallel_active_{false};
  std::unique_ptr<ParallelExecutor> executor_;
};

}  // namespace lyra::sim
