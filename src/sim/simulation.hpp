#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/message.hpp"
#include "sim/trace.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace lyra::sim {

/// Discrete-event simulation driver: a virtual clock, the event queue, the
/// root RNG, and the trace sink. One Simulation instance per experiment run;
/// all protocol components hold a pointer to it.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimeNs now() const { return now_; }

  std::uint64_t schedule_in(TimeNs delay, EventQueue::Callback fn) {
    return queue_.schedule_at(now_ + delay, std::move(fn));
  }

  std::uint64_t schedule_at(TimeNs at, EventQueue::Callback fn) {
    return queue_.schedule_at(at < now_ ? now_ : at, std::move(fn));
  }

  void cancel(std::uint64_t event_id) { queue_.cancel(event_id); }

  /// Message-delivery fast path: no callback allocation per message. The
  /// destination (env.to) is resolved through `dir` at delivery time, so
  /// crashed processes drop their in-flight messages instead of dangling.
  void schedule_delivery_in(TimeNs delay, ProcessDirectory* dir,
                            Envelope env) {
    queue_.schedule_delivery(now_ + delay, dir, std::move(env));
  }

  /// Runs events until the queue drains or the clock passes `deadline`.
  /// Events scheduled at exactly `deadline` still run. Returns the number
  /// of events executed.
  std::uint64_t run_until(TimeNs deadline);

  /// Runs until the queue drains; `max_events` guards against protocol
  /// livelock in tests.
  std::uint64_t run_all(std::uint64_t max_events = 500'000'000);

  Rng& rng() { return rng_; }
  Trace& trace() { return trace_; }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  Rng rng_;
  Trace trace_;
};

}  // namespace lyra::sim
