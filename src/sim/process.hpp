#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "sim/message.hpp"
#include "sim/simulation.hpp"
#include "support/types.hpp"

/// Tracing guard for hot paths: the argument expressions (usually string
/// concatenations) are evaluated only when the trace sink is enabled.
/// Usable inside any Process member function.
#define LYRA_TRACE(category, text)                \
  do {                                            \
    if (this->tracing()) this->trace((category), (text)); \
  } while (0)

namespace lyra::sim {

/// Transport used by processes to emit messages. Implemented by
/// net::Network; declared here so the process model does not depend on the
/// network substrate.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void send(NodeId from, NodeId to, PayloadPtr payload) = 0;

  /// Broadcast to every consensus process. The default loops over send();
  /// net::Network overrides it to book the sender's NIC once for the whole
  /// fan-out, so every receiver sees the same serialization delay (packets
  /// interleave fairly across flows on a real NIC).
  virtual void send_all(NodeId from, PayloadPtr payload) {
    for (NodeId to = 0; to < node_count(); ++to) {
      send(from, to, payload);
    }
  }

  /// Number of consensus processes (message destinations 0..n-1).
  virtual std::size_t node_count() const = 0;
};

/// Base class for every simulated process (consensus node, client,
/// attacker). Provides messaging, timers, and a serial-CPU cost model.
///
/// CPU model: each process is a single-threaded server. A handler may call
/// charge(cost) to account for work (signature verification, hashing, ...);
/// the process does not start handling the next queued message until the
/// accumulated work has elapsed in simulated time. Queueing behind a busy
/// CPU is what creates the throughput saturation the paper measures (the
/// HotStuff leader bottleneck in Fig. 3). Sends performed inside a handler
/// are stamped at the handler's start time — an approximation that errs by
/// at most one handler's CPU cost (microseconds against millisecond WAN
/// latencies).
class Process {
 public:
  using TimerId = std::uint64_t;

  Process(Simulation* sim, Transport* transport, NodeId id);

  /// Cancels every outstanding timer and the pending pump event: those
  /// callbacks capture `this`, so they must not outlive the process. This
  /// is what makes mid-run teardown (simulated crash) safe.
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  NodeId id() const { return id_; }
  TimeNs now() const { return sim_->now(); }

  /// Invoked once by the harness after the whole cluster is wired up.
  virtual void on_start() {}

  /// Called by the network at delivery time. Enqueues onto the inbox.
  void deliver(Envelope env);

  // --- accounting, read by the harness ---
  std::uint64_t messages_processed() const { return messages_processed_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  TimeNs cpu_time_used() const { return cpu_time_used_; }
  std::size_t inbox_depth() const { return inbox_.size(); }

 protected:
  /// Handles one delivered message. Runs when the CPU is free.
  virtual void on_message(const Envelope& env) = 0;

  void send(NodeId to, PayloadPtr payload);

  /// Sends to every consensus node. The paper's broadcast includes the
  /// sender itself (a process delivers its own messages).
  void broadcast(PayloadPtr payload);

  /// Accounts `cost` of CPU work for the current handler or timer.
  void charge(TimeNs cost);

  /// One-shot timer. The callback does not run if cancelled first, and all
  /// pending timers die with the process.
  TimerId set_timer(TimeNs delay, std::function<void()> fn);
  void cancel_timer(TimerId id);

  Simulation& sim() { return *sim_; }
  Transport& transport() { return *transport_; }

  void trace(std::string category, std::string text);

 public:
  /// Cheap check used by LYRA_TRACE to skip building trace strings on hot
  /// paths when no sink is listening.
  bool tracing() const { return sim_->trace().enabled(); }

 private:
  friend class ParallelExecutor;

  // Commit-side halves of the engine calls above. Serial execution calls
  // them directly; under parallel execution the worker-side halves record
  // an Effect and the executor replays it here, on the scheduler thread,
  // when the event commits. Everything that assigns event ids or touches
  // the event queue lives on this side.
  void apply_set_timer(TimerId token, TimeNs delay, std::function<void()> fn);
  void apply_cancel_timer(TimerId token);
  void apply_timer_fired(TimerId token);
  void apply_schedule_pump(TimeNs at);

  void schedule_pump();
  void pump();

  Simulation* sim_;
  Transport* transport_;
  NodeId id_;

  std::deque<Envelope> inbox_;
  bool pump_scheduled_ = false;
  std::uint64_t pump_event_ = 0;
  TimeNs cpu_busy_until_ = 0;

  // Timer token -> underlying event id, for cancellation (explicit or at
  // destruction). Tokens are never reused within a process lifetime.
  std::unordered_map<TimerId, std::uint64_t> live_timers_;
  TimerId next_timer_token_ = 1;

  std::uint64_t messages_processed_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  TimeNs cpu_time_used_ = 0;
};

}  // namespace lyra::sim
