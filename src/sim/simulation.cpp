#include "sim/simulation.hpp"

#include <limits>

#include "sim/parallel_executor.hpp"
#include "support/assert.hpp"

namespace lyra::sim {

namespace internal {
thread_local const TimeNs* t_task_now = nullptr;
}  // namespace internal

namespace {
/// Derives the engine-internal stream without consuming from the protocol
/// stream (Rng::split would perturb it): golden-pinned runs stay
/// bit-identical. The constant is the 64-bit golden-ratio increment.
constexpr std::uint64_t kNetStreamSalt = 0x9e3779b97f4a7c15ULL;
}  // namespace

Simulation::Simulation(std::uint64_t seed)
    : seed_(seed), rng_(seed), net_rng_(seed ^ kNetStreamSalt) {}

Simulation::~Simulation() = default;

void Simulation::cancel(std::uint64_t event_id) {
  if (parallel_active_.load(std::memory_order_relaxed)) {
    // Scheduler-thread context (worker cancels are diverted into effect
    // logs): the event may already have been popped into the executor's
    // held tier, which the queue no longer knows about.
    executor_->cancel_event(event_id);
    return;
  }
  queue_.cancel(event_id);
}

void Simulation::set_parallelism(unsigned threads, TimeNs lookahead) {
  LYRA_ASSERT(!parallel_active_.load(std::memory_order_relaxed),
              "set_parallelism during a run");
  threads_ = threads == 0 ? 1 : threads;
  lookahead_ = lookahead;
  if (threads_ > 1) {
    LYRA_ASSERT(lookahead_ > 0,
                "parallel execution needs a positive lookahead bound");
  }
}

void Simulation::await_rng_turn() { executor_->await_rng_turn(); }

ExecutorStats Simulation::executor_stats() const {
  return executor_ != nullptr ? executor_->stats() : ExecutorStats{};
}

std::uint64_t Simulation::run_until(TimeNs deadline) {
  if (threads_ > 1) {
    if (executor_ == nullptr) {
      executor_ = std::make_unique<ParallelExecutor>(this, threads_ - 1,
                                                     lookahead_);
    }
    parallel_active_.store(true, std::memory_order_relaxed);
    const std::uint64_t executed =
        executor_->run(deadline, /*max_events=*/~0ull);
    parallel_active_.store(false, std::memory_order_relaxed);
    if (now_ < deadline) now_ = deadline;
    return executed;
  }
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    const TimeNs next = queue_.next_time();
    if (next > deadline) break;
    now_ = next;
    queue_.run_next();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::uint64_t Simulation::run_all(std::uint64_t max_events) {
  if (threads_ > 1) {
    if (executor_ == nullptr) {
      executor_ = std::make_unique<ParallelExecutor>(this, threads_ - 1,
                                                     lookahead_);
    }
    parallel_active_.store(true, std::memory_order_relaxed);
    const std::uint64_t executed = executor_->run(
        std::numeric_limits<TimeNs>::max(), max_events);
    parallel_active_.store(false, std::memory_order_relaxed);
    return executed;
  }
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    LYRA_ASSERT(executed < max_events,
                "event budget exhausted: livelock or unbounded protocol");
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed;
  }
  return executed;
}

}  // namespace lyra::sim
