#include "sim/simulation.hpp"

#include "support/assert.hpp"

namespace lyra::sim {

std::uint64_t Simulation::run_until(TimeNs deadline) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    const TimeNs next = queue_.next_time();
    if (next > deadline) break;
    now_ = next;
    queue_.run_next();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::uint64_t Simulation::run_all(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    LYRA_ASSERT(executed < max_events,
                "event budget exhausted: livelock or unbounded protocol");
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed;
  }
  return executed;
}

}  // namespace lyra::sim
