#include "sim/trace.hpp"

#include <cstdio>

namespace lyra::sim {

void Trace::record(TimeNs at, NodeId node, std::string category,
                   std::string text) {
  if (!enabled_) return;
  events_.push_back({at, node, std::move(category), std::move(text)});
}

std::vector<TraceEvent> Trace::by_category(std::string_view category) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

void Trace::dump() const {
  for (const auto& e : events_) {
    std::printf("[%10.3f ms] n%-3u %-12s %s\n", to_ms(e.at), e.node,
                e.category.c_str(), e.text.c_str());
  }
}

}  // namespace lyra::sim
