#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/process.hpp"
#include "support/assert.hpp"

namespace lyra::sim {

namespace {

/// Ascending (at, id) — the global firing order.
inline bool ref_before(TimeNs a_at, std::uint64_t a_id, TimeNs b_at,
                       std::uint64_t b_id) {
  if (a_at != b_at) return a_at < b_at;
  return a_id < b_id;
}

}  // namespace

std::uint64_t EventQueue::schedule_at(TimeNs at, Callback fn, NodeId owner) {
  const std::uint64_t id = next_id_++;
  std::uint32_t slot;
  if (!fn_free_.empty()) {
    slot = fn_free_.back();
    fn_free_.pop_back();
    fn_slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(fn_slots_.size());
    fn_slots_.push_back(std::move(fn));
  }
  timers_.push(Ref{at, id, slot, owner});
  live_timer_slots_.emplace(id, slot);
  return id;
}

void EventQueue::schedule_delivery(TimeNs at, ProcessDirectory* dir,
                                   Envelope env) {
  const std::uint64_t id = next_id_++;
  std::uint32_t slot;
  if (!env_free_.empty()) {
    slot = env_free_.back();
    env_free_.pop_back();
    env_slots_[slot].env = std::move(env);
    env_slots_[slot].dir = dir;
  } else {
    slot = static_cast<std::uint32_t>(env_slots_.size());
    env_slots_.push_back(DeliverySlot{std::move(env), dir});
  }
  const Ref ref{at, id, slot, env_slots_[slot].env.to};
  const std::uint64_t tick = tick_of(at);
  if (tick <= drain_tick_) {
    // Same tick as (or earlier than) the bucket being drained: the bucket
    // is already sorted, so late arrivals go through the side heap.
    drain_extra_.push_back(ref);
    std::push_heap(drain_extra_.begin(), drain_extra_.end(), RefAfter{});
  } else if (tick - drain_tick_ <= kBucketCount) {
    const std::size_t idx = static_cast<std::size_t>(tick & kBucketMask);
    if (buckets_[idx].empty()) bucket_bit_set(idx);
    buckets_[idx].push_back(ref);
    ++wheel_count_;
  } else {
    far_.push(ref);
  }
  ++deliveries_live_;
}

bool EventQueue::cancel(std::uint64_t id) {
  // Only ids with a live heap entry are marked: cancelling an already-fired
  // timer or a delivery id would otherwise park an entry in cancelled_
  // forever (drop_dead only reaps ids that surface at the heap top).
  const auto it = live_timer_slots_.find(id);
  if (it == live_timer_slots_.end()) return false;
  fn_slots_[it->second] = nullptr;  // release captured state now
  fn_free_.push_back(it->second);
  live_timer_slots_.erase(it);
  cancelled_.insert(id);
  return true;
}

void EventQueue::drop_dead() const {
  while (!timers_.empty()) {
    const auto it = cancelled_.find(timers_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);  // slot already released by cancel()
    timers_.pop();
  }
}

std::uint64_t EventQueue::find_next_bucket_tick() const {
  // wheel_count_ > 0, so a set bit exists. Ring-scan the bitmap a word at
  // a time starting just past drain_tick_; the first set bit in ring order
  // is the earliest live tick because the window holds one tick per slot.
  const std::size_t start =
      static_cast<std::size_t>((drain_tick_ + 1) & kBucketMask);
  constexpr std::size_t kWords = kBucketCount / 64;
  std::size_t word = start >> 6;
  std::uint64_t bits = bucket_bits_[word] & (~0ull << (start & 63));
  for (std::size_t scanned = 0;;) {
    if (bits != 0) {
      const std::size_t idx =
          (word << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
      // Map the ring index back to the absolute tick in the window
      // (drain_tick_, drain_tick_ + kBucketCount].
      const std::uint64_t base = drain_tick_ + 1;
      std::uint64_t tick = (base & ~kBucketMask) + idx;
      if (tick < base) tick += kBucketCount;
      return tick;
    }
    word = (word + 1) & (kWords - 1);
    scanned += 64;
    LYRA_ASSERT(scanned <= kBucketCount, "wheel bitmap scan found no bucket");
    bits = bucket_bits_[word];
  }
}

void EventQueue::pour_next_bucket() const {
  const std::uint64_t tick = find_next_bucket_tick();
  const std::size_t idx = static_cast<std::size_t>(tick & kBucketMask);
  // Swap storage so the emptied bucket inherits the drain's capacity:
  // after warm-up neither side allocates again.
  drain_sorted_.swap(buckets_[idx]);
  bucket_bit_clear(idx);
  wheel_count_ -= drain_sorted_.size();
  std::sort(drain_sorted_.begin(), drain_sorted_.end(),
            [](const Ref& a, const Ref& b) {
              return ref_before(a.at, a.id, b.at, b.id);
            });
  drain_pos_ = 0;
  drain_tick_ = tick;
  LYRA_ASSERT(!drain_sorted_.empty() &&
                  tick_of(drain_sorted_.front().at) == tick &&
                  tick_of(drain_sorted_.back().at) == tick,
              "bucket holds a foreign tick");
}

bool EventQueue::peek_delivery(Ref& out) const {
  bool have = false;
  Ref best{};
  if (drain_pos_ < drain_sorted_.size()) {
    best = drain_sorted_[drain_pos_];
    have = true;
  } else if (wheel_count_ > 0 && drain_extra_.empty()) {
    // Drain exhausted: bring in the next calendar bucket. (Skipped while
    // the side heap holds entries — those are <= drain_tick_, hence
    // earlier than anything still on the wheel.)
    pour_next_bucket();
    best = drain_sorted_[drain_pos_];
    have = true;
  }
  if (!drain_extra_.empty()) {
    const Ref& e = drain_extra_.front();
    if (!have || ref_before(e.at, e.id, best.at, best.id)) {
      best = e;
      have = true;
    }
  }
  if (!far_.empty()) {
    const Ref& f = far_.top();
    if (!have || ref_before(f.at, f.id, best.at, best.id)) {
      best = f;
      have = true;
    }
  }
  if (have) out = best;
  return have;
}

void EventQueue::pop_delivery(const Ref& ref) {
  if (drain_pos_ < drain_sorted_.size() &&
      drain_sorted_[drain_pos_].id == ref.id) {
    if (++drain_pos_ == drain_sorted_.size()) {
      drain_sorted_.clear();
      drain_pos_ = 0;
    }
  } else if (!drain_extra_.empty() && drain_extra_.front().id == ref.id) {
    std::pop_heap(drain_extra_.begin(), drain_extra_.end(), RefAfter{});
    drain_extra_.pop_back();
  } else {
    LYRA_ASSERT(!far_.empty() && far_.top().id == ref.id,
                "popped delivery missing from every tier");
    far_.pop();
  }
  --deliveries_live_;
}

bool EventQueue::empty() const {
  drop_dead();
  return deliveries_live_ == 0 && timers_.empty();
}

TimeNs EventQueue::next_time() const {
  drop_dead();
  Ref del;
  const bool have_del = peek_delivery(del);
  if (timers_.empty()) return have_del ? del.at : kNoSeq;
  if (!have_del) return timers_.top().at;
  return std::min(del.at, timers_.top().at);
}

bool EventQueue::peek_next(TimeNs& at, std::uint64_t& id,
                           NodeId& owner) const {
  drop_dead();
  Ref del;
  const bool have_del = peek_delivery(del);
  const bool have_timer = !timers_.empty();
  if (!have_del && !have_timer) return false;
  if (have_timer &&
      (!have_del ||
       ref_before(timers_.top().at, timers_.top().id, del.at, del.id))) {
    const Ref& t = timers_.top();
    at = t.at;
    id = t.id;
    owner = t.owner;
  } else {
    at = del.at;
    id = del.id;
    owner = del.owner;
  }
  return true;
}

void EventQueue::pop_next(Popped& out) {
  drop_dead();
  Ref del;
  const bool have_del = peek_delivery(del);
  const bool have_timer = !timers_.empty();
  LYRA_ASSERT(have_del || have_timer, "pop_next on empty queue");
  if (have_timer &&
      (!have_del ||
       ref_before(timers_.top().at, timers_.top().id, del.at, del.id))) {
    const Ref t = timers_.top();
    timers_.pop();
    live_timer_slots_.erase(t.id);
    out.at = t.at;
    out.id = t.id;
    out.owner = t.owner;
    out.is_delivery = false;
    out.fn = std::move(fn_slots_[t.slot]);
    fn_slots_[t.slot] = nullptr;
    fn_free_.push_back(t.slot);  // freed before fn runs so it can reuse the slot
    out.dir = nullptr;
    return;
  }
  pop_delivery(del);
  DeliverySlot& ds = env_slots_[del.slot];
  out.at = del.at;
  out.id = del.id;
  out.owner = del.owner;
  out.is_delivery = true;
  out.env = std::move(ds.env);
  out.dir = ds.dir;
  ds.dir = nullptr;
  env_free_.push_back(del.slot);  // freed before deliver() for the same reason
}

TimeNs EventQueue::run_next() {
  Popped p;
  pop_next(p);
  if (!p.is_delivery) {
    p.fn();
    return p.at;
  }
  // Resolve the destination now: the process registered at send time may
  // have crashed (slot vacant -> drop) or restarted (new object).
  if (Process* dest = p.dir->process_at(p.env.to); dest != nullptr) {
    p.env.delivered_at = p.at;
    dest->deliver(std::move(p.env));
  } else {
    ++deliveries_dropped_;
  }
  return p.at;
}

}  // namespace lyra::sim
