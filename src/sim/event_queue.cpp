#include "sim/event_queue.hpp"

#include "sim/process.hpp"
#include "support/assert.hpp"

namespace lyra::sim {

std::uint64_t EventQueue::schedule_at(TimeNs at, Callback fn) {
  const std::uint64_t id = next_id_++;
  heap_.push(Event{at, id, std::move(fn), nullptr, Envelope{}});
  return id;
}

void EventQueue::schedule_delivery(TimeNs at, ProcessDirectory* dir,
                                   Envelope env) {
  const std::uint64_t id = next_id_++;
  heap_.push(Event{at, id, Callback{}, dir, std::move(env)});
}

void EventQueue::cancel(std::uint64_t id) {
  if (id >= next_id_) return;
  cancelled_.insert(id);
}

void EventQueue::drop_dead() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

TimeNs EventQueue::next_time() const {
  drop_dead();
  return heap_.empty() ? kNoSeq : heap_.top().at;
}

TimeNs EventQueue::run_next() {
  drop_dead();
  LYRA_ASSERT(!heap_.empty(), "run_next on empty queue");
  // Move the event out before popping: running it may schedule more.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  if (ev.dir != nullptr) {
    // Resolve the destination now: the process registered at send time may
    // have crashed (slot vacant -> drop) or restarted (new object).
    if (Process* dest = ev.dir->process_at(ev.env.to); dest != nullptr) {
      ev.env.delivered_at = ev.at;
      dest->deliver(std::move(ev.env));
    } else {
      ++deliveries_dropped_;
    }
  } else {
    ev.fn();
  }
  return ev.at;
}

}  // namespace lyra::sim
