#include "sim/process.hpp"

#include "sim/parallel_executor.hpp"
#include "support/assert.hpp"

namespace lyra::sim {

Process::Process(Simulation* sim, Transport* transport, NodeId id)
    : sim_(sim), transport_(transport), id_(id) {
  LYRA_ASSERT(sim != nullptr && transport != nullptr,
              "process needs a simulation and a transport");
}

Process::~Process() {
  for (const auto& [token, event_id] : live_timers_) sim_->cancel(event_id);
  if (pump_scheduled_) sim_->cancel(pump_event_);
}

void Process::deliver(Envelope env) {
  if (!pump_scheduled_ && inbox_.empty() &&
      sim_->now() >= cpu_busy_until_) {
    // Idle CPU, nothing queued: handle inline without a pump event. This
    // is the common case and halves the event count of a saturated run.
    ++messages_processed_;
    on_message(env);
    return;
  }
  inbox_.push_back(std::move(env));
  schedule_pump();
}

void Process::schedule_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  const TimeNs at = std::max(sim_->now(), cpu_busy_until_);
  if (auto* log = current_effect_log()) {
    Effect e;
    e.kind = Effect::Kind::kSchedulePump;
    e.proc = this;
    e.t = at;
    log->push_back(std::move(e));
    return;
  }
  apply_schedule_pump(at);
}

void Process::apply_schedule_pump(TimeNs at) {
  pump_event_ = sim_->schedule_at(at, [this] { pump(); }, id_);
}

void Process::pump() {
  pump_scheduled_ = false;
  if (inbox_.empty()) return;
  if (sim_->now() < cpu_busy_until_) {
    // The CPU picked up extra work (e.g. a timer fired) since this pump was
    // scheduled; try again when it frees up.
    schedule_pump();
    return;
  }
  Envelope env = std::move(inbox_.front());
  inbox_.pop_front();
  ++messages_processed_;
  on_message(env);
  if (!inbox_.empty()) schedule_pump();
}

void Process::send(NodeId to, PayloadPtr payload) {
  ++messages_sent_;
  bytes_sent_ += payload->wire_size();
  if (auto* log = current_effect_log()) {
    Effect e;
    e.kind = Effect::Kind::kSend;
    e.from = id_;
    e.to = to;
    e.transport = transport_;
    e.payload = std::move(payload);
    log->push_back(std::move(e));
    return;
  }
  transport_->send(id_, to, std::move(payload));
}

void Process::broadcast(PayloadPtr payload) {
  const std::size_t n = transport_->node_count();
  messages_sent_ += n;
  bytes_sent_ += n * payload->wire_size();
  if (auto* log = current_effect_log()) {
    Effect e;
    e.kind = Effect::Kind::kSendAll;
    e.from = id_;
    e.transport = transport_;
    e.payload = std::move(payload);
    log->push_back(std::move(e));
    return;
  }
  transport_->send_all(id_, std::move(payload));
}

void Process::charge(TimeNs cost) {
  if (cost <= 0) return;
  cpu_time_used_ += cost;
  cpu_busy_until_ = std::max(cpu_busy_until_, sim_->now()) + cost;
}

Process::TimerId Process::set_timer(TimeNs delay, std::function<void()> fn) {
  const TimerId token = next_timer_token_++;
  if (auto* log = current_effect_log()) {
    Effect e;
    e.kind = Effect::Kind::kSetTimer;
    e.proc = this;
    e.token = token;
    e.t = delay;
    e.fn = std::move(fn);
    log->push_back(std::move(e));
    return token;
  }
  apply_set_timer(token, delay, std::move(fn));
  return token;
}

void Process::apply_set_timer(TimerId token, TimeNs delay,
                              std::function<void()> fn) {
  const std::uint64_t event_id =
      sim_->schedule_in(delay,
                        [this, token, fn = std::move(fn)] {
                          // Drop the bookkeeping entry before running: fn
                          // may re-arm a timer. Under parallel execution
                          // this lambda runs on a worker thread while the
                          // scheduler may be committing another event's
                          // set/cancel on the same map, so the erase must
                          // go through the effect log like every other
                          // engine mutation.
                          if (auto* log = current_effect_log()) {
                            Effect e;
                            e.kind = Effect::Kind::kTimerFired;
                            e.proc = this;
                            e.token = token;
                            log->push_back(std::move(e));
                          } else {
                            live_timers_.erase(token);
                          }
                          fn();
                        },
                        id_);
  live_timers_.emplace(token, event_id);
}

void Process::apply_timer_fired(TimerId token) { live_timers_.erase(token); }

void Process::cancel_timer(TimerId id) {
  if (auto* log = current_effect_log()) {
    Effect e;
    e.kind = Effect::Kind::kCancelTimer;
    e.proc = this;
    e.token = id;
    log->push_back(std::move(e));
    return;
  }
  apply_cancel_timer(id);
}

void Process::apply_cancel_timer(TimerId token) {
  const auto it = live_timers_.find(token);
  if (it == live_timers_.end()) return;  // already fired or cancelled
  sim_->cancel(it->second);
  live_timers_.erase(it);
}

void Process::trace(std::string category, std::string text) {
  if (auto* log = current_effect_log()) {
    Effect e;
    e.kind = Effect::Kind::kTrace;
    e.from = id_;
    e.text_a = std::move(category);
    e.text_b = std::move(text);
    log->push_back(std::move(e));
    return;
  }
  sim_->trace().record(sim_->now(), id_, std::move(category),
                       std::move(text));
}

}  // namespace lyra::sim
