#pragma once

#include <cstdint>

namespace lyra::sim {

/// Counters of the parallel executor's hot path, snapshotted after a run.
/// The interesting derived numbers are per committed event: a healthy
/// batched run takes far less than one lock acquisition and one condvar
/// notify per event (the PR 5 one-event-per-handoff design paid ~9 locks
/// and 1 notify per event at 4 threads; see docs/PERF.md §7).
struct ExecutorStats {
  // Commit side.
  std::uint64_t tasks_committed = 0;   // owned events applied in order
  std::uint64_t barrier_events = 0;    // ownerless events run inline

  // Dispatch side.
  std::uint64_t batches_dispatched = 0;
  std::uint64_t tasks_dispatched = 0;  // sum of batch sizes
  std::uint64_t batch_handbacks = 0;   // batches stopped early by a worker
  std::uint64_t tasks_handed_back = 0;
  std::uint64_t head_steals = 0;       // queued batches reclaimed for the head
  std::uint64_t inbox_full_retries = 0;

  // Locking / wakeups (both sides combined; the 10x criterion tracks
  // these two against tasks_committed).
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t condvar_notifies = 0;
  std::uint64_t worker_parks = 0;     // workers out of inbox work
  std::uint64_t sched_parks = 0;      // scheduler waits for the head
  double sched_idle_seconds = 0.0;    // wall time spent in those waits

  // RNG turn gate.
  std::uint64_t rng_gate_draws = 0;   // gated protocol draws on workers
  std::uint64_t rng_gate_waits = 0;   // draws that had to block
  std::uint64_t rng_gate_wakes = 0;   // targeted head-worker wakeups

  double locks_per_event() const {
    return tasks_committed ? static_cast<double>(lock_acquisitions) /
                                 static_cast<double>(tasks_committed)
                           : 0.0;
  }
  double notifies_per_event() const {
    return tasks_committed ? static_cast<double>(condvar_notifies) /
                                 static_cast<double>(tasks_committed)
                           : 0.0;
  }
  double mean_batch_size() const {
    return batches_dispatched
               ? static_cast<double>(tasks_dispatched) /
                     static_cast<double>(batches_dispatched)
               : 0.0;
  }
};

}  // namespace lyra::sim
