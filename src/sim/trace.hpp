#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace lyra::sim {

/// One recorded protocol event. Tracing is off by default; tests and the
/// attack demos enable it to inspect protocol behaviour.
struct TraceEvent {
  TimeNs at = 0;
  NodeId node = kNoNode;
  std::string category;
  std::string text;
};

class Trace {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(TimeNs at, NodeId node, std::string category, std::string text);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one category, in order.
  std::vector<TraceEvent> by_category(std::string_view category) const;

  /// Writes a human-readable dump to stdout (debugging aid).
  void dump() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace lyra::sim
