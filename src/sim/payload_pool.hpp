#pragma once

#include <memory>
#include <type_traits>
#include <utility>

#include "sim/message.hpp"
#include "support/pool.hpp"

namespace lyra::sim {

/// Drop-in replacement for std::make_shared at payload construction
/// sites: the payload and its shared_ptr control block come from the
/// arena in a single block and the slot is recycled when the last
/// receiver releases it. An n-recipient broadcast therefore costs one
/// pooled allocation total — the Envelope copies share the pointer and
/// the event queue keeps them in its own slab.
template <typename T, typename... Args>
std::shared_ptr<T> make_payload(Args&&... args) {
  static_assert(std::is_base_of_v<Payload, T>,
                "make_payload is for sim::Payload subclasses");
  return support::make_pooled<T>(std::forward<Args>(args)...);
}

}  // namespace lyra::sim
