#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/message.hpp"
#include "support/types.hpp"

namespace lyra::sim {

class Process;

/// Resolves a process id to the process currently registered under it (or
/// nullptr while the slot is vacant). Implemented by net::Network. Message
/// deliveries hold a directory + id instead of a raw Process*, so a process
/// can be torn down (simulated crash) and re-registered (restart) while
/// deliveries to it are in flight: the destination is resolved at delivery
/// time, and a vacant slot simply drops the message.
class ProcessDirectory {
 public:
  virtual ~ProcessDirectory() = default;
  virtual Process* process_at(NodeId id) const = 0;
};

/// Deterministic discrete-event queue. Events at equal times fire in
/// insertion order (a monotone sequence number breaks ties), so a run is a
/// pure function of the initial seed and configuration.
///
/// Two event flavours: generic callbacks (timers; rare) and message
/// deliveries (the hot path at ~10M/s for n = 100 clusters). Deliveries
/// carry their Envelope inline so no std::function allocation happens per
/// message.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Returns an id usable by cancel().
  std::uint64_t schedule_at(TimeNs at, Callback fn);

  /// Schedules the delivery of `env` (to `env.to`, resolved through `dir`
  /// at delivery time) at `at`. Not cancellable.
  void schedule_delivery(TimeNs at, ProcessDirectory* dir, Envelope env);

  /// Cancels a scheduled callback event. Cancelling an already-fired or
  /// unknown id is a harmless no-op.
  void cancel(std::uint64_t id);

  /// True when no live (non-cancelled) event remains.
  bool empty() const;

  /// Time of the next live event; kNoSeq if empty.
  TimeNs next_time() const;

  /// Pops and runs the next live event; returns its time.
  /// Must not be called on an empty queue.
  TimeNs run_next();

  /// Deliveries whose destination slot was vacant at delivery time
  /// (messages in flight to a crashed process).
  std::uint64_t deliveries_dropped() const { return deliveries_dropped_; }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t id;
    Callback fn;     // empty for deliveries
    ProcessDirectory* dir = nullptr;
    Envelope env;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  /// Discards cancelled events sitting at the front of the heap.
  void drop_dead() const;

  mutable std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 0;
  std::uint64_t deliveries_dropped_ = 0;
};

}  // namespace lyra::sim
