#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/message.hpp"
#include "support/types.hpp"

namespace lyra::sim {

class Process;

/// Resolves a process id to the process currently registered under it (or
/// nullptr while the slot is vacant). Implemented by net::Network. Message
/// deliveries hold a directory + id instead of a raw Process*, so a process
/// can be torn down (simulated crash) and re-registered (restart) while
/// deliveries to it are in flight: the destination is resolved at delivery
/// time, and a vacant slot simply drops the message.
class ProcessDirectory {
 public:
  virtual ~ProcessDirectory() = default;
  virtual Process* process_at(NodeId id) const = 0;
};

/// Deterministic discrete-event queue. Events at equal times fire in
/// insertion order (a monotone sequence number breaks ties), so a run is a
/// pure function of the initial seed and configuration.
///
/// Two event flavours with one shared id space (so the (at, id) total
/// order spans both):
///
///  * Message deliveries — the hot path at ~10M/s for n = 100 clusters —
///    run through a calendar ring: 4096 buckets of kBucketWidth ns each.
///    A delivery within the ring's horizon is appended to its bucket
///    (O(1)); the bucket is sorted once when the clock reaches it and
///    drained by index. Deliveries beyond the horizon (NIC backlog under
///    saturation, adversarial holds) wait in a spill min-heap consulted at
///    pop time. Every structure carries 24-byte {at, id, slot} handles;
///    the Envelope payloads live in a slab whose slots are recycled, so a
///    steady-state run stops allocating entirely.
///
///  * Generic callbacks (timers; sparse) keep a binary heap of the same
///    handles, with the std::function bodies in their own recycled slab —
///    heap sift-ups move 24-byte PODs, never closures.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Returns an id usable by cancel().
  /// `owner` tags the event with the process whose state the callback
  /// touches (kNoNode for harness-level control callbacks); the parallel
  /// executor shards events by owner and treats ownerless ones as barriers.
  std::uint64_t schedule_at(TimeNs at, Callback fn, NodeId owner = kNoNode);

  /// Schedules the delivery of `env` (to `env.to`, resolved through `dir`
  /// at delivery time) at `at`. Not cancellable. `at` must not precede the
  /// time of the last event run. The event's owner is env.to.
  void schedule_delivery(TimeNs at, ProcessDirectory* dir, Envelope env);

  /// Cancels a scheduled callback event. Cancelling an already-fired or
  /// unknown id is a harmless no-op. Returns true when a live event was
  /// actually cancelled (the parallel executor uses false to chase events
  /// it has already popped).
  bool cancel(std::uint64_t id);

  /// True when no live (non-cancelled) event remains.
  bool empty() const;

  /// Time of the next live event; kNoSeq if empty.
  TimeNs next_time() const;

  /// Key and owner of the next live event, without popping it. Returns
  /// false when empty. Used by the parallel executor to decide whether the
  /// next event fits the current lookahead window before committing to it.
  bool peek_next(TimeNs& at, std::uint64_t& id, NodeId& owner) const;

  /// One event popped (not yet executed) by the parallel executor. Exactly
  /// one of `fn` / (`env`, `dir`) is populated, per `is_delivery`.
  struct Popped {
    TimeNs at = 0;
    std::uint64_t id = 0;
    NodeId owner = kNoNode;
    bool is_delivery = false;
    Callback fn;
    Envelope env;
    ProcessDirectory* dir = nullptr;
  };

  /// Pops the next live event without running it; the slab slot is recycled
  /// and the payload moved into `out`. Must not be called on an empty
  /// queue. run_next() == pop_next() + execute.
  void pop_next(Popped& out);

  /// Pops and runs the next live event; returns its time.
  /// Must not be called on an empty queue.
  TimeNs run_next();

  /// Deliveries resolved to a vacant slot by an external executor (the
  /// parallel path resolves destinations on worker threads and reports
  /// drops back here so the counter keeps one meaning).
  void note_delivery_dropped() { ++deliveries_dropped_; }

  /// Deliveries whose destination slot was vacant at delivery time
  /// (messages in flight to a crashed process).
  std::uint64_t deliveries_dropped() const { return deliveries_dropped_; }

  // --- slab introspection (pool tests and perf diagnostics) ---

  /// High-water mark of concurrently scheduled deliveries: the envelope
  /// slab never shrinks, it only recycles.
  std::size_t envelope_slab_capacity() const { return env_slots_.size(); }
  std::size_t callback_slab_capacity() const { return fn_slots_.size(); }

  /// Cancelled ids whose heap entry has not surfaced yet. Bounded by the
  /// number of live timers: cancelling a fired or non-timer id is a no-op
  /// (regression guard for the cancel-after-fire leak).
  std::size_t cancelled_pending() const { return cancelled_.size(); }
  std::size_t live_timer_count() const { return live_timer_slots_.size(); }

 private:
  /// One scheduled event: the ordering key plus a handle into the payload
  /// slab. Trivially copyable — this is all that heaps and buckets move.
  struct Ref {
    TimeNs at;
    std::uint64_t id;
    std::uint32_t slot;
    NodeId owner;
  };
  /// Min-heap / ascending-sort order on (at, id).
  struct RefAfter {
    bool operator()(const Ref& a, const Ref& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };
  using RefHeap = std::priority_queue<Ref, std::vector<Ref>, RefAfter>;

  // Calendar geometry: 4096 buckets x 2^17 ns (~131 us) = ~537 ms horizon,
  // comfortably past the WAN latencies that dominate delivery delays.
  static constexpr int kBucketShift = 17;
  static constexpr std::size_t kBucketCount = 4096;
  static constexpr std::uint64_t kBucketMask = kBucketCount - 1;

  static std::uint64_t tick_of(TimeNs at) {
    return static_cast<std::uint64_t>(at) >> kBucketShift;
  }

  // --- delivery tier ---
  /// True when a live delivery exists; fills `out` with the earliest one.
  /// Pours and sorts the next calendar bucket if the drain ran dry.
  bool peek_delivery(Ref& out) const;
  void pop_delivery(const Ref& ref);
  /// Moves the earliest non-empty bucket into the drain. Requires the
  /// drain to be empty and wheel_count_ > 0.
  void pour_next_bucket() const;
  std::uint64_t find_next_bucket_tick() const;
  void bucket_bit_set(std::size_t idx) const {
    bucket_bits_[idx >> 6] |= (1ull << (idx & 63));
  }
  void bucket_bit_clear(std::size_t idx) const {
    bucket_bits_[idx >> 6] &= ~(1ull << (idx & 63));
  }

  // --- timer tier ---
  /// Discards cancelled events sitting at the front of the timer heap.
  void drop_dead() const;

  // Drain: the bucket whose tick == drain_tick_, sorted ascending, plus a
  // small overflow heap for events inserted at ticks <= drain_tick_ after
  // the sort (same-tick sends from running handlers, and post-jump
  // stragglers). Everything below drain_pos_ has fired.
  mutable std::uint64_t drain_tick_ = 0;
  mutable std::vector<Ref> drain_sorted_;
  mutable std::size_t drain_pos_ = 0;
  mutable std::vector<Ref> drain_extra_;  // heap via std::push/pop_heap

  // Wheel: buckets for ticks in (drain_tick_, drain_tick_ + kBucketCount],
  // one live tick per bucket; a bitmap accelerates the next-bucket scan.
  mutable std::array<std::vector<Ref>, kBucketCount> buckets_;
  mutable std::array<std::uint64_t, kBucketCount / 64> bucket_bits_{};
  mutable std::size_t wheel_count_ = 0;

  // Spill: deliveries beyond the wheel horizon. Never migrated — simply a
  // third candidate source at pop time.
  RefHeap far_;

  std::size_t deliveries_live_ = 0;  // drain remainder + extra + wheel + far

  // Envelope slab with slot recycling. Each slot keeps the directory the
  // delivery was scheduled through (a simulation may host several).
  struct DeliverySlot {
    Envelope env;
    ProcessDirectory* dir = nullptr;
  };
  std::vector<DeliverySlot> env_slots_;
  std::vector<std::uint32_t> env_free_;

  // Timers: POD heap + recycled callback slab + lazy cancellation. A
  // cancelled id's heap entry stays until it surfaces; cancel() releases
  // the callback slot eagerly and only marks ids that are actually live
  // (live_timer_slots_: id -> slot for every timer still in the heap), so
  // cancelled_ stays bounded by the live timer count.
  mutable RefHeap timers_;
  mutable std::vector<Callback> fn_slots_;
  mutable std::vector<std::uint32_t> fn_free_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  mutable std::unordered_map<std::uint64_t, std::uint32_t> live_timer_slots_;

  std::uint64_t next_id_ = 0;
  std::uint64_t deliveries_dropped_ = 0;
};

}  // namespace lyra::sim
