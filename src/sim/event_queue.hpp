#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/message.hpp"
#include "support/types.hpp"

namespace lyra::sim {

class Process;

/// Deterministic discrete-event queue. Events at equal times fire in
/// insertion order (a monotone sequence number breaks ties), so a run is a
/// pure function of the initial seed and configuration.
///
/// Two event flavours: generic callbacks (timers; rare) and message
/// deliveries (the hot path at ~10M/s for n = 100 clusters). Deliveries
/// carry their Envelope inline so no std::function allocation happens per
/// message.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Returns an id usable by cancel().
  std::uint64_t schedule_at(TimeNs at, Callback fn);

  /// Schedules the delivery of `env` to `dest` at `at` (not cancellable).
  void schedule_delivery(TimeNs at, Process* dest, Envelope env);

  /// Cancels a scheduled callback event. Cancelling an already-fired or
  /// unknown id is a harmless no-op.
  void cancel(std::uint64_t id);

  /// True when no live (non-cancelled) event remains.
  bool empty() const;

  /// Time of the next live event; kNoSeq if empty.
  TimeNs next_time() const;

  /// Pops and runs the next live event; returns its time.
  /// Must not be called on an empty queue.
  TimeNs run_next();

 private:
  struct Event {
    TimeNs at;
    std::uint64_t id;
    Callback fn;     // empty for deliveries
    Process* dest = nullptr;
    Envelope env;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  /// Discards cancelled events sitting at the front of the heap.
  void drop_dead() const;

  mutable std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 0;
};

}  // namespace lyra::sim
