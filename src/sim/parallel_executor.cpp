#include "sim/parallel_executor.hpp"

#include <algorithm>
#include <cstdlib>

#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "support/assert.hpp"

namespace lyra::sim {

namespace internal {
thread_local std::vector<Effect>* t_effect_log = nullptr;
}  // namespace internal

namespace {
/// The task currently executing on this worker thread (type-erased: Task
/// is private to ParallelExecutor). Used by the RNG gate.
thread_local void* t_current_task = nullptr;

bool choose_inline_mode() {
  if (const char* env = std::getenv("LYRA_PARALLEL_INLINE")) {
    return env[0] == '1';
  }
  return std::thread::hardware_concurrency() <= 1;
}
}  // namespace

ParallelExecutor::ParallelExecutor(Simulation* sim, unsigned workers,
                                   TimeNs lookahead)
    : sim_(sim),
      worker_count_(workers == 0 ? 1 : workers),
      lookahead_(lookahead),
      inline_mode_(choose_inline_mode()) {
  LYRA_ASSERT(lookahead_ > 0, "parallel executor needs a lookahead bound");
}

ParallelExecutor::~ParallelExecutor() {
  if (workers_started_) {
    stop_ = true;
    for (auto& w : workers_) {
      { std::lock_guard<std::mutex> lk(w->m); }
      w->cv.notify_all();
    }
    for (auto& w : workers_) w->thread.join();
  }
}

void ParallelExecutor::ensure_workers() {
  if (workers_started_) return;
  workers_started_ = true;
  workers_.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start only after the vector is fully built so worker_main never sees a
  // reallocating container.
  for (auto& w : workers_) {
    w->thread = std::thread([this, pw = w.get()] { worker_main(*pw); });
  }
}

ParallelExecutor::Task* ParallelExecutor::acquire_task() {
  if (!task_free_.empty()) {
    Task* t = task_free_.back();
    task_free_.pop_back();
    t->done.store(false, std::memory_order_relaxed);
    return t;
  }
  task_pool_.push_back(std::make_unique<Task>());
  return task_pool_.back().get();
}

void ParallelExecutor::recycle(Task* t) {
  t->fn = nullptr;
  t->env = Envelope{};
  t->dir = nullptr;
  t->effects.clear();  // keeps capacity
  task_free_.push_back(t);
}

ParallelExecutor::OwnerState& ParallelExecutor::owner_state(NodeId owner) {
  if (owners_.size() <= owner) owners_.resize(owner + 1);
  return owners_[owner];
}

void ParallelExecutor::cancel_event(std::uint64_t id) {
  if (sim_->queue_.cancel(id)) return;
  // Already popped into a holding heap (same-owner ordering guarantees a
  // cancellable event is never dispatched yet); drop it at dispatch time.
  cancelled_popped_.insert(id);
}

void ParallelExecutor::await_rng_turn() {
  Task* self = static_cast<Task*>(t_current_task);
  LYRA_ASSERT(self != nullptr, "rng gate called outside a worker task");
  // Inline mode executes in exact global order, so the running task is
  // the head by construction: every draw is already in serial order.
  if (inline_mode_) return;
  const Key key{self->at, self->id};
  std::unique_lock<std::mutex> lk(m_);
  if (head_valid_ && head_key_ == key) return;
  ++rng_waiters_;
  cv_rng_.wait(lk, [&] { return head_valid_ && head_key_ == key; });
  --rng_waiters_;
}

void ParallelExecutor::execute(Task* t) {
  internal::t_effect_log = &t->effects;
  sim::internal::t_task_now = &t->at;
  t_current_task = t;
  if (t->is_delivery) {
    // Resolve the destination now, exactly where the serial path would:
    // attach/detach only happen in barrier events, which never overlap
    // worker execution.
    if (Process* dest = t->dir->process_at(t->env.to); dest != nullptr) {
      t->env.delivered_at = t->at;
      dest->deliver(std::move(t->env));
    } else {
      Effect e;
      e.kind = Effect::Kind::kDeliveryDropped;
      t->effects.push_back(std::move(e));
    }
    t->env = Envelope{};  // release the payload on this thread
  } else {
    t->fn();
    t->fn = nullptr;
  }
  t_current_task = nullptr;
  sim::internal::t_task_now = nullptr;
  internal::t_effect_log = nullptr;
}

void ParallelExecutor::worker_main(Worker& w) {
  for (;;) {
    Task* t = nullptr;
    {
      std::unique_lock<std::mutex> lk(w.m);
      w.cv.wait(lk, [&] { return stop_.load() || !w.q.empty(); });
      if (w.q.empty()) return;  // stop requested, queue drained
      t = w.q.front();
      w.q.pop_front();
    }
    execute(t);
    t->done.store(true, std::memory_order_release);
    bool notify;
    {
      std::lock_guard<std::mutex> lk(m_);
      notify = sched_waiting_;
    }
    if (notify) cv_sched_.notify_one();
  }
}

void ParallelExecutor::apply(Task* t) {
  sim_->now_ = t->at;
  for (Effect& e : t->effects) {
    switch (e.kind) {
      case Effect::Kind::kSend:
        e.transport->send(e.from, e.to, std::move(e.payload));
        break;
      case Effect::Kind::kSendAll:
        e.transport->send_all(e.from, std::move(e.payload));
        break;
      case Effect::Kind::kSetTimer:
        e.proc->apply_set_timer(e.token, e.t, std::move(e.fn));
        break;
      case Effect::Kind::kCancelTimer:
        e.proc->apply_cancel_timer(e.token);
        break;
      case Effect::Kind::kSchedulePump:
        e.proc->apply_schedule_pump(e.t);
        break;
      case Effect::Kind::kTrace:
        sim_->trace_.record(t->at, e.from, std::move(e.text_a),
                            std::move(e.text_b));
        break;
      case Effect::Kind::kDeliveryDropped:
        sim_->queue_.note_delivery_dropped();
        break;
    }
  }
}

std::uint64_t ParallelExecutor::run_inline(TimeNs deadline,
                                           std::uint64_t max_events) {
  // No workers, no windows: pop the global minimum, run it through the
  // same execute/apply pipeline, commit immediately. Nothing is ever held
  // outside the queue, so cancels always resolve in the queue itself and
  // cancelled_popped_ stays empty.
  std::uint64_t executed = 0;
  for (;;) {
    TimeNs at;
    std::uint64_t id;
    NodeId owner;
    if (!sim_->queue_.peek_next(at, id, owner)) break;
    if (at > deadline) break;
    LYRA_ASSERT(executed < max_events,
                "event budget exhausted: livelock or unbounded protocol");
    EventQueue::Popped p;
    sim_->queue_.pop_next(p);
    if (owner == kNoNode) {
      LYRA_ASSERT(!p.is_delivery, "delivery events always have an owner");
      sim_->now_ = p.at;
      p.fn();
      ++executed;
      continue;
    }
    Task* t = acquire_task();
    t->at = p.at;
    t->id = p.id;
    t->owner = p.owner;
    t->is_delivery = p.is_delivery;
    t->fn = std::move(p.fn);
    t->env = std::move(p.env);
    t->dir = p.dir;
    execute(t);
    apply(t);
    ++executed;
    recycle(t);
  }
  LYRA_ASSERT(cancelled_popped_.empty(),
              "inline run accumulated popped-event cancels");
  return executed;
}

std::uint64_t ParallelExecutor::run(TimeNs deadline,
                                    std::uint64_t max_events) {
  if (inline_mode_) return run_inline(deadline, max_events);
  ensure_workers();
  std::uint64_t executed = 0;
  for (;;) {
    bool progressed = false;

    // --- commit phase: apply finished tasks in global (at, id) order.
    // The oldest in-flight task is committable only when NO queued or held
    // event precedes it: an apply can create a timer or pump for a
    // now-idle owner at a time earlier than other in-flight tasks, and
    // that event must be dispatched and committed first. Without this
    // gate a later task would commit (and replay its sends/RNG draws)
    // ahead of an earlier one, diverging from the serial order.
    for (;;) {
      Key other{};
      bool have_other = false;
      {
        TimeNs at;
        std::uint64_t id;
        NodeId owner;
        if (sim_->queue_.peek_next(at, id, owner)) {
          other = Key{at, id};
          have_other = true;
        }
      }
      if (!held_keys_.empty() &&
          (!have_other || *held_keys_.begin() < other)) {
        other = *held_keys_.begin();
        have_other = true;
      }
      Task* t = nullptr;
      {
        std::lock_guard<std::mutex> lk(m_);
        if (!inflight_.empty()) {
          auto it = inflight_.begin();
          if ((!have_other || it->first < other) &&
              it->second->done.load(std::memory_order_acquire)) {
            t = it->second;
            inflight_.erase(it);
          }
        }
      }
      if (t == nullptr) break;
      LYRA_ASSERT(executed < max_events,
                  "event budget exhausted: livelock or unbounded protocol");
      apply(t);
      ++executed;
      OwnerState& os = owner_state(t->owner);
      os.busy = false;
      if (!os.held.empty()) ready_.push_back(t->owner);
      recycle(t);
      progressed = true;
    }

    // --- refill phase: pop the queue into the holding heaps, bounded by
    // the lookahead window anchored at the oldest uncommitted event ---
    TimeNs window_base = 0;
    bool have_base = false;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (!inflight_.empty()) {
        window_base = inflight_.begin()->first.first;
        have_base = true;
      }
    }
    if (!held_keys_.empty() &&
        (!have_base || held_keys_.begin()->first < window_base)) {
      window_base = held_keys_.begin()->first;
      have_base = true;
    }
    for (;;) {
      TimeNs at;
      std::uint64_t id;
      NodeId owner;
      if (!sim_->queue_.peek_next(at, id, owner)) break;
      if (at > deadline) break;
      if (owner == kNoNode) break;  // barrier fences the window
      if (!have_base) {
        window_base = at;
        have_base = true;
      }
      if (at - window_base >= lookahead_) break;
      Task* t = acquire_task();
      EventQueue::Popped p;
      sim_->queue_.pop_next(p);
      LYRA_ASSERT(p.id == id, "refill popped a different event than peeked");
      t->at = p.at;
      t->id = p.id;
      t->owner = p.owner;
      t->is_delivery = p.is_delivery;
      t->fn = std::move(p.fn);
      t->env = std::move(p.env);
      t->dir = p.dir;
      owner_state(owner).held.push(t);
      held_keys_.insert(Key{at, id});
      ready_.push_back(owner);
    }

    // --- dispatch phase: hand each ready idle owner its oldest event ---
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const NodeId owner = ready_[i];
      OwnerState& os = owner_state(owner);
      while (!os.held.empty() &&
             cancelled_popped_.erase(os.held.top()->id) > 0) {
        Task* dead = os.held.top();
        os.held.pop();
        held_keys_.erase(Key{dead->at, dead->id});
        recycle(dead);  // a cancelled timer never runs and never counts
      }
      if (os.busy || os.held.empty()) continue;
      Task* t = os.held.top();
      os.held.pop();
      held_keys_.erase(Key{t->at, t->id});
      os.busy = true;
      {
        std::lock_guard<std::mutex> lk(m_);
        inflight_.emplace(Key{t->at, t->id}, t);
      }
      Worker& w = *workers_[t->owner % worker_count_];
      {
        std::lock_guard<std::mutex> lk(w.m);
        w.q.push_back(t);
      }
      w.cv.notify_one();
      progressed = true;
    }
    ready_.clear();

    // --- publish the head (oldest uncommitted event) for the RNG gate.
    // From here until that event commits, the scheduler creates no new
    // events, so the published key cannot be undercut. ---
    {
      TimeNs at;
      std::uint64_t id;
      NodeId owner;
      Key h{};
      bool have = false;
      if (sim_->queue_.peek_next(at, id, owner)) {
        h = Key{at, id};
        have = true;
      }
      if (!held_keys_.empty() &&
          (!have || *held_keys_.begin() < h)) {
        h = *held_keys_.begin();
        have = true;
      }
      std::lock_guard<std::mutex> lk(m_);
      if (!inflight_.empty() &&
          (!have || inflight_.begin()->first < h)) {
        h = inflight_.begin()->first;
        have = true;
      }
      if (have != head_valid_ || (have && !(head_key_ == h))) {
        head_valid_ = have;
        head_key_ = h;
        if (rng_waiters_ > 0) cv_rng_.notify_all();
      }
    }

    // --- barrier / completion checks ---
    bool inflight_empty;
    {
      std::lock_guard<std::mutex> lk(m_);
      inflight_empty = inflight_.empty();
    }
    if (inflight_empty && held_keys_.empty()) {
      TimeNs at;
      std::uint64_t id;
      NodeId owner;
      if (!sim_->queue_.peek_next(at, id, owner)) break;  // drained
      if (at > deadline) break;
      if (owner == kNoNode) {
        // Every earlier event has committed: safe to run a control event
        // that may mutate anything (crash, restart, disk fault).
        LYRA_ASSERT(executed < max_events,
                    "event budget exhausted: livelock or unbounded protocol");
        EventQueue::Popped p;
        sim_->queue_.pop_next(p);
        LYRA_ASSERT(!p.is_delivery, "delivery events always have an owner");
        sim_->now_ = p.at;
        p.fn();
        ++executed;
        continue;
      }
      continue;  // the next refill pass will pop it
    }

    if (!progressed) {
      // The oldest in-flight task may still be QUEUED behind another task
      // on its worker's FIFO (one worker serves many owners) — and that
      // earlier task may be blocked in the RNG gate, which only admits the
      // oldest uncommitted event. Steal the head from the worker queue and
      // run it inline: the head is always safe to execute, and committing
      // it is the only way a gate-blocked worker ever gets admitted.
      Task* head = nullptr;
      {
        std::lock_guard<std::mutex> lk(m_);
        LYRA_ASSERT(!inflight_.empty(),
                    "scheduler idle with no task in flight");
        if (!inflight_.begin()->second->done.load(
                std::memory_order_acquire)) {
          head = inflight_.begin()->second;
        }
      }
      if (head != nullptr) {
        Worker& w = *workers_[head->owner % worker_count_];
        bool stolen = false;
        {
          std::lock_guard<std::mutex> lk(w.m);
          auto it = std::find(w.q.begin(), w.q.end(), head);
          if (it != w.q.end()) {
            w.q.erase(it);
            stolen = true;
          }
        }
        if (stolen) {
          execute(head);
          head->done.store(true, std::memory_order_release);
          continue;  // the commit phase picks it up
        }
      }
      // The head is genuinely executing; sleep until it finishes (only its
      // completion unlocks the next commit).
      std::unique_lock<std::mutex> lk(m_);
      sched_waiting_ = true;
      cv_sched_.wait(lk, [&] {
        return !inflight_.empty() &&
               inflight_.begin()->second->done.load(
                   std::memory_order_acquire);
      });
      sched_waiting_ = false;
    }
  }
  LYRA_ASSERT(held_keys_.empty() && cancelled_popped_.empty(),
              "parallel run finished with events still held");
  return executed;
}

}  // namespace lyra::sim
