#include "sim/parallel_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "support/assert.hpp"

namespace lyra::sim {

namespace internal {
thread_local std::vector<Effect>* t_effect_log = nullptr;
}  // namespace internal

namespace {
/// The task currently executing on this thread (type-erased: Task is
/// private to ParallelExecutor). Used by the RNG gate. Set on workers and
/// on the scheduler while it executes a stolen head inline.
thread_local void* t_current_task = nullptr;
/// The worker this thread is (nullptr on the scheduler): where the RNG
/// gate's blocking path registers so the scheduler can wake exactly it.
thread_local void* t_worker = nullptr;
thread_local void* t_worker_counters = nullptr;

bool choose_inline_mode() {
  if (const char* env = std::getenv("LYRA_PARALLEL_INLINE")) {
    return env[0] == '1';
  }
  return std::thread::hardware_concurrency() <= 1;
}

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

constexpr std::size_t kInboxCapacity = 1024;
constexpr std::size_t kCompletionCapacityPerWorker = 1024;
constexpr int kIdleSpins = 64;
/// Yields an idle worker donates to the scheduler before the full
/// park/notify round-trip. Refills usually land within a scheduler pass
/// or two, and on an oversubscribed host every avoided park saves a lock,
/// a notify, and two context switches.
constexpr int kIdleYields = 32;
}  // namespace

ParallelExecutor::ParallelExecutor(Simulation* sim, unsigned workers,
                                   TimeNs lookahead)
    : sim_(sim),
      worker_count_(workers == 0 ? 1 : workers),
      lookahead_(lookahead),
      inline_mode_(choose_inline_mode()),
      completions_(kCompletionCapacityPerWorker *
                   (workers == 0 ? 1 : workers)) {
  LYRA_ASSERT(lookahead_ > 0, "parallel executor needs a lookahead bound");
}

ParallelExecutor::~ParallelExecutor() {
  if (workers_started_) {
    stop_.store(true, std::memory_order_seq_cst);
    for (auto& w : workers_) {
      { std::lock_guard<std::mutex> lk(w->m); }
      w->cv.notify_all();
    }
    for (auto& w : workers_) w->thread.join();
  }
}

void ParallelExecutor::ensure_workers() {
  if (workers_started_) return;
  workers_started_ = true;
  workers_.reserve(worker_count_);
  worker_counters_.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i) {
    workers_.push_back(std::make_unique<Worker>(kInboxCapacity));
    worker_counters_.push_back(std::make_unique<WorkerCounters>());
  }
  // Start only after the vectors are fully built so worker_main never sees
  // a reallocating container.
  for (unsigned i = 0; i < worker_count_; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

ParallelExecutor::Task* ParallelExecutor::acquire_task() {
  if (!task_free_.empty()) {
    Task* t = task_free_.back();
    task_free_.pop_back();
    return t;
  }
  task_pool_.push_back(std::make_unique<Task>());
  return task_pool_.back().get();
}

void ParallelExecutor::recycle(Task* t) {
  t->fn = nullptr;
  t->env = Envelope{};
  t->dir = nullptr;
  t->effects.clear();  // keeps capacity
  t->batch = nullptr;
  t->pos = 0;
  t->owner_seq = 0;
  task_free_.push_back(t);
}

ParallelExecutor::Batch* ParallelExecutor::acquire_batch() {
  if (!batch_free_.empty()) {
    Batch* b = batch_free_.back();
    batch_free_.pop_back();
    b->tasks.clear();  // keeps capacity
    b->first_seq = 0;
    b->epoch = nullptr;
    b->claim.store(Batch::kQueued, std::memory_order_relaxed);
    b->closed.store(false, std::memory_order_relaxed);
    b->settled = 0;
    b->handback_done = false;
    b->acked = false;
    b->finished = false;
    b->recycled = false;
    return b;
  }
  batch_pool_.push_back(std::make_unique<Batch>());
  return batch_pool_.back().get();
}

ParallelExecutor::OwnerState& ParallelExecutor::owner_state(NodeId owner) {
  if (owners_.size() <= owner) owners_.resize(owner + 1);
  OwnerState& os = owners_[owner];
  if (os.epoch == nullptr) os.epoch = std::make_unique<EpochCell>();
  return os;
}

void ParallelExecutor::cancel_event(std::uint64_t id) {
  if (sim_->queue_.cancel(id)) return;
  // The queue no longer knows the id: either the event already fired, or
  // it was popped into the holding/dispatch tiers. With nothing popped
  // and uncommitted, only "already fired" remains, and EventQueue::cancel
  // documents that as a harmless no-op — barrier-context cancels (which
  // only run at full drain) of fired ids land here. Recording them would
  // leave a tombstone no dispatch sweep ever consumes.
  if (held_keys_.empty() && inflight_.empty()) return;
  // Already popped into a holding heap. Timer cancels are always
  // same-owner (apply_cancel_timer, filtered through live_timers_), and
  // the worker-side stop rule closes a batch at the first cancel-timer
  // effect, so a cancellable event is never in an executed position: it
  // is either held now or will be handed back to the holding heap, where
  // the dispatch sweep drops it.
  cancelled_popped_.insert(id);
}

void ParallelExecutor::await_rng_turn() {
  Task* self = static_cast<Task*>(t_current_task);
  LYRA_ASSERT(self != nullptr, "rng gate called outside a task");
  // Inline mode executes in exact global order, so the running task is
  // the head by construction: every draw is already in serial order.
  if (inline_mode_) return;
  auto* c = static_cast<WorkerCounters*>(t_worker_counters);
  if (c != nullptr) c->gate_draws.fetch_add(1, std::memory_order_relaxed);
  // Lock-free fast path: the scheduler publishes the head event id, and
  // the head's holder sails through without a lock.
  if (head_id_.load(std::memory_order_seq_cst) == self->id) return;
  // The scheduler itself only executes the head (stolen batches), which
  // the fast path admits — a blocked caller is always a worker.
  Worker* w = static_cast<Worker*>(t_worker);
  LYRA_ASSERT(w != nullptr, "non-head rng draw outside a worker");
  c->gate_waits.fetch_add(1, std::memory_order_relaxed);
  c->locks.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(gate_m_);
  gate_waiting_.emplace(self->id, w);
  gate_waiter_count_.fetch_add(1, std::memory_order_seq_cst);
  w->gate_cv.wait(lk, [&] {
    return head_id_.load(std::memory_order_seq_cst) == self->id;
  });
  gate_waiter_count_.fetch_sub(1, std::memory_order_relaxed);
  gate_waiting_.erase(self->id);
}

void ParallelExecutor::publish_head(bool have, Key h) {
  const std::uint64_t id = have ? h.second : kNoHead;
  if (head_id_.load(std::memory_order_relaxed) == id) return;
  head_id_.store(id, std::memory_order_seq_cst);
  // Wake exactly the head's worker, if it is blocked in the gate. The
  // seq_cst store/load pairing with the waiter's registration guarantees
  // either we see its registration or it sees the new head.
  if (gate_waiter_count_.load(std::memory_order_seq_cst) == 0) return;
  ++sched_stats_.lock_acquisitions;
  std::lock_guard<std::mutex> lk(gate_m_);
  auto it = gate_waiting_.find(id);
  if (it != gate_waiting_.end()) {
    ++sched_stats_.condvar_notifies;
    ++sched_stats_.rng_gate_wakes;
    it->second->gate_cv.notify_one();
  }
}

void ParallelExecutor::execute(Task* t) {
  internal::t_effect_log = &t->effects;
  sim::internal::t_task_now = &t->at;
  t_current_task = t;
  if (t->is_delivery) {
    // Resolve the destination now, exactly where the serial path would:
    // attach/detach only happen in barrier events, which never overlap
    // worker execution.
    if (Process* dest = t->dir->process_at(t->env.to); dest != nullptr) {
      t->env.delivered_at = t->at;
      dest->deliver(std::move(t->env));
    } else {
      Effect e;
      e.kind = Effect::Kind::kDeliveryDropped;
      t->effects.push_back(std::move(e));
    }
    t->env = Envelope{};  // release the payload on this thread
  } else {
    t->fn();
    t->fn = nullptr;
  }
  t_current_task = nullptr;
  sim::internal::t_task_now = nullptr;
  internal::t_effect_log = nullptr;
}

void ParallelExecutor::wake_scheduler_if_parked(WorkerCounters& c) {
  if (!sched_parked_.load(std::memory_order_seq_cst)) return;
  c.locks.fetch_add(1, std::memory_order_relaxed);
  { std::lock_guard<std::mutex> lk(park_m_); }
  c.notifies.fetch_add(1, std::memory_order_relaxed);
  park_cv_.notify_one();
}

void ParallelExecutor::push_completion(WorkerCounters& c, Batch* b) {
  int spins = 0;
  while (!completions_.try_push(b)) {
    // The scheduler drains the ring every pass while running, so fullness
    // is transient — except at teardown, when nobody will ever drain it
    // (the destructor is blocked joining this thread): the ack is
    // meaningless then, drop it. Past the spin budget, yield: on a
    // starved host the scheduler needs this core to do the draining.
    if (stop_.load(std::memory_order_relaxed)) return;
    if (++spins > kIdleSpins) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  wake_scheduler_if_parked(c);
}

void ParallelExecutor::run_batch(WorkerCounters& c, Batch* b) {
  // Earliest same-owner event any executed member has created so far
  // (timers are delays off the member's time; pumps are absolute). If that
  // creation precedes the next member, the serial schedule would run it
  // first — stop and hand the tail back. A cancel-timer effect may target
  // a later member, so it also closes the batch. Equal times are safe to
  // continue: a created event always gets a larger id than the already-
  // queued member, so the member still runs first.
  TimeNs pending_min = std::numeric_limits<TimeNs>::max();
  bool saw_cancel = false;
  const std::size_t n = b->tasks.size();
  for (std::size_t i = 0; i < n; ++i) {
    Task* t = b->tasks[i];
    if (i > 0 && (saw_cancel || pending_min < t->at)) break;
    execute(t);
    for (const Effect& e : t->effects) {
      switch (e.kind) {
        case Effect::Kind::kSetTimer:
          pending_min = std::min(pending_min, t->at + e.t);
          break;
        case Effect::Kind::kSchedulePump:
          pending_min = std::min(pending_min, e.t);
          break;
        case Effect::Kind::kCancelTimer:
          saw_cancel = true;
          break;
        default:
          break;
      }
    }
    // Publish completion: the seq_cst increment pairs with the
    // scheduler's park protocol (it sets sched_parked_ before re-checking
    // the epoch, we bump the epoch before checking sched_parked_ — one
    // side always sees the other). The id must be captured first: once the
    // epoch is bumped the scheduler may commit and recycle *t under us.
    const std::uint64_t done_id = t->id;
    b->epoch->executed.fetch_add(1, std::memory_order_seq_cst);
    if (sched_parked_.load(std::memory_order_seq_cst) &&
        head_id_.load(std::memory_order_relaxed) == done_id) {
      wake_scheduler_if_parked(c);
    }
  }
  b->closed.store(true, std::memory_order_release);
  push_completion(c, b);
}

void ParallelExecutor::worker_main(unsigned index) {
  Worker& w = *workers_[index];
  WorkerCounters& c = *worker_counters_[index];
  t_worker = &w;
  t_worker_counters = &c;
  for (;;) {
    Batch* b = nullptr;
    if (!w.inbox.try_pop(b)) {
      for (int s = 0; s < kIdleSpins && !w.inbox.try_pop(b); ++s) {
        cpu_relax();
      }
    }
    if (b == nullptr && !stop_.load(std::memory_order_relaxed)) {
      for (int y = 0; y < kIdleYields && !w.inbox.try_pop(b); ++y) {
        std::this_thread::yield();
        if (stop_.load(std::memory_order_relaxed)) break;
      }
    }
    if (b == nullptr) {
      if (stop_.load(std::memory_order_relaxed)) return;
      c.locks.fetch_add(1, std::memory_order_relaxed);
      c.parks.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lk(w.m);
      w.parked.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      w.cv.wait(lk, [&] {
        return stop_.load(std::memory_order_relaxed) || !w.inbox.empty();
      });
      w.parked.store(false, std::memory_order_relaxed);
      if (stop_.load(std::memory_order_relaxed)) return;
      continue;
    }
    std::uint8_t expected = Batch::kQueued;
    if (!b->claim.compare_exchange_strong(expected, Batch::kRunning,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      // The scheduler stole this batch before we started it; acknowledge
      // so it can be recycled.
      push_completion(c, b);
      continue;
    }
    run_batch(c, b);
  }
}

void ParallelExecutor::apply(Task* t) {
  sim_->now_ = t->at;
  for (Effect& e : t->effects) {
    switch (e.kind) {
      case Effect::Kind::kSend:
        e.transport->send(e.from, e.to, std::move(e.payload));
        break;
      case Effect::Kind::kSendAll:
        e.transport->send_all(e.from, std::move(e.payload));
        break;
      case Effect::Kind::kSetTimer:
        e.proc->apply_set_timer(e.token, e.t, std::move(e.fn));
        break;
      case Effect::Kind::kCancelTimer:
        e.proc->apply_cancel_timer(e.token);
        break;
      case Effect::Kind::kTimerFired:
        e.proc->apply_timer_fired(e.token);
        break;
      case Effect::Kind::kSchedulePump:
        e.proc->apply_schedule_pump(e.t);
        break;
      case Effect::Kind::kTrace:
        sim_->trace_.record(t->at, e.from, std::move(e.text_a),
                            std::move(e.text_b));
        break;
      case Effect::Kind::kDeliveryDropped:
        sim_->queue_.note_delivery_dropped();
        break;
    }
  }
}

void ParallelExecutor::settle(Batch* b, std::uint32_t count) {
  b->settled += count;
  LYRA_ASSERT(b->settled <= b->tasks.size(), "batch settled past its size");
  if (b->settled == b->tasks.size() && !b->finished) {
    for (Task* m : b->tasks) {
      // A member pointer may be stale (committed members are recycled and
      // reused while the batch lives on) — only a task that still claims
      // membership can expose a premature finish.
      LYRA_ASSERT(m->batch != b || inflight_.count(Key{m->at, m->id}) == 0,
                  "batch finished with a member still in flight");
    }
    b->finished = true;
    OwnerState& os = owner_state(b->owner);
    os.busy = false;
    if (!os.held.empty()) ready_.push_back(b->owner);
    try_recycle(b);
  }
}

void ParallelExecutor::try_recycle(Batch* b) {
  // Idempotent: both drain_completions and the settle that finishes the
  // batch can observe finished && acked for the same batch (the drain sets
  // acked before a handback whose settle may finish it) — the free list
  // must see it once.
  if (b->finished && b->acked && !b->recycled) {
    b->recycled = true;
    batch_free_.push_back(b);
  }
}

void ParallelExecutor::handback(Batch* b) {
  if (b->handback_done) return;
  b->handback_done = true;
  // closed was acquired-loaded (via the completion ring pop), so the epoch
  // value is the worker's final word on how far it got.
  const std::uint64_t executed =
      b->epoch->executed.load(std::memory_order_acquire) -
      (b->first_seq - 1);
  const std::size_t n = b->tasks.size();
  if (executed >= n) return;  // fully executed, nothing to hand back
  OwnerState& os = owner_state(b->owner);
  for (std::size_t i = executed; i < n; ++i) {
    Task* t = b->tasks[i];
    LYRA_ASSERT(t->batch == b, "handing back a task the batch does not own");
    const bool was = inflight_.erase(Key{t->at, t->id}) > 0;
    LYRA_ASSERT(was, "handed-back task was not in flight");
    t->batch = nullptr;
    t->owner_seq = 0;
    os.held.push(t);
    held_keys_.insert(Key{t->at, t->id});
  }
  // Rewind the dispatch ordinals so the re-dispatched tail lines up with
  // the owner's epoch again.
  const std::uint32_t returned = static_cast<std::uint32_t>(n - executed);
  os.next_seq -= returned;
  LYRA_ASSERT(os.next_seq == b->epoch->executed.load(),
              "handback rewind drifted from the owner's epoch");
  ++sched_stats_.batch_handbacks;
  sched_stats_.tasks_handed_back += returned;
  settle(b, returned);
}

void ParallelExecutor::drain_completions() {
  Batch* b = nullptr;
  while (completions_.try_pop(b)) {
    b->acked = true;
    if (b->claim.load(std::memory_order_acquire) == Batch::kStolen) {
      // Ack of a stolen batch: the steal path already re-helded and
      // settled its members; the worker has now dropped its reference.
      try_recycle(b);
      continue;
    }
    handback(b);  // no-op when every member was executed
    try_recycle(b);
  }
}

std::uint64_t ParallelExecutor::run_inline(TimeNs deadline,
                                           std::uint64_t max_events) {
  // No workers, no windows: pop the global minimum, run it through the
  // same execute/apply pipeline, commit immediately. Nothing is ever held
  // outside the queue, so cancels always resolve in the queue itself and
  // cancelled_popped_ stays empty.
  std::uint64_t executed = 0;
  for (;;) {
    TimeNs at;
    std::uint64_t id;
    NodeId owner;
    if (!sim_->queue_.peek_next(at, id, owner)) break;
    if (at > deadline) break;
    LYRA_ASSERT(executed < max_events,
                "event budget exhausted: livelock or unbounded protocol");
    EventQueue::Popped p;
    sim_->queue_.pop_next(p);
    if (owner == kNoNode) {
      LYRA_ASSERT(!p.is_delivery, "delivery events always have an owner");
      sim_->now_ = p.at;
      p.fn();
      ++executed;
      ++sched_stats_.barrier_events;
      continue;
    }
    Task* t = acquire_task();
    t->at = p.at;
    t->id = p.id;
    t->owner = p.owner;
    t->is_delivery = p.is_delivery;
    t->fn = std::move(p.fn);
    t->env = std::move(p.env);
    t->dir = p.dir;
    execute(t);
    apply(t);
    ++executed;
    ++sched_stats_.tasks_committed;
    recycle(t);
  }
  LYRA_ASSERT(cancelled_popped_.empty(),
              "inline run accumulated popped-event cancels");
  return executed;
}

std::uint64_t ParallelExecutor::run(TimeNs deadline,
                                    std::uint64_t max_events) {
  if (inline_mode_) return run_inline(deadline, max_events);
  ensure_workers();
  std::uint64_t executed = 0;
  for (;;) {
    bool progressed = false;

    // --- completion phase: drain the workers' ring. Closed batches that
    // stopped early hand their unexecuted tail back to the holding heaps
    // here, so a same-owner event created by an early member is dispatched
    // before the tail re-runs — exactly the serial order. ---
    drain_completions();

    // --- commit phase: apply finished tasks in global (at, id) order.
    // The oldest in-flight task is committable only when NO queued or held
    // event precedes it: an apply can create a timer or pump for a
    // now-idle owner at a time earlier than other in-flight tasks, and
    // that event must be dispatched and committed first. Per-task
    // completion is polled through the owner's atomic epoch counter — no
    // lock on this path. ---
    for (;;) {
      if (inflight_.empty()) break;
      auto it = inflight_.begin();
      Key other{};
      bool have_other = false;
      {
        TimeNs at;
        std::uint64_t id;
        NodeId owner;
        if (sim_->queue_.peek_next(at, id, owner)) {
          other = Key{at, id};
          have_other = true;
        }
      }
      if (!held_keys_.empty() &&
          (!have_other || *held_keys_.begin() < other)) {
        other = *held_keys_.begin();
        have_other = true;
      }
      if (have_other && other < it->first) break;
      Task* t = it->second;
      if (!task_done(t)) break;  // running or queued; steal/park decides
      LYRA_ASSERT(t->batch != nullptr && t->pos < t->batch->tasks.size() &&
                      t->batch->tasks[t->pos] == t,
                  "committing a task that is not a member of its batch");
      LYRA_ASSERT(executed < max_events,
                  "event budget exhausted: livelock or unbounded protocol");
      apply(t);
      ++executed;
      ++sched_stats_.tasks_committed;
      inflight_.erase(it);
      Batch* b = t->batch;
      recycle(t);
      settle(b, 1);
      progressed = true;
    }

    // --- refill phase: pop the queue into the holding heaps, bounded by
    // the lookahead window anchored at the oldest uncommitted event ---
    TimeNs window_base = 0;
    bool have_base = false;
    if (!inflight_.empty()) {
      window_base = inflight_.begin()->first.first;
      have_base = true;
    }
    if (!held_keys_.empty() &&
        (!have_base || held_keys_.begin()->first < window_base)) {
      window_base = held_keys_.begin()->first;
      have_base = true;
    }
    for (;;) {
      TimeNs at;
      std::uint64_t id;
      NodeId owner;
      if (!sim_->queue_.peek_next(at, id, owner)) break;
      if (at > deadline) break;
      if (owner == kNoNode) break;  // barrier fences the window
      // The window base is the oldest UNCOMMITTED event, and the queue
      // front is part of that minimum: a commit may have just created an
      // event older than everything held or in flight (a short self-
      // delivery, a fast timer), and anchoring the window above it would
      // pop events more than one delivery floor past it — events a send
      // of that older event's commit could still undercut. Pops arrive in
      // (time, id) order, so only the first can lower the base.
      if (!have_base || at < window_base) {
        window_base = at;
        have_base = true;
      }
      if (at - window_base >= lookahead_) break;
      Task* t = acquire_task();
      EventQueue::Popped p;
      sim_->queue_.pop_next(p);
      LYRA_ASSERT(p.id == id, "refill popped a different event than peeked");
      t->at = p.at;
      t->id = p.id;
      t->owner = p.owner;
      t->is_delivery = p.is_delivery;
      t->fn = std::move(p.fn);
      t->env = std::move(p.env);
      t->dir = p.dir;
      owner_state(owner).held.push(t);
      held_keys_.insert(Key{at, id});
      ready_.push_back(owner);
    }

    // --- dispatch phase: hand each ready idle owner its entire held
    // slice as one batch, through its worker's lock-free inbox ring ---
    bool pushed_any = false;
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const NodeId owner = ready_[i];
      OwnerState& os = owner_state(owner);
      if (os.busy || os.held.empty()) continue;
      LYRA_ASSERT(os.next_seq == os.epoch->executed.load(),
                  "idle owner's dispatch ordinal drifted from its epoch");
      Batch* b = acquire_batch();
      b->owner = owner;
      b->epoch = os.epoch.get();
      b->first_seq = os.next_seq + 1;
      while (!os.held.empty()) {
        Task* t = os.held.top();
        os.held.pop();
        held_keys_.erase(Key{t->at, t->id});
        // A cancelled timer never runs and never counts. The check must be
        // per member, not just at the heap top: the cancelled event's key
        // is larger than its canceller's, so other held events can sit
        // above it in the heap.
        if (cancelled_popped_.erase(t->id) > 0) {
          recycle(t);
          continue;
        }
        t->owner_seq = ++os.next_seq;
        t->batch = b;
        t->pos = static_cast<std::uint32_t>(b->tasks.size());
        b->tasks.push_back(t);
        const bool fresh = inflight_.emplace(Key{t->at, t->id}, t).second;
        LYRA_ASSERT(fresh, "dispatched a task already in flight");
      }
      if (b->tasks.empty()) {
        batch_free_.push_back(b);  // every held event was a dead cancel
        continue;
      }
      os.busy = true;
      ++sched_stats_.batches_dispatched;
      sched_stats_.tasks_dispatched += b->tasks.size();
      Worker& w = *workers_[owner % worker_count_];
      // Preserve per-worker FIFO order: drain any spill-over first.
      if (!w.overflow.empty() || !w.inbox.try_push(b)) {
        w.overflow.push_back(b);
        ++sched_stats_.inbox_full_retries;
      } else {
        w.poked = true;
      }
      pushed_any = true;
      progressed = true;
    }
    ready_.clear();
    for (auto& wp : workers_) {
      while (!wp->overflow.empty() &&
             wp->inbox.try_push(wp->overflow.front())) {
        wp->overflow.pop_front();
        wp->poked = true;
        pushed_any = true;
      }
    }
    if (pushed_any) {
      // Dekker pairing with the worker park path: it sets parked before
      // re-checking its inbox; we push before checking parked.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // Only workers whose inbox actually received a batch this pass can
      // need a wake; notifying every parked worker would pay a lock and a
      // notify per worker per pass for nothing.
      for (auto& wp : workers_) {
        if (!wp->poked) continue;
        wp->poked = false;
        if (wp->parked.load(std::memory_order_seq_cst)) {
          ++sched_stats_.lock_acquisitions;
          { std::lock_guard<std::mutex> lk(wp->m); }
          ++sched_stats_.condvar_notifies;
          wp->cv.notify_one();
        }
      }
    }

    // --- publish the head (oldest uncommitted event) for the RNG gate.
    // From here until that event commits, the scheduler creates no new
    // events, so the published id cannot be undercut. ---
    {
      TimeNs at;
      std::uint64_t id;
      NodeId owner;
      Key h{};
      bool have = false;
      if (sim_->queue_.peek_next(at, id, owner)) {
        h = Key{at, id};
        have = true;
      }
      if (!held_keys_.empty() && (!have || *held_keys_.begin() < h)) {
        h = *held_keys_.begin();
        have = true;
      }
      if (!inflight_.empty() && (!have || inflight_.begin()->first < h)) {
        h = inflight_.begin()->first;
        have = true;
      }
      publish_head(have, h);
    }

    // --- barrier / completion checks ---
    if (inflight_.empty() && held_keys_.empty()) {
      TimeNs at;
      std::uint64_t id;
      NodeId owner;
      if (!sim_->queue_.peek_next(at, id, owner)) break;  // drained
      if (at > deadline) break;
      if (owner == kNoNode) {
        // Every earlier event has committed: safe to run a control event
        // that may mutate anything (crash, restart, disk fault).
        LYRA_ASSERT(executed < max_events,
                    "event budget exhausted: livelock or unbounded protocol");
        EventQueue::Popped p;
        sim_->queue_.pop_next(p);
        LYRA_ASSERT(!p.is_delivery, "delivery events always have an owner");
        sim_->now_ = p.at;
        p.fn();
        ++executed;
        ++sched_stats_.barrier_events;
        continue;
      }
      continue;  // the next refill pass will pop it
    }

    if (!progressed) {
      LYRA_ASSERT(!inflight_.empty(),
                  "scheduler idle with no task in flight");
      Task* head = inflight_.begin()->second;
      if (task_done(head)) continue;  // finished since the commit phase
      Batch* hb = head->batch;
      std::uint8_t expected = Batch::kQueued;
      // The oldest in-flight task is only the global head when nothing
      // held or queued precedes it. A short timer committed off a busy
      // owner refills into that owner's holding heap ahead of everyone's
      // in-flight tasks (the creator's epoch bump is visible before its
      // batch's completion record arrives), and then the published head
      // is that held event: stealing would run a non-head inline, out of
      // RNG-gate order. The undercutting owner always has a completion in
      // flight — park below and let it unstick the heap.
      if (head_id_.load(std::memory_order_relaxed) == head->id &&
          hb->claim.compare_exchange_strong(expected, Batch::kStolen,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        // The head sits in a batch its worker has not started (the worker
        // is busy with other owners, possibly blocked in the RNG gate —
        // which only admits the head). Reclaim the whole batch: run the
        // head inline (it is always safe), hand the rest back. The worker
        // acks the stolen batch through the completion ring when it pops
        // it, which is what allows the batch's reuse.
        LYRA_ASSERT(head == hb->tasks.front(),
                    "head of an unstarted batch is not its first member");
        ++sched_stats_.head_steals;
        execute(head);
        hb->epoch->executed.fetch_add(1, std::memory_order_seq_cst);
        OwnerState& os = owner_state(hb->owner);
        const std::size_t n = hb->tasks.size();
        for (std::size_t i = 1; i < n; ++i) {
          Task* t = hb->tasks[i];
          inflight_.erase(Key{t->at, t->id});
          t->batch = nullptr;
          t->owner_seq = 0;
          os.held.push(t);
          held_keys_.insert(Key{t->at, t->id});
        }
        os.next_seq -= static_cast<std::uint64_t>(n - 1);
        LYRA_ASSERT(os.next_seq == hb->epoch->executed.load(),
                    "steal rewind drifted from the owner's epoch");
        hb->handback_done = true;
        settle(hb, static_cast<std::uint32_t>(n - 1));
        continue;  // the commit phase picks the head up
      }
      // The head's batch is running: its worker either is executing the
      // head now or reaches it next (every earlier member is committed).
      // Park until the head completes or a completion record arrives.
      ++sched_stats_.sched_parks;
      ++sched_stats_.lock_acquisitions;
      const auto park_start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lk(park_m_);
      sched_parked_.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      park_cv_.wait(lk, [&] {
        return task_done(head) || !completions_.empty();
      });
      sched_parked_.store(false, std::memory_order_relaxed);
      sched_stats_.sched_idle_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        park_start)
              .count();
    }
  }
  drain_completions();
  publish_head(false, Key{});
  LYRA_ASSERT(held_keys_.empty() && cancelled_popped_.empty(),
              "parallel run finished with events still held");
  return executed;
}

ExecutorStats ParallelExecutor::stats() const {
  ExecutorStats s = sched_stats_;
  for (const auto& c : worker_counters_) {
    s.lock_acquisitions += c->locks.load(std::memory_order_relaxed);
    s.condvar_notifies += c->notifies.load(std::memory_order_relaxed);
    s.worker_parks += c->parks.load(std::memory_order_relaxed);
    s.rng_gate_draws += c->gate_draws.load(std::memory_order_relaxed);
    s.rng_gate_waits += c->gate_waits.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace lyra::sim
