#include "storage/recovery.hpp"

#include <algorithm>
#include <unordered_set>

#include "crypto/hash.hpp"
#include "storage/codec.hpp"

namespace lyra::storage {

RecoveredState recover(const Disk& disk) {
  RecoveredState state;

  // Newest decodable snapshot wins; anything newer that fails its CRC is
  // counted and skipped (the previous snapshot plus a longer WAL suffix
  // reconstructs the same state).
  std::vector<std::pair<std::uint64_t, std::string>> snaps;
  for (const std::string& name : disk.list()) {
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, index)) snaps.emplace_back(index, name);
  }
  std::sort(snaps.rbegin(), snaps.rend());

  Snapshot base;
  for (const auto& [index, name] : snaps) {
    if (decode_snapshot(disk.read(name), base)) {
      state.stats.snapshot_loaded = true;
      break;
    }
    base = Snapshot{};
    ++state.stats.snapshots_discarded;
  }
  state.stats.snapshots_all_corrupt =
      !snaps.empty() && !state.stats.snapshot_loaded;

  state.status_counter = base.status_counter;
  state.next_proposal_index = base.next_proposal_index;
  state.accepted = base.accepted;
  state.ledger = base.ledger;
  state.own_batches = base.own_batches;

  std::unordered_set<crypto::Digest, crypto::DigestHash> accepted_ids;
  std::unordered_set<crypto::Digest, crypto::DigestHash> ledger_ids;
  std::unordered_set<InstanceId> own_insts;
  for (const auto& e : state.accepted) accepted_ids.insert(e.cipher_id);
  for (const auto& rec : state.ledger) ledger_ids.insert(rec.entry.cipher_id);
  for (const auto& rec : state.own_batches) own_insts.insert(rec.inst);

  const std::uint64_t from_segment =
      state.stats.snapshot_loaded ? base.wal_start_segment : 0;
  const WalReplayStats wal = wal_replay(
      disk, from_segment, [&](std::uint8_t type, BytesView payload) {
        switch (static_cast<WalRecordType>(type)) {
          case WalRecordType::kAccepted: {
            core::AcceptedEntry entry;
            if (decode_accepted_record(payload, entry) &&
                accepted_ids.insert(entry.cipher_id).second) {
              state.accepted.push_back(entry);
            }
            break;
          }
          case WalRecordType::kCommitted: {
            LedgerEntryRecord rec;
            if (decode_committed_record(payload, rec.entry, rec.tx_count) &&
                ledger_ids.insert(rec.entry.cipher_id).second) {
              state.ledger.push_back(rec);
              if (accepted_ids.insert(rec.entry.cipher_id).second) {
                state.accepted.push_back(rec.entry);
              }
            }
            break;
          }
          case WalRecordType::kRevealed: {
            crypto::Digest id, payload_digest;
            std::uint32_t tx_count = 0;
            if (!decode_revealed_record(payload, id, payload_digest,
                                        tx_count)) {
              break;
            }
            for (LedgerEntryRecord& rec : state.ledger) {
              if (rec.entry.cipher_id == id) {
                rec.revealed = true;
                // The commit wave that preceded this reveal broadcast our
                // decryption share; record the release.
                rec.share_released = true;
                rec.payload_digest = payload_digest;
                // A hole-commit (payload unknown at commit time) journaled
                // tx_count 0; the reveal record carries the real count.
                if (tx_count != 0) rec.tx_count = tx_count;
                break;
              }
            }
            break;
          }
          case WalRecordType::kOwnBatch: {
            OwnBatchRecord rec;
            if (decode_own_batch_record(payload, rec) &&
                own_insts.insert(rec.inst).second) {
              state.own_batches.push_back(std::move(rec));
            }
            break;
          }
          case WalRecordType::kRestart:
            ++state.restarts;
            break;
          case WalRecordType::kProposal: {
            ByteReader r(payload);
            const std::uint64_t index = r.u64();
            if (r.ok()) {
              state.next_proposal_index =
                  std::max(state.next_proposal_index, index + 1);
            }
            break;
          }
          default:
            break;  // unknown record type: forward-compat skip
        }
      });

  state.stats.replayed_records = wal.records;
  state.stats.replayed_bytes = wal.bytes;
  state.stats.wal_segments = wal.segments;
  state.stats.torn_tail_bytes = wal.torn_tail_bytes;
  state.stats.wal_corrupt = wal.corrupt;
  state.found = state.stats.snapshot_loaded || wal.segments > 0;
  return state;
}

}  // namespace lyra::storage
