#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace lyra::storage {

/// Minimal durable-medium abstraction under the WAL and snapshot store: a
/// flat namespace of named append-only byte files. Two operations matter
/// for crash safety — `append` (sequential WAL writes) and `write_atomic`
/// (rename-into-place snapshot publication). The discrete-event harness
/// uses the in-memory backend below so a "disk" survives the teardown of
/// the node process that owned it; a production deployment would map this
/// onto O_DIRECT files plus fsync without touching any caller.
class Disk {
 public:
  virtual ~Disk() = default;

  virtual bool exists(const std::string& name) const = 0;

  /// Whole-file read; empty when missing (callers check exists()).
  virtual Bytes read(const std::string& name) const = 0;

  /// Appends to the end of `name`, creating it if needed.
  virtual void append(const std::string& name, BytesView data) = 0;

  /// Replaces `name` atomically: after a crash either the old or the new
  /// content is visible, never a mix.
  virtual void write_atomic(const std::string& name, BytesView data) = 0;

  virtual void remove(const std::string& name) = 0;

  /// Drops every byte past `size`; no-op when the file is already shorter
  /// or missing. The WAL writer uses this to repair a torn tail left by a
  /// crashed predecessor before it starts its own segment.
  virtual void truncate(const std::string& name, std::size_t size) = 0;

  /// All file names in lexicographic order.
  virtual std::vector<std::string> list() const = 0;
};

/// In-memory Disk: the simulation's stand-in for a node-local SSD. Owned by
/// the harness (not the node process), so its content survives a simulated
/// crash. The fault-injection helpers let tests model torn tails and bit
/// rot without reaching into WAL internals.
class MemDisk final : public Disk {
 public:
  bool exists(const std::string& name) const override;
  Bytes read(const std::string& name) const override;
  void append(const std::string& name, BytesView data) override;
  void write_atomic(const std::string& name, BytesView data) override;
  void remove(const std::string& name) override;
  void truncate(const std::string& name, std::size_t size) override;
  std::vector<std::string> list() const override;

  // --- fault injection (tests) ---

  /// XORs one byte (bit rot). No-op when out of range.
  void corrupt(const std::string& name, std::size_t offset,
               std::uint8_t xor_mask = 0xFF);

  /// Deletes every file (total media loss). The node that owned this disk
  /// can then only rejoin via peer state transfer.
  void wipe();

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::map<std::string, Bytes> files_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace lyra::storage
