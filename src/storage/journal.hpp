#pragma once

#include <cstdint>

#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace lyra::storage {

/// WAL record types written by the journal (see wal.hpp for framing).
enum class WalRecordType : std::uint8_t {
  kAccepted = 1,   ///< entry joined the accepted set A
  kCommitted = 2,  ///< entry appended to the committed prefix (ledger)
  kRevealed = 3,   ///< committed entry's payload was reconstructed
  kProposal = 4,   ///< own proposal index consumed (never reuse instance ids)
  kRestart = 5,    ///< a recovered incarnation began (status-epoch marker)
  kOwnBatch = 6,   ///< own batch proposed; clients to notify on its commit
};

/// The node-facing durability interface. LyraNode calls these hooks at the
/// exact points where its logical state machine advances; the default
/// implementations do nothing, so this concrete base *is* the no-op
/// backend (benches and existing tests run with a null journal and pay
/// only an untaken branch).
class Journal {
 public:
  virtual ~Journal() = default;

  virtual void accepted(const core::AcceptedEntry& entry) { (void)entry; }
  virtual void committed(const core::AcceptedEntry& entry,
                         std::uint32_t tx_count) {
    (void)entry;
    (void)tx_count;
  }
  /// `payload_digest`/`tx_count` let recovery serve state-sync digest
  /// votes and repair hole-committed entries (committed with tx_count 0
  /// before the payload was known); defaulted so callers that only track
  /// the reveal event keep working.
  virtual void revealed(const crypto::Digest& cipher_id,
                        const crypto::Digest& payload_digest = crypto::Digest{},
                        std::uint32_t tx_count = 0) {
    (void)cipher_id;
    (void)payload_digest;
    (void)tx_count;
  }
  virtual void proposal(std::uint64_t index) { (void)index; }
  /// An own batch was proposed; its client chunks must survive a crash so
  /// a restarted proposer can still commit-notify them.
  virtual void own_batch(const OwnBatchRecord& rec) { (void)rec; }
  /// Called once per recovered incarnation, before the node rejoins.
  virtual void restarted() {}

  /// True when enough has been journaled since the last snapshot that the
  /// node should hand over a fresh one.
  virtual bool snapshot_due() const { return false; }
  virtual void write_snapshot(const Snapshot& snap) { (void)snap; }

  /// Serves committed-prefix entries [first, first+count) out of the
  /// newest durable snapshot image, appending to `out` and stopping early
  /// where the snapshot's ledger section ends (the caller tops up the tail
  /// from its in-memory ledger). Returns the number appended; the no-op
  /// backend serves nothing. Lets the state-sync chunk server stream from
  /// storage instead of re-walking the whole resident ledger per transfer.
  virtual std::size_t read_ledger_entries(
      std::uint64_t first, std::size_t count,
      std::vector<core::AcceptedEntry>& out) const {
    (void)first;
    (void)count;
    (void)out;
    return 0;
  }
};

struct DurableJournalStats {
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t snapshots_written = 0;
};

/// WAL + snapshot backend over a Disk. Every hook appends one framed
/// record synchronously (write-ahead: the record is durable in the same
/// simulated instant the state change happens, the discrete-event
/// equivalent of fsync-before-ack). Snapshots are cut every
/// `snapshot_every_committed` ledger appends; each snapshot seals the
/// current WAL segment and records the suffix start. GC keeps the two
/// newest snapshots (the older one backs recovery's fallback path should
/// the newer fail its CRC) and drops WAL segments below what the oldest
/// retained snapshot needs.
class DurableJournal final : public Journal {
 public:
  struct Options {
    std::uint64_t snapshot_every_committed = 64;
    WalWriter::Options wal;
  };

  /// Continues an existing log on `disk` (post-restart) or starts a fresh
  /// one. `disk` must outlive the journal.
  explicit DurableJournal(Disk* disk);
  DurableJournal(Disk* disk, Options options);

  void accepted(const core::AcceptedEntry& entry) override;
  void committed(const core::AcceptedEntry& entry,
                 std::uint32_t tx_count) override;
  void revealed(const crypto::Digest& cipher_id,
                const crypto::Digest& payload_digest = crypto::Digest{},
                std::uint32_t tx_count = 0) override;
  void proposal(std::uint64_t index) override;
  void own_batch(const OwnBatchRecord& rec) override;
  bool snapshot_due() const override;
  void write_snapshot(const Snapshot& snap) override;

  /// Journals a restart marker so the next recovery can count restarts
  /// since the last snapshot and hand out a status-counter epoch no
  /// earlier incarnation ever published (see LyraNode::restore).
  void restarted() override;

  std::size_t read_ledger_entries(
      std::uint64_t first, std::size_t count,
      std::vector<core::AcceptedEntry>& out) const override;

  const DurableJournalStats& stats() const { return stats_; }

 private:
  void append(WalRecordType type, BytesView payload);

  Disk* disk_;
  Options options_;
  WalWriter wal_;
  std::uint64_t committed_since_snapshot_ = 0;
  std::uint64_t next_snapshot_index_ = 0;
  DurableJournalStats stats_;
  /// CRC validity of the newest snapshot image, checked once per image:
  /// read_ledger_entries does per-chunk offset reads and must not pay a
  /// whole-file CRC pass each time.
  mutable std::string validated_snapshot_;
  mutable bool validated_ok_ = false;
};

// --- WAL record payload codecs (shared with recovery) ---

Bytes encode_accepted_record(const core::AcceptedEntry& entry);
bool decode_accepted_record(BytesView payload, core::AcceptedEntry& out);

Bytes encode_committed_record(const core::AcceptedEntry& entry,
                              std::uint32_t tx_count);
bool decode_committed_record(BytesView payload, core::AcceptedEntry& out,
                             std::uint32_t& tx_count);

Bytes encode_revealed_record(const crypto::Digest& cipher_id,
                             const crypto::Digest& payload_digest,
                             std::uint32_t tx_count);
bool decode_revealed_record(BytesView payload, crypto::Digest& cipher_id,
                            crypto::Digest& payload_digest,
                            std::uint32_t& tx_count);

Bytes encode_own_batch_record(const OwnBatchRecord& rec);
bool decode_own_batch_record(BytesView payload, OwnBatchRecord& out);

}  // namespace lyra::storage
