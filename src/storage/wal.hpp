#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "storage/disk.hpp"
#include "support/bytes.hpp"

namespace lyra::storage {

/// Segmented, checksummed, append-only write-ahead log.
///
/// On-disk layout: numbered segment files `wal-XXXXXXXXXX.log`, each a
/// concatenation of framed records:
///
///     [u32 length] [u8 type] [payload: length bytes] [u32 crc32]
///
/// with the CRC computed over (length, type, payload), all integers
/// little-endian. A writer never re-opens a pre-existing segment: after a
/// restart it truncates any torn tail off the newest segment it finds
/// (`wal_repair_tail` — those bytes were never fully written, so nothing
/// durable is lost) and starts the next segment. That repair is what keeps
/// the invariant "a torn tail only ever sits at the end of the newest
/// segment" true across *repeated* crashes: without it, a second
/// incarnation's segments would leave the first one's torn tail mid-log,
/// where replay must treat it as corruption.
///
/// Replay semantics (tail-truncation tolerance):
///   * a frame that runs past the end of the *last* segment is a torn
///     write — replay stops cleanly and reports the discarded bytes;
///   * a complete frame whose CRC mismatches is corruption — replay stops
///     and flags it, so recovery can escalate instead of silently
///     shortening history;
///   * anything short in a *non-last* segment is also corruption (sealed
///     segments are immutable).
std::string wal_segment_name(std::uint64_t index);

/// Parses a segment index back out of a name; returns false for other files.
bool parse_wal_segment_name(const std::string& name, std::uint64_t& index);

class WalWriter {
 public:
  struct Options {
    /// Roll to a new segment once the current one reaches this size.
    std::size_t segment_bytes = 256 * 1024;
    /// Never start below this segment index. A snapshot's replay point may
    /// reference a segment with no file yet (everything older was GC'd and
    /// nothing was appended since); a writer that re-used an index below
    /// it would hide its records from snapshot+suffix recovery.
    std::uint64_t min_segment = 0;
  };

  /// Repairs the torn tail of the newest existing segment (if any), then
  /// starts writing at (highest existing segment + 1); existing segments
  /// are left sealed for replay.
  explicit WalWriter(Disk* disk);
  WalWriter(Disk* disk, Options options);

  /// Appends one framed record.
  void append(std::uint8_t type, BytesView payload);

  /// Seals the current segment (if any bytes were written) and returns the
  /// index the *next* record will land in. Snapshots call this so the
  /// snapshot can reference "replay from segment S onward".
  std::uint64_t seal();

  /// Removes sealed segments with index < `before` (post-snapshot GC).
  void drop_segments_before(std::uint64_t before);

  std::uint64_t current_segment() const { return segment_; }
  std::uint64_t records_appended() const { return records_; }
  std::uint64_t bytes_appended() const { return bytes_; }
  /// Torn bytes truncated off the predecessor's tail at construction.
  std::uint64_t repaired_bytes() const { return repaired_bytes_; }

 private:
  Disk* disk_;
  Options options_;
  std::uint64_t segment_ = 0;
  std::size_t segment_fill_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t repaired_bytes_ = 0;
};

struct WalReplayStats {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t segments = 0;
  std::uint64_t torn_tail_bytes = 0;  ///< discarded incomplete tail frame
  bool corrupt = false;               ///< CRC mismatch mid-log
};

/// Replays every record in segments >= `from_segment`, in order, into `fn`.
/// Stops at the first torn tail or corruption (see class comment).
WalReplayStats wal_replay(
    const Disk& disk, std::uint64_t from_segment,
    const std::function<void(std::uint8_t type, BytesView payload)>& fn);

/// Truncates the torn (incomplete) trailing frame off the newest segment,
/// returning the bytes removed; 0 when the tail is whole or the defect is a
/// CRC mismatch (left in place so replay escalates it as corruption).
/// WalWriter runs this at construction; exposed for tests and tooling.
std::uint64_t wal_repair_tail(Disk& disk);

}  // namespace lyra::storage
