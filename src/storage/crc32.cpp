#include "storage/crc32.hpp"

#include <array>

namespace lyra::storage {

namespace {

constexpr std::uint32_t kPoly = 0xEDB8'8320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, BytesView data) {
  for (std::uint8_t byte : data) {
    state = kTable[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(BytesView data) {
  return crc32_final(crc32_update(kCrc32Init, data));
}

}  // namespace lyra::storage
