#pragma once

#include <cstdint>
#include <vector>

#include "storage/disk.hpp"
#include "storage/journal.hpp"
#include "storage/snapshot.hpp"

namespace lyra::storage {

struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshots_discarded = 0;  ///< newer snapshots that failed CRC
  std::uint64_t replayed_records = 0;     ///< WAL records applied on top
  std::uint64_t replayed_bytes = 0;
  std::uint64_t wal_segments = 0;
  std::uint64_t torn_tail_bytes = 0;      ///< tolerated torn tail, if any
  bool wal_corrupt = false;               ///< mid-log CRC failure (escalate)
  /// Snapshots exist on disk but none decodes. The WAL prefix they covered
  /// is GC'd, so proceeding from an empty base would silently truncate the
  /// committed prefix — escalate instead of trusting `found`.
  bool snapshots_all_corrupt = false;
};

/// A node's durable state as reconstructed from disk: the newest decodable
/// snapshot with the WAL suffix already folded in. `accepted` is the full
/// accepted set A in (seq, cipher_id) order; `ledger` is the committed
/// prefix in commit order. Both are ready for LyraNode::restore().
///
/// Recovery invariant (see docs/PROTOCOL.md): every state change is
/// WAL-appended in the same simulated instant it happens (write-ahead), so
/// `ledger` here is a superset of any committed prefix the pre-crash node
/// ever exposed — a recovered node can only be behind its peers, never
/// inconsistent with its own past.
struct RecoveredState {
  bool found = false;  ///< anything at all was on the disk
  std::uint64_t status_counter = 0;
  /// Restart markers (kRestart) in the replayed WAL suffix: incarnations
  /// that recovered since the base snapshot. Restarts before the snapshot
  /// are already baked into its status_counter.
  std::uint64_t restarts = 0;
  std::uint64_t next_proposal_index = 0;
  std::vector<core::AcceptedEntry> accepted;
  std::vector<LedgerEntryRecord> ledger;
  /// Own proposed batches journaled but possibly never client-notified;
  /// the node filters out the already-revealed ones on restore.
  std::vector<OwnBatchRecord> own_batches;
  RecoveryStats stats;
};

/// Loads the newest valid snapshot (falling back through invalid ones, then
/// to an empty base) and replays the WAL suffix on top.
RecoveredState recover(const Disk& disk);

}  // namespace lyra::storage
