#pragma once

#include <cstdint>

#include "support/bytes.hpp"

namespace lyra::storage {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
/// framing every WAL record and snapshot body. Detects torn writes and
/// bit rot before a corrupted record can reach the recovery path.
std::uint32_t crc32(BytesView data);

/// Incremental form: feed `crc32_update` the previous value (start from
/// kCrc32Init) and finalize with `crc32_final`.
constexpr std::uint32_t kCrc32Init = 0xFFFF'FFFFu;
std::uint32_t crc32_update(std::uint32_t state, BytesView data);
constexpr std::uint32_t crc32_final(std::uint32_t state) { return ~state; }

}  // namespace lyra::storage
