#include "storage/disk.hpp"

namespace lyra::storage {

bool MemDisk::exists(const std::string& name) const {
  return files_.contains(name);
}

Bytes MemDisk::read(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? Bytes{} : it->second;
}

void MemDisk::append(const std::string& name, BytesView data) {
  Bytes& file = files_[name];
  file.insert(file.end(), data.begin(), data.end());
  bytes_written_ += data.size();
}

void MemDisk::write_atomic(const std::string& name, BytesView data) {
  files_[name] = Bytes(data.begin(), data.end());
  bytes_written_ += data.size();
}

void MemDisk::remove(const std::string& name) { files_.erase(name); }

std::vector<std::string> MemDisk::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, bytes] : files_) names.push_back(name);
  return names;
}

void MemDisk::truncate(const std::string& name, std::size_t size) {
  const auto it = files_.find(name);
  if (it != files_.end() && it->second.size() > size) {
    it->second.resize(size);
  }
}

void MemDisk::corrupt(const std::string& name, std::size_t offset,
                      std::uint8_t xor_mask) {
  const auto it = files_.find(name);
  if (it != files_.end() && offset < it->second.size()) {
    it->second[offset] ^= xor_mask;
  }
}

void MemDisk::wipe() { files_.clear(); }

}  // namespace lyra::storage
