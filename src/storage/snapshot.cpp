#include "storage/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "storage/codec.hpp"
#include "storage/crc32.hpp"

namespace lyra::storage {

namespace {
constexpr std::uint32_t kMagic = 0x4C59'5253u;  // "LYRS"
// v2: ledger entries carry the revealed payload digest; own-batch records
// (pending client notifications) follow the ledger section.
constexpr std::uint32_t kVersion = 2;
}  // namespace

Bytes encode_snapshot(const Snapshot& snap) {
  Bytes out;
  out.reserve(128 + snap.accepted.size() * 44 + snap.ledger.size() * 82);
  append_u32(out, kMagic);
  append_u32(out, kVersion);
  append_u32(out, snap.node);
  append_u64(out, snap.status_counter);
  append_u64(out, snap.next_proposal_index);
  append_i64(out, snap.committed);
  append_i64(out, snap.cursor_seq);
  append_digest(out, snap.cursor_id);
  append_digest(out, snap.chain_hash);
  append_u64(out, snap.wal_start_segment);
  append_u64(out, snap.accepted.size());
  for (const core::AcceptedEntry& e : snap.accepted) {
    append_digest(out, e.cipher_id);
    append_i64(out, e.seq);
    append_instance(out, e.inst);
  }
  append_u64(out, snap.ledger.size());
  for (const LedgerEntryRecord& rec : snap.ledger) {
    append_digest(out, rec.entry.cipher_id);
    append_i64(out, rec.entry.seq);
    append_instance(out, rec.entry.inst);
    append_u32(out, rec.tx_count);
    out.push_back(static_cast<std::uint8_t>((rec.revealed ? 1 : 0) |
                                            (rec.share_released ? 2 : 0)));
    append_digest(out, rec.payload_digest);
  }
  append_u64(out, snap.own_batches.size());
  for (const OwnBatchRecord& rec : snap.own_batches) {
    append_instance(out, rec.inst);
    append_u64(out, rec.chunks.size());
    for (const OwnBatchChunk& chunk : rec.chunks) {
      append_u32(out, chunk.client);
      append_u32(out, chunk.count);
      append_i64(out, chunk.submitted_at);
    }
  }
  append_u32(out, crc32(out));
  return out;
}

bool decode_snapshot(BytesView data, Snapshot& out) {
  if (data.size() < 8) return false;
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(data[data.size() - 4]) |
      (static_cast<std::uint32_t>(data[data.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(data[data.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(data[data.size() - 1]) << 24);
  if (stored_crc != crc32(data.subspan(0, data.size() - 4))) return false;

  ByteReader r(data.subspan(0, data.size() - 4));
  if (r.u32() != kMagic || r.u32() != kVersion) return false;
  Snapshot snap;
  snap.node = r.u32();
  snap.status_counter = r.u64();
  snap.next_proposal_index = r.u64();
  snap.committed = r.i64();
  snap.cursor_seq = r.i64();
  snap.cursor_id = r.digest();
  snap.chain_hash = r.digest();
  snap.wal_start_segment = r.u64();

  const std::uint64_t accepted_count = r.u64();
  if (accepted_count > r.remaining()) return false;  // length sanity
  snap.accepted.reserve(accepted_count);
  for (std::uint64_t i = 0; i < accepted_count && r.ok(); ++i) {
    core::AcceptedEntry e;
    e.cipher_id = r.digest();
    e.seq = r.i64();
    e.inst = r.instance();
    snap.accepted.push_back(e);
  }
  const std::uint64_t ledger_count = r.u64();
  if (ledger_count > r.remaining()) return false;
  snap.ledger.reserve(ledger_count);
  for (std::uint64_t i = 0; i < ledger_count && r.ok(); ++i) {
    LedgerEntryRecord rec;
    rec.entry.cipher_id = r.digest();
    rec.entry.seq = r.i64();
    rec.entry.inst = r.instance();
    rec.tx_count = r.u32();
    const std::uint8_t flags = r.u8();
    rec.revealed = (flags & 1) != 0;
    rec.share_released = (flags & 2) != 0;
    rec.payload_digest = r.digest();
    snap.ledger.push_back(rec);
  }
  const std::uint64_t own_count = r.u64();
  if (own_count > r.remaining()) return false;
  snap.own_batches.reserve(own_count);
  for (std::uint64_t i = 0; i < own_count && r.ok(); ++i) {
    OwnBatchRecord rec;
    rec.inst = r.instance();
    const std::uint64_t chunk_count = r.u64();
    if (chunk_count > r.remaining()) return false;
    rec.chunks.reserve(chunk_count);
    for (std::uint64_t c = 0; c < chunk_count && r.ok(); ++c) {
      OwnBatchChunk chunk;
      chunk.client = r.u32();
      chunk.count = r.u32();
      chunk.submitted_at = r.i64();
      rec.chunks.push_back(chunk);
    }
    snap.own_batches.push_back(std::move(rec));
  }
  if (!r.ok() || r.remaining() != 0) return false;
  out = std::move(snap);
  return true;
}

namespace {
// Fixed strides of the v2 image (see encode_snapshot): 116-byte header,
// u64 accepted count, 52-byte accepted entries, u64 ledger count, 89-byte
// ledger records whose first 52 bytes are the AcceptedEntry wire form.
constexpr std::size_t kHeaderBytes = 116;
constexpr std::size_t kAcceptedStride = 52;
constexpr std::size_t kLedgerStride = 89;

std::uint64_t read_u64_at(BytesView data, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint64_t>(data[off + static_cast<std::size_t>(i)]);
  }
  return v;
}
}  // namespace

std::size_t read_snapshot_ledger_entries(
    BytesView data, std::uint64_t first, std::size_t count,
    std::vector<core::AcceptedEntry>& out) {
  if (data.size() < kHeaderBytes + 8 + 4) return 0;
  ByteReader header(data);
  if (header.u32() != kMagic || header.u32() != kVersion) return 0;
  const std::size_t body = data.size() - 4;  // trailing CRC excluded
  const std::uint64_t accepted_count = read_u64_at(data, kHeaderBytes);
  // Divide-style bounds: a corrupt count cannot wrap the product.
  if (accepted_count > (body - kHeaderBytes - 8) / kAcceptedStride) return 0;
  const std::size_t ledger_count_off =
      kHeaderBytes + 8 + static_cast<std::size_t>(accepted_count) * kAcceptedStride;
  if (ledger_count_off + 8 > body) return 0;
  const std::uint64_t ledger_count = read_u64_at(data, ledger_count_off);
  const std::size_t ledger_off = ledger_count_off + 8;
  if (ledger_count > (body - ledger_off) / kLedgerStride) return 0;
  if (first >= ledger_count) return 0;
  const std::size_t take = static_cast<std::size_t>(
      std::min<std::uint64_t>(count, ledger_count - first));
  for (std::size_t i = 0; i < take; ++i) {
    ByteReader r(data.subspan(
        ledger_off + static_cast<std::size_t>(first + i) * kLedgerStride,
        kAcceptedStride));
    core::AcceptedEntry e;
    e.cipher_id = r.digest();
    e.seq = r.i64();
    e.inst = r.instance();
    out.push_back(e);
  }
  return take;
}

bool snapshot_image_valid(BytesView data) {
  if (data.size() < 12) return false;
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(data[data.size() - 4]) |
      (static_cast<std::uint32_t>(data[data.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(data[data.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(data[data.size() - 1]) << 24);
  if (stored_crc != crc32(data.subspan(0, data.size() - 4))) return false;
  ByteReader r(data);
  return r.u32() == kMagic && r.u32() == kVersion;
}

std::string snapshot_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%010llu.img",
                static_cast<unsigned long long>(index));
  return buf;
}

bool parse_snapshot_name(const std::string& name, std::uint64_t& index) {
  if (name.size() != 19 || name.rfind("snap-", 0) != 0 ||
      name.compare(15, 4, ".img") != 0) {
    return false;
  }
  index = 0;
  for (std::size_t i = 5; i < 15; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    index = index * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

}  // namespace lyra::storage
