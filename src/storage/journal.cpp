#include "storage/journal.hpp"

#include <algorithm>

#include "storage/codec.hpp"
#include "support/assert.hpp"

namespace lyra::storage {

namespace {

/// Floors the writer's first segment at every decodable snapshot's replay
/// point: after GC that segment may have no file, and a writer that scanned
/// only files would re-use indices below it — journaling new records where
/// snapshot+suffix recovery never looks.
WalWriter::Options wal_options_on(Disk* disk, WalWriter::Options wal) {
  for (const std::string& name : disk->list()) {
    std::uint64_t index = 0;
    if (!parse_snapshot_name(name, index)) continue;
    Snapshot snap;
    if (decode_snapshot(disk->read(name), snap)) {
      wal.min_segment = std::max(wal.min_segment, snap.wal_start_segment);
    }
  }
  return wal;
}

}  // namespace

Bytes encode_accepted_record(const core::AcceptedEntry& entry) {
  Bytes out;
  out.reserve(52);
  append_digest(out, entry.cipher_id);
  append_i64(out, entry.seq);
  append_instance(out, entry.inst);
  return out;
}

bool decode_accepted_record(BytesView payload, core::AcceptedEntry& out) {
  ByteReader r(payload);
  out.cipher_id = r.digest();
  out.seq = r.i64();
  out.inst = r.instance();
  return r.ok() && r.remaining() == 0;
}

Bytes encode_committed_record(const core::AcceptedEntry& entry,
                              std::uint32_t tx_count) {
  Bytes out = encode_accepted_record(entry);
  append_u32(out, tx_count);
  return out;
}

bool decode_committed_record(BytesView payload, core::AcceptedEntry& out,
                             std::uint32_t& tx_count) {
  ByteReader r(payload);
  out.cipher_id = r.digest();
  out.seq = r.i64();
  out.inst = r.instance();
  tx_count = r.u32();
  return r.ok() && r.remaining() == 0;
}

Bytes encode_revealed_record(const crypto::Digest& cipher_id,
                             const crypto::Digest& payload_digest,
                             std::uint32_t tx_count) {
  Bytes out;
  out.reserve(68);
  append_digest(out, cipher_id);
  append_digest(out, payload_digest);
  append_u32(out, tx_count);
  return out;
}

bool decode_revealed_record(BytesView payload, crypto::Digest& cipher_id,
                            crypto::Digest& payload_digest,
                            std::uint32_t& tx_count) {
  ByteReader r(payload);
  cipher_id = r.digest();
  payload_digest = r.digest();
  tx_count = r.u32();
  return r.ok() && r.remaining() == 0;
}

Bytes encode_own_batch_record(const OwnBatchRecord& rec) {
  Bytes out;
  out.reserve(20 + rec.chunks.size() * 16);
  append_instance(out, rec.inst);
  append_u64(out, rec.chunks.size());
  for (const OwnBatchChunk& chunk : rec.chunks) {
    append_u32(out, chunk.client);
    append_u32(out, chunk.count);
    append_i64(out, chunk.submitted_at);
  }
  return out;
}

bool decode_own_batch_record(BytesView payload, OwnBatchRecord& out) {
  ByteReader r(payload);
  OwnBatchRecord rec;
  rec.inst = r.instance();
  const std::uint64_t count = r.u64();
  // Divide, don't multiply: a corrupt count near 2^64 would wrap count*16
  // past the length check and then abort inside reserve().
  if (!r.ok() || r.remaining() % 16 != 0 || count != r.remaining() / 16) {
    return false;
  }
  rec.chunks.reserve(count);
  for (std::uint64_t c = 0; c < count && r.ok(); ++c) {
    OwnBatchChunk chunk;
    chunk.client = r.u32();
    chunk.count = r.u32();
    chunk.submitted_at = r.i64();
    rec.chunks.push_back(chunk);
  }
  if (!r.ok() || r.remaining() != 0) return false;
  out = std::move(rec);
  return true;
}

DurableJournal::DurableJournal(Disk* disk)
    : DurableJournal(disk, Options{}) {}

DurableJournal::DurableJournal(Disk* disk, Options options)
    : disk_(disk),
      options_(options),
      wal_(disk, wal_options_on(disk, options.wal)) {
  LYRA_ASSERT(options_.snapshot_every_committed > 0,
              "snapshot cadence must be positive");
  // Continue the snapshot numbering past anything already on disk.
  for (const std::string& name : disk_->list()) {
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, index)) {
      next_snapshot_index_ = std::max(next_snapshot_index_, index + 1);
    }
  }
}

void DurableJournal::append(WalRecordType type, BytesView payload) {
  wal_.append(static_cast<std::uint8_t>(type), payload);
  ++stats_.wal_records;
  stats_.wal_bytes = wal_.bytes_appended();
}

void DurableJournal::accepted(const core::AcceptedEntry& entry) {
  append(WalRecordType::kAccepted, encode_accepted_record(entry));
}

void DurableJournal::committed(const core::AcceptedEntry& entry,
                               std::uint32_t tx_count) {
  append(WalRecordType::kCommitted, encode_committed_record(entry, tx_count));
  ++committed_since_snapshot_;
}

void DurableJournal::revealed(const crypto::Digest& cipher_id,
                              const crypto::Digest& payload_digest,
                              std::uint32_t tx_count) {
  append(WalRecordType::kRevealed,
         encode_revealed_record(cipher_id, payload_digest, tx_count));
}

void DurableJournal::proposal(std::uint64_t index) {
  Bytes payload;
  payload.reserve(8);
  append_u64(payload, index);
  append(WalRecordType::kProposal, payload);
}

void DurableJournal::own_batch(const OwnBatchRecord& rec) {
  append(WalRecordType::kOwnBatch, encode_own_batch_record(rec));
}

void DurableJournal::restarted() { append(WalRecordType::kRestart, {}); }

std::size_t DurableJournal::read_ledger_entries(
    std::uint64_t first, std::size_t count,
    std::vector<core::AcceptedEntry>& out) const {
  // Newest snapshot on disk, if any.
  std::uint64_t newest = 0;
  bool found = false;
  for (const std::string& name : disk_->list()) {
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, index) && (!found || index > newest)) {
      newest = index;
      found = true;
    }
  }
  if (!found) return 0;
  const std::string name = snapshot_name(newest);
  const Bytes image = disk_->read(name);
  if (name != validated_snapshot_) {
    // One CRC pass per image; every later read is offset arithmetic. A
    // rotted image serves nothing (a server would otherwise hand out
    // garbage under its own honest manifest and get demoted as Byzantine).
    validated_snapshot_ = name;
    validated_ok_ = snapshot_image_valid(image);
  }
  if (!validated_ok_) return 0;
  return read_snapshot_ledger_entries(image, first, count, out);
}

bool DurableJournal::snapshot_due() const {
  return committed_since_snapshot_ >= options_.snapshot_every_committed;
}

void DurableJournal::write_snapshot(const Snapshot& snap) {
  Snapshot stamped = snap;
  // Everything up to here is inside the snapshot; replay resumes at the
  // next (fresh) segment.
  stamped.wal_start_segment = wal_.seal();
  disk_->write_atomic(snapshot_name(next_snapshot_index_),
                      encode_snapshot(stamped));
  // GC: keep the snapshot just written plus the newest prior one, so
  // recovery's fallback — previous snapshot + a longer WAL suffix — exists
  // on disk if the new snapshot's CRC ever fails. Everything older is
  // superseded; WAL segments are dropped only below what the oldest
  // retained snapshot still needs.
  std::uint64_t prev_index = 0;
  bool have_prev = false;
  for (const std::string& name : disk_->list()) {
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, index) && index < next_snapshot_index_ &&
        (!have_prev || index > prev_index)) {
      prev_index = index;
      have_prev = true;
    }
  }
  for (const std::string& name : disk_->list()) {
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, index) && index < next_snapshot_index_ &&
        (!have_prev || index != prev_index)) {
      disk_->remove(name);
    }
  }
  std::uint64_t keep_wal_from = stamped.wal_start_segment;
  if (have_prev) {
    Snapshot prev;
    if (decode_snapshot(disk_->read(snapshot_name(prev_index)), prev)) {
      keep_wal_from = std::min(keep_wal_from, prev.wal_start_segment);
    } else {
      // An undecodable fallback protects nothing; drop it rather than pin
      // WAL segments for a snapshot recovery could never load.
      disk_->remove(snapshot_name(prev_index));
    }
  }
  wal_.drop_segments_before(keep_wal_from);
  ++next_snapshot_index_;
  ++stats_.snapshots_written;
  committed_since_snapshot_ = 0;
}

}  // namespace lyra::storage
