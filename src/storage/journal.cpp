#include "storage/journal.hpp"

#include <algorithm>

#include "storage/codec.hpp"
#include "support/assert.hpp"

namespace lyra::storage {

Bytes encode_accepted_record(const core::AcceptedEntry& entry) {
  Bytes out;
  out.reserve(52);
  append_digest(out, entry.cipher_id);
  append_i64(out, entry.seq);
  append_instance(out, entry.inst);
  return out;
}

bool decode_accepted_record(BytesView payload, core::AcceptedEntry& out) {
  ByteReader r(payload);
  out.cipher_id = r.digest();
  out.seq = r.i64();
  out.inst = r.instance();
  return r.ok() && r.remaining() == 0;
}

Bytes encode_committed_record(const core::AcceptedEntry& entry,
                              std::uint32_t tx_count) {
  Bytes out = encode_accepted_record(entry);
  append_u32(out, tx_count);
  return out;
}

bool decode_committed_record(BytesView payload, core::AcceptedEntry& out,
                             std::uint32_t& tx_count) {
  ByteReader r(payload);
  out.cipher_id = r.digest();
  out.seq = r.i64();
  out.inst = r.instance();
  tx_count = r.u32();
  return r.ok() && r.remaining() == 0;
}

DurableJournal::DurableJournal(Disk* disk)
    : DurableJournal(disk, Options{}) {}

DurableJournal::DurableJournal(Disk* disk, Options options)
    : disk_(disk), options_(options), wal_(disk, options.wal) {
  LYRA_ASSERT(options_.snapshot_every_committed > 0,
              "snapshot cadence must be positive");
  // Continue the snapshot numbering past anything already on disk.
  for (const std::string& name : disk_->list()) {
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, index)) {
      next_snapshot_index_ = std::max(next_snapshot_index_, index + 1);
    }
  }
}

void DurableJournal::append(WalRecordType type, BytesView payload) {
  wal_.append(static_cast<std::uint8_t>(type), payload);
  ++stats_.wal_records;
  stats_.wal_bytes = wal_.bytes_appended();
}

void DurableJournal::accepted(const core::AcceptedEntry& entry) {
  append(WalRecordType::kAccepted, encode_accepted_record(entry));
}

void DurableJournal::committed(const core::AcceptedEntry& entry,
                               std::uint32_t tx_count) {
  append(WalRecordType::kCommitted, encode_committed_record(entry, tx_count));
  ++committed_since_snapshot_;
}

void DurableJournal::revealed(const crypto::Digest& cipher_id) {
  Bytes payload;
  payload.reserve(cipher_id.size());
  append_digest(payload, cipher_id);
  append(WalRecordType::kRevealed, payload);
}

void DurableJournal::proposal(std::uint64_t index) {
  Bytes payload;
  payload.reserve(8);
  append_u64(payload, index);
  append(WalRecordType::kProposal, payload);
}

bool DurableJournal::snapshot_due() const {
  return committed_since_snapshot_ >= options_.snapshot_every_committed;
}

void DurableJournal::write_snapshot(const Snapshot& snap) {
  Snapshot stamped = snap;
  // Everything up to here is inside the snapshot; replay resumes at the
  // next (fresh) segment.
  stamped.wal_start_segment = wal_.seal();
  disk_->write_atomic(snapshot_name(next_snapshot_index_),
                      encode_snapshot(stamped));
  // GC: older snapshots and the WAL prefix they covered are superseded.
  for (const std::string& name : disk_->list()) {
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, index) && index < next_snapshot_index_) {
      disk_->remove(name);
    }
  }
  wal_.drop_segments_before(stamped.wal_start_segment);
  ++next_snapshot_index_;
  ++stats_.snapshots_written;
  committed_since_snapshot_ = 0;
}

}  // namespace lyra::storage
