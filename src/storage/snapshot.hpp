#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hash.hpp"
#include "lyra/messages.hpp"
#include "support/types.hpp"

namespace lyra::storage {

/// One entry of the committed prefix as persisted: identity and order
/// (the AcceptedEntry) plus the reveal-side durable facts.
struct LedgerEntryRecord {
  core::AcceptedEntry entry;
  std::uint32_t tx_count = 0;
  bool revealed = false;
  /// This node already broadcast its VSS decryption share for the entry.
  /// Persisted so a recovered node knows the share is out (it must treat
  /// the payload as public) without being able to forge an early release.
  bool share_released = false;
  /// Digest of the revealed payload (zero until revealed). Persisted so a
  /// recovered node can serve state-sync digest votes for entries whose
  /// payload bytes it no longer retains.
  crypto::Digest payload_digest{};

  friend bool operator==(const LedgerEntryRecord&,
                         const LedgerEntryRecord&) = default;
};

/// One client chunk carved into an own batch — the storage-side mirror of
/// BatchAssembler::Chunk, duplicated here so lyra_storage keeps depending
/// only on header-only core types.
struct OwnBatchChunk {
  NodeId client = kNoNode;
  std::uint32_t count = 0;
  TimeNs submitted_at = 0;

  friend bool operator==(const OwnBatchChunk&, const OwnBatchChunk&) = default;
};

/// A batch this node proposed whose clients it has not commit-notified
/// yet. Persisted so a restarted proposer can replay the notifications —
/// without them the strictly closed-loop client pools stall forever.
struct OwnBatchRecord {
  InstanceId inst;
  std::vector<OwnBatchChunk> chunks;

  friend bool operator==(const OwnBatchRecord&, const OwnBatchRecord&) = default;
};

/// Point-in-time image of a node's durable state: the accepted set A, the
/// committed prefix with watermark and extraction cursor, and the restart
/// counters. Peer status tables (R/S) are deliberately absent — they are
/// soft state that refills from the first heartbeat piggybacks, and the
/// quorum watermark rules keep them monotone (see docs/PROTOCOL.md,
/// "Durability & recovery").
struct Snapshot {
  NodeId node = kNoNode;
  std::uint64_t status_counter = 0;
  std::uint64_t next_proposal_index = 0;
  SeqNum committed = kNoSeq;
  SeqNum cursor_seq = kNoSeq;        // CommitState extraction cursor
  crypto::Digest cursor_id{};
  crypto::Digest chain_hash{};       // running hash of the committed prefix
  std::uint64_t wal_start_segment = 0;  // replay WAL from this segment on
  std::vector<core::AcceptedEntry> accepted;
  std::vector<LedgerEntryRecord> ledger;
  /// Own proposed batches still awaiting client notification.
  std::vector<OwnBatchRecord> own_batches;
};

/// Snapshot file body: magic, version, fields, trailing CRC32 over
/// everything before it. `decode_snapshot` returns false on any framing,
/// version, or checksum violation (recovery then falls back to an older
/// snapshot or to full-WAL replay).
Bytes encode_snapshot(const Snapshot& snap);
bool decode_snapshot(BytesView data, Snapshot& out);

/// Snapshot files are numbered like WAL segments; recovery loads the
/// newest one that decodes.
std::string snapshot_name(std::uint64_t index);
bool parse_snapshot_name(const std::string& name, std::uint64_t& index);

/// Random access into an encoded snapshot image without decoding (or
/// allocating) the whole thing: appends the identity-and-order part of
/// ledger records [first, first+count) to `out`, stopping early where the
/// image's ledger section ends. Both the accepted and ledger sections are
/// fixed-stride, so the read is pure offset arithmetic. Returns the number
/// of entries appended; 0 on any framing violation. Callers wanting
/// integrity must have CRC-checked the image once (decode_snapshot or
/// `snapshot_image_valid`) — this routine deliberately skips the
/// whole-file CRC so a chunk-sized read stays chunk-sized.
std::size_t read_snapshot_ledger_entries(BytesView data, std::uint64_t first,
                                         std::size_t count,
                                         std::vector<core::AcceptedEntry>& out);

/// One whole-image CRC + framing check, for callers that will then do many
/// `read_snapshot_ledger_entries` calls against the same image.
bool snapshot_image_valid(BytesView data);

}  // namespace lyra::storage
