#pragma once

#include <cstdint>

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"
#include "support/types.hpp"

namespace lyra::storage {

/// Little-endian append helpers shared by the WAL record and snapshot
/// encoders (the integer primitives live in support/bytes.hpp).
inline void append_digest(Bytes& out, const crypto::Digest& d) {
  out.insert(out.end(), d.begin(), d.end());
}

inline void append_instance(Bytes& out, const InstanceId& inst) {
  append_u32(out, inst.proposer);
  append_u64(out, inst.index);
}

/// Bounds-checked cursor over an encoded buffer. Every accessor sets the
/// sticky `ok()` flag to false on underrun instead of throwing, so decoders
/// can parse optimistically and validate once at the end — a truncated or
/// corrupted input can never read out of bounds.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - at_; }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[at_++];
  }

  std::uint32_t u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[at_++]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[at_++]) << (8 * i);
    }
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  crypto::Digest digest() {
    crypto::Digest d{};
    if (!ensure(d.size())) return d;
    for (auto& byte : d) byte = data_[at_++];
    return d;
  }

  InstanceId instance() {
    InstanceId inst;
    inst.proposer = u32();
    inst.index = u64();
    return inst;
  }

 private:
  bool ensure(std::size_t n) {
    if (!ok_ || data_.size() - at_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

}  // namespace lyra::storage
