#include "storage/wal.hpp"

#include <algorithm>
#include <cstdio>

#include "storage/crc32.hpp"
#include "support/assert.hpp"

namespace lyra::storage {

namespace {

constexpr std::size_t kHeaderBytes = 5;   // u32 length + u8 type
constexpr std::size_t kTrailerBytes = 4;  // u32 crc
/// Upper bound on one record's payload; a declared length above this in a
/// tail frame is treated as a torn length field, not an attempt to read
/// gigabytes.
constexpr std::size_t kMaxPayload = 64 * 1024 * 1024;

std::uint32_t read_u32(const Bytes& file, std::size_t at) {
  return static_cast<std::uint32_t>(file[at]) |
         (static_cast<std::uint32_t>(file[at + 1]) << 8) |
         (static_cast<std::uint32_t>(file[at + 2]) << 16) |
         (static_cast<std::uint32_t>(file[at + 3]) << 24);
}

/// Ordered list of (index, name) for every WAL segment on the disk.
std::vector<std::pair<std::uint64_t, std::string>> segments_on(
    const Disk& disk) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (const std::string& name : disk.list()) {
    std::uint64_t index = 0;
    if (parse_wal_segment_name(name, index)) out.emplace_back(index, name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// How the bytes of one segment file end after its intact frames.
enum class TailState {
  kWhole,    ///< every byte belongs to a CRC-valid frame
  kTorn,     ///< an incomplete frame (crash mid-append)
  kCorrupt,  ///< a complete frame whose CRC mismatches (bit rot)
};

/// Walks the intact frames of one segment into `fn` (when non-null) and
/// reports where they end plus how the remainder classifies. This is the
/// single frame-parsing loop shared by replay and tail repair, so the two
/// can never disagree on what counts as torn versus corrupt.
TailState scan_segment(const Bytes& file,
                       const std::function<void(std::uint8_t, BytesView)>* fn,
                       std::size_t& intact_end) {
  std::size_t at = 0;
  while (at < file.size()) {
    const std::size_t remaining = file.size() - at;
    bool torn = remaining < kHeaderBytes + kTrailerBytes;
    std::size_t length = 0;
    if (!torn) {
      length = read_u32(file, at);
      torn = length > kMaxPayload ||
             remaining < kHeaderBytes + length + kTrailerBytes;
    }
    if (torn) {
      intact_end = at;
      return TailState::kTorn;
    }
    const std::uint32_t stored_crc = read_u32(file, at + kHeaderBytes + length);
    const std::uint32_t actual_crc =
        crc32({file.data() + at, kHeaderBytes + length});
    if (stored_crc != actual_crc) {
      intact_end = at;
      return TailState::kCorrupt;
    }
    if (fn != nullptr) (*fn)(file[at + 4], {file.data() + at + kHeaderBytes, length});
    at += kHeaderBytes + length + kTrailerBytes;
  }
  intact_end = at;
  return TailState::kWhole;
}

}  // namespace

std::string wal_segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.log",
                static_cast<unsigned long long>(index));
  return buf;
}

bool parse_wal_segment_name(const std::string& name, std::uint64_t& index) {
  if (name.size() != 18 || name.rfind("wal-", 0) != 0 ||
      name.compare(14, 4, ".log") != 0) {
    return false;
  }
  index = 0;
  for (std::size_t i = 4; i < 14; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    index = index * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

WalWriter::WalWriter(Disk* disk) : WalWriter(disk, Options{}) {}

WalWriter::WalWriter(Disk* disk, Options options)
    : disk_(disk), options_(options) {
  LYRA_ASSERT(disk_ != nullptr, "WAL writer needs a disk");
  LYRA_ASSERT(options_.segment_bytes > 0, "zero segment size");
  // Never append to a pre-existing segment: sealed segments are immutable
  // by contract. Repair the predecessor's torn tail first — once this
  // writer creates a newer segment, those torn bytes would sit mid-log and
  // read as corruption on the next replay.
  repaired_bytes_ = wal_repair_tail(*disk_);
  const auto existing = segments_on(*disk_);
  segment_ = existing.empty() ? 0 : existing.back().first + 1;
  segment_ = std::max(segment_, options_.min_segment);
}

void WalWriter::append(std::uint8_t type, BytesView payload) {
  LYRA_ASSERT(payload.size() <= kMaxPayload, "oversized WAL record");
  Bytes frame;
  frame.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.push_back(type);
  lyra::append(frame, payload);
  const std::uint32_t crc =
      crc32({frame.data(), kHeaderBytes + payload.size()});
  append_u32(frame, crc);

  disk_->append(wal_segment_name(segment_), frame);
  segment_fill_ += frame.size();
  ++records_;
  bytes_ += frame.size();
  if (segment_fill_ >= options_.segment_bytes) seal();
}

std::uint64_t WalWriter::seal() {
  if (segment_fill_ > 0) {
    ++segment_;
    segment_fill_ = 0;
  }
  return segment_;
}

void WalWriter::drop_segments_before(std::uint64_t before) {
  for (const auto& [index, name] : segments_on(*disk_)) {
    if (index < before && index < segment_) disk_->remove(name);
  }
}

std::uint64_t wal_repair_tail(Disk& disk) {
  const auto segments = segments_on(disk);
  if (segments.empty()) return 0;
  const std::string& name = segments.back().second;
  const Bytes file = disk.read(name);
  std::size_t intact_end = 0;
  // Only a torn (incomplete) frame is repairable: it was never fully
  // written, so nothing durable is lost. A CRC mismatch is left in place
  // for replay to escalate — truncating it would silently erase an
  // acknowledged record.
  if (scan_segment(file, nullptr, intact_end) != TailState::kTorn) return 0;
  disk.truncate(name, intact_end);
  return file.size() - intact_end;
}

WalReplayStats wal_replay(
    const Disk& disk, std::uint64_t from_segment,
    const std::function<void(std::uint8_t type, BytesView payload)>& fn) {
  WalReplayStats stats;
  const auto segments = segments_on(disk);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto& [index, name] = segments[s];
    if (index < from_segment) continue;
    const bool last_segment = s + 1 == segments.size();
    const Bytes file = disk.read(name);
    ++stats.segments;

    std::size_t intact_end = 0;
    const std::function<void(std::uint8_t, BytesView)> counted =
        [&](std::uint8_t type, BytesView payload) {
          fn(type, payload);
          ++stats.records;
        };
    const TailState tail = scan_segment(file, &counted, intact_end);
    stats.bytes += intact_end;
    if (tail == TailState::kTorn) {
      if (last_segment) {
        // Tolerated: crash mid-append. Writers repair this on their next
        // incarnation; until then it can only sit in the newest segment.
        stats.torn_tail_bytes = file.size() - intact_end;
      } else {
        stats.corrupt = true;  // sealed segments must be whole
      }
      return stats;
    }
    if (tail == TailState::kCorrupt) {
      stats.corrupt = true;
      return stats;
    }
  }
  return stats;
}

}  // namespace lyra::storage
