#pragma once

#include "sim/simulation.hpp"
#include "support/types.hpp"

namespace lyra::ordering {

/// A process's local ordering clock (paper §II-D): strictly monotone
/// sequence numbers implemented with the node's real-time clock. The paper
/// assumes *no* synchronization between clocks, so each node carries a
/// constant offset from simulated real time; the distance table absorbs
/// offsets together with propagation delay (d_ij includes "the offset
/// between any two clocks", §IV-B1).
class OrderingClock {
 public:
  OrderingClock(const sim::Simulation* sim, TimeNs offset)
      : sim_(sim), offset_(offset) {}

  /// Current sequence number: this node's perception of time.
  SeqNum now() const { return sim_->now() + offset_; }

  TimeNs offset() const { return offset_; }

 private:
  const sim::Simulation* sim_;
  TimeNs offset_;
};

}  // namespace lyra::ordering
