#pragma once

#include <cstddef>
#include <vector>

#include "support/types.hpp"

namespace lyra::ordering {

/// The array D_i = {d_ij} of paper §IV-B1: node i's estimate of the
/// sequence-number distance to every other node, i.e. how much later (in
/// receiver-clock units) node j perceives a transaction that i broadcasts.
/// d_ij = seq_j(t) - s_ref folds together the one-way network delay and the
/// clock offset between i and j.
///
/// Estimates are learned from piggybacked perceived sequence numbers
/// (probes during warm-up, VOTE messages afterwards) and smoothed with an
/// exponential moving average to ride out jitter.
class DistanceTable {
 public:
  DistanceTable(std::size_t n, double alpha);

  /// Records one observation of d_ij.
  void observe(NodeId j, SeqNum distance);

  /// Current smoothed estimate; kNoSeq while j was never observed.
  SeqNum distance(NodeId j) const;

  bool has(NodeId j) const { return observed_[j]; }

  /// Number of peers with at least one observation.
  std::size_t observed_count() const { return observed_count_; }

  /// Ready once at least `quorum` peers have been observed (n - f suffices:
  /// Byzantine peers may never answer probes).
  bool ready(std::size_t quorum) const { return observed_count_ >= quorum; }

  /// The prediction set S_t = {s_ref + d_ij} (paper §IV-B1). Peers without
  /// an estimate ("blank values" from silent Byzantine processes) are
  /// filled with the largest known distance, the conservative choice: it
  /// can only push the requested sequence number down, never inflate it.
  std::vector<SeqNum> predict(SeqNum s_ref) const;

  /// The requested sequence number: the (n-f)-th smallest value of S_t
  /// (1-indexed, paper §IV-B1), leaving at most f predictions above it.
  static SeqNum requested_seq(const std::vector<SeqNum>& predictions,
                              std::size_t f);

 private:
  double alpha_;
  std::vector<double> estimate_;
  std::vector<bool> observed_;
  std::size_t observed_count_ = 0;
};

}  // namespace lyra::ordering
