#include "ordering/distance_table.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace lyra::ordering {

DistanceTable::DistanceTable(std::size_t n, double alpha)
    : alpha_(alpha), estimate_(n, 0.0), observed_(n, false) {
  LYRA_ASSERT(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
}

void DistanceTable::observe(NodeId j, SeqNum distance) {
  LYRA_ASSERT(j < estimate_.size(), "peer id out of range");
  if (!observed_[j]) {
    observed_[j] = true;
    ++observed_count_;
    estimate_[j] = static_cast<double>(distance);
    return;
  }
  estimate_[j] = (1.0 - alpha_) * estimate_[j] +
                 alpha_ * static_cast<double>(distance);
}

SeqNum DistanceTable::distance(NodeId j) const {
  LYRA_ASSERT(j < estimate_.size(), "peer id out of range");
  if (!observed_[j]) return kNoSeq;
  return static_cast<SeqNum>(estimate_[j]);
}

std::vector<SeqNum> DistanceTable::predict(SeqNum s_ref) const {
  SeqNum max_known = 0;
  for (std::size_t j = 0; j < estimate_.size(); ++j) {
    if (observed_[j]) {
      max_known = std::max(max_known, static_cast<SeqNum>(estimate_[j]));
    }
  }
  std::vector<SeqNum> predictions(estimate_.size());
  for (std::size_t j = 0; j < estimate_.size(); ++j) {
    predictions[j] =
        s_ref + (observed_[j] ? static_cast<SeqNum>(estimate_[j]) : max_known);
  }
  return predictions;
}

SeqNum DistanceTable::requested_seq(const std::vector<SeqNum>& predictions,
                                    std::size_t f) {
  LYRA_ASSERT(!predictions.empty() && predictions.size() > f,
              "need n > f predictions");
  std::vector<SeqNum> sorted = predictions;
  std::sort(sorted.begin(), sorted.end());
  // (n-f)-th smallest, 1-indexed: at most f predictions are larger, so the
  // requested value is covered by at least f+1 correct perceptions
  // (Lemma 2).
  return sorted[sorted.size() - f - 1];
}

}  // namespace lyra::ordering
