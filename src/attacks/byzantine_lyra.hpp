#pragma once

#include <deque>

#include "lyra/lyra_node.hpp"

namespace lyra::attacks {

/// Crash-faulty process: attaches to the network but never reacts. The
/// strongest "omission" adversary for liveness tests (f silent nodes).
class SilentLyraNode final : public core::LyraNode {
 public:
  using core::LyraNode::LyraNode;

  void on_start() override {}

 protected:
  void on_message(const sim::Envelope&) override {}
};

/// Requests earlier sequence numbers than its real perception by shifting
/// its prediction set into the past (a reordering attempt, §VI-D: it can
/// only drift by lambda before correct processes reject the request).
class SkewedPredictionLyraNode final : public core::LyraNode {
 public:
  SkewedPredictionLyraNode(sim::Simulation* sim, net::Network* network,
                           NodeId id, const core::Config& config,
                           const crypto::KeyRegistry* registry, SeqNum skew)
      : core::LyraNode(sim, network, id, config, registry), skew_(skew) {}

 protected:
  std::vector<SeqNum> build_predictions(SeqNum s_ref) const override {
    std::vector<SeqNum> preds = core::LyraNode::build_predictions(s_ref);
    for (SeqNum& p : preds) p -= skew_;
    return preds;
  }

 private:
  SeqNum skew_;
};

/// Reports absurdly low locked prefixes and pending sequence numbers,
/// trying to stall the global stable watermark (countered by the
/// 2f+1-highest rule, Alg. 4 lines 83-85).
class LowballStatusLyraNode final : public core::LyraNode {
 public:
  using core::LyraNode::LyraNode;

 protected:
  void fill_status(core::StatusPiggyback& status, bool broadcast) override {
    core::LyraNode::fill_status(status, broadcast);
    status.locked = kNoSeq / 2;
    status.min_pending = kNoSeq / 2;
  }
};

/// Floods the cluster with requests sequenced far in the future (memory
/// exhaustion attempt, §VI-D: rejected by the future bound).
class FutureFloodLyraNode final : public core::LyraNode {
 public:
  FutureFloodLyraNode(sim::Simulation* sim, net::Network* network, NodeId id,
                      const core::Config& config,
                      const crypto::KeyRegistry* registry, SeqNum offset)
      : core::LyraNode(sim, network, id, config, registry), offset_(offset) {}

 protected:
  std::vector<SeqNum> build_predictions(SeqNum s_ref) const override {
    std::vector<SeqNum> preds = core::LyraNode::build_predictions(s_ref);
    for (SeqNum& p : preds) p += offset_;
    return preds;
  }

 private:
  SeqNum offset_;
};

/// Broadcaster that sends its INIT only to the `recipients` lowest-id
/// processes, withholding it from the rest. Exercises VVB-Obligation (the
/// expiration timeout + INIT forwarding) and the ReqInit pull path: the
/// instance must still terminate at every correct process, and if it is
/// accepted, even processes that never saw the INIT must commit it.
class SelectiveInitLyraNode final : public core::LyraNode {
 public:
  SelectiveInitLyraNode(sim::Simulation* sim, net::Network* network,
                        NodeId id, const core::Config& config,
                        const crypto::KeyRegistry* registry,
                        std::size_t recipients)
      : core::LyraNode(sim, network, id, config, registry),
        recipients_(recipients) {}

  /// Proposes `payload` to the chosen subset only.
  void propose_selectively(BytesView payload);

 private:
  std::size_t recipients_;
};

/// Re-presentation attacker: records every INIT it receives and, once
/// correct processes have GC'd the decided instance (instance_gc_idle
/// later), re-broadcasts the stored message wrapped in InitRelayMsg, over
/// and over. Each replay carries an identical (proposer, value_id, sig)
/// triple, so receivers re-enter the signature-verification path for work
/// they have already done — the traffic Config::memoize_verification is
/// built to absorb: with the memo cache on, repeats are cache hits and
/// charge no crypto CPU; with it off, every replay costs a full verify.
/// Ordering safety is unaffected either way (the stale predictions fail
/// validation, so the re-joined instance just decides 0 again).
class ReplayInitLyraNode final : public core::LyraNode {
 public:
  ReplayInitLyraNode(sim::Simulation* sim, net::Network* network, NodeId id,
                     const core::Config& config,
                     const crypto::KeyRegistry* registry,
                     TimeNs replay_every = ms(20),
                     std::size_t replay_burst = 8);

  void on_start() override;

  std::uint64_t replays_sent() const { return replays_; }

 protected:
  void on_message(const sim::Envelope& env) override;

 private:
  void replay_tick();

  struct SeenInit {
    TimeNs seen_at = 0;
    std::shared_ptr<const core::InitMsg> init;
  };

  TimeNs replay_every_;
  std::size_t replay_burst_;
  std::deque<SeenInit> seen_;
  std::size_t cursor_ = 0;  // rotates over the replayable prefix
  std::uint64_t replays_ = 0;
};

/// Equivocating broadcaster: sends one INIT to even-numbered processes and
/// a different one (same instance id) to odd-numbered ones. VVB-Unicity
/// must prevent both from being delivered with 1.
class EquivocatingLyraNode final : public core::LyraNode {
 public:
  using core::LyraNode::LyraNode;

  /// Launches one equivocating instance carrying the two payloads.
  void equivocate(BytesView payload_even, BytesView payload_odd);

  std::uint64_t equivocations_sent() const { return equivocations_; }

 private:
  std::shared_ptr<core::InitMsg> make_init(const InstanceId& inst,
                                           BytesView payload);

  std::uint64_t equivocations_ = 0;
};

}  // namespace lyra::attacks
