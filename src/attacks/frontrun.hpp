#pragma once

#include <string>
#include <vector>

#include "lyra/lyra_node.hpp"
#include "pompe/pompe_node.hpp"
#include "sim/process.hpp"

namespace lyra::attacks {

/// Marker prefix carried by victim transactions. The attacker greps clear
/// payloads for it; commit-reveal hides it until it is too late.
inline constexpr std::string_view kVictimMarker = "VICTIM:";
inline constexpr std::string_view kAttackMarker = "ATTACK:";

/// Extracts the victim index from a payload containing "VICTIM:<k>";
/// returns -1 if absent. The attacker uses this to craft the dependent
/// transaction of a front-run (paper Fig. 1: t2's content causally depends
/// on t1).
int find_victim_index(BytesView payload);

/// Alice: a client that periodically submits marked transactions to her
/// local node and records submission times. Works against both protocol
/// stacks (they share the client message types).
class AliceClient final : public sim::Process {
 public:
  AliceClient(sim::Simulation* sim, sim::Transport* transport, NodeId id,
              NodeId target, TimeNs start_at, TimeNs period,
              std::size_t count);

  void on_start() override;

  std::size_t submitted() const { return next_index_; }
  const std::vector<TimeNs>& submit_times() const { return submit_times_; }

 protected:
  void on_message(const sim::Envelope&) override {}

 private:
  void submit_next();

  NodeId target_;
  TimeNs start_at_;
  TimeNs period_;
  std::size_t count_;
  std::size_t next_index_ = 0;
  std::vector<TimeNs> submit_times_;
};

/// Mallory on Pompē: a consensus process (Singapore in the Fig. 1
/// topology) that reads every clear-text batch of phase 1; whenever it
/// spots a victim transaction it instantly issues its own dependent
/// transaction through its own proposer role.
class FrontRunningPompeNode final : public pompe::PompeNode {
 public:
  using pompe::PompeNode::PompeNode;

  std::size_t observed_victims() const { return observed_; }

 protected:
  void observe_batch(const pompe::TsRequestMsg& m) override;

 private:
  std::vector<bool> attacked_ = std::vector<bool>(1 << 16, false);
  std::size_t observed_ = 0;
};

/// Mallory on Lyra: receives the same broadcasts but sees only VSS
/// ciphertexts. It scans every INIT it receives for the victim marker (it
/// never finds one before the reveal) and counts how often it could have
/// reacted. It still issues blind attack transactions when payloads become
/// readable — which is only after commit, i.e. too late.
class FrontRunningLyraNode final : public core::LyraNode {
 public:
  using core::LyraNode::LyraNode;

  std::size_t payloads_readable_before_commit() const {
    return readable_early_;
  }
  std::size_t ciphers_scanned() const { return scanned_; }

  void on_start() override;

 protected:
  void on_message(const sim::Envelope& env) override;

 private:
  std::vector<bool> attacked_ = std::vector<bool>(1 << 16, false);
  std::size_t scanned_ = 0;
  std::size_t readable_early_ = 0;
};

/// Outcome bookkeeping for the Fig. 1 experiment: for each victim index,
/// the order of victim vs. attack transaction in the committed output.
struct FrontRunOutcome {
  std::size_t victims_committed = 0;
  std::size_t attacks_committed = 0;
  std::size_t front_run_successes = 0;  // attack ordered before its victim
};

/// Scans a Pompē ledger (+ payload store) for victim/attack pairs.
FrontRunOutcome evaluate_pompe_frontrun(const pompe::PompeNode& node);

/// Scans a Lyra ledger for victim/attack pairs (payloads are revealed).
FrontRunOutcome evaluate_lyra_frontrun(const core::LyraNode& node);

}  // namespace lyra::attacks
