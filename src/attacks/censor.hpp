#pragma once

#include "pompe/pompe_node.hpp"

namespace lyra::attacks {

/// A Byzantine HotStuff leader that censors one proposer: it simply never
/// includes the victim's sequenced batches in its blocks. It otherwise
/// follows the protocol, so no timeout fires and no view change rescues
/// the victim — the censorship the paper attributes to leader-based
/// designs like Fino and Pompē (§I, §V-E). Lyra has no such role to abuse.
class CensoringPompeNode final : public pompe::PompeNode {
 public:
  CensoringPompeNode(sim::Simulation* sim, net::Network* network, NodeId id,
                     const pompe::PompeConfig& config,
                     const crypto::KeyRegistry* registry, NodeId victim)
      : pompe::PompeNode(sim, network, id, config, registry) {
    hotstuff().entry_filter = [this, victim](
                                  std::vector<hotstuff::BlockEntry>& entries) {
      std::erase_if(entries, [&](const hotstuff::BlockEntry& e) {
        if (e.proposer == victim) {
          ++censored_;
          return true;
        }
        return false;
      });
    };
  }

  std::uint64_t censored() const { return censored_; }

 private:
  std::uint64_t censored_ = 0;
};

}  // namespace lyra::attacks
