#include "attacks/sandwich.hpp"

namespace lyra::attacks {
namespace {

workload::WorkloadTx make_attack(NodeId self, std::uint64_t counter,
                                 const workload::WorkloadTx& victim,
                                 std::uint8_t role, std::uint64_t fee,
                                 TimeNs now) {
  workload::WorkloadTx tx;
  tx.id = workload::make_tx_id(self, counter);
  tx.account = victim.account;  // same market as the victim
  tx.fee = fee;
  tx.value = 0;  // attack orders move no value of their own
  tx.target_id = victim.id;
  tx.client = self;
  tx.role = role;
  tx.submitted_at = now;
  return tx;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pompē: cleartext phase 1 leaks every victim in time to act
// ---------------------------------------------------------------------------

SandwichPompeNode::SandwichPompeNode(sim::Simulation* sim,
                                     net::Network* network, NodeId id,
                                     const pompe::PompeConfig& config,
                                     const crypto::KeyRegistry* registry,
                                     const SandwichOptions& options)
    : pompe::PompeNode(sim, network, id, config, registry),
      options_(options) {}

void SandwichPompeNode::inject(const workload::WorkloadTx& attack) {
  // Through the regular admission path so organic residents this order
  // displaces still get their backpressure signal.
  admit_workload(id(), {attack});
  ++attacks_injected_;
  flush_partial_batch();  // race the victim's timestamp quorum
}

void SandwichPompeNode::observe_batch(const pompe::TsRequestMsg& m) {
  if (m.proposer == id() || mempool_ == nullptr) return;
  std::vector<workload::WorkloadTx> txs;
  if (!workload::decode_batch(m.payload, &txs)) return;
  std::size_t taken = 0;
  for (const workload::WorkloadTx& victim : txs) {
    if (victim.role != workload::kRoleOrganic) continue;
    if (victim.value < options_.value_threshold) continue;
    if (taken >= options_.max_targets_per_batch) break;
    if (!targeted_.insert(victim.id).second) continue;
    ++victims_observed_;
    ++taken;

    inject(make_attack(id(), ++next_attack_, victim, workload::kRoleFront,
                       victim.fee + options_.fee_bid_delta, now()));
    // The back order follows on a later batch so it sequences after the
    // victim, closing the sandwich.
    const workload::WorkloadTx back =
        make_attack(id(), ++next_attack_, victim, workload::kRoleBack,
                    victim.fee == 0 ? 1 : victim.fee, now());
    set_timer(options_.back_delay, [this, back] { inject(back); });
  }
}

// ---------------------------------------------------------------------------
// Lyra: commit-reveal blinds the adversary until the order is fixed
// ---------------------------------------------------------------------------

SandwichLyraNode::SandwichLyraNode(sim::Simulation* sim,
                                   net::Network* network, NodeId id,
                                   const core::Config& config,
                                   const crypto::KeyRegistry* registry,
                                   const SandwichOptions& options)
    : core::LyraNode(sim, network, id, config, registry),
      options_(options) {}

void SandwichLyraNode::inject(const workload::WorkloadTx& attack) {
  admit_workload(id(), {attack});
  ++attacks_injected_;
  flush_partial_batch();
}

void SandwichLyraNode::on_start() {
  core::LyraNode::on_start();
  // Payloads first become readable at reveal time — after commit. The
  // adversary reacts immediately then; it is structurally too late.
  set_reveal_hook([this](const core::CommittedBatch& batch) {
    if (mempool_ == nullptr) return;
    std::vector<workload::WorkloadTx> txs;
    if (!workload::decode_batch(batch.payload, &txs)) return;
    std::size_t taken = 0;
    for (const workload::WorkloadTx& victim : txs) {
      if (victim.role != workload::kRoleOrganic) continue;
      if (victim.value < options_.value_threshold) continue;
      if (taken >= options_.max_targets_per_batch) break;
      if (!targeted_.insert(victim.id).second) continue;
      ++victims_observed_;
      ++taken;
      inject(make_attack(id(), ++next_attack_, victim, workload::kRoleFront,
                         victim.fee + options_.fee_bid_delta, now()));
      const workload::WorkloadTx back =
          make_attack(id(), ++next_attack_, victim, workload::kRoleBack,
                      victim.fee == 0 ? 1 : victim.fee, now());
      set_timer(options_.back_delay, [this, back] { inject(back); });
    }
  });
}

// ---------------------------------------------------------------------------
// Ledger evaluation
// ---------------------------------------------------------------------------

workload::EconomicsReport evaluate_pompe_economics(
    const pompe::PompeNode& node, const workload::EconomicsParams& params) {
  std::vector<BytesView> payloads;
  for (const pompe::PompeCommitted& c : node.ledger()) {
    if (const Bytes* p = node.batch_payload(c.batch_digest)) {
      payloads.push_back(*p);
    }
  }
  return workload::evaluate_economics(payloads, params);
}

workload::EconomicsReport evaluate_lyra_economics(
    const core::LyraNode& node, const workload::EconomicsParams& params) {
  std::vector<BytesView> payloads;
  for (const core::CommittedBatch& c : node.ledger()) {
    payloads.push_back(c.payload);
  }
  return workload::evaluate_economics(payloads, params);
}

}  // namespace lyra::attacks
