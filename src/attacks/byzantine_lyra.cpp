#include "attacks/byzantine_lyra.hpp"

#include "sim/payload_pool.hpp"

namespace lyra::attacks {

void SelectiveInitLyraNode::propose_selectively(BytesView payload) {
  const InstanceId inst{id(), next_proposal_index_++};
  auto msg = sim::make_payload<core::InitMsg>();
  msg->inst = inst;
  const SeqNum s_ref = clock_now();
  msg->predictions = build_predictions(s_ref);
  msg->tx_count = 1;
  msg->nominal_bytes = payload.size();
  msg->cipher = vss_.encrypt(payload, sim().rng());
  const crypto::Digest value_id =
      compute_value_id(inst, msg->cipher.cipher_id(), msg->predictions);
  msg->sig = signer_.sign(value_id_bytes(value_id));
  fill_status(msg->status, /*broadcast=*/false);
  for (NodeId to = 0; to < std::min<std::size_t>(recipients_, config_.n);
       ++to) {
    send(to, msg);
  }
}

std::shared_ptr<core::InitMsg> EquivocatingLyraNode::make_init(
    const InstanceId& inst, BytesView payload) {
  auto msg = sim::make_payload<core::InitMsg>();
  msg->inst = inst;
  const SeqNum s_ref = clock_now();
  msg->predictions = build_predictions(s_ref);
  msg->tx_count = 1;
  msg->nominal_bytes = payload.size();
  msg->cipher = vss_.encrypt(payload, sim().rng());
  const crypto::Digest value_id =
      compute_value_id(inst, msg->cipher.cipher_id(), msg->predictions);
  msg->sig = signer_.sign(value_id_bytes(value_id));
  fill_status(msg->status, /*broadcast=*/false);
  return msg;
}

void EquivocatingLyraNode::equivocate(BytesView payload_even,
                                      BytesView payload_odd) {
  const InstanceId inst{id(), next_proposal_index_++};
  const auto even = make_init(inst, payload_even);
  const auto odd = make_init(inst, payload_odd);
  for (NodeId to = 0; to < config_.n; ++to) {
    send(to, to % 2 == 0 ? sim::PayloadPtr(even) : sim::PayloadPtr(odd));
  }
  ++equivocations_;
}

}  // namespace lyra::attacks
