#include "attacks/byzantine_lyra.hpp"

#include "sim/payload_pool.hpp"

namespace lyra::attacks {

void SelectiveInitLyraNode::propose_selectively(BytesView payload) {
  const InstanceId inst{id(), next_proposal_index_++};
  auto msg = sim::make_payload<core::InitMsg>();
  msg->inst = inst;
  const SeqNum s_ref = clock_now();
  msg->predictions = build_predictions(s_ref);
  msg->tx_count = 1;
  msg->nominal_bytes = payload.size();
  msg->cipher = vss_.encrypt(payload, sim().rng());
  const crypto::Digest value_id =
      compute_value_id(inst, msg->cipher.cipher_id(), msg->predictions);
  msg->sig = signer_.sign(value_id_bytes(value_id));
  fill_status(msg->status, /*broadcast=*/false);
  for (NodeId to = 0; to < std::min<std::size_t>(recipients_, config_.n);
       ++to) {
    send(to, msg);
  }
}

ReplayInitLyraNode::ReplayInitLyraNode(sim::Simulation* sim,
                                       net::Network* network, NodeId id,
                                       const core::Config& config,
                                       const crypto::KeyRegistry* registry,
                                       TimeNs replay_every,
                                       std::size_t replay_burst)
    : core::LyraNode(sim, network, id, config, registry),
      replay_every_(replay_every),
      replay_burst_(replay_burst) {}

void ReplayInitLyraNode::on_start() {
  core::LyraNode::on_start();
  set_timer(replay_every_, [this] { replay_tick(); });
}

void ReplayInitLyraNode::on_message(const sim::Envelope& env) {
  if (env.payload->kind() == sim::MsgKind::kInit) {
    seen_.push_back(
        {now(), std::static_pointer_cast<const core::InitMsg>(env.payload)});
  }
  core::LyraNode::on_message(env);
}

void ReplayInitLyraNode::replay_tick() {
  // Only INITs whose instance every correct process has GC'd are worth
  // re-presenting: those re-join as fresh instances and re-verify. The
  // slack covers decide-time skew across nodes.
  const TimeNs ripe = config_.instance_gc_idle + config_.instance_gc_idle / 2;
  std::size_t replayable = 0;
  while (replayable < seen_.size() &&
         now() - seen_[replayable].seen_at >= ripe) {
    ++replayable;
  }
  // Bound the retained window: the attacker cycles a working set, it does
  // not hoard the whole run's traffic.
  constexpr std::size_t kMaxRetained = 256;
  while (replayable > kMaxRetained) {
    seen_.pop_front();
    --replayable;
    cursor_ = cursor_ > 0 ? cursor_ - 1 : 0;
  }
  for (std::size_t i = 0; i < replay_burst_ && replayable > 0; ++i) {
    if (cursor_ >= replayable) cursor_ = 0;
    auto relay = sim::make_payload<core::InitRelayMsg>();
    relay->inner = seen_[cursor_++].init;
    broadcast_msg(relay);
    ++replays_;
  }
  set_timer(replay_every_, [this] { replay_tick(); });
}

std::shared_ptr<core::InitMsg> EquivocatingLyraNode::make_init(
    const InstanceId& inst, BytesView payload) {
  auto msg = sim::make_payload<core::InitMsg>();
  msg->inst = inst;
  const SeqNum s_ref = clock_now();
  msg->predictions = build_predictions(s_ref);
  msg->tx_count = 1;
  msg->nominal_bytes = payload.size();
  msg->cipher = vss_.encrypt(payload, sim().rng());
  const crypto::Digest value_id =
      compute_value_id(inst, msg->cipher.cipher_id(), msg->predictions);
  msg->sig = signer_.sign(value_id_bytes(value_id));
  fill_status(msg->status, /*broadcast=*/false);
  return msg;
}

void EquivocatingLyraNode::equivocate(BytesView payload_even,
                                      BytesView payload_odd) {
  const InstanceId inst{id(), next_proposal_index_++};
  const auto even = make_init(inst, payload_even);
  const auto odd = make_init(inst, payload_odd);
  for (NodeId to = 0; to < config_.n; ++to) {
    send(to, to % 2 == 0 ? sim::PayloadPtr(even) : sim::PayloadPtr(odd));
  }
  ++equivocations_;
}

}  // namespace lyra::attacks
