#include "attacks/frontrun.hpp"

#include <map>
#include "sim/payload_pool.hpp"
#include <string>

namespace lyra::attacks {

namespace {

/// All "<marker><digits>" occurrences in a payload.
std::vector<int> find_marked(BytesView payload, std::string_view marker) {
  std::vector<int> out;
  const std::string_view text = as_string_view(payload);
  std::size_t pos = 0;
  while ((pos = text.find(marker, pos)) != std::string_view::npos) {
    pos += marker.size();
    int value = 0;
    bool any = false;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + (text[pos] - '0');
      ++pos;
      any = true;
    }
    if (any) out.push_back(value);
  }
  return out;
}

/// Generic outcome evaluation over an ordered list of payloads.
FrontRunOutcome evaluate_payload_sequence(
    const std::vector<BytesView>& ordered_payloads) {
  std::map<int, std::size_t> victim_pos;
  std::map<int, std::size_t> attack_pos;
  for (std::size_t i = 0; i < ordered_payloads.size(); ++i) {
    for (int k : find_marked(ordered_payloads[i], kVictimMarker)) {
      victim_pos.try_emplace(k, i);
    }
    for (int k : find_marked(ordered_payloads[i], kAttackMarker)) {
      attack_pos.try_emplace(k, i);
    }
  }
  FrontRunOutcome out;
  out.victims_committed = victim_pos.size();
  out.attacks_committed = attack_pos.size();
  for (const auto& [k, vpos] : victim_pos) {
    const auto it = attack_pos.find(k);
    if (it != attack_pos.end() && it->second < vpos) {
      ++out.front_run_successes;
    }
  }
  return out;
}

}  // namespace

int find_victim_index(BytesView payload) {
  const auto found = find_marked(payload, kVictimMarker);
  return found.empty() ? -1 : found.front();
}

AliceClient::AliceClient(sim::Simulation* sim, sim::Transport* transport,
                         NodeId id, NodeId target, TimeNs start_at,
                         TimeNs period, std::size_t count)
    : Process(sim, transport, id),
      target_(target),
      start_at_(start_at),
      period_(period),
      count_(count) {}

void AliceClient::on_start() {
  set_timer(start_at_, [this] { submit_next(); });
}

void AliceClient::submit_next() {
  if (next_index_ >= count_) return;
  auto msg = sim::make_payload<core::SubmitMsg>();
  msg->count = 1;
  msg->submitted_at = now();
  msg->txs.push_back(
      to_bytes(std::string(kVictimMarker) + std::to_string(next_index_)));
  send(target_, std::move(msg));
  submit_times_.push_back(now());
  ++next_index_;
  set_timer(period_, [this] { submit_next(); });
}

void FrontRunningPompeNode::observe_batch(const pompe::TsRequestMsg& m) {
  if (m.proposer == id()) return;  // our own proposals
  const int k = find_victim_index(m.payload);
  if (k < 0 || static_cast<std::size_t>(k) >= attacked_.size() ||
      attacked_[static_cast<std::size_t>(k)]) {
    return;
  }
  attacked_[static_cast<std::size_t>(k)] = true;
  ++observed_;
  // The dependent transaction t2, issued the instant t1's content leaks.
  submit_local(
      to_bytes(std::string(kAttackMarker) + std::to_string(k)));
  flush_partial_batch();  // attack immediately, don't wait for batching
}

void FrontRunningLyraNode::on_start() {
  core::LyraNode::on_start();
  // React to payloads as soon as this node can read them — which, under
  // commit-reveal, is only after they are committed.
  set_reveal_hook([this](const core::CommittedBatch& batch) {
    const int k = find_victim_index(batch.payload);
    if (k < 0 || static_cast<std::size_t>(k) >= attacked_.size() ||
        attacked_[static_cast<std::size_t>(k)]) {
      return;
    }
    attacked_[static_cast<std::size_t>(k)] = true;
    submit_local(
        to_bytes(std::string(kAttackMarker) + std::to_string(k)));
  });
}

void FrontRunningLyraNode::on_message(const sim::Envelope& env) {
  if (const auto* init = sim::payload_as<core::InitMsg>(env)) {
    ++scanned_;
    // The attacker greps the ciphertext for the marker, as it would grep a
    // clear mempool. With semantically-secure obfuscation this never hits
    // before the reveal.
    if (find_victim_index(init->cipher.ciphertext) >= 0) {
      ++readable_early_;
    }
  }
  core::LyraNode::on_message(env);
}

FrontRunOutcome evaluate_pompe_frontrun(const pompe::PompeNode& node) {
  std::vector<BytesView> payloads;
  for (const pompe::PompeCommitted& c : node.ledger()) {
    if (const Bytes* p = node.batch_payload(c.batch_digest)) {
      payloads.push_back(*p);
    }
  }
  return evaluate_payload_sequence(payloads);
}

FrontRunOutcome evaluate_lyra_frontrun(const core::LyraNode& node) {
  std::vector<BytesView> payloads;
  for (const core::CommittedBatch& c : node.ledger()) {
    payloads.push_back(c.payload);
  }
  return evaluate_payload_sequence(payloads);
}

}  // namespace lyra::attacks
