#pragma once

#include <unordered_set>

#include "lyra/lyra_node.hpp"
#include "pompe/pompe_node.hpp"
#include "workload/economics.hpp"
#include "workload/types.hpp"

namespace lyra::attacks {

/// Economic sandwich adversary parameters (docs/WORKLOAD.md §economics).
struct SandwichOptions {
  /// Only organic transactions at least this valuable are worth attacking.
  std::uint64_t value_threshold = 5000;
  /// The front order outbids the victim by this much (fee-priority pools
  /// carve it first).
  std::uint64_t fee_bid_delta = 10;
  /// Bound on targets taken from one observed batch.
  std::size_t max_targets_per_batch = 4;
  /// The back order is issued this long after the front, so it rides a
  /// later batch and orders after the victim.
  TimeNs back_delay = ms(2);
};

/// Mallory on Pompē with an economic motive: phase-1 timestamp requests
/// carry batch payloads in the clear, so this node decodes every workload
/// batch other proposers sequence, picks high-value victims, and injects a
/// fee-bid front order (immediately, racing the victim's timestamp
/// quorum) and a back order (shortly after) through its own mempool and
/// proposer role. Requires mempool_capacity > 0 on this node.
class SandwichPompeNode final : public pompe::PompeNode {
 public:
  SandwichPompeNode(sim::Simulation* sim, net::Network* network, NodeId id,
                    const pompe::PompeConfig& config,
                    const crypto::KeyRegistry* registry,
                    const SandwichOptions& options);

  std::uint64_t victims_observed() const { return victims_observed_; }
  std::uint64_t attacks_injected() const { return attacks_injected_; }

 protected:
  void observe_batch(const pompe::TsRequestMsg& m) override;

 private:
  void inject(const workload::WorkloadTx& attack);

  SandwichOptions options_;
  std::unordered_set<std::uint64_t> targeted_;
  std::uint64_t next_attack_ = 0;
  std::uint64_t victims_observed_ = 0;
  std::uint64_t attacks_injected_ = 0;
};

/// Mallory on Lyra: same motive, but phase-1 traffic is VSS ciphertext —
/// payloads only become readable at reveal time, after the order is
/// already fixed. The node still reacts then (the best it can do), which
/// demonstrates the economic claim: its front orders always land after
/// their victims, so extracted value is ~0.
class SandwichLyraNode final : public core::LyraNode {
 public:
  SandwichLyraNode(sim::Simulation* sim, net::Network* network, NodeId id,
                   const core::Config& config,
                   const crypto::KeyRegistry* registry,
                   const SandwichOptions& options);

  void on_start() override;

  std::uint64_t victims_observed() const { return victims_observed_; }
  std::uint64_t attacks_injected() const { return attacks_injected_; }

 private:
  void inject(const workload::WorkloadTx& attack);

  SandwichOptions options_;
  std::unordered_set<std::uint64_t> targeted_;
  std::uint64_t next_attack_ = 0;
  std::uint64_t victims_observed_ = 0;
  std::uint64_t attacks_injected_ = 0;
};

/// Economic outcome from a node's committed ledger (payload order).
workload::EconomicsReport evaluate_pompe_economics(
    const pompe::PompeNode& node, const workload::EconomicsParams& params);
workload::EconomicsReport evaluate_lyra_economics(
    const core::LyraNode& node, const workload::EconomicsParams& params);

}  // namespace lyra::attacks
