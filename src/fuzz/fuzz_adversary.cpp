#include "fuzz/fuzz_adversary.hpp"

#include <algorithm>

namespace lyra::fuzz {

TimeNs FuzzAdversary::delay(const sim::Envelope& env, TimeNs base_delay,
                            Rng& rng) {
  TimeNs total = base_delay;
  for (const PartitionFault& p : partitions_) {
    if (env.sent_at < p.from || env.sent_at >= p.to) continue;
    if (side_a(env.from, p.side_mask) == side_a(env.to, p.side_mask)) {
      continue;
    }
    // Hold the message until the heal, then deliver with its honest
    // latency plus a small jitter so post-heal arrivals interleave instead
    // of forming one synchronized burst.
    const TimeNs until_heal = p.to - env.sent_at;
    const TimeNs jitter =
        static_cast<TimeNs>(rng.next_below(static_cast<std::uint64_t>(
            std::max<TimeNs>(1, base_delay / 2))));
    total = std::max(total, until_heal + base_delay + jitter);
    ++partitioned_;
  }
  for (const DelayFault& d : delays_) {
    if (env.sent_at < d.from || env.sent_at >= d.to) continue;
    if (d.victim != kNoNode && env.to != d.victim && env.from != d.victim) {
      continue;
    }
    if (d.max_extra > 0) {
      total += static_cast<TimeNs>(
          rng.next_below(static_cast<std::uint64_t>(d.max_extra)));
      ++delayed_;
    }
  }
  return std::max(total, base_delay);
}

}  // namespace lyra::fuzz
