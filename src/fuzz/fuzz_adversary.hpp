#pragma once

#include <vector>

#include "fuzz/fault_program.hpp"
#include "net/adversary.hpp"

namespace lyra::fuzz {

/// Executes a plan's partition and delay faults as pure added message
/// delay. Partitions hold messages crossing the side boundary until the
/// heal time; delay windows add a random burst on top. Both honor the
/// net::Adversary contract — the returned delay is never below the honest
/// base sample — so FIFO floors and the parallel executor's lookahead stay
/// sound under every generated schedule.
class FuzzAdversary final : public net::Adversary {
 public:
  FuzzAdversary(std::uint32_t n, std::vector<PartitionFault> partitions,
                std::vector<DelayFault> delays)
      : n_(n),
        partitions_(std::move(partitions)),
        delays_(std::move(delays)) {}

  TimeNs delay(const sim::Envelope& env, TimeNs base_delay,
               Rng& rng) override;

  /// Messages held across a partition boundary (stat for reports).
  std::uint64_t partitioned_messages() const { return partitioned_; }
  std::uint64_t delayed_messages() const { return delayed_; }

 private:
  /// Client pools are co-located with their target node (pool id n+i sits
  /// with node i), so they share its partition side.
  bool side_a(NodeId id, std::uint32_t mask) const {
    const NodeId node = id < n_ ? id : (id - n_) % n_;
    return (mask >> node) & 1u;
  }

  std::uint32_t n_;
  std::vector<PartitionFault> partitions_;
  std::vector<DelayFault> delays_;
  std::uint64_t partitioned_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace lyra::fuzz
