#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fuzz/fault_program.hpp"

namespace lyra::harness {
class LyraCluster;
class PompeCluster;
}  // namespace lyra::harness

namespace lyra::fuzz {

/// One broken property. `invariant` names the registry entry; `detail` is
/// the concrete witness (node ids, positions, counts) a human needs to
/// triage the seed without re-running it under a debugger.
struct Violation {
  std::string invariant;
  std::string detail;
  TimeNs at = 0;
};

/// Everything a check may look at. Exactly one cluster pointer is set.
/// The registry never mutates the cluster — checks run inside barrier
/// events of a live simulation and read-only access is what makes that
/// safe under the parallel executor.
struct CheckContext {
  const ScenarioPlan* plan = nullptr;
  harness::LyraCluster* lyra = nullptr;
  harness::PompeCluster* pompe = nullptr;
  TimeNs now = 0;
  /// False for the periodic in-run sweeps (safety properties only); true
  /// for the end-of-run sweep that adds convergence/liveness checks.
  bool final_phase = false;
  /// Longest correct ledger observed when the last fault ended; the
  /// post-fault progress check needs the before/after pair.
  std::size_t ledger_at_last_fault = 0;
  std::vector<bool> is_byz;  ///< per consensus node
};

using CheckFn = void (*)(const CheckContext&, std::vector<Violation>&);

/// Named machine-checked properties. The standard() registry encodes the
/// paper's resilience claims (docs/FUZZING.md lists each with its source):
///
///   prefix-agreement        pairwise ledger prefix match, correct nodes
///   ledger-order            ledger strictly ordered by (seq, cipher_id)
///   no-dup-commit           no cipher or instance committed twice
///   per-sender-order        per-proposer instance indexes in order
///   lambda-fairness         late_accepts == 0 on correct nodes (Lemma 6)
///   resync-gate-quorum      gate reopened only after f+1 peer replies
///   mempool-no-double-commit  an admitted tx enters the order at most once
///   recovery-convergence    every restart resolved, resync gates open
///   post-fault-progress     commits after the last fault window
///   open-loop-resolution    every open-loop tx commits or terminally rejects
///   client-resubmit-lag     resubmit timer fires at the earliest deadline
///
/// serial==parallel equality is run-level (it needs a second run of the
/// whole plan) and lives in the runner, reported under the same Violation
/// type with invariant "serial-parallel-equivalence".
class InvariantRegistry {
 public:
  struct Entry {
    std::string name;
    bool during = true;  ///< run in periodic sweeps, not just at the end
    CheckFn fn = nullptr;
  };

  void add(std::string name, bool during, CheckFn fn) {
    entries_.push_back({std::move(name), during, fn});
  }

  /// Runs every applicable check; appends one Violation per broken
  /// property occurrence.
  std::vector<Violation> run(const CheckContext& ctx) const;

  const std::vector<Entry>& entries() const { return entries_; }

  static InvariantRegistry standard();

 private:
  std::vector<Entry> entries_;
};

}  // namespace lyra::fuzz
