#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/fault_program.hpp"
#include "fuzz/runner.hpp"

namespace lyra::fuzz {

struct MinimizeResult {
  ScenarioPlan plan;                  ///< smallest still-failing program
  std::vector<Violation> violations;  ///< what the minimized plan trips
  std::size_t oracle_runs = 0;        ///< simulations spent shrinking
};

/// Greedy delta-debugging over the fault-program grammar: repeatedly try
/// dropping whole faults, turning off configuration axes (threads,
/// resubmission, state sync), shrinking windows and the run itself, and
/// reducing n — keeping any candidate that still violates *some*
/// invariant (a smaller program tripping a different invariant is still a
/// bug, and usually the same root cause with less noise). Deterministic:
/// candidate order is fixed and the oracle is the deterministic runner.
///
/// The serial==parallel equivalence check stays enabled during shrinking
/// only when the original failure involved it; otherwise each oracle run
/// is a single simulation.
MinimizeResult minimize_plan(
    const ScenarioPlan& failing, std::size_t max_runs = 250,
    const std::function<void(const std::string&)>& log = nullptr);

}  // namespace lyra::fuzz
