#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fuzz/fault_program.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/runner.hpp"

namespace lyra::fuzz {

struct FuzzOptions {
  std::uint64_t start_seed = 1;
  std::size_t num_seeds = 20;
  /// Shrink every failing program to a minimal reproducer.
  bool minimize = true;
  std::size_t max_minimize_runs = 250;
  /// 0 = use each plan's own generated thread count; otherwise force.
  unsigned threads_override = 0;
  /// Directory for replayable failure artifacts ("" = don't write).
  std::string artifact_dir;
  /// Progress/diagnostic sink (nullptr = quiet).
  std::function<void(const std::string&)> log;
  /// Stop after the first failing seed (the CI mutation check wants the
  /// earliest witness, not a catalogue).
  bool stop_on_failure = false;
};

struct SeedResult {
  std::uint64_t seed = 0;
  RunReport report;            ///< the original (unshrunk) failure
  bool minimized = false;
  MinimizeResult minimized_result;
  std::string artifact_path;   ///< non-empty if an artifact was written
};

struct FuzzSummary {
  std::size_t seeds_run = 0;
  std::vector<SeedResult> failures;
  bool ok() const { return failures.empty(); }
};

/// Generates and runs `num_seeds` fault programs starting at `start_seed`,
/// minimizing and archiving every failure.
FuzzSummary fuzz(const FuzzOptions& options);

/// Runs one serialized fault program (corpus entry or failure artifact).
/// `path` must hold serialize_plan() output; comment lines are ignored.
bool load_plan_file(const std::string& path, ScenarioPlan& plan,
                    std::string& error);

/// Writes `plan` (with its violations as comment lines) under `dir`,
/// named by seed and fault count. Returns the path, or "" on IO failure.
std::string write_artifact(const std::string& dir, const ScenarioPlan& plan,
                           const std::vector<Violation>& violations);

}  // namespace lyra::fuzz
