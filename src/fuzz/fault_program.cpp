#include "fuzz/fault_program.hpp"

#include <algorithm>
#include <sstream>

#include "support/random.hpp"

namespace lyra::fuzz {

namespace {

constexpr TimeNs kWarmup = kFaultWarmup;

/// Max number of simultaneously-down nodes over all crash windows.
std::uint32_t max_concurrent_down(const std::vector<CrashFault>& crashes) {
  std::uint32_t worst = 0;
  for (const CrashFault& a : crashes) {
    std::uint32_t down = 0;
    for (const CrashFault& b : crashes) {
      if (b.crash_at <= a.crash_at && a.crash_at < b.restart_at) ++down;
    }
    worst = std::max(worst, down);
  }
  return worst;
}

}  // namespace

const char* to_string(ByzKind kind) {
  switch (kind) {
    case ByzKind::kSilent: return "silent";
    case ByzKind::kReplayInit: return "replay-init";
    case ByzKind::kSkewedPrediction: return "skewed-prediction";
    case ByzKind::kLowballStatus: return "lowball-status";
    case ByzKind::kSyncGarbage: return "sync-garbage";
    case ByzKind::kSyncWrongManifest: return "sync-wrong-manifest";
  }
  return "?";
}

bool byz_kind_from_string(const std::string& s, ByzKind& out) {
  for (int k = 0; k <= static_cast<int>(ByzKind::kSyncWrongManifest); ++k) {
    const auto kind = static_cast<ByzKind>(k);
    if (s == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

ScenarioPlan generate_plan(std::uint64_t seed) {
  // The generator stream is derived, not the raw seed: the runner derives
  // its own streams from the same seed and the two must never collide.
  Rng rng(derive_stream(seed, 0x66757a7aULL /*"fuzz"*/, 1));
  ScenarioPlan plan;
  plan.seed = seed;
  plan.protocol =
      rng.next_bernoulli(0.15) ? Protocol::kPompe : Protocol::kLyra;
  plan.n = rng.next_bernoulli(0.3) ? 7 : 4;
  plan.clients_per_node =
      16 + 8 * static_cast<std::uint32_t>(rng.next_below(5));
  const std::uint32_t batches[] = {8, 16, 32};
  plan.batch_size = batches[rng.next_below(3)];
  const unsigned threads[] = {1, 1, 2, 4};
  plan.threads = threads[rng.next_below(4)];
  const std::uint32_t f = plan.f();

  // Open-loop mode swaps the closed-loop pools for Poisson traffic sources
  // feeding a bounded fee-priority mempool. Drawn before the resubmit and
  // duration draws because required_tail() depends on both knobs.
  if (rng.next_bernoulli(0.35)) {
    plan.mempool_capacity = 32u << rng.next_below(3);  // 32 / 64 / 128
    plan.arrival_rate =
        100 + 50 * static_cast<std::uint32_t>(rng.next_below(9));
  }

  // Resubmission applies to both protocols: a fault can push an entry out
  // of its synchrony window, and only retrying clients make the post-fault
  // progress invariant checkable. Open-loop pools carry their own retry
  // ladder, so closed-loop resubmission stays off for those plans.
  if (!plan.open_loop() && rng.next_bernoulli(0.5)) {
    plan.resubmit_timeout = ms(800) + ms(400) * rng.next_below(3);
  }
  // Warmup + a fault window + the post-fault tail must all fit; the tail
  // depends on the resubmit timeout, so the duration is drawn after it.
  plan.duration =
      plan.required_tail() + ms(2000) + ms(250) * rng.next_below(7);
  const TimeNs tail = plan.required_tail();

  if (plan.protocol == Protocol::kLyra) {
    plan.state_sync = rng.next_bernoulli(0.5);

    // Byzantine slots first: they are excluded from the crash budget.
    std::uint32_t byz_budget = f >= 2 ? rng.next_below(3)  // 0..2 at n=7
                                      : rng.next_bernoulli(0.3);
    for (NodeId node = 0; byz_budget > 0 && node < plan.n; ++node) {
      if (!rng.next_bernoulli(0.5)) continue;
      const ByzKind kinds[] = {
          ByzKind::kSilent,           ByzKind::kReplayInit,
          ByzKind::kSkewedPrediction, ByzKind::kLowballStatus,
          ByzKind::kSyncGarbage,      ByzKind::kSyncWrongManifest,
      };
      ByzKind kind = kinds[rng.next_below(6)];
      // Sync misbehaviour needs a sync protocol to misbehave in.
      if (!plan.state_sync && (kind == ByzKind::kSyncGarbage ||
                               kind == ByzKind::kSyncWrongManifest)) {
        kind = ByzKind::kSilent;
      }
      plan.byz.push_back({node, kind});
      --byz_budget;
    }
    const std::uint32_t crash_budget =
        f - static_cast<std::uint32_t>(plan.byz.size());

    // Crash/restart windows on distinct correct nodes. Windows may overlap
    // only while the number of concurrently-down nodes stays within the
    // remaining budget; a draw that would exceed it is discarded. Open-loop
    // plans exclude crashes entirely: mempool contents are not journaled,
    // so a restart would lose admitted transactions by design and every
    // liveness invariant about them would be vacuous or wrong.
    const std::size_t want_crashes =
        (crash_budget == 0 || plan.open_loop())
            ? 0
            : rng.next_below(plan.n == 4 ? 3 : 4);
    std::vector<bool> used(plan.n, false);
    for (const ByzFault& b : plan.byz) used[b.node] = true;
    for (std::size_t i = 0; i < want_crashes; ++i) {
      const NodeId node = static_cast<NodeId>(rng.next_below(plan.n));
      if (used[node]) continue;
      CrashFault c;
      c.node = node;
      const TimeNs lo = kWarmup;
      const TimeNs hi = plan.duration - tail - ms(300);
      if (hi <= lo) break;
      c.crash_at = lo + rng.next_below(static_cast<std::uint64_t>(hi - lo));
      c.restart_at = std::min<TimeNs>(c.crash_at + ms(250) + ms(50) * rng.next_below(14),
                              plan.duration - tail);
      if (rng.next_bernoulli(0.3)) c.wipe_disk = true;
      else if (rng.next_bernoulli(0.2)) c.corrupt_wal = true;
      if (c.wipe_disk || c.corrupt_wal) plan.state_sync = true;
      plan.crashes.push_back(c);
      if (max_concurrent_down(plan.crashes) > crash_budget) {
        plan.crashes.pop_back();
        continue;
      }
      used[node] = true;
    }
    std::sort(plan.crashes.begin(), plan.crashes.end(),
              [](const CrashFault& a, const CrashFault& b) {
                return a.crash_at < b.crash_at;
              });
  }

  // Partition windows. When crashes exist, half the windows are *coupled*:
  // the crashed nodes form one side and the window straddles a restart, so
  // recovering nodes resync through a degraded view — the schedule family
  // the resync gate and state sync exist for.
  const std::uint32_t full_mask = (1u << plan.n) - 1;
  const std::size_t want_partitions = rng.next_below(3);
  for (std::size_t i = 0; i < want_partitions; ++i) {
    PartitionFault p;
    if (!plan.crashes.empty() && rng.next_bernoulli(0.5)) {
      for (const CrashFault& c : plan.crashes) p.side_mask |= 1u << c.node;
      const CrashFault& anchor =
          plan.crashes[rng.next_below(plan.crashes.size())];
      p.from = std::max<TimeNs>(
          kWarmup, anchor.restart_at - ms(50) * static_cast<TimeNs>(rng.next_below(5)));
      p.to = std::min<TimeNs>(p.from + ms(300) + ms(100) * rng.next_below(7),
                      plan.duration - tail);
    } else {
      p.side_mask = static_cast<std::uint32_t>(
                        rng.next_below(full_mask - 1)) + 1;  // 1..full-1
      const TimeNs lo = kWarmup;
      const TimeNs hi = plan.duration - tail - ms(200);
      if (hi <= lo) break;
      p.from = lo + rng.next_below(static_cast<std::uint64_t>(hi - lo));
      p.to = std::min<TimeNs>(p.from + ms(200) + ms(100) * rng.next_below(7),
                      plan.duration - tail);
    }
    if (p.side_mask == 0 || p.side_mask == full_mask || p.to <= p.from) {
      continue;
    }
    plan.partitions.push_back(p);
  }

  // Targeted delay bursts, biased toward recovering nodes.
  const std::size_t want_delays = rng.next_below(3);
  for (std::size_t i = 0; i < want_delays; ++i) {
    DelayFault d;
    if (!plan.crashes.empty() && rng.next_bernoulli(0.4)) {
      d.victim = plan.crashes[rng.next_below(plan.crashes.size())].node;
    } else if (rng.next_bernoulli(0.6)) {
      d.victim = static_cast<NodeId>(rng.next_below(plan.n));
    }  // else kNoNode: everyone
    const TimeNs lo = kWarmup;
    const TimeNs hi = plan.duration - tail - ms(200);
    if (hi <= lo) break;
    d.from = lo + rng.next_below(static_cast<std::uint64_t>(hi - lo));
    d.to = std::min<TimeNs>(d.from + ms(200) + ms(150) * rng.next_below(6),
                    plan.duration - tail);
    d.max_extra = ms(50) + ms(50) * rng.next_below(8);
    if (d.to <= d.from) continue;
    plan.delays.push_back(d);
  }

  // Open-loop workload faults: fee spikes reorder the mempool under its
  // incumbents, overflow ticks slam admission with a burst, flaps shrink
  // capacity mid-run and force the eviction/backpressure path.
  if (plan.open_loop()) {
    const TimeNs lo = kWarmup;
    const TimeNs hi = plan.duration - tail - ms(200);
    if (hi > lo) {
      const auto window_start = [&]() {
        return lo + rng.next_below(static_cast<std::uint64_t>(hi - lo));
      };
      const std::size_t want_spikes = rng.next_below(2);
      for (std::size_t i = 0; i < want_spikes; ++i) {
        FeeSpikeFault s;
        s.from = window_start();
        s.to = std::min<TimeNs>(s.from + ms(200) + ms(100) * rng.next_below(5),
                                plan.duration - tail);
        s.mult = 2 + static_cast<std::uint32_t>(rng.next_below(7));
        if (s.to <= s.from) continue;
        plan.fee_spikes.push_back(s);
      }
      const std::size_t want_overflows = rng.next_below(3);
      for (std::size_t i = 0; i < want_overflows; ++i) {
        OverflowFault o;
        o.at = window_start();
        o.txs = plan.mempool_capacity *
                (1 + static_cast<std::uint32_t>(rng.next_below(3)));
        plan.overflows.push_back(o);
      }
      const std::size_t want_flaps = rng.next_below(2);
      for (std::size_t i = 0; i < want_flaps; ++i) {
        FlapFault fl;
        fl.from = window_start();
        fl.to = std::min<TimeNs>(
            fl.from + ms(150) + ms(100) * rng.next_below(4),
            plan.duration - tail);
        fl.capacity = std::max<std::uint32_t>(
            1, plan.mempool_capacity >>
                   (1 + static_cast<std::uint32_t>(rng.next_below(3))));
        if (fl.to <= fl.from) continue;
        plan.flaps.push_back(fl);
      }
    }
  }

  return plan;
}

std::string serialize_plan(const ScenarioPlan& plan) {
  std::ostringstream out;
  out << "lyra-fuzz-plan v1\n";
  out << "seed " << plan.seed << "\n";
  out << "protocol "
      << (plan.protocol == Protocol::kLyra ? "lyra" : "pompe") << "\n";
  out << "n " << plan.n << "\n";
  out << "clients " << plan.clients_per_node << "\n";
  out << "batch " << plan.batch_size << "\n";
  out << "duration_ms " << plan.duration / kNsPerMs << "\n";
  out << "threads " << plan.threads << "\n";
  out << "state_sync " << (plan.state_sync ? 1 : 0) << "\n";
  out << "resubmit_ms " << plan.resubmit_timeout / kNsPerMs << "\n";
  if (plan.open_loop()) {
    out << "mempool " << plan.mempool_capacity << "\n";
    out << "arrival_rate " << plan.arrival_rate << "\n";
  }
  for (const CrashFault& c : plan.crashes) {
    out << "crash node=" << c.node << " crash_ms=" << c.crash_at / kNsPerMs
        << " restart_ms=" << c.restart_at / kNsPerMs
        << " wipe=" << (c.wipe_disk ? 1 : 0)
        << " corrupt=" << (c.corrupt_wal ? 1 : 0) << "\n";
  }
  for (const PartitionFault& p : plan.partitions) {
    out << "partition from_ms=" << p.from / kNsPerMs
        << " to_ms=" << p.to / kNsPerMs << " mask=" << p.side_mask << "\n";
  }
  for (const DelayFault& d : plan.delays) {
    out << "delay from_ms=" << d.from / kNsPerMs
        << " to_ms=" << d.to / kNsPerMs
        << " extra_ms=" << d.max_extra / kNsPerMs << " victim=";
    if (d.victim == kNoNode) out << "all";
    else out << d.victim;
    out << "\n";
  }
  for (const ByzFault& b : plan.byz) {
    out << "byz node=" << b.node << " kind=" << to_string(b.kind) << "\n";
  }
  for (const FeeSpikeFault& s : plan.fee_spikes) {
    out << "fee_spike from_ms=" << s.from / kNsPerMs
        << " to_ms=" << s.to / kNsPerMs << " mult=" << s.mult << "\n";
  }
  for (const OverflowFault& o : plan.overflows) {
    out << "overflow at_ms=" << o.at / kNsPerMs << " txs=" << o.txs << "\n";
  }
  for (const FlapFault& fl : plan.flaps) {
    out << "flap from_ms=" << fl.from / kNsPerMs
        << " to_ms=" << fl.to / kNsPerMs << " capacity=" << fl.capacity
        << "\n";
  }
  return out.str();
}

namespace {

/// "key=value" tokens after the directive word; returns false on any
/// malformed token so corpus typos surface as parse errors, not zeros.
bool split_kv(std::istringstream& line,
              std::vector<std::pair<std::string, std::string>>& out) {
  std::string token;
  while (line >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      return false;
    }
    out.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return !out.empty();
}

bool to_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    if (out > (UINT64_MAX - (ch - '0')) / 10) return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

}  // namespace

bool parse_plan(const std::string& text, ScenarioPlan& plan,
                std::string& error) {
  plan = ScenarioPlan{};
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  // Comment/blank lines may precede the header (annotated corpus files).
  bool have_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    have_header = line == "lyra-fuzz-plan v1";
    break;
  }
  if (!have_header) {
    error = "missing header 'lyra-fuzz-plan v1'";
    return false;
  }
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    const auto fail = [&](const std::string& why) {
      error = "line " + std::to_string(lineno) + ": " + why;
      return false;
    };
    const auto scalar_u64 = [&](std::uint64_t& out) {
      std::string value;
      if (!(ls >> value)) return false;
      return to_u64(value, out);
    };
    std::uint64_t v = 0;
    if (word == "seed") {
      if (!scalar_u64(v)) return fail("bad seed");
      plan.seed = v;
    } else if (word == "protocol") {
      std::string value;
      ls >> value;
      if (value == "lyra") plan.protocol = Protocol::kLyra;
      else if (value == "pompe") plan.protocol = Protocol::kPompe;
      else return fail("unknown protocol '" + value + "'");
    } else if (word == "n") {
      if (!scalar_u64(v)) return fail("bad n");
      plan.n = static_cast<std::uint32_t>(v);
    } else if (word == "clients") {
      if (!scalar_u64(v)) return fail("bad clients");
      plan.clients_per_node = static_cast<std::uint32_t>(v);
    } else if (word == "batch") {
      if (!scalar_u64(v)) return fail("bad batch");
      plan.batch_size = static_cast<std::uint32_t>(v);
    } else if (word == "duration_ms") {
      if (!scalar_u64(v)) return fail("bad duration_ms");
      plan.duration = static_cast<TimeNs>(v) * kNsPerMs;
    } else if (word == "threads") {
      if (!scalar_u64(v)) return fail("bad threads");
      plan.threads = static_cast<unsigned>(v);
    } else if (word == "state_sync") {
      if (!scalar_u64(v) || v > 1) return fail("bad state_sync");
      plan.state_sync = v == 1;
    } else if (word == "resubmit_ms") {
      if (!scalar_u64(v)) return fail("bad resubmit_ms");
      plan.resubmit_timeout = static_cast<TimeNs>(v) * kNsPerMs;
    } else if (word == "mempool") {
      if (!scalar_u64(v)) return fail("bad mempool");
      plan.mempool_capacity = static_cast<std::uint32_t>(v);
    } else if (word == "arrival_rate") {
      if (!scalar_u64(v)) return fail("bad arrival_rate");
      plan.arrival_rate = static_cast<std::uint32_t>(v);
    } else if (word == "fee_spike" || word == "overflow" || word == "flap") {
      std::vector<std::pair<std::string, std::string>> kv;
      if (!split_kv(ls, kv)) return fail("malformed key=value list");
      FeeSpikeFault s;
      OverflowFault o;
      FlapFault fl;
      for (const auto& [key, value] : kv) {
        std::uint64_t num = 0;
        if (!to_u64(value, num)) return fail("bad " + word + " field '" + key + "'");
        if (word == "fee_spike") {
          if (key == "from_ms") s.from = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "to_ms") s.to = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "mult") s.mult = static_cast<std::uint32_t>(num);
          else return fail("bad fee_spike field '" + key + "'");
        } else if (word == "overflow") {
          if (key == "at_ms") o.at = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "txs") o.txs = static_cast<std::uint32_t>(num);
          else return fail("bad overflow field '" + key + "'");
        } else {  // flap
          if (key == "from_ms") fl.from = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "to_ms") fl.to = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "capacity")
            fl.capacity = static_cast<std::uint32_t>(num);
          else return fail("bad flap field '" + key + "'");
        }
      }
      if (word == "fee_spike") plan.fee_spikes.push_back(s);
      else if (word == "overflow") plan.overflows.push_back(o);
      else plan.flaps.push_back(fl);
    } else if (word == "crash" || word == "partition" || word == "delay" ||
               word == "byz") {
      std::vector<std::pair<std::string, std::string>> kv;
      if (!split_kv(ls, kv)) return fail("malformed key=value list");
      CrashFault c;
      PartitionFault p;
      DelayFault d;
      ByzFault b;
      for (const auto& [key, value] : kv) {
        std::uint64_t num = 0;
        const bool is_num = to_u64(value, num);
        if (word == "crash") {
          if (key == "node" && is_num) c.node = static_cast<NodeId>(num);
          else if (key == "crash_ms" && is_num)
            c.crash_at = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "restart_ms" && is_num)
            c.restart_at = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "wipe" && is_num && num <= 1) c.wipe_disk = num == 1;
          else if (key == "corrupt" && is_num && num <= 1)
            c.corrupt_wal = num == 1;
          else return fail("bad crash field '" + key + "'");
        } else if (word == "partition") {
          if (key == "from_ms" && is_num)
            p.from = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "to_ms" && is_num)
            p.to = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "mask" && is_num)
            p.side_mask = static_cast<std::uint32_t>(num);
          else return fail("bad partition field '" + key + "'");
        } else if (word == "delay") {
          if (key == "from_ms" && is_num)
            d.from = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "to_ms" && is_num)
            d.to = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "extra_ms" && is_num)
            d.max_extra = static_cast<TimeNs>(num) * kNsPerMs;
          else if (key == "victim" && value == "all") d.victim = kNoNode;
          else if (key == "victim" && is_num)
            d.victim = static_cast<NodeId>(num);
          else return fail("bad delay field '" + key + "'");
        } else {  // byz
          if (key == "node" && is_num) b.node = static_cast<NodeId>(num);
          else if (key == "kind") {
            if (!byz_kind_from_string(value, b.kind)) {
              return fail("unknown byz kind '" + value + "'");
            }
          } else return fail("bad byz field '" + key + "'");
        }
      }
      if (word == "crash") plan.crashes.push_back(c);
      else if (word == "partition") plan.partitions.push_back(p);
      else if (word == "delay") plan.delays.push_back(d);
      else plan.byz.push_back(b);
    } else {
      return fail("unknown directive '" + word + "'");
    }
  }
  return validate_plan(plan, error);
}

bool validate_plan(const ScenarioPlan& plan, std::string& error) {
  const auto fail = [&](const std::string& why) {
    error = why;
    return false;
  };
  if (plan.n < 4 || plan.n > 16) return fail("n must be in [4, 16]");
  if (plan.threads < 1 || plan.threads > 8) {
    return fail("threads must be in [1, 8]");
  }
  if (plan.duration <= 0 || plan.duration > ms(60'000)) {
    return fail("duration must be in (0, 60s]");
  }
  if (plan.clients_per_node == 0 || plan.clients_per_node > 512) {
    return fail("clients must be in [1, 512]");
  }
  if (plan.batch_size == 0 || plan.batch_size > 1024) {
    return fail("batch must be in [1, 1024]");
  }
  const std::uint32_t f = plan.f();
  if (plan.protocol == Protocol::kPompe &&
      (!plan.crashes.empty() || !plan.byz.empty() || plan.state_sync)) {
    return fail("pompe plans support only partition/delay faults");
  }
  std::vector<bool> crashed(plan.n, false);
  for (const CrashFault& c : plan.crashes) {
    if (c.node >= plan.n) return fail("crash node out of range");
    if (crashed[c.node]) return fail("two crash windows on one node");
    crashed[c.node] = true;
    if (c.crash_at <= 0 || c.restart_at <= c.crash_at ||
        c.restart_at > plan.duration - plan.required_tail()) {
      return fail("crash window outside the run (or inside the quiet tail)");
    }
    if ((c.wipe_disk || c.corrupt_wal) && !plan.state_sync) {
      return fail("wipe/corrupt without state_sync would refuse the restart");
    }
  }
  std::vector<bool> byzed(plan.n, false);
  for (const ByzFault& b : plan.byz) {
    if (b.node >= plan.n) return fail("byz node out of range");
    if (byzed[b.node]) return fail("two byz kinds on one node");
    if (crashed[b.node]) return fail("byz node also has a crash window");
    if (!plan.state_sync && (b.kind == ByzKind::kSyncGarbage ||
                             b.kind == ByzKind::kSyncWrongManifest)) {
      return fail("sync byzantine kind requires state_sync");
    }
    byzed[b.node] = true;
  }
  if (plan.byz.size() > f) return fail("more than f byzantine slots");
  if (max_concurrent_down(plan.crashes) + plan.byz.size() > f) {
    return fail("concurrently-down + byzantine exceeds f");
  }
  const std::uint32_t full_mask = (1u << plan.n) - 1;
  for (const PartitionFault& p : plan.partitions) {
    if (p.from < 0 || p.to <= p.from || p.to > plan.duration - plan.required_tail()) {
      return fail(
          "partition window outside the run (or inside the quiet tail)");
    }
    if ((p.side_mask & ~full_mask) != 0) {
      return fail("partition mask names nodes >= n");
    }
  }
  for (const DelayFault& d : plan.delays) {
    if (d.from < 0 || d.to <= d.from || d.to > plan.duration - plan.required_tail()) {
      return fail("delay window outside the run (or inside the quiet tail)");
    }
    if (d.victim != kNoNode && d.victim >= plan.n) {
      return fail("delay victim out of range");
    }
    if (d.max_extra < 0 || d.max_extra > ms(5000)) {
      return fail("delay extra must be in [0, 5s]");
    }
  }
  if (plan.open_loop()) {
    if (plan.mempool_capacity > 4096) {
      return fail("mempool capacity must be in [1, 4096]");
    }
    if (plan.arrival_rate == 0 || plan.arrival_rate > 2000) {
      return fail("arrival_rate must be in [1, 2000] for open-loop plans");
    }
    if (!plan.crashes.empty()) {
      return fail("open-loop plans exclude crash faults (mempool not journaled)");
    }
    if (plan.resubmit_timeout != 0) {
      return fail("open-loop plans use the pools' own backoff, not resubmit");
    }
  } else {
    if (plan.arrival_rate != 0) {
      return fail("arrival_rate without a mempool capacity");
    }
    if (!plan.fee_spikes.empty() || !plan.overflows.empty() ||
        !plan.flaps.empty()) {
      return fail("workload faults require an open-loop plan");
    }
  }
  for (const FeeSpikeFault& s : plan.fee_spikes) {
    if (s.from < 0 || s.to <= s.from ||
        s.to > plan.duration - plan.required_tail()) {
      return fail("fee_spike window outside the run (or inside the quiet tail)");
    }
    if (s.mult < 2 || s.mult > 64) {
      return fail("fee_spike mult must be in [2, 64]");
    }
  }
  for (const OverflowFault& o : plan.overflows) {
    if (o.at <= 0 || o.at > plan.duration - plan.required_tail()) {
      return fail("overflow tick outside the run (or inside the quiet tail)");
    }
    if (o.txs == 0 || o.txs > 65536) {
      return fail("overflow txs must be in [1, 65536]");
    }
  }
  for (const FlapFault& fl : plan.flaps) {
    if (fl.from < 0 || fl.to <= fl.from ||
        fl.to > plan.duration - plan.required_tail()) {
      return fail("flap window outside the run (or inside the quiet tail)");
    }
    if (fl.capacity == 0 || fl.capacity > plan.mempool_capacity) {
      return fail("flap capacity must be in [1, mempool capacity]");
    }
  }
  error.clear();
  return true;
}

}  // namespace lyra::fuzz
