#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace lyra::fuzz {

/// A *fault program* is the unit the fuzzer generates, runs, minimizes and
/// checks into the corpus: one protocol/cluster configuration plus a list
/// of timed faults. Everything is plain data so a program serializes to a
/// small text artifact (see serialize()/parse()) and replays bit-identically
/// from that artifact alone — the simulator supplies the determinism.
///
/// Grammar constraints kept by generate() and restore()d by the minimizer:
///  - at most one crash/restart window per node, windows disjoint in time
///    per node, never on a Byzantine slot;
///  - Byzantine slots + concurrently-down nodes <= f so liveness invariants
///    stay meaningful (safety invariants would hold regardless);
///  - every fault ends before `duration - tail` so the run always has a
///    fault-free tail for the convergence/progress invariants.

/// One crash/restart pair. `wipe_disk` erases the node's disk mid-window;
/// `corrupt_wal` flips bits in the WAL head frame mid-window. Either forces
/// the generator to enable state sync (otherwise the restart is refused by
/// design and the node would stay down).
struct CrashFault {
  NodeId node = 0;
  TimeNs crash_at = 0;
  TimeNs restart_at = 0;
  bool wipe_disk = false;
  bool corrupt_wal = false;
};

/// Messages crossing the side boundary are delayed until `to` (plus normal
/// delivery latency): a clean partition/heal pair expressed as pure added
/// delay, which keeps the net::Adversary contract (never accelerate, never
/// drop) and therefore the parallel executor's lookahead sound.
/// Bit i of side_mask puts consensus node i on side A; client pools are
/// co-located with their target node and inherit its side.
struct PartitionFault {
  TimeNs from = 0;
  TimeNs to = 0;
  std::uint32_t side_mask = 0;
};

/// Adds up to `max_extra` of random delay to every message delivered to
/// `victim` (kNoNode = every node) inside the window — an adversarial
/// delay burst in the style of the targeted reordering attacks (§V).
struct DelayFault {
  TimeNs from = 0;
  TimeNs to = 0;
  TimeNs max_extra = 0;
  NodeId victim = kNoNode;
};

/// Byzantine behaviours the generator can assign to a slot. Protocol-level
/// variants come from src/attacks; the sync variants misbehave only in the
/// state-transfer protocol (serving garbage chunks / a wrong manifest).
enum class ByzKind : std::uint8_t {
  kSilent = 0,
  kReplayInit = 1,
  kSkewedPrediction = 2,
  kLowballStatus = 3,
  kSyncGarbage = 4,
  kSyncWrongManifest = 5,
};

const char* to_string(ByzKind kind);
bool byz_kind_from_string(const std::string& s, ByzKind& out);

struct ByzFault {
  NodeId node = 0;
  ByzKind kind = ByzKind::kSilent;
};

/// Open-loop workload faults (only valid on plans with a mempool — see
/// ScenarioPlan::open_loop()). All of them exercise admission/backpressure
/// edges rather than the consensus protocol itself.

/// Every open-loop pool multiplies its fee bids inside the window — a fee
/// spike reorders the mempool under the incumbents and drives evictions.
struct FeeSpikeFault {
  TimeNs from = 0;
  TimeNs to = 0;
  std::uint32_t mult = 2;
};

/// Every open-loop pool emits `txs` extra arrivals at one instant —
/// overflow-at-tick, the worst-case admission burst.
struct OverflowFault {
  TimeNs at = 0;
  std::uint32_t txs = 0;
};

/// Every node's mempool shrinks to `capacity` inside the window (evicting
/// the surplus through the reject path) and is restored after — an
/// admission flap.
struct FlapFault {
  TimeNs from = 0;
  TimeNs to = 0;
  std::uint32_t capacity = 8;
};

enum class Protocol : std::uint8_t { kLyra = 0, kPompe = 1 };

/// Every fault (including heals and restarts) must end this long before the
/// run does. One commit over the three-continents topology costs ~1.2-1.5s
/// at delta = 160ms, and recovery adds resync + catch-up on top, so the
/// progress/convergence invariants need a quiet tail longer than that.
/// When client resubmission is on, the wave in flight at the heal may be
/// refused (it missed its synchrony window), and the *retry* can straddle
/// the heal and be refused once more — recovery then takes two resubmit
/// cycles, which required_tail() adds for such plans.
/// validate_plan() enforces the tail, which also stops the minimizer from
/// shrinking `duration` into a manufactured liveness failure.
inline constexpr TimeNs kFaultTail = ms(2500);
/// Faults start after the cluster has warmed up (distance probes, first
/// client waves) so they hit a live protocol, not an idle one.
inline constexpr TimeNs kFaultWarmup = ms(800);
/// Extra tail for open-loop plans: arrivals stop required_tail() before
/// the end, and the last transaction still needs to drain — worst case it
/// bounces off a full mempool kOpenLoopRetries times at kOpenLoopBackoff
/// (doubling, capped at kOpenLoopBackoffCap) before its terminal reject,
/// or sits in a partial batch until the flush timer carves it.
inline constexpr TimeNs kOpenLoopDrain = ms(1500);
/// The runner's fixed open-loop retry policy (small on purpose: the drain
/// bound above covers the full retry ladder plus one commit).
inline constexpr std::uint32_t kOpenLoopRetries = 3;
inline constexpr TimeNs kOpenLoopBackoff = ms(100);
inline constexpr TimeNs kOpenLoopBackoffCap = ms(400);

/// The complete scenario: configuration axes plus the fault list.
struct ScenarioPlan {
  std::uint64_t seed = 0;  ///< drives every in-run random choice
  Protocol protocol = Protocol::kLyra;
  std::uint32_t n = 4;
  std::uint32_t clients_per_node = 16;
  std::uint32_t batch_size = 16;
  TimeNs duration = 0;
  unsigned threads = 1;
  bool state_sync = false;
  TimeNs resubmit_timeout = 0;  ///< 0 = resubmission off

  /// Open-loop mode: > 0 gives every node a fee-priority mempool of this
  /// capacity and replaces the closed-loop pools with open-loop traffic
  /// sources at `arrival_rate` tx/s per node (docs/WORKLOAD.md). Open-loop
  /// plans exclude crash faults (mempool contents are not journaled) and
  /// closed-loop resubmission (the open pools carry their own backoff).
  std::uint32_t mempool_capacity = 0;
  std::uint32_t arrival_rate = 0;  ///< tx/s per pool; 0 only when closed

  std::vector<CrashFault> crashes;
  std::vector<PartitionFault> partitions;
  std::vector<DelayFault> delays;
  std::vector<ByzFault> byz;
  std::vector<FeeSpikeFault> fee_spikes;
  std::vector<OverflowFault> overflows;
  std::vector<FlapFault> flaps;

  std::uint32_t f() const { return (n - 1) / 3; }
  bool open_loop() const { return mempool_capacity > 0; }
  /// Quiet time every fault must leave before the end of the run.
  TimeNs required_tail() const {
    return kFaultTail + 2 * resubmit_timeout +
           (open_loop() ? kOpenLoopDrain : 0);
  }
  std::size_t fault_count() const {
    return crashes.size() + partitions.size() + delays.size() + byz.size() +
           fee_spikes.size() + overflows.size() + flaps.size();
  }
};

/// Deterministically expands a seed into a plan. Same seed, same plan —
/// the corpus stores seeds for fuzzer-found programs and full programs for
/// minimized reproducers.
ScenarioPlan generate_plan(std::uint64_t seed);

/// Human-readable, diff-friendly one-fact-per-line artifact format.
std::string serialize_plan(const ScenarioPlan& plan);

/// Parses serialize_plan() output. Returns false (with `error` set) on
/// malformed input; never aborts — corpus files are untrusted inputs.
bool parse_plan(const std::string& text, ScenarioPlan& plan,
                std::string& error);

/// Structural validity: bounds on n/threads/duration, fault windows inside
/// the run, crash windows per-node disjoint, byz slots distinct and <= f.
/// The runner refuses invalid plans instead of asserting.
bool validate_plan(const ScenarioPlan& plan, std::string& error);

}  // namespace lyra::fuzz
