#include "fuzz/minimizer.hpp"

#include <algorithm>
#include <set>
#include <string>

namespace lyra::fuzz {

namespace {

bool involves_equivalence(const std::vector<Violation>& v) {
  for (const Violation& viol : v) {
    if (viol.invariant == "serial-parallel-equivalence") return true;
  }
  return false;
}

/// Remap a 7-node plan onto 4 nodes when every fault already names a node
/// below 4 (no id rewriting — rewriting would change which schedule the
/// seed reproduces more than shrinking does).
bool shrink_n(const ScenarioPlan& plan, ScenarioPlan& out) {
  if (plan.n <= 4) return false;
  for (const CrashFault& c : plan.crashes) {
    if (c.node >= 4) return false;
  }
  for (const ByzFault& b : plan.byz) {
    if (b.node >= 4) return false;
  }
  for (const DelayFault& d : plan.delays) {
    if (d.victim != kNoNode && d.victim >= 4) return false;
  }
  out = plan;
  out.n = 4;
  for (PartitionFault& p : out.partitions) p.side_mask &= 0xF;
  return true;
}

}  // namespace

MinimizeResult minimize_plan(
    const ScenarioPlan& failing, std::size_t max_runs,
    const std::function<void(const std::string&)>& log) {
  MinimizeResult result;
  result.plan = failing;

  RunOptions opts;
  // A candidate counts as "still failing" only if it trips one of the
  // invariants the original plan tripped. Accepting *any* violation lets
  // the reproducer drift onto an unrelated bug mid-shrink and the emitted
  // artifact stops witnessing the failure being minimized.
  std::set<std::string> target;
  const auto oracle = [&](const ScenarioPlan& candidate,
                          std::vector<Violation>* out) {
    std::string err;
    if (!validate_plan(candidate, err)) return false;
    ++result.oracle_runs;
    RunReport rep = run_plan(candidate, opts);
    if (out != nullptr) *out = rep.violations;
    if (target.empty()) return !rep.violations.empty();
    for (const Violation& v : rep.violations) {
      if (target.count(v.invariant) != 0) return true;
    }
    return false;
  };

  // Baseline with the caller-visible options; decide whether shrinking
  // needs the (2x more expensive) equivalence replay at every step.
  std::vector<Violation> baseline;
  if (!oracle(failing, &baseline)) {
    // Not actually failing (or invalid): nothing to shrink.
    result.violations = baseline;
    return result;
  }
  result.violations = baseline;
  for (const Violation& v : baseline) target.insert(v.invariant);
  opts.check_equivalence = involves_equivalence(baseline);

  const auto accept = [&](const ScenarioPlan& candidate,
                          const char* what) {
    std::vector<Violation> v;
    if (result.oracle_runs >= max_runs) return false;
    if (!oracle(candidate, &v)) return false;
    result.plan = candidate;
    result.violations = std::move(v);
    if (log) {
      log(std::string("kept: ") + what + " (" +
          std::to_string(result.plan.fault_count()) + " faults left)");
    }
    return true;
  };

  bool progress = true;
  while (progress && result.oracle_runs < max_runs) {
    progress = false;

    // 1. Drop whole faults, one at a time (largest lever first).
    for (std::size_t i = 0; i < result.plan.crashes.size();) {
      ScenarioPlan c = result.plan;
      c.crashes.erase(c.crashes.begin() + i);
      if (accept(c, "drop crash")) progress = true;
      else ++i;
    }
    for (std::size_t i = 0; i < result.plan.partitions.size();) {
      ScenarioPlan c = result.plan;
      c.partitions.erase(c.partitions.begin() + i);
      if (accept(c, "drop partition")) progress = true;
      else ++i;
    }
    for (std::size_t i = 0; i < result.plan.delays.size();) {
      ScenarioPlan c = result.plan;
      c.delays.erase(c.delays.begin() + i);
      if (accept(c, "drop delay")) progress = true;
      else ++i;
    }
    for (std::size_t i = 0; i < result.plan.byz.size();) {
      ScenarioPlan c = result.plan;
      c.byz.erase(c.byz.begin() + i);
      if (accept(c, "drop byz")) progress = true;
      else ++i;
    }
    for (std::size_t i = 0; i < result.plan.fee_spikes.size();) {
      ScenarioPlan c = result.plan;
      c.fee_spikes.erase(c.fee_spikes.begin() + i);
      if (accept(c, "drop fee spike")) progress = true;
      else ++i;
    }
    for (std::size_t i = 0; i < result.plan.overflows.size();) {
      ScenarioPlan c = result.plan;
      c.overflows.erase(c.overflows.begin() + i);
      if (accept(c, "drop overflow")) progress = true;
      else ++i;
    }
    for (std::size_t i = 0; i < result.plan.flaps.size();) {
      ScenarioPlan c = result.plan;
      c.flaps.erase(c.flaps.begin() + i);
      if (accept(c, "drop flap")) progress = true;
      else ++i;
    }

    // 2. Drop disk damage inside surviving crash windows.
    for (std::size_t i = 0; i < result.plan.crashes.size(); ++i) {
      if (result.plan.crashes[i].wipe_disk) {
        ScenarioPlan c = result.plan;
        c.crashes[i].wipe_disk = false;
        if (accept(c, "drop wipe")) progress = true;
      }
      if (result.plan.crashes[i].corrupt_wal) {
        ScenarioPlan c = result.plan;
        c.crashes[i].corrupt_wal = false;
        if (accept(c, "drop corrupt")) progress = true;
      }
    }

    // 3. Turn off configuration axes.
    if (result.plan.threads > 1) {
      ScenarioPlan c = result.plan;
      c.threads = 1;
      if (accept(c, "threads=1")) progress = true;
    }
    if (result.plan.state_sync) {
      ScenarioPlan c = result.plan;
      c.state_sync = false;  // rejected by validate if a wipe needs it
      if (accept(c, "state_sync off")) progress = true;
    }
    if (result.plan.resubmit_timeout > 0) {
      ScenarioPlan c = result.plan;
      c.resubmit_timeout = 0;
      if (accept(c, "resubmit off")) progress = true;
    }

    // 4. Shrink the cluster and the load.
    {
      ScenarioPlan c;
      if (shrink_n(result.plan, c) && accept(c, "n=4")) progress = true;
    }
    while (result.plan.clients_per_node > 8) {
      ScenarioPlan c = result.plan;
      c.clients_per_node = std::max(8u, c.clients_per_node / 2);
      if (accept(c, "halve clients")) progress = true;
      else break;
    }

    // 5. Shorten windows (halve toward their start) and the run tail.
    for (std::size_t i = 0; i < result.plan.partitions.size(); ++i) {
      ScenarioPlan c = result.plan;
      PartitionFault& p = c.partitions[i];
      const TimeNs half = (p.to - p.from) / 2;
      if (half < ms(100)) continue;
      p.to = p.from + half;
      if (accept(c, "halve partition")) progress = true;
    }
    for (std::size_t i = 0; i < result.plan.delays.size(); ++i) {
      ScenarioPlan c = result.plan;
      DelayFault& d = c.delays[i];
      const TimeNs half = (d.to - d.from) / 2;
      if (half < ms(100)) continue;
      d.to = d.from + half;
      if (accept(c, "halve delay")) progress = true;
    }
    for (std::size_t i = 0; i < result.plan.crashes.size(); ++i) {
      ScenarioPlan c = result.plan;
      CrashFault& cr = c.crashes[i];
      const TimeNs half = (cr.restart_at - cr.crash_at) / 2;
      if (half < ms(150)) continue;
      cr.restart_at = cr.crash_at + half;
      if (accept(c, "halve crash window")) progress = true;
    }
    for (std::size_t i = 0; i < result.plan.fee_spikes.size(); ++i) {
      ScenarioPlan c = result.plan;
      FeeSpikeFault& s = c.fee_spikes[i];
      const TimeNs half = (s.to - s.from) / 2;
      if (half < ms(100)) continue;
      s.to = s.from + half;
      if (accept(c, "halve fee spike")) progress = true;
    }
    for (std::size_t i = 0; i < result.plan.flaps.size(); ++i) {
      ScenarioPlan c = result.plan;
      FlapFault& fl = c.flaps[i];
      const TimeNs half = (fl.to - fl.from) / 2;
      if (half < ms(100)) continue;
      fl.to = fl.from + half;
      if (accept(c, "halve flap")) progress = true;
    }
    for (std::size_t i = 0; i < result.plan.overflows.size(); ++i) {
      ScenarioPlan c = result.plan;
      OverflowFault& o = c.overflows[i];
      if (o.txs < 16) continue;
      o.txs /= 2;
      if (accept(c, "halve overflow")) progress = true;
    }
    while (result.plan.duration > ms(2500)) {
      ScenarioPlan c = result.plan;
      c.duration -= ms(500);
      if (accept(c, "shorten run")) progress = true;
      else break;
    }
  }

  // Re-verify the reproducer with the full (equivalence-enabled) oracle so
  // the emitted artifact fails exactly as a fresh replay of it will.
  if (!opts.check_equivalence) {
    RunOptions full;
    RunReport rep = run_plan(result.plan, full);
    ++result.oracle_runs;
    result.violations = rep.violations;
  }
  return result;
}

}  // namespace lyra::fuzz
