#include "fuzz/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "attacks/byzantine_lyra.hpp"
#include "crypto/hash.hpp"
#include "fuzz/fuzz_adversary.hpp"
#include "harness/lyra_cluster.hpp"
#include "harness/pompe_cluster.hpp"
#include "workload/open_loop.hpp"

namespace lyra::fuzz {

namespace {

/// The experiment harness's deployment: 3 continents, one client-pool
/// slot co-located with each node.
net::Topology benchmark_topology(std::size_t n) {
  net::Topology t = net::three_continents(n, std::vector<net::Region>(n));
  for (std::size_t i = 0; i < n; ++i) t.placement[n + i] = t.placement[i];
  return t;
}

constexpr TimeNs kClientStart = ms(900);

TimeNs last_fault_end(const ScenarioPlan& plan) {
  TimeNs end = 0;
  for (const CrashFault& c : plan.crashes) end = std::max(end, c.restart_at);
  for (const PartitionFault& p : plan.partitions) end = std::max(end, p.to);
  for (const DelayFault& d : plan.delays) end = std::max(end, d.to);
  for (const FeeSpikeFault& s : plan.fee_spikes) end = std::max(end, s.to);
  for (const OverflowFault& o : plan.overflows) end = std::max(end, o.at);
  for (const FlapFault& fl : plan.flaps) end = std::max(end, fl.to);
  return end;  // 0 when the plan only has whole-run (Byzantine) faults
}

/// Workload knobs for open-loop plans. Fixed small retry ladder: the plan
/// only chooses capacity and rate, and kOpenLoopDrain was sized for this
/// ladder (see fault_program.hpp).
workload::OpenLoopOptions make_open_loop_options(const ScenarioPlan& plan) {
  workload::OpenLoopOptions o;
  o.arrival_rate = plan.arrival_rate;
  o.accounts = 1000;
  o.max_retries = kOpenLoopRetries;
  o.retry_backoff = kOpenLoopBackoff;
  o.retry_backoff_cap = kOpenLoopBackoffCap;
  o.start_at = kClientStart;
  // Arrivals stop at the head of the quiet tail so every transaction can
  // reach a terminal state before the end-of-run resolution sweep.
  o.stop_at = plan.duration - plan.required_tail();
  o.measure_from = kClientStart;
  o.measure_to = plan.duration;
  return o;
}

/// Schedules the open-loop workload faults. All hooks run as ownerless
/// barrier events, so mutating pools and node mempools is race-free under
/// the parallel executor. Open-loop plans have no crash faults, so every
/// node is alive whenever a flap fires.
template <typename Cluster>
void schedule_workload_faults(sim::Simulation& sim, Cluster& cluster,
                              const ScenarioPlan& plan) {
  for (const FeeSpikeFault& s : plan.fee_spikes) {
    sim.schedule_at(s.from, [&cluster, s] {
      for (const auto& pool : cluster.open_pools()) {
        pool->set_fee_multiplier(static_cast<double>(s.mult));
      }
    });
    sim.schedule_at(s.to, [&cluster] {
      for (const auto& pool : cluster.open_pools()) {
        pool->set_fee_multiplier(1.0);
      }
    });
  }
  for (const OverflowFault& o : plan.overflows) {
    sim.schedule_at(o.at, [&cluster, o] {
      for (const auto& pool : cluster.open_pools()) pool->inject_burst(o.txs);
    });
  }
  for (const FlapFault& fl : plan.flaps) {
    sim.schedule_at(fl.from, [&cluster, &plan, fl] {
      for (NodeId i = 0; i < plan.n; ++i) {
        cluster.node(i).set_mempool_capacity(fl.capacity);
      }
    });
    sim.schedule_at(fl.to, [&cluster, &plan] {
      for (NodeId i = 0; i < plan.n; ++i) {
        cluster.node(i).set_mempool_capacity(plan.mempool_capacity);
      }
    });
  }
}

template <typename Cluster>
void collect_open_loop_report(const Cluster& cluster, RunReport& rep) {
  for (const auto& pool : cluster.open_pools()) {
    const workload::OpenLoopStats& s = pool->stats();
    rep.committed_txs += s.committed_total;
    rep.resubmissions += s.resubmissions;
    rep.offered_txs += s.offered;
    rep.backpressure_rejects += s.rejected_events;
    rep.terminal_rejects += s.terminal_rejects;
  }
}

/// Open-loop outcome digest: offered/terminal counts and the unresolved
/// set size pin the pools' externally-observable state, over and above the
/// ledgers.
void add_open_loop_digest(
    crypto::Hasher& h,
    const std::vector<std::unique_ptr<workload::OpenLoopClientPool>>& pools) {
  for (const auto& pool : pools) {
    const workload::OpenLoopStats& s = pool->stats();
    h.add_u64(s.offered);
    h.add_u64(s.committed_total);
    h.add_u64(s.terminal_rejects);
    h.add_u64(s.resubmissions);
    h.add_u64(pool->unresolved());
  }
}

bool is_byz_kind(const ScenarioPlan& plan, NodeId node, ByzKind kind) {
  for (const ByzFault& b : plan.byz) {
    if (b.node == node && b.kind == kind) return true;
  }
  return false;
}

std::vector<bool> byz_mask(const ScenarioPlan& plan) {
  std::vector<bool> mask(plan.n, false);
  for (const ByzFault& b : plan.byz) mask[b.node] = true;
  return mask;
}

/// Drop exact repeats: a safety violation persists once tripped, so every
/// later sweep would re-report it verbatim.
void dedup_violations(std::vector<Violation>& v) {
  std::set<std::pair<std::string, std::string>> seen;
  std::vector<Violation> out;
  for (Violation& viol : v) {
    if (!seen.insert({viol.invariant, viol.detail}).second) continue;
    out.push_back(std::move(viol));
  }
  v = std::move(out);
}

harness::NodeFactory make_node_factory(const ScenarioPlan& plan) {
  std::vector<ByzFault> byz = plan.byz;
  return [byz](sim::Simulation* sim, net::Network* net, NodeId id,
               const core::Config& cfg, const crypto::KeyRegistry* reg)
             -> std::unique_ptr<core::LyraNode> {
    for (const ByzFault& b : byz) {
      if (b.node != id) continue;
      switch (b.kind) {
        case ByzKind::kSilent:
          return std::make_unique<attacks::SilentLyraNode>(sim, net, id,
                                                           cfg, reg);
        case ByzKind::kReplayInit:
          return std::make_unique<attacks::ReplayInitLyraNode>(sim, net, id,
                                                               cfg, reg);
        case ByzKind::kSkewedPrediction:
          // Skew by exactly λ: the boundary the validation rule guards.
          return std::make_unique<attacks::SkewedPredictionLyraNode>(
              sim, net, id, cfg, reg, cfg.lambda);
        case ByzKind::kLowballStatus:
          return std::make_unique<attacks::LowballStatusLyraNode>(sim, net,
                                                                  id, cfg,
                                                                  reg);
        case ByzKind::kSyncGarbage:
        case ByzKind::kSyncWrongManifest:
          // Correct consensus behaviour; the statesync manager is switched
          // to its Byzantine serving mode after construction.
          return std::make_unique<core::LyraNode>(sim, net, id, cfg, reg);
      }
    }
    return std::make_unique<core::LyraNode>(sim, net, id, cfg, reg);
  };
}

void apply_sync_byzantine(harness::LyraCluster& cluster,
                          const ScenarioPlan& plan) {
  for (const ByzFault& b : plan.byz) {
    if (b.kind != ByzKind::kSyncGarbage &&
        b.kind != ByzKind::kSyncWrongManifest) {
      continue;
    }
    statesync::StateSyncManager* mgr = cluster.node(b.node).statesync();
    if (mgr == nullptr) continue;
    mgr->set_byzantine_serving(b.kind == ByzKind::kSyncGarbage
                                   ? statesync::ByzantineSyncMode::kGarbageChunks
                                   : statesync::ByzantineSyncMode::kWrongManifest);
  }
}

/// Final-state digest for the serial==parallel equality check: everything
/// externally observable about the run's outcome — per-node ledgers (via
/// the incremental chain hash), liveness of each slot, and what every
/// client pool saw committed.
crypto::Digest lyra_run_digest(harness::LyraCluster& cluster,
                               const ScenarioPlan& plan) {
  crypto::Hasher h;
  for (NodeId i = 0; i < plan.n; ++i) {
    h.add_u32(i);
    if (!cluster.node_alive(i)) {
      h.add_str("down");
      continue;
    }
    h.add(cluster.node(i).chain_hash());
    h.add_u64(cluster.node(i).ledger().size());
    h.add_u64(cluster.node(i).commit_state().late_accepts());
  }
  for (const auto& pool : cluster.pools()) {
    h.add_u64(pool->committed_total());
    h.add_u64(pool->resubmissions());
  }
  add_open_loop_digest(h, cluster.open_pools());
  return h.digest();
}

crypto::Digest pompe_run_digest(harness::PompeCluster& cluster,
                                const ScenarioPlan& plan) {
  crypto::Hasher h;
  for (NodeId i = 0; i < plan.n; ++i) {
    h.add_u32(i);
    for (const pompe::PompeCommitted& c : cluster.node(i).ledger()) {
      h.add_i64(c.assigned_ts);
      h.add(c.batch_digest);
      h.add_u32(c.proposer);
      h.add_u32(c.tx_count);
    }
  }
  for (const auto& pool : cluster.pools()) {
    h.add_u64(pool->committed_total());
  }
  add_open_loop_digest(h, cluster.open_pools());
  return h.digest();
}

/// Wires the in-run sweep/fault schedule shared by both protocols.
/// `sweeps` fire as ownerless events (barriers under the parallel
/// executor), so reading cross-node state is safe.
void schedule_sweeps(sim::Simulation& sim, const ScenarioPlan& plan,
                     const RunOptions& opts, CheckContext& ctx,
                     const InvariantRegistry& reg, bool& tripped,
                     std::vector<Violation>& out) {
  for (TimeNs t = opts.check_interval; t < plan.duration;
       t += opts.check_interval) {
    sim.schedule_at(t, [&sim, &ctx, &reg, &tripped, &out] {
      if (tripped) return;  // first witness is enough; keep the run cheap
      ctx.now = sim.now();
      std::vector<Violation> v = reg.run(ctx);
      if (v.empty()) return;
      tripped = true;
      out.insert(out.end(), v.begin(), v.end());
    });
  }
}

void run_lyra_plan(const ScenarioPlan& plan, const RunOptions& opts,
                   unsigned threads, RunReport& rep, crypto::Digest& digest) {
  harness::LyraClusterOptions co;
  co.config.n = plan.n;
  co.config.f = plan.f();
  co.config.delta = ms(160);  // 1.2x the longest one-way leg
  co.config.batch_size = plan.batch_size;
  // Open-loop plans keep payloads so the double-commit invariant can
  // decode committed workload batches.
  co.config.retain_payloads = plan.state_sync || plan.open_loop();
  co.config.mempool_capacity = plan.mempool_capacity;
  co.topology = benchmark_topology(plan.n);
  co.seed = plan.seed;
  co.threads = threads;
  co.durable_storage = !plan.crashes.empty() || plan.state_sync;
  co.state_sync = plan.state_sync;
  if (!plan.byz.empty()) co.node_factory = make_node_factory(plan);

  harness::LyraCluster cluster(std::move(co));
  apply_sync_byzantine(cluster, plan);
  FuzzAdversary adversary(plan.n, plan.partitions, plan.delays);
  if (!plan.partitions.empty() || !plan.delays.empty()) {
    cluster.network().set_adversary(&adversary);
  }
  for (NodeId i = 0; i < plan.n; ++i) {
    if (is_byz_kind(plan, i, ByzKind::kSilent)) continue;  // dead target
    if (plan.open_loop()) {
      cluster.add_open_loop_pool(i, make_open_loop_options(plan), plan.seed);
      continue;
    }
    client::ClientPool& pool = cluster.add_client_pool(
        i, plan.clients_per_node, kClientStart, kClientStart, plan.duration);
    if (plan.resubmit_timeout > 0) {
      pool.set_resubmit_timeout(plan.resubmit_timeout);
    }
  }

  sim::Simulation& sim = cluster.simulation();
  schedule_workload_faults(sim, cluster, plan);
  for (const CrashFault& c : plan.crashes) {
    // Guarded callbacks instead of schedule_crash_restart: a corpus plan
    // may race faults in ways the bare harness hooks would assert on.
    sim.schedule_at(c.crash_at, [&cluster, c] {
      if (cluster.node_alive(c.node)) cluster.crash_node(c.node);
    });
    const TimeNs window = c.restart_at - c.crash_at;
    if (c.wipe_disk) {
      sim.schedule_at(c.crash_at + window * 2 / 5, [&cluster, c] {
        if (!cluster.node_alive(c.node)) cluster.wipe_disk(c.node);
      });
    }
    if (c.corrupt_wal) {
      sim.schedule_at(c.crash_at + window / 2, [&cluster, c] {
        if (!cluster.node_alive(c.node)) cluster.corrupt_wal(c.node);
      });
    }
    sim.schedule_at(c.restart_at, [&cluster, c] {
      if (!cluster.node_alive(c.node)) cluster.restart_node(c.node);
    });
  }

  std::size_t ledger_at_last_fault = 0;
  const TimeNs fault_end = last_fault_end(plan);
  if (fault_end > 0 && fault_end < plan.duration) {
    sim.schedule_at(fault_end + ms(1), [&cluster, &ledger_at_last_fault] {
      ledger_at_last_fault = cluster.max_ledger_length();
    });
  }

  CheckContext ctx;
  ctx.plan = &plan;
  ctx.lyra = &cluster;
  ctx.is_byz = byz_mask(plan);
  const InvariantRegistry reg = InvariantRegistry::standard();
  bool tripped = false;
  schedule_sweeps(sim, plan, opts, ctx, reg, tripped, rep.violations);

  cluster.start();
  cluster.run_for(plan.duration);

  ctx.final_phase = true;
  ctx.now = sim.now();
  ctx.ledger_at_last_fault = ledger_at_last_fault;
  std::vector<Violation> final_v = reg.run(ctx);
  rep.violations.insert(rep.violations.end(), final_v.begin(), final_v.end());
  dedup_violations(rep.violations);

  rep.min_ledger = cluster.min_ledger_length();
  rep.max_ledger = cluster.max_ledger_length();
  rep.restarts = cluster.restarts();
  rep.late_accepts = cluster.total_late_accepts();
  rep.partitioned_messages = adversary.partitioned_messages();
  rep.delayed_messages = adversary.delayed_messages();
  rep.sync_installs_refused = cluster.statesync_totals().installs_refused;
  for (const auto& pool : cluster.pools()) {
    rep.committed_txs += pool->committed_total();
    rep.resubmissions += pool->resubmissions();
  }
  collect_open_loop_report(cluster, rep);
  digest = lyra_run_digest(cluster, plan);
}

void run_pompe_plan(const ScenarioPlan& plan, const RunOptions& opts,
                    unsigned threads, RunReport& rep,
                    crypto::Digest& digest) {
  harness::PompeClusterOptions co;
  co.config.n = plan.n;
  co.config.f = plan.f();
  co.config.delta = ms(160);
  co.config.batch_size = plan.batch_size;
  co.config.initial_leader = 0;
  co.config.mempool_capacity = plan.mempool_capacity;
  co.topology = benchmark_topology(plan.n);
  co.seed = plan.seed;
  co.threads = threads;

  harness::PompeCluster cluster(std::move(co));
  FuzzAdversary adversary(plan.n, plan.partitions, plan.delays);
  if (!plan.partitions.empty() || !plan.delays.empty()) {
    cluster.network().set_adversary(&adversary);
  }
  for (NodeId i = 0; i < plan.n; ++i) {
    if (plan.open_loop()) {
      cluster.add_open_loop_pool(i, make_open_loop_options(plan), plan.seed);
      continue;
    }
    client::ClientPool& pool = cluster.add_client_pool(
        i, plan.clients_per_node, kClientStart, kClientStart, plan.duration);
    if (plan.resubmit_timeout > 0) {
      pool.set_resubmit_timeout(plan.resubmit_timeout);
    }
  }

  sim::Simulation& sim = cluster.simulation();
  schedule_workload_faults(sim, cluster, plan);
  std::size_t ledger_at_last_fault = 0;
  const TimeNs fault_end = last_fault_end(plan);
  if (fault_end > 0 && fault_end < plan.duration) {
    sim.schedule_at(fault_end + ms(1), [&cluster, &ledger_at_last_fault] {
      ledger_at_last_fault = cluster.min_ledger_length();
    });
  }

  CheckContext ctx;
  ctx.plan = &plan;
  ctx.pompe = &cluster;
  const InvariantRegistry reg = InvariantRegistry::standard();
  bool tripped = false;
  schedule_sweeps(sim, plan, opts, ctx, reg, tripped, rep.violations);

  cluster.start();
  cluster.run_for(plan.duration);

  ctx.final_phase = true;
  ctx.now = sim.now();
  ctx.ledger_at_last_fault = ledger_at_last_fault;
  std::vector<Violation> final_v = reg.run(ctx);
  rep.violations.insert(rep.violations.end(), final_v.begin(), final_v.end());
  dedup_violations(rep.violations);

  rep.min_ledger = cluster.min_ledger_length();
  rep.max_ledger = rep.min_ledger;
  rep.partitioned_messages = adversary.partitioned_messages();
  rep.delayed_messages = adversary.delayed_messages();
  for (const auto& pool : cluster.pools()) {
    rep.committed_txs += pool->committed_total();
    rep.resubmissions += pool->resubmissions();
  }
  collect_open_loop_report(cluster, rep);
  digest = pompe_run_digest(cluster, plan);
}

void execute(const ScenarioPlan& plan, const RunOptions& opts,
             unsigned threads, RunReport& rep, crypto::Digest& digest) {
  if (plan.protocol == Protocol::kLyra) {
    run_lyra_plan(plan, opts, threads, rep, digest);
  } else {
    run_pompe_plan(plan, opts, threads, rep, digest);
  }
}

}  // namespace

RunReport run_plan(const ScenarioPlan& plan, const RunOptions& opts) {
  RunReport rep;
  rep.plan = plan;
  if (!validate_plan(plan, rep.error)) {
    rep.invalid_plan = true;
    return rep;
  }
  crypto::Digest digest{};
  execute(plan, opts, plan.threads, rep, digest);

  if (opts.check_equivalence && plan.threads > 1) {
    RunReport serial;
    serial.plan = plan;
    crypto::Digest serial_digest{};
    execute(plan, opts, /*threads=*/1, serial, serial_digest);
    if (serial_digest != digest) {
      rep.violations.push_back(
          {"serial-parallel-equivalence",
           "final-state digest differs between threads=" +
               std::to_string(plan.threads) + " and the serial replay (" +
               crypto::digest_short(digest) + " vs " +
               crypto::digest_short(serial_digest) + ")",
           plan.duration});
    }
  }
  return rep;
}

}  // namespace lyra::fuzz
