#include "fuzz/invariants.hpp"

#include <map>
#include <set>
#include <string>

#include "harness/lyra_cluster.hpp"
#include "harness/pompe_cluster.hpp"
#include "support/hex.hpp"
#include "workload/types.hpp"

namespace lyra::fuzz {

namespace {

bool is_correct(const CheckContext& ctx, NodeId id) {
  return id >= ctx.is_byz.size() || !ctx.is_byz[id];
}

/// Correct, currently-alive consensus nodes — the set every safety
/// property quantifies over. A crashed node has no ledger to inspect; a
/// Byzantine one is allowed to have anything.
std::vector<NodeId> correct_alive_lyra(const CheckContext& ctx) {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < ctx.plan->n; ++i) {
    if (ctx.lyra->node_alive(i) && is_correct(ctx, i)) out.push_back(i);
  }
  return out;
}

std::string node_str(NodeId id) { return "node " + std::to_string(id); }

// --- safety checks (run during and at the end) ---

void check_prefix_agreement(const CheckContext& ctx,
                            std::vector<Violation>& out) {
  if (ctx.pompe != nullptr) {
    if (!ctx.pompe->ledgers_prefix_consistent()) {
      out.push_back({"prefix-agreement",
                     "pompe ledgers are not pairwise prefix-related",
                     ctx.now});
    }
    return;
  }
  const std::vector<NodeId> nodes = correct_alive_lyra(ctx);
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < nodes.size(); ++b) {
      const auto& la = ctx.lyra->node(nodes[a]).ledger();
      const auto& lb = ctx.lyra->node(nodes[b]).ledger();
      const std::size_t common = std::min(la.size(), lb.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (la[i].seq == lb[i].seq && la[i].cipher_id == lb[i].cipher_id) {
          continue;
        }
        out.push_back(
            {"prefix-agreement",
             node_str(nodes[a]) + " and " + node_str(nodes[b]) +
                 " diverge at ledger position " + std::to_string(i) +
                 " (seq " + std::to_string(la[i].seq) + " vs " +
                 std::to_string(lb[i].seq) + ")",
             ctx.now});
        break;  // one witness per pair is enough to triage
      }
    }
  }
}

void check_ledger_order(const CheckContext& ctx, std::vector<Violation>& out) {
  if (ctx.pompe != nullptr) {
    // Pompē orders by assigned_ts only *within* a block; across blocks the
    // timestamp may regress (the ordering/consensus gap Lyra closes, §III).
    // The checkable property is: block heights non-decreasing, and strict
    // (ts, digest) order inside each block.
    for (NodeId i = 0; i < ctx.plan->n; ++i) {
      const auto& ledger = ctx.pompe->node(i).ledger();
      for (std::size_t k = 1; k < ledger.size(); ++k) {
        const auto& prev = ledger[k - 1];
        const auto& cur = ledger[k];
        if (prev.block_height > cur.block_height) {
          out.push_back({"ledger-order",
                         node_str(i) +
                             ": block height decreases at position " +
                             std::to_string(k),
                         ctx.now});
          break;
        }
        if (prev.block_height == cur.block_height &&
            std::pair(prev.assigned_ts, prev.batch_digest) >=
                std::pair(cur.assigned_ts, cur.batch_digest)) {
          out.push_back({"ledger-order",
                         node_str(i) +
                             ": (ts, digest) not strictly increasing inside "
                             "block " +
                             std::to_string(cur.block_height) +
                             " at position " + std::to_string(k),
                         ctx.now});
          break;
        }
      }
    }
    return;
  }
  for (NodeId i : correct_alive_lyra(ctx)) {
    const auto& ledger = ctx.lyra->node(i).ledger();
    for (std::size_t k = 1; k < ledger.size(); ++k) {
      const auto& prev = ledger[k - 1];
      const auto& cur = ledger[k];
      if (prev.seq < cur.seq ||
          (prev.seq == cur.seq && prev.cipher_id < cur.cipher_id)) {
        continue;
      }
      out.push_back({"ledger-order",
                     node_str(i) + ": (seq, cipher) not strictly increasing "
                                   "at position " +
                         std::to_string(k) + " (seq " +
                         std::to_string(prev.seq) + " then " +
                         std::to_string(cur.seq) + ")",
                     ctx.now});
      break;
    }
  }
}

void check_no_dup_commit(const CheckContext& ctx,
                         std::vector<Violation>& out) {
  if (ctx.pompe != nullptr) return;  // covered by ledger-order + prefix
  for (NodeId i : correct_alive_lyra(ctx)) {
    const auto& ledger = ctx.lyra->node(i).ledger();
    std::set<crypto::Digest> ciphers;
    std::set<std::pair<NodeId, std::uint64_t>> instances;
    for (std::size_t k = 0; k < ledger.size(); ++k) {
      if (!ciphers.insert(ledger[k].cipher_id).second) {
        out.push_back({"no-dup-commit",
                       node_str(i) + ": cipher " +
                           to_hex({ledger[k].cipher_id.data(), 4}) +
                           " committed twice (second at position " +
                           std::to_string(k) + ")",
                       ctx.now});
      }
      const auto inst = std::make_pair(ledger[k].inst.proposer,
                                       ledger[k].inst.index);
      if (!instances.insert(inst).second) {
        out.push_back({"no-dup-commit",
                       node_str(i) + ": instance (" +
                           std::to_string(inst.first) + ", " +
                           std::to_string(inst.second) +
                           ") committed twice (second at position " +
                           std::to_string(k) + ")",
                       ctx.now});
      }
    }
  }
}

void check_per_sender_order(const CheckContext& ctx,
                            std::vector<Violation>& out) {
  if (ctx.pompe != nullptr) return;
  // Per-sender order preservation: a proposer's batches enter the ledger
  // in submission (= proposal-index) order, because sequence numbers come
  // from timestamp medians and a sender's batches get monotone timestamps
  // at every correct node. That argument needs *stable* ordering quorums:
  // when a node crashes, goes Byzantine, or sits behind a partition
  // mid-stream, two concurrent batches from the same (correct!) proposer
  // can draw their medians from different effective quorums and invert.
  // The same goes for delay bursts: late-arriving ORDER messages shift a
  // batch's timestamp at the victim and the medians of two in-flight
  // batches can cross. λ-fairness still bounds the inversion — that is
  // what check_lambda_fairness verifies — but strict FIFO is only a
  // theorem for fault-free schedules, so only those plans check it.
  if (ctx.plan->fault_count() != 0) return;
  for (NodeId i : correct_alive_lyra(ctx)) {
    const auto& ledger = ctx.lyra->node(i).ledger();
    std::map<NodeId, std::uint64_t> last_index;
    for (std::size_t k = 0; k < ledger.size(); ++k) {
      const NodeId proposer = ledger[k].inst.proposer;
      if (!is_correct(ctx, proposer)) continue;
      const auto it = last_index.find(proposer);
      if (it != last_index.end() && ledger[k].inst.index <= it->second) {
        out.push_back({"per-sender-order",
                       node_str(i) + ": proposer " +
                           std::to_string(proposer) + " index " +
                           std::to_string(ledger[k].inst.index) +
                           " commits after index " +
                           std::to_string(it->second) + " (position " +
                           std::to_string(k) + ")",
                       ctx.now});
      }
      last_index[proposer] = ledger[k].inst.index;
    }
  }
}

void check_lambda_fairness(const CheckContext& ctx,
                           std::vector<Violation>& out) {
  if (ctx.pompe != nullptr) return;
  // Lemma 6 completeness: extraction never passes an entry that later
  // turns out accepted (a late accept would mean the committed order
  // violated the λ-bounded reordering guarantee).
  for (NodeId i : correct_alive_lyra(ctx)) {
    const std::uint64_t late =
        ctx.lyra->node(i).commit_state().late_accepts();
    if (late == 0) continue;
    out.push_back({"lambda-fairness",
                   node_str(i) + ": " + std::to_string(late) +
                       " late accept(s) — an accepted entry arrived below "
                       "the extraction cursor",
                   ctx.now});
  }
}

void check_resync_gate_quorum(const CheckContext& ctx,
                              std::vector<Violation>& out) {
  if (ctx.pompe != nullptr) return;
  // Lemma 6's precondition, checked white-box: a reopened extraction gate
  // must have counted f+1 distinct *peer* replies (the self-reply carries
  // nothing the node lacks). The miscount is unobservable from ledgers
  // alone under <= f faults — all counted peers would have to share the
  // hole — which is exactly why this is checked on the node state.
  for (const CrashFault& c : ctx.plan->crashes) {
    if (!is_correct(ctx, c.node) || !ctx.lyra->node_alive(c.node)) continue;
    const auto& node = ctx.lyra->node(c.node);
    if (node.resync_pending()) continue;  // gate not open (yet)
    const std::uint32_t peers = node.resync_peer_replies_at_open();
    if (peers == 0) continue;  // gate never went through a restart cycle
    if (peers >= ctx.plan->f() + 1) continue;
    out.push_back({"resync-gate-quorum",
                   node_str(c.node) + ": extraction gate reopened after " +
                       std::to_string(peers) + " peer replies (needs " +
                       std::to_string(ctx.plan->f() + 1) + ")",
                   ctx.now});
  }
}

void check_mempool_no_double_commit(const CheckContext& ctx,
                                    std::vector<Violation>& out) {
  // An admitted transaction must enter the committed order at most once:
  // the mempool's seen-set retains pending, carved-in-flight, and
  // committed ids — only ids from dropped (never-committed) batches are
  // reinstated and forgotten — and every submission of a tx (including
  // retries after a reject) targets the same node, so a duplicate in any
  // single ledger means admission dedup or carve settlement broke. Checked
  // per node — cross-node duplication is impossible by construction (ids
  // embed the originating pool).
  if (!ctx.plan->open_loop()) return;
  if (ctx.pompe != nullptr) {
    for (NodeId i = 0; i < ctx.plan->n; ++i) {
      const auto& node = ctx.pompe->node(i);
      std::set<std::uint64_t> seen;
      bool flagged = false;
      for (const pompe::PompeCommitted& c : node.ledger()) {
        const Bytes* payload = node.batch_payload(c.batch_digest);
        if (payload == nullptr) continue;
        std::vector<workload::WorkloadTx> txs;
        if (!workload::decode_batch(*payload, &txs)) continue;
        for (const workload::WorkloadTx& tx : txs) {
          if (seen.insert(tx.id).second) continue;
          out.push_back({"mempool-no-double-commit",
                         node_str(i) + ": workload tx " +
                             std::to_string(tx.id) +
                             " appears twice in the committed order",
                         ctx.now});
          flagged = true;
          break;  // one witness per node is enough to triage
        }
        if (flagged) break;
      }
    }
    return;
  }
  for (NodeId i : correct_alive_lyra(ctx)) {
    const auto& ledger = ctx.lyra->node(i).ledger();
    std::set<std::uint64_t> seen;
    bool flagged = false;
    for (const core::CommittedBatch& entry : ledger) {
      // Payload is empty until revealed; a not-yet-revealed batch is
      // checked on a later sweep once reconstruction finishes.
      std::vector<workload::WorkloadTx> txs;
      if (!workload::decode_batch(entry.payload, &txs)) continue;
      for (const workload::WorkloadTx& tx : txs) {
        if (seen.insert(tx.id).second) continue;
        out.push_back({"mempool-no-double-commit",
                       node_str(i) + ": workload tx " +
                           std::to_string(tx.id) +
                           " appears twice in the committed order",
                       ctx.now});
        flagged = true;
        break;
      }
      if (flagged) break;
    }
  }
}

// --- end-of-run checks ---

void check_recovery_convergence(const CheckContext& ctx,
                                std::vector<Violation>& out) {
  if (!ctx.final_phase || ctx.pompe != nullptr) return;
  for (const CrashFault& c : ctx.plan->crashes) {
    const harness::NodeRecoveryInfo& info = ctx.lyra->recovery_info(c.node);
    if (!info.happened) {
      out.push_back({"recovery-convergence",
                     node_str(c.node) + " never completed its restart",
                     ctx.now});
      continue;
    }
    if (!info.error.empty()) {
      // Plans are validated so every injected disk fault has state sync
      // available; a refusal here means recovery triage regressed.
      out.push_back({"recovery-convergence",
                     node_str(c.node) + " restart refused: " + info.error,
                     ctx.now});
      continue;
    }
    if (!ctx.lyra->node_alive(c.node)) {
      out.push_back({"recovery-convergence",
                     node_str(c.node) + " is down after a completed restart",
                     ctx.now});
      continue;
    }
    if (ctx.lyra->node(c.node).resync_pending()) {
      out.push_back({"recovery-convergence",
                     node_str(c.node) +
                         ": resync gate still closed at the end of the "
                         "fault-free tail",
                     ctx.now});
    }
  }
}

void check_post_fault_progress(const CheckContext& ctx,
                               std::vector<Violation>& out) {
  if (!ctx.final_phase || ctx.plan->fault_count() == 0) return;
  // Both protocols may refuse an entry whose messages miss the synchrony
  // window a fault pushed them out of; the liveness theorem assumes the
  // client retries. Without resubmission an empty post-fault tail is
  // permitted behaviour, so only resubmitting plans are held to progress.
  if (ctx.plan->resubmit_timeout == 0) return;
  const std::size_t now_len = ctx.pompe != nullptr
                                  ? ctx.pompe->min_ledger_length()
                                  : ctx.lyra->max_ledger_length();
  if (now_len <= ctx.ledger_at_last_fault) {
    out.push_back({"post-fault-progress",
                   "no batch committed after the last fault (ledger stuck "
                   "at " +
                       std::to_string(ctx.ledger_at_last_fault) + ")",
                   ctx.now});
  }
}

void check_open_loop_resolution(const CheckContext& ctx,
                                std::vector<Violation>& out) {
  // Every open-loop transaction must reach a terminal state by the end of
  // the run: committed, or rejected kOpenLoopRetries + 1 times. Arrivals
  // stop required_tail() before the end (which includes kOpenLoopDrain on
  // open-loop plans), so a transaction still outstanding here was dropped
  // by a node, lost its commit notify, or escaped the retry ladder.
  if (!ctx.final_phase || !ctx.plan->open_loop()) return;
  const auto& pools = ctx.lyra != nullptr ? ctx.lyra->open_pools()
                                          : ctx.pompe->open_pools();
  for (std::size_t p = 0; p < pools.size(); ++p) {
    const std::uint64_t stuck = pools[p]->unresolved();
    if (stuck == 0) continue;
    std::string ids;
    for (std::uint64_t id : pools[p]->unresolved_ids(4)) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(id);
    }
    out.push_back({"open-loop-resolution",
                   "pool " + std::to_string(p) + ": " +
                       std::to_string(stuck) +
                       " transaction(s) neither committed nor terminally "
                       "rejected (e.g. ids " +
                       ids + ")",
                   ctx.now});
  }
}

void check_carve_settlement(const CheckContext& ctx,
                            std::vector<Violation>& out) {
  // Liveness of duplicate suppression: a transaction its client still
  // waits on must have a live path to resolution — pending in its target
  // node's mempool, carved into a batch that has not been settled yet, or
  // already committed. An id the mempool *knows* with none of those holds
  // is suppressed forever: every retry is dropped silently as a duplicate
  // and the tx can neither commit nor terminally reject. That is exactly
  // the carved-batch retention bug — a dropped batch must reinstate() its
  // transactions, a committed one confirm() them.
  if (!ctx.final_phase || !ctx.plan->open_loop()) return;
  const auto& pools = ctx.lyra != nullptr ? ctx.lyra->open_pools()
                                          : ctx.pompe->open_pools();
  for (std::size_t p = 0; p < pools.size(); ++p) {
    // Pool p drives node p (the fuzz runners attach one pool per node).
    const NodeId target = static_cast<NodeId>(p);
    if (ctx.lyra != nullptr && !ctx.lyra->node_alive(target)) continue;
    const workload::Mempool* mem =
        ctx.lyra != nullptr ? ctx.lyra->node(target).mempool()
                            : ctx.pompe->node(target).mempool();
    if (mem == nullptr) continue;
    std::set<std::uint64_t> committed;
    bool committed_built = false;
    for (const std::uint64_t id : pools[p]->unresolved_ids(64)) {
      if (!mem->knows(id) || mem->pending(id) || mem->in_flight(id)) {
        continue;
      }
      if (!committed_built) {
        committed_built = true;
        if (ctx.pompe != nullptr) {
          const auto& node = ctx.pompe->node(target);
          for (const pompe::PompeCommitted& c : node.ledger()) {
            const Bytes* payload = node.batch_payload(c.batch_digest);
            if (payload == nullptr) continue;
            std::vector<workload::WorkloadTx> txs;
            if (!workload::decode_batch(*payload, &txs)) continue;
            for (const workload::WorkloadTx& tx : txs) committed.insert(tx.id);
          }
        } else {
          for (const core::CommittedBatch& e :
               ctx.lyra->node(target).ledger()) {
            std::vector<workload::WorkloadTx> txs;
            if (!workload::decode_batch(e.payload, &txs)) continue;
            for (const workload::WorkloadTx& tx : txs) committed.insert(tx.id);
          }
        }
      }
      if (committed.count(id) != 0) continue;
      out.push_back({"carve-settlement",
                     node_str(target) + ": workload tx " + std::to_string(id) +
                         " is duplicate-suppressed but neither pending, "
                         "in a live batch, nor committed — its client can "
                         "never resolve it",
                     ctx.now});
      break;  // one witness per node is enough to triage
    }
  }
}

void check_client_resubmit_lag(const CheckContext& ctx,
                               std::vector<Violation>& out) {
  if (!ctx.final_phase || ctx.plan->resubmit_timeout == 0) return;
  const auto& pools =
      ctx.lyra != nullptr ? ctx.lyra->pools() : ctx.pompe->pools();
  // The resubmit timer re-aims at the earliest outstanding deadline, so a
  // due wave is retried as soon as it is due. Anything past a small
  // scheduling slack means the timer regressed to fixed-period arming.
  const TimeNs slack = ms(50);
  for (std::size_t p = 0; p < pools.size(); ++p) {
    const TimeNs lag = pools[p]->max_resubmit_lag();
    if (lag <= slack) continue;
    out.push_back({"client-resubmit-lag",
                   "pool " + std::to_string(p) + ": a wave waited " +
                       std::to_string(lag / kNsPerMs) +
                       "ms past its resubmit deadline",
                   ctx.now});
  }
}

}  // namespace

std::vector<Violation> InvariantRegistry::run(const CheckContext& ctx) const {
  std::vector<Violation> out;
  for (const Entry& e : entries_) {
    if (!ctx.final_phase && !e.during) continue;
    e.fn(ctx, out);
  }
  return out;
}

InvariantRegistry InvariantRegistry::standard() {
  InvariantRegistry r;
  r.add("prefix-agreement", /*during=*/true, &check_prefix_agreement);
  r.add("ledger-order", /*during=*/true, &check_ledger_order);
  r.add("no-dup-commit", /*during=*/true, &check_no_dup_commit);
  r.add("per-sender-order", /*during=*/true, &check_per_sender_order);
  r.add("lambda-fairness", /*during=*/true, &check_lambda_fairness);
  r.add("resync-gate-quorum", /*during=*/true, &check_resync_gate_quorum);
  r.add("mempool-no-double-commit", /*during=*/true,
        &check_mempool_no_double_commit);
  r.add("recovery-convergence", /*during=*/false, &check_recovery_convergence);
  r.add("post-fault-progress", /*during=*/false, &check_post_fault_progress);
  r.add("open-loop-resolution", /*during=*/false, &check_open_loop_resolution);
  r.add("carve-settlement", /*during=*/false, &check_carve_settlement);
  r.add("client-resubmit-lag", /*during=*/false, &check_client_resubmit_lag);
  return r;
}

}  // namespace lyra::fuzz
