#include "fuzz/fuzzer.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace lyra::fuzz {

namespace {

std::string describe(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out << "; ";
    out << violations[i].invariant << ": " << violations[i].detail;
  }
  return out.str();
}

}  // namespace

FuzzSummary fuzz(const FuzzOptions& options) {
  FuzzSummary summary;
  const auto log = [&](const std::string& line) {
    if (options.log) options.log(line);
  };
  for (std::size_t i = 0; i < options.num_seeds; ++i) {
    const std::uint64_t seed = options.start_seed + i;
    ScenarioPlan plan = generate_plan(seed);
    if (options.threads_override != 0) {
      plan.threads = options.threads_override;
    }
    RunReport report = run_plan(plan);
    ++summary.seeds_run;
    if (report.ok()) {
      log("seed " + std::to_string(seed) + ": ok (" +
          std::to_string(plan.fault_count()) + " faults, " +
          std::to_string(report.committed_txs) + " txs)");
      continue;
    }
    log("seed " + std::to_string(seed) +
        ": FAIL — " + describe(report.violations));

    SeedResult failure;
    failure.seed = seed;
    failure.report = report;
    if (options.minimize && !report.invalid_plan) {
      failure.minimized_result =
          minimize_plan(plan, options.max_minimize_runs, options.log);
      failure.minimized = true;
      log("seed " + std::to_string(seed) + ": minimized to " +
          std::to_string(failure.minimized_result.plan.fault_count()) +
          " faults in " +
          std::to_string(failure.minimized_result.oracle_runs) + " runs");
    }
    if (!options.artifact_dir.empty()) {
      const ScenarioPlan& repro = failure.minimized
                                      ? failure.minimized_result.plan
                                      : plan;
      const std::vector<Violation>& v =
          failure.minimized ? failure.minimized_result.violations
                            : report.violations;
      failure.artifact_path = write_artifact(options.artifact_dir, repro, v);
      if (!failure.artifact_path.empty()) {
        log("seed " + std::to_string(seed) + ": artifact " +
            failure.artifact_path);
      }
    }
    summary.failures.push_back(std::move(failure));
    if (options.stop_on_failure) break;
  }
  return summary;
}

bool load_plan_file(const std::string& path, ScenarioPlan& plan,
                    std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_plan(buf.str(), plan, error);
}

std::string write_artifact(const std::string& dir, const ScenarioPlan& plan,
                           const std::vector<Violation>& violations) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  const std::string path = dir + "/seed-" + std::to_string(plan.seed) +
                           "-faults-" + std::to_string(plan.fault_count()) +
                           ".fuzzplan";
  std::ofstream out(path);
  if (!out) return "";
  out << serialize_plan(plan);
  for (const Violation& v : violations) {
    out << "# violation at " << v.at / kNsPerMs << "ms — " << v.invariant
        << ": " << v.detail << "\n";
  }
  return out ? path : "";
}

}  // namespace lyra::fuzz
