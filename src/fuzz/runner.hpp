#pragma once

#include <string>
#include <vector>

#include "fuzz/fault_program.hpp"
#include "fuzz/invariants.hpp"

namespace lyra::fuzz {

struct RunOptions {
  /// Re-run threads>1 plans serially and compare final-state digests
  /// (serial==parallel equality). The minimizer disables this while
  /// shrinking and re-enables it for the final reproducer.
  bool check_equivalence = true;
  /// Cadence of the in-run safety sweeps. Each sweep runs as an ownerless
  /// (barrier) event, so reads are race-free under the parallel executor.
  TimeNs check_interval = ms(250);
};

/// Outcome of executing one fault program.
struct RunReport {
  ScenarioPlan plan;
  std::vector<Violation> violations;
  bool invalid_plan = false;
  std::string error;  ///< set iff invalid_plan

  // Run summary, for logs and reports.
  std::uint64_t committed_txs = 0;
  std::size_t min_ledger = 0;
  std::size_t max_ledger = 0;
  std::uint64_t restarts = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t late_accepts = 0;
  std::uint64_t partitioned_messages = 0;
  std::uint64_t delayed_messages = 0;
  std::uint64_t sync_installs_refused = 0;
  // Open-loop plans only (all zero otherwise).
  std::uint64_t offered_txs = 0;
  std::uint64_t backpressure_rejects = 0;
  std::uint64_t terminal_rejects = 0;

  bool ok() const { return !invalid_plan && violations.empty(); }
};

/// Builds the cluster the plan describes, installs the adversary,
/// schedules every fault, sweeps the invariant registry during and after
/// the run, and (optionally) replays the plan serially to check
/// serial==parallel equality. Deterministic: same plan, same report.
RunReport run_plan(const ScenarioPlan& plan, const RunOptions& opts = {});

}  // namespace lyra::fuzz
