#include "app/amm.hpp"

#include "support/assert.hpp"

namespace lyra::app {

Amm::Amm(double reserve_base, double reserve_quote, double fee_bps)
    : reserve_base_(reserve_base),
      reserve_quote_(reserve_quote),
      fee_(fee_bps / 10'000.0) {
  LYRA_ASSERT(reserve_base > 0 && reserve_quote > 0,
              "reserves must be positive");
}

double Amm::buy_base(double quote_in) {
  LYRA_ASSERT(quote_in >= 0, "negative input");
  const double effective = quote_in * (1.0 - fee_);
  const double k = reserve_base_ * reserve_quote_;
  const double new_quote = reserve_quote_ + effective;
  const double new_base = k / new_quote;
  const double out = reserve_base_ - new_base;
  reserve_base_ = new_base;
  reserve_quote_ = reserve_quote_ + quote_in;  // fee stays in the pool
  return out;
}

double Amm::sell_base(double base_in) {
  LYRA_ASSERT(base_in >= 0, "negative input");
  const double effective = base_in * (1.0 - fee_);
  const double k = reserve_base_ * reserve_quote_;
  const double new_base = reserve_base_ + effective;
  const double new_quote = k / new_base;
  const double out = reserve_quote_ - new_quote;
  reserve_quote_ = new_quote;
  reserve_base_ = reserve_base_ + base_in;
  return out;
}

SandwichResult execute_sandwich(Amm& amm, double victim_quote,
                                double attack_quote,
                                bool attacker_goes_first) {
  SandwichResult r;
  if (attacker_goes_first) {
    const double attacker_base = amm.buy_base(attack_quote);
    r.victim_base_received = amm.buy_base(victim_quote);
    r.attacker_profit = amm.sell_base(attacker_base) - attack_quote;
  } else {
    r.victim_base_received = amm.buy_base(victim_quote);
    const double attacker_base = amm.buy_base(attack_quote);
    r.attacker_profit = amm.sell_base(attacker_base) - attack_quote;
  }
  return r;
}

}  // namespace lyra::app
