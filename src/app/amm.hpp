#pragma once

#include <cstdint>

#include "support/bytes.hpp"

namespace lyra::app {

/// Constant-product automated market maker (x * y = k) with a basis-point
/// fee — the standard DEX model in which front-running and sandwiching
/// extract value (Daian et al. [10]). The MEV example executes committed
/// transaction streams against it and measures the attacker's profit.
class Amm {
 public:
  Amm(double reserve_base, double reserve_quote, double fee_bps = 30.0);

  /// Spends `quote_in` of the quote asset, returns the base received.
  double buy_base(double quote_in);

  /// Sells `base_in` of the base asset, returns the quote received.
  double sell_base(double base_in);

  /// Marginal price of the base asset in quote units.
  double price() const { return reserve_quote_ / reserve_base_; }

  double reserve_base() const { return reserve_base_; }
  double reserve_quote() const { return reserve_quote_; }

 private:
  double reserve_base_;
  double reserve_quote_;
  double fee_;
};

/// Sandwich accounting against one victim trade: the attacker buys
/// `attack_quote` before the victim's buy and sells the acquired base
/// right after it. Returns the attacker's profit in quote units for this
/// ordering; negative when the attacker's leg executed *after* the victim
/// (i.e. the front-run failed).
struct SandwichResult {
  double attacker_profit = 0.0;
  double victim_base_received = 0.0;
};

SandwichResult execute_sandwich(Amm& amm, double victim_quote,
                                double attack_quote,
                                bool attacker_goes_first);

}  // namespace lyra::app
