#include "app/kvstore.hpp"

namespace lyra::app {

void KvStore::fold(std::string_view key, BytesView value) {
  digest_ = crypto::Hasher()
                .add(digest_)
                .add_str(key)
                .add(value)
                .digest();
}

void KvStore::put(std::string_view key, BytesView value) {
  map_[std::string(key)] = Bytes(value.begin(), value.end());
  fold(key, value);
}

std::optional<Bytes> KvStore::get(std::string_view key) const {
  const auto it = map_.find(std::string(key));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void KvStore::ingest_batch(BytesView payload) {
  const std::string key = "batch/" + std::to_string(batches_++);
  put(key, payload);
}

}  // namespace lyra::app
