#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "crypto/hash.hpp"
#include "support/bytes.hpp"

namespace lyra::app {

/// The benchmark execution sink (§VI-A: "committed transactions are written
/// in a key-value store"). Deterministic: the state digest evolves as a
/// hash chain over applied operations, so two replicas that executed the
/// same committed sequence hold the same digest — a cheap cross-replica
/// safety check.
class KvStore {
 public:
  void put(std::string_view key, BytesView value);
  std::optional<Bytes> get(std::string_view key) const;
  std::size_t size() const { return map_.size(); }

  /// Applies one committed batch payload: the whole payload is stored
  /// under a monotone slot key, mirroring the paper's benchmark sink.
  void ingest_batch(BytesView payload);

  std::uint64_t batches_ingested() const { return batches_; }

  /// Hash chain over every mutation, in application order.
  crypto::Digest state_digest() const { return digest_; }

 private:
  void fold(std::string_view key, BytesView value);

  std::unordered_map<std::string, Bytes> map_;
  crypto::Digest digest_{};
  std::uint64_t batches_ = 0;
};

}  // namespace lyra::app
