#pragma once

#include <cstddef>
#include <vector>

namespace lyra {

/// Streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample collector with exact percentiles. Samples are kept in full; the
/// experiment harness records one sample per committed batch, which stays
/// small enough for exact quantiles.
class Samples {
 public:
  void add(double x);

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact quantile by linear interpolation; q in [0, 1].
  double percentile(double q) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace lyra
