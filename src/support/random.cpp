#include "support/random.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace lyra {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro256** must not be seeded with all zeros; SplitMix64 never
  // produces four consecutive zero outputs.
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LYRA_ASSERT(bound > 0, "next_below requires a positive bound");
  // Rejection sampling: retry while the draw falls in the biased tail.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  LYRA_ASSERT(lo <= hi, "next_in_range requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng::next_gaussian() {
  // Box-Muller; u1 is nudged away from 0 so log() stays finite.
  const double u1 = next_double() + 0x1.0p-60;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::next_lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * next_gaussian());
}

double Rng::next_exponential(double mean) {
  const double u = next_double() + 0x1.0p-60;
  return -mean * std::log(u);
}

bool Rng::next_bernoulli(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b) {
  // Fold each coordinate in behind a full SplitMix64 round so adjacent
  // (a, b) pairs land in unrelated parts of the stream space.
  std::uint64_t x = seed;
  x = splitmix64(x) ^ (a * 0xbf58476d1ce4e5b9ULL);
  x = splitmix64(x) ^ (b * 0x94d049bb133111ebULL);
  return splitmix64(x);
}

}  // namespace lyra
