#pragma once

#include <cstdio>
#include <cstdlib>

/// Always-on invariant checks. Protocol code runs inside a deterministic
/// simulation, so an invariant violation is a logic bug: abort loudly with
/// the location instead of continuing with corrupted protocol state.
#define LYRA_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "LYRA_ASSERT failed at %s:%d: %s\n  %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
