#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace lyra {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::percentile(double q) const {
  LYRA_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

}  // namespace lyra
