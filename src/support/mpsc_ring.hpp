#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace lyra {

/// Bounded lock-free ring buffer (Vyukov's bounded MPMC queue). Used by the
/// parallel executor as the scheduler→worker batch inbox (single producer,
/// single consumer) and as the workers→scheduler completion channel (many
/// producers, one consumer). Each cell carries a sequence number that
/// encodes whether it is free for the producer or holds a value for the
/// consumer, so push and pop touch no shared lock and contend only on
/// their own position counter.
///
/// The ring is strictly bounded: try_push fails (returns false) on a full
/// ring and try_pop fails on an empty one — callers own the backpressure
/// policy. Capacity is rounded up to a power of two.
///
/// Memory ordering: a successful try_push(v) synchronizes-with the
/// try_pop that returns v (release store of the cell sequence, acquire
/// load on the consumer side), so everything written before the push is
/// visible to the popper.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity) {
    LYRA_ASSERT(capacity >= 2, "ring capacity must be at least 2");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  /// Testing hook: start both cursors at `start_pos` instead of 0, with
  /// cell sequence numbers initialized to match. The push/pop arithmetic
  /// is modular in the 64-bit position, so a ring started just below the
  /// uint64 wrap point exercises cursor overflow without 2^64 pushes.
  MpscRing(std::size_t capacity, std::uint64_t start_pos)
      : MpscRing(capacity) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[(start_pos + i) & mask_].seq.store(start_pos + i,
                                                std::memory_order_relaxed);
    }
    head_.store(start_pos, std::memory_order_relaxed);
    tail_.store(start_pos, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Multi-producer push. Returns false when the ring is full.
  bool try_push(T value) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        // Cell free at this position: claim it by advancing head.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: pos was reloaded, retry.
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed value: full
      } else {
        pos = head_.load(std::memory_order_relaxed);  // raced; reload
      }
    }
  }

  /// Single-consumer pop. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t diff = static_cast<std::int64_t>(seq) -
                              static_cast<std::int64_t>(pos + 1);
    if (diff < 0) return false;  // nothing published at tail yet
    out = std::move(cell.value);
    cell.value = T{};
    // Mark the cell free for the producer one lap ahead.
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer-side emptiness probe (exact for the single consumer: a false
  /// return means a subsequent try_pop will succeed).
  bool empty() const {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    const std::uint64_t seq =
        cells_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<std::int64_t>(seq) -
               static_cast<std::int64_t>(pos + 1) < 0;
  }

  /// Racy size estimate (producers and the consumer may be mid-flight).
  std::size_t size_approx() const {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    return h > t ? static_cast<std::size_t>(h - t) : 0;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines: producers only
  // contend on head_, the consumer owns tail_.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace lyra
