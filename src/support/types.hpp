#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace lyra {

/// Identifier of a process (consensus node or client) in the simulation.
/// Processes are numbered densely from 0; consensus nodes come first.
using NodeId = std::uint32_t;

constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Simulated time in nanoseconds since the start of the run.
using TimeNs = std::int64_t;

constexpr TimeNs kNsPerUs = 1'000;
constexpr TimeNs kNsPerMs = 1'000'000;
constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs ms(double v) { return static_cast<TimeNs>(v * kNsPerMs); }
constexpr TimeNs us(double v) { return static_cast<TimeNs>(v * kNsPerUs); }
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }

/// Sequence numbers produced by ordering clocks (paper §II-D). Lyra
/// implements the ordering clock with the node's real-time clock, so a
/// sequence number is a simulated timestamp in nanoseconds.
using SeqNum = std::int64_t;

constexpr SeqNum kNoSeq = std::numeric_limits<SeqNum>::min();
constexpr SeqNum kMaxSeq = std::numeric_limits<SeqNum>::max();

/// Round number inside a binary-consensus instance.
using Round = std::uint32_t;

/// Identifies one consensus instance: (proposer, proposer-local index).
struct InstanceId {
  NodeId proposer = kNoNode;
  std::uint64_t index = 0;

  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

}  // namespace lyra

template <>
struct std::hash<lyra::InstanceId> {
  std::size_t operator()(const lyra::InstanceId& id) const noexcept {
    // Proposer ids are small; fold them into the high bits of the index.
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.proposer) << 48) ^ id.index);
  }
};
