#pragma once

#include <array>
#include <cstdint>

namespace lyra {

/// Deterministic PRNG (xoshiro256**) seeded via SplitMix64.
///
/// Every source of randomness in a run flows from one root Rng through
/// split(), so a run is reproducible from a single seed. We do not use
/// <random> engines because their streams are unspecified across standard
/// library implementations; reproducibility across toolchains matters for
/// the experiment harness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double next_gaussian();

  /// Log-normal with the given parameters of the underlying normal.
  double next_lognormal(double mu, double sigma);

  /// Exponential with the given mean.
  double next_exponential(double mean);

  /// True with probability p.
  bool next_bernoulli(double p);

  /// Derive an independent child stream. The child is seeded from this
  /// stream, so split order matters and is part of the run's determinism.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Derives a child-stream seed from a root seed and two stream coordinates
/// (e.g. a sender id and that sender's draw ordinal) with three SplitMix64
/// rounds. Unlike split(), the result depends only on the arguments — not
/// on how many draws other streams made first — so shards can consume
/// randomness in any interleaving and still be reproducible per
/// (seed, coordinates).
std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b);

}  // namespace lyra
