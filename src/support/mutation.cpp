#include "support/mutation.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

namespace lyra::support {

bool mutation_enabled(const char* name) {
  const char* env = std::getenv("LYRA_FUZZ_MUTATION");
  if (env == nullptr || *env == '\0') return false;
  std::string_view list(env);
  const std::string_view want(name);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    std::string_view item = list.substr(0, comma);
    if (item == want) return true;
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return false;
}

}  // namespace lyra::support
