#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace lyra {

/// Raw byte buffer used for transaction payloads, ciphertexts, and digests.
using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string_view as_string_view(BytesView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Append helpers used when serializing values into hash inputs.
inline void append(Bytes& out, BytesView more) {
  out.insert(out.end(), more.begin(), more.end());
}

inline void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void append_i64(Bytes& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

inline void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace lyra
