#pragma once

#include <optional>
#include <string>

#include "support/bytes.hpp"

namespace lyra {

/// Lower-case hex encoding of a byte buffer.
std::string to_hex(BytesView bytes);

/// Decode a hex string; returns std::nullopt on odd length or non-hex chars.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace lyra
