#pragma once

namespace lyra::support {

/// Mutation-testing hooks for the schedule fuzzer (docs/FUZZING.md).
///
/// A mutation re-introduces one known-fixed bug behind an environment
/// switch so the fuzzer's invariants can be validated end-to-end: with
/// `LYRA_FUZZ_MUTATION=<name>` (comma-separated list) the guarded code
/// path reverts to its pre-fix behaviour, and a healthy invariant suite
/// must flag it within a bounded number of seeds.
///
/// Known mutation names:
///   - "resync-self-reply": count the node's own resync reply toward the
///     f+1 gate quorum (the PR 2 bug).
///   - "client-resubmit-fixed-period": arm the client resubmit timer for a
///     fixed period instead of re-aiming at the earliest outstanding
///     deadline (the PR 5 bug).
///
/// The check reads the environment on every call; the guarded sites are
/// cold (resync replies, resubmit-timer arming), so there is no cached
/// state that tests toggling the variable would have to invalidate.
bool mutation_enabled(const char* name);

}  // namespace lyra::support
