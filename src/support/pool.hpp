#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace lyra::support {

/// Size-class block arena for the simulator's small, high-churn heap
/// objects (message payloads, shared_ptr control blocks, signature
/// buffers). Allocations round up to a 16-byte granule; each class keeps a
/// free list of recycled blocks and carves new ones from 64 KiB slabs, so
/// a steady-state simulation run performs no general-heap allocation on
/// the message path at all. Requests beyond the largest class fall back to
/// operator new.
///
/// Lock-free by construction: each thread owns its own arena (global() is
/// thread-local), so allocation never contends. A block may be freed on a
/// different thread than it was carved on — it simply joins the freeing
/// thread's free list, which is safe because slabs are never returned to
/// the heap. live_blocks() is therefore a per-thread balance that can go
/// negative on threads that net-release.
class Arena {
 public:
  static constexpr std::size_t kGranule = 16;
  static constexpr std::size_t kMaxBlock = 1024;

  /// This thread's arena. Never destroyed (payloads held by
  /// static-lifetime objects may outlive any static arena member, and
  /// blocks migrate between threads). Each arena is parked in a static
  /// registry so it stays reachable after its thread exits — executor
  /// worker arenas would otherwise read as leaks to leak checkers.
  static Arena& global() {
    static thread_local Arena* arena = [] {
      auto* a = new Arena();
      registry(a);
      return a;
    }();
    return *arena;
  }

  void* allocate(std::size_t n) {
    if (n == 0) n = 1;
    if (n > kMaxBlock) return ::operator new(n);
    const std::size_t cls = (n - 1) / kGranule;
    auto& free = free_[cls];
    if (free.empty()) refill(cls);
    void* p = free.back();
    free.pop_back();
    ++live_;
    return p;
  }

  void deallocate(void* p, std::size_t n) {
    if (n == 0) n = 1;
    if (n > kMaxBlock) {
      ::operator delete(p);
      return;
    }
    free_[(n - 1) / kGranule].push_back(p);
    --live_;
  }

  // --- introspection (pool tests and perf diagnostics) ---

  /// Blocks carved from slabs so far (monotone: recycling never carves).
  std::size_t blocks_carved() const { return carved_; }
  /// Pooled blocks handed out minus blocks returned, on this thread.
  std::int64_t live_blocks() const { return live_; }
  /// Total slab bytes reserved from the general heap.
  std::size_t bytes_reserved() const { return slabs_.size() * kSlabBytes; }

 private:
  static constexpr std::size_t kClasses = kMaxBlock / kGranule;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  /// Root that keeps every thread's arena reachable forever. Touched once
  /// per thread lifetime, so the lock is off every hot path.
  static void registry(Arena* a) {
    static std::mutex m;
    static std::vector<Arena*>* arenas = new std::vector<Arena*>();
    std::lock_guard<std::mutex> lk(m);
    arenas->push_back(a);
  }

  void refill(std::size_t cls) {
    const std::size_t block = (cls + 1) * kGranule;
    // operator new[] aligns to 16 and block is a multiple of 16, so every
    // carved block is 16-aligned.
    slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
    std::byte* base = slabs_.back().get();
    const std::size_t count = kSlabBytes / block;
    auto& free = free_[cls];
    free.reserve(free.size() + count);
    for (std::size_t i = 0; i < count; ++i) free.push_back(base + i * block);
    carved_ += count;
  }

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::array<std::vector<void*>, kClasses> free_;
  std::size_t carved_ = 0;
  std::int64_t live_ = 0;
};

/// Minimal std allocator over Arena::global(). All instances compare
/// equal (one shared arena), so containers can move between them freely.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    if constexpr (alignof(T) > Arena::kGranule) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    } else {
      return static_cast<T*>(Arena::global().allocate(n * sizeof(T)));
    }
  }

  void deallocate(T* p, std::size_t n) {
    if constexpr (alignof(T) > Arena::kGranule) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    } else {
      Arena::global().deallocate(p, n * sizeof(T));
    }
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) {
    return false;
  }
};

/// make_shared through the arena: object and control block live in one
/// pooled allocation, recycled when the last reference drops.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

/// Byte buffer backed by the arena — for small, short-lived scratch
/// buffers on the signing/hashing path.
using PooledBytes = std::vector<std::uint8_t, PoolAllocator<std::uint8_t>>;

}  // namespace lyra::support
