// lyra_sim: command-line experiment runner. Runs one protocol deployment
// on the simulated 3-continent WAN with closed-loop clients and reports
// latency/throughput/safety — the same harness the benchmarks use, with
// every knob on a flag.
//
//   lyra_sim --protocol=lyra --nodes=31 --clients=1600
//   lyra_sim --protocol=pompe --nodes=100 --clients=300 --duration-ms=8000
//   lyra_sim --protocol=lyra --nodes=16 --lambda-ms=2 --no-obfuscation
//   lyra_sim --nodes=4 --crash-node 2 --crash-at 3s --restart-at 5s
//
// Flags take either --flag=value or --flag value; durations accept "ms"
// and "s" suffixes (plain numbers are milliseconds).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"

using namespace lyra;
using harness::RunConfig;

namespace {

void usage() {
  std::printf(
      "usage: lyra_sim [options]\n"
      "  --protocol=lyra|pompe     protocol to run (default lyra)\n"
      "  --nodes=N                 consensus nodes, n > 3f (default 16)\n"
      "  --clients=W               closed-loop clients per node (default 1600)\n"
      "  --duration-ms=T           simulated run length (default 6000)\n"
      "  --measure-from-ms=T       measurement window start (default 2500)\n"
      "  --batch=B                 transactions per batch (default 800)\n"
      "  --batch-timeout=T         propose a partial batch after T "
      "(default 50ms)\n"
      "  --heartbeat-ms=T          status-heartbeat period (default 25ms;\n"
      "                            idle traffic is n^2/period — stretch it\n"
      "                            on big clusters)\n"
      "  --lambda-ms=L             validation window lambda (default 5)\n"
      "  --outstanding=K           Lyra proposal pipeline depth (default 3)\n"
      "  --silent=S                crash-faulty Lyra nodes (default 0)\n"
      "  --replay-attackers=R      Lyra nodes that also re-broadcast old\n"
      "                            INITs (Byzantine re-presentation traffic;\n"
      "                            default 0)\n"
      "  --bandwidth-gbps=B        per-node egress (default 1.0)\n"
      "  --seed=S                  run seed (default 42)\n"
      "  --threads=N               execution threads (default 1 = serial;\n"
      "                            N > 1 runs the deterministic parallel\n"
      "                            executor, identical results)\n"
      "  --no-obfuscation          disable Lyra's commit-reveal\n"
      "  --crash-node=N            crash node N mid-run (Lyra; repeatable)\n"
      "  --crash-at=T              crash time for the last --crash-node\n"
      "  --restart-at=T            restart time (recovers from WAL+snapshot)\n"
      "  --wipe-disk-at=T          wipe the last --crash-node's disk at T\n"
      "                            (crash-at < T < restart-at; rejoins via\n"
      "                            peer state transfer)\n"
      "  --corrupt-wal             bit-rot the last --crash-node's WAL while\n"
      "                            it is down (rejoins via state transfer)\n"
      "  --state-sync              enable the statesync subsystem on every\n"
      "                            node (implied by the two flags above)\n"
      "  --delta-sync              delta state transfer: a rejoining node\n"
      "                            with a decodable snapshot keeps its local\n"
      "                            prefix and pulls only the missing suffix\n"
      "                            (implies --state-sync)\n"
      "  --client-shard=K          aggregate closed-loop clients: one pool\n"
      "                            process drives up to K same-region nodes\n"
      "                            (0 = one pool per node; makes n=300-1000\n"
      "                            sweeps affordable)\n"
      "  --client-nodes=K          attach clients to nodes 0..K-1 only\n"
      "                            (0 = every node; each client-bearing\n"
      "                            node proposes, and every instance costs\n"
      "                            O(n^2) consensus traffic — cap the\n"
      "                            proposer set on big-cluster sweeps)\n"
      "  --stats                   print parallel-executor hot-path counters\n"
      "                            (batches, locks/notifies per event, RNG\n"
      "                            gate, scheduler idle time)\n"
      "  --memoize-verify          cache signature/proof verification by\n"
      "                            message identity (re-presented Byzantine\n"
      "                            traffic verifies once)\n"
      "open-loop workload engine (docs/WORKLOAD.md):\n"
      "  --open-loop               replace closed-loop clients with Poisson\n"
      "                            traffic sources and give every node a\n"
      "                            bounded fee-priority mempool\n"
      "  --arrival-rate=R          offered load per node, tx/s (default 200)\n"
      "  --accounts=A              Zipf account universe (default 100000)\n"
      "  --zipf-s=S                Zipf skew exponent (default 1.0)\n"
      "  --burst-every=T           mean gap between burst episodes (0 = off)\n"
      "  --burst-len=T             burst episode length (default 250ms)\n"
      "  --burst-mult=M            rate multiplier inside bursts (default 4)\n"
      "  --mempool-cap=C           per-node mempool bound (default 4096)\n"
      "  --fee-model=M             constant|uniform|lognormal (default\n"
      "                            uniform)\n"
      "  --max-retries=K           backpressure retries before a terminal\n"
      "                            reject (default 6)\n"
      "  --retry-backoff=T         initial retry backoff, doubles per reject\n"
      "                            (default 40ms)\n"
      "  --sandwich-attackers=A    nodes (highest ids) running the economic\n"
      "                            sandwich adversary (default 0)\n"
      "  --victim-threshold=V      min victim value worth attacking\n"
      "                            (default 5000)\n"
      "  --help                    this text\n"
      "durations (T) accept '3s', '250ms', or plain milliseconds\n");
}

/// Accepts --flag=value and --flag value; the latter consumes argv[i+1].
bool parse_value(int argc, char** argv, int& i, const char* flag,
                 std::string& out) {
  const char* arg = argv[i];
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) return false;
  if (arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && i + 1 < argc) {
    out = argv[++i];
    return true;
  }
  return false;
}

/// "3s" -> 3 s, "250ms" -> 250 ms, "1500" -> 1500 ms.
bool parse_duration(const std::string& text, TimeNs& out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return false;
  const std::string suffix(end);
  if (suffix.empty() || suffix == "ms") {
    out = ms(v);
  } else if (suffix == "s") {
    out = ms(v * 1000.0);
  } else if (suffix == "us") {
    out = us(v);
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  RunConfig config;
  config.protocol = RunConfig::Protocol::kLyra;
  config.n = 16;
  bool print_stats = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_value(argc, argv, i, "--protocol", value)) {
      if (value == "lyra") {
        config.protocol = RunConfig::Protocol::kLyra;
      } else if (value == "pompe") {
        config.protocol = RunConfig::Protocol::kPompe;
      } else {
        std::fprintf(stderr, "unknown protocol '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--nodes", value)) {
      config.n = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--clients", value)) {
      config.clients_per_node =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_value(argc, argv, i, "--duration-ms", value)) {
      if (!parse_duration(value, config.duration)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--measure-from-ms", value)) {
      if (!parse_duration(value, config.measure_from)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--batch-timeout", value)) {
      if (!parse_duration(value, config.batch_timeout)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--batch", value)) {
      config.batch_size = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--heartbeat-ms", value)) {
      if (!parse_duration(value, config.heartbeat)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--lambda-ms", value)) {
      config.lambda = ms(std::strtod(value.c_str(), nullptr));
    } else if (parse_value(argc, argv, i, "--outstanding", value)) {
      config.max_outstanding = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--silent", value)) {
      config.byzantine_silent = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--replay-attackers", value)) {
      config.replay_attackers = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--bandwidth-gbps", value)) {
      config.bandwidth_bytes_per_sec =
          std::strtod(value.c_str(), nullptr) * 125e6;
    } else if (parse_value(argc, argv, i, "--seed", value)) {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--threads", value)) {
      config.threads =
          static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
      if (config.threads == 0) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--crash-node", value)) {
      RunConfig::CrashRestart cr;
      cr.node = static_cast<NodeId>(std::strtoul(value.c_str(), nullptr, 10));
      config.crash_restarts.push_back(cr);
    } else if (parse_value(argc, argv, i, "--crash-at", value)) {
      if (config.crash_restarts.empty()) {
        std::fprintf(stderr, "--crash-at needs a preceding --crash-node\n");
        return 2;
      }
      if (!parse_duration(value, config.crash_restarts.back().crash_at)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--restart-at", value)) {
      if (config.crash_restarts.empty()) {
        std::fprintf(stderr, "--restart-at needs a preceding --crash-node\n");
        return 2;
      }
      if (!parse_duration(value, config.crash_restarts.back().restart_at)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--wipe-disk-at", value)) {
      if (config.crash_restarts.empty()) {
        std::fprintf(stderr, "--wipe-disk-at needs a preceding --crash-node\n");
        return 2;
      }
      if (!parse_duration(value, config.crash_restarts.back().wipe_disk_at)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--corrupt-wal") == 0) {
      if (config.crash_restarts.empty()) {
        std::fprintf(stderr, "--corrupt-wal needs a preceding --crash-node\n");
        return 2;
      }
      config.crash_restarts.back().corrupt_wal = true;
    } else if (parse_value(argc, argv, i, "--arrival-rate", value)) {
      config.workload.arrival_rate = std::strtod(value.c_str(), nullptr);
    } else if (parse_value(argc, argv, i, "--accounts", value)) {
      config.workload.accounts = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--zipf-s", value)) {
      config.workload.zipf_s = std::strtod(value.c_str(), nullptr);
    } else if (parse_value(argc, argv, i, "--burst-every", value)) {
      TimeNs t = 0;
      if (!parse_duration(value, t)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
      config.workload.burst_every_ms = to_ms(t);
    } else if (parse_value(argc, argv, i, "--burst-len", value)) {
      TimeNs t = 0;
      if (!parse_duration(value, t)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
      config.workload.burst_len_ms = to_ms(t);
    } else if (parse_value(argc, argv, i, "--burst-mult", value)) {
      config.workload.burst_mult = std::strtod(value.c_str(), nullptr);
    } else if (parse_value(argc, argv, i, "--mempool-cap", value)) {
      config.workload.mempool_capacity =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--fee-model", value)) {
      if (!workload::fee_model_from_string(value,
                                           &config.workload.fee_model)) {
        std::fprintf(stderr, "unknown fee model '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--max-retries", value)) {
      config.workload.max_retries =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_value(argc, argv, i, "--retry-backoff", value)) {
      if (!parse_duration(value, config.workload.retry_backoff)) {
        std::fprintf(stderr, "bad duration '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_value(argc, argv, i, "--sandwich-attackers", value)) {
      config.workload.sandwich_attackers =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--victim-threshold", value)) {
      config.workload.victim_value_threshold =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--open-loop") == 0) {
      config.workload.open_loop = true;
    } else if (std::strcmp(argv[i], "--state-sync") == 0) {
      config.state_sync = true;
    } else if (std::strcmp(argv[i], "--delta-sync") == 0) {
      config.delta_sync = true;
    } else if (parse_value(argc, argv, i, "--client-shard", value)) {
      config.client_shard = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(argc, argv, i, "--client-nodes", value)) {
      config.client_nodes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else if (std::strcmp(argv[i], "--memoize-verify") == 0) {
      config.memoize_verify = true;
    } else if (std::strcmp(argv[i], "--no-obfuscation") == 0) {
      config.obfuscate = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage();
      return 2;
    }
  }

  if (config.n <= 3 * config.f()) {
    std::fprintf(stderr, "need n > 3f\n");
    return 2;
  }
  if (config.protocol == RunConfig::Protocol::kLyra && config.obfuscate &&
      config.n > 255) {
    std::fprintf(stderr,
                 "commit-reveal VSS shares live in GF(256), capping "
                 "obfuscated deployments at n = 255; pass --no-obfuscation "
                 "to run the ordering core at this scale\n");
    return 2;
  }
  if (config.measure_from >= config.duration) {
    std::fprintf(stderr, "measurement window is empty\n");
    return 2;
  }
  if (config.replay_attackers > 0 &&
      config.protocol != RunConfig::Protocol::kLyra) {
    std::fprintf(stderr, "--replay-attackers is Lyra-only\n");
    return 2;
  }
  if (config.byzantine_silent + config.replay_attackers > config.f()) {
    std::fprintf(stderr, "silent + replay attackers must stay <= f\n");
    return 2;
  }
  if (config.workload.sandwich_attackers > 0 && !config.workload.open_loop) {
    std::fprintf(stderr, "--sandwich-attackers needs --open-loop\n");
    return 2;
  }
  if (config.workload.sandwich_attackers >= config.n) {
    std::fprintf(stderr, "--sandwich-attackers must stay below n\n");
    return 2;
  }
  if (config.workload.open_loop && !config.crash_restarts.empty()) {
    // docs/WORKLOAD.md: mempool contents are not journaled, so carved
    // batches lose their per-tx ids across a restart.
    std::fprintf(stderr, "--open-loop does not combine with --crash-node\n");
    return 2;
  }
  for (const auto& cr : config.crash_restarts) {
    if (config.protocol != RunConfig::Protocol::kLyra) {
      std::fprintf(stderr, "--crash-node is Lyra-only\n");
      return 2;
    }
    if (cr.node >= config.n) {
      std::fprintf(stderr, "--crash-node %u out of range\n", cr.node);
      return 2;
    }
    if (cr.crash_at <= 0 || cr.restart_at <= cr.crash_at ||
        cr.restart_at >= config.duration) {
      std::fprintf(stderr,
                   "need 0 < crash-at < restart-at < duration for node %u\n",
                   cr.node);
      return 2;
    }
    if (cr.wipe_disk_at != 0 &&
        (cr.wipe_disk_at <= cr.crash_at || cr.wipe_disk_at >= cr.restart_at)) {
      std::fprintf(stderr,
                   "need crash-at < wipe-disk-at < restart-at for node %u\n",
                   cr.node);
      return 2;
    }
  }

  std::printf("running %s: n=%zu f=%zu clients/node=%u batch=%zu "
              "lambda=%.1fms duration=%.1fs seed=%llu threads=%u\n",
              harness::protocol_name(config.protocol), config.n, config.f(),
              config.clients_per_node, config.batch_size,
              to_ms(config.lambda), to_ms(config.duration) / 1000.0,
              static_cast<unsigned long long>(config.seed), config.threads);
  std::fflush(stdout);

  const auto result = run_experiment(config);

  std::printf("\nthroughput        %10.0f tx/s\n", result.throughput_tps);
  std::printf("latency mean      %10.1f ms\n", result.mean_latency_ms);
  std::printf("latency p50       %10.1f ms\n", result.p50_latency_ms);
  std::printf("latency p99       %10.1f ms\n", result.p99_latency_ms);
  std::printf("committed txs     %10llu\n",
              static_cast<unsigned long long>(result.committed_txs));
  std::printf("prefix safety     %10s\n",
              result.prefix_consistent ? "ok" : "VIOLATED");
  if (config.protocol == RunConfig::Protocol::kLyra) {
    std::printf("accept rate       %10.4f\n", result.validation_accept_rate);
    std::printf("decide rounds     %10.3f (max %.0f)\n",
                result.mean_decide_rounds, result.max_decide_rounds);
    std::printf("late accepts      %10llu\n",
                static_cast<unsigned long long>(result.late_accepts));
    if (!config.crash_restarts.empty()) {
      std::printf("restarts          %10llu\n",
                  static_cast<unsigned long long>(result.restarts));
      std::printf("wal replayed      %10llu records\n",
                  static_cast<unsigned long long>(result.recovered_wal_records));
      std::printf("snapshots loaded  %10llu\n",
                  static_cast<unsigned long long>(result.recovered_snapshots));
      std::printf("recovery cpu      %10.2f ms\n", result.recovery_cpu_ms);
      std::printf("msgs dropped      %10llu\n",
                  static_cast<unsigned long long>(result.messages_dropped));
      std::printf("torn tails fixed  %10llu\n",
                  static_cast<unsigned long long>(result.torn_tail_repairs));
      std::printf("restarts refused  %10llu\n",
                  static_cast<unsigned long long>(result.refused_restarts));
    }
    if (config.wants_state_sync()) {
      std::printf("full state syncs  %10llu\n",
                  static_cast<unsigned long long>(result.full_state_syncs));
      if (config.delta_sync) {
        std::printf("delta state syncs %10llu\n",
                    static_cast<unsigned long long>(result.delta_state_syncs));
      }
      std::printf("sync chunks       %10llu (%llu rejected, %llu local)\n",
                  static_cast<unsigned long long>(result.sync_chunks_fetched),
                  static_cast<unsigned long long>(result.sync_chunks_rejected),
                  static_cast<unsigned long long>(result.sync_chunks_local));
      std::printf("sync bytes        %10llu (%llu saved locally)\n",
                  static_cast<unsigned long long>(result.sync_bytes_transferred),
                  static_cast<unsigned long long>(result.sync_bytes_local));
      std::printf("serves shed       %10llu\n",
                  static_cast<unsigned long long>(result.sync_serves_shed));
      std::printf("sync entries      %10llu\n",
                  static_cast<unsigned long long>(result.sync_entries_installed));
      std::printf("catch-up reveals  %10llu\n",
                  static_cast<unsigned long long>(result.catchup_reveals));
      std::printf("unrevealed left   %10llu\n",
                  static_cast<unsigned long long>(result.unrevealed_batches));
    }
  } else {
    std::printf("ts verifications  %10llu\n",
                static_cast<unsigned long long>(result.proof_verifications));
  }
  if (config.workload.open_loop) {
    std::printf("\n--- open-loop workload ---\n");
    std::printf("offered load      %10.0f tx/s (%llu arrivals)\n",
                result.offered_tps,
                static_cast<unsigned long long>(result.offered_txs));
    std::printf("goodput           %10.0f tx/s\n", result.goodput_tps);
    std::printf("backpressure      %10llu rejects to clients\n",
                static_cast<unsigned long long>(result.rejected_submits));
    std::printf("resubmissions     %10llu\n",
                static_cast<unsigned long long>(result.resubmissions));
    std::printf("terminal rejects  %10llu\n",
                static_cast<unsigned long long>(result.terminal_rejects));
    std::printf("mempool           %10llu refused / %llu evicted\n",
                static_cast<unsigned long long>(result.mempool_rejects),
                static_cast<unsigned long long>(result.mempool_evictions));
    if (config.workload.sandwich_attackers > 0) {
      std::printf("victims targeted  %10llu\n",
                  static_cast<unsigned long long>(result.victims_targeted));
      std::printf("front-runs won    %10llu\n",
                  static_cast<unsigned long long>(result.frontrun_successes));
      std::printf("sandwiches closed %10llu\n",
                  static_cast<unsigned long long>(result.sandwich_completes));
      std::printf("attack txs landed %10llu\n",
                  static_cast<unsigned long long>(result.attacks_committed));
      std::printf("extracted value   %10.1f\n", result.extracted_value);
      std::printf("adversary profit  %10.1f\n", result.adversary_profit);
    }
  }
  if (config.memoize_verify || config.replay_attackers > 0) {
    std::printf("verify cache      %10llu hits / %llu misses\n",
                static_cast<unsigned long long>(result.verify_cache_hits),
                static_cast<unsigned long long>(result.verify_cache_misses));
    std::printf("replays sent      %10llu\n",
                static_cast<unsigned long long>(result.replays_sent));
  }
  if (print_stats) {
    const sim::ExecutorStats& s = result.exec_stats;
    std::printf("\n--- executor stats (threads=%u) ---\n", config.threads);
    std::printf("events committed  %10llu (+%llu barriers)\n",
                static_cast<unsigned long long>(s.tasks_committed),
                static_cast<unsigned long long>(s.barrier_events));
    std::printf("batches           %10llu (mean size %.1f)\n",
                static_cast<unsigned long long>(s.batches_dispatched),
                s.mean_batch_size());
    std::printf("handbacks         %10llu batches / %llu tasks\n",
                static_cast<unsigned long long>(s.batch_handbacks),
                static_cast<unsigned long long>(s.tasks_handed_back));
    std::printf("head steals       %10llu\n",
                static_cast<unsigned long long>(s.head_steals));
    std::printf("inbox full        %10llu retries\n",
                static_cast<unsigned long long>(s.inbox_full_retries));
    std::printf("locks             %10llu (%.3f per event)\n",
                static_cast<unsigned long long>(s.lock_acquisitions),
                s.locks_per_event());
    std::printf("notifies          %10llu (%.3f per event)\n",
                static_cast<unsigned long long>(s.condvar_notifies),
                s.notifies_per_event());
    std::printf("parks             %10llu worker / %llu scheduler\n",
                static_cast<unsigned long long>(s.worker_parks),
                static_cast<unsigned long long>(s.sched_parks));
    std::printf("scheduler idle    %10.3f s\n", s.sched_idle_seconds);
    std::printf("rng gate          %10llu draws, %llu waits, %llu wakes\n",
                static_cast<unsigned long long>(s.rng_gate_draws),
                static_cast<unsigned long long>(s.rng_gate_waits),
                static_cast<unsigned long long>(s.rng_gate_wakes));
  }
  return result.prefix_consistent ? 0 : 1;
}
