#!/usr/bin/env python3
"""Compare and merge bench_* JSON outputs (the bench_common.hpp format).

A bench file holds one or more labelled runs:

    {"benchmark": "bench_sim_speed",
     "runs": [{"label": "...", "entries": [{"name": ..., "events_per_sec": ...}]}]}

Modes:

  compare (default)
      bench_compare.py BASELINE.json CANDIDATE.json [--metric events_per_sec]
          [--min-ratio 0.9] [--advisory] [--baseline-label L] [--candidate-label L]
      Matches entries by name and prints candidate/baseline ratios for the
      chosen metric. Exits 1 when any ratio falls below --min-ratio, unless
      --advisory is set (warn, exit 0). When a file holds several runs, the
      last one is used unless a label is named explicitly. Entries carry a
      "threads" field (execution threads; absent = 1, the serial engine);
      --threads N restricts the comparison to entries at that thread count.

      --metric accepts any numeric entry field, including the
      benchmark-specific extras benches append (the load sweep's
      offered_tps, goodput_tps, p50_ms, p99_ms, rejected, evicted,
      extracted_value). For lower-is-better metrics (latency tails,
      rejects) pass --max-ratio instead of --min-ratio: the comparison
      then fails when candidate/baseline *exceeds* the bound, and the
      min-ratio gate defaults off.

  merge
      bench_compare.py --merge OUT.json IN1.json [IN2.json ...]
      Concatenates the runs of the inputs (in order) into OUT.json — used to
      keep a before/after trajectory in one checked-in file. OUT may be one
      of the inputs.

CI runs compare in --advisory mode: shared runners are too noisy for a hard
gate, but the ratio table in the log makes regressions visible at a glance.
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "runs" not in doc or not doc["runs"]:
        sys.exit(f"{path}: no runs in file")
    return doc


def pick_run(doc, path, label):
    runs = doc["runs"]
    if label is None:
        return runs[-1]
    for run in runs:
        if run.get("label") == label:
            return run
    sys.exit(f"{path}: no run labelled {label!r} "
             f"(have: {', '.join(r.get('label', '?') for r in runs)})")


def entry_threads(entry):
    # Entries written before the parallel engine have no field: serial.
    return int(entry.get("threads", 1))


def scaling_efficiencies(run):
    """events_per_sec(name_tN) / (N * events_per_sec(name)) per entry.

    A threaded entry is named after its serial twin plus a _tN suffix
    (bench_sim_speed's convention). 1.0 means perfect linear scaling over
    the same run's serial entry; the value is capped by the host's cores
    (entries record hw_concurrency/host_nproc for that context).
    """
    serial = {e["name"]: float(e.get("events_per_sec", 0.0))
              for e in run["entries"] if entry_threads(e) == 1}
    out = {}
    for e in run["entries"]:
        threads = entry_threads(e)
        m = re.fullmatch(r"(.+)_t(\d+)", e["name"])
        if threads <= 1 or not m or int(m.group(2)) != threads:
            continue
        base = serial.get(m.group(1), 0.0)
        if base > 0.0:
            eff = float(e.get("events_per_sec", 0.0)) / (base * threads)
            out[e["name"]] = eff
    return out


def compare(args):
    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    base = pick_run(base_doc, args.baseline, args.baseline_label)
    cand = pick_run(cand_doc, args.candidate, args.candidate_label)
    base_by_name = {e["name"]: e for e in base["entries"]}

    print(f"metric: {args.metric}   baseline: {base.get('label', '?')!r} "
          f"({args.baseline})   candidate: {cand.get('label', '?')!r} "
          f"({args.candidate})")
    print(f"{'entry':<20} {'thr':>4} {'baseline':>14} {'candidate':>14} "
          f"{'ratio':>8} {'scal-eff':>9}")

    cand_eff = scaling_efficiencies(cand)
    # With an explicit upper bound the metric is lower-is-better; the
    # min-ratio gate then defaults off (an improvement must not fail).
    min_ratio = args.min_ratio
    if min_ratio is None:
        min_ratio = 0.0 if args.max_ratio is not None else 0.9
    worst = None
    worst_high = None
    compared = 0
    for entry in cand["entries"]:
        name = entry["name"]
        threads = entry_threads(entry)
        eff = cand_eff.get(name)
        eff_col = f"{eff:>8.0%}" if eff is not None else f"{'-':>8}"
        if args.threads is not None and threads != args.threads:
            continue
        ref = base_by_name.get(name)
        if ref is None:
            print(f"{name:<20} {threads:>4} {'-':>14} "
                  f"{entry.get(args.metric, 0):>14.0f} {'new':>8} {eff_col}")
            continue
        if entry_threads(ref) != threads:
            print(f"{name:<20} {threads:>4} {'-':>14} "
                  f"{entry.get(args.metric, 0):>14.0f} "
                  f"{'thr-mismatch':>8} {eff_col}")
            continue
        b = float(ref.get(args.metric, 0.0))
        c = float(entry.get(args.metric, 0.0))
        # A zero baseline with a zero candidate is a clean match (common
        # for backpressure counters below the saturation knee).
        ratio = c / b if b > 0 else (1.0 if c == 0 else float("inf"))
        flag = ""
        if ratio < min_ratio:
            flag = "  << below min-ratio"
        elif args.max_ratio is not None and ratio > args.max_ratio:
            flag = "  << above max-ratio"
        print(f"{name:<20} {threads:>4} {b:>14.0f} {c:>14.0f} "
              f"{ratio:>7.2f}x {eff_col}{flag}")
        compared += 1
        if worst is None or ratio < worst:
            worst = ratio
        if worst_high is None or ratio > worst_high:
            worst_high = ratio

    if compared == 0:
        sys.exit("no common entries to compare")
    msg = None
    if worst < min_ratio:
        msg = (f"worst ratio {worst:.2f}x is below the threshold "
               f"{min_ratio:.2f}x")
    elif args.max_ratio is not None and worst_high > args.max_ratio:
        msg = (f"worst ratio {worst_high:.2f}x is above the threshold "
               f"{args.max_ratio:.2f}x")
    if msg is not None:
        if args.advisory:
            print(f"WARNING (advisory): {msg}")
            return 0
        print(f"FAIL: {msg}")
        return 1
    bounds = f"{worst:.2f}x >= {min_ratio:.2f}x"
    if args.max_ratio is not None:
        bounds += f", {worst_high:.2f}x <= {args.max_ratio:.2f}x"
    print(f"OK: worst ratio {bounds}")
    return 0


def merge(args):
    benchmark = None
    runs = []
    for path in args.inputs:
        doc = load(path)
        if benchmark is None:
            benchmark = doc.get("benchmark", "?")
        elif doc.get("benchmark") != benchmark:
            print(f"note: merging different benchmarks "
                  f"({benchmark} + {doc.get('benchmark')})", file=sys.stderr)
        runs.extend(doc["runs"])
    with open(args.merge, "w") as f:
        json.dump({"benchmark": benchmark, "runs": runs}, f, indent=2)
        f.write("\n")
    print(f"wrote {len(runs)} runs to {args.merge}")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--merge", metavar="OUT",
                   help="merge mode: write all runs of the inputs to OUT")
    p.add_argument("files", nargs="+",
                   help="compare: BASELINE CANDIDATE; merge: inputs")
    p.add_argument("--metric", default="events_per_sec")
    p.add_argument("--min-ratio", type=float, default=None,
                   help="fail when candidate/baseline drops below this "
                        "(default 0.9; 0 when --max-ratio is given)")
    p.add_argument("--max-ratio", type=float, default=None,
                   help="also fail when candidate/baseline exceeds this "
                        "(lower-is-better metrics: p99_ms, rejected, ...)")
    p.add_argument("--advisory", action="store_true",
                   help="report regressions but always exit 0")
    p.add_argument("--threads", type=int, default=None,
                   help="only compare entries with this thread count")
    p.add_argument("--baseline-label", default=None)
    p.add_argument("--candidate-label", default=None)
    args = p.parse_args()

    if args.merge:
        args.inputs = args.files
        return merge(args)
    if len(args.files) != 2:
        p.error("compare mode takes exactly BASELINE and CANDIDATE")
    args.baseline, args.candidate = args.files
    return compare(args)


if __name__ == "__main__":
    sys.exit(main())
