// Schedule-fuzzing CLI (docs/FUZZING.md).
//
//   lyra_fuzz --seeds 50 --seed 1            # fuzz seeds 1..50
//   lyra_fuzz --replay path/to/seed.fuzzplan # replay one artifact
//   lyra_fuzz --corpus tests/fuzz/corpus     # replay a corpus directory
//   lyra_fuzz --mutation resync-self-reply --seeds 200 --stop-on-failure
//
// Exit status: 0 = every run clean, 1 = invariant violation(s), 2 = usage
// or IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lyra_fuzz [--seeds N] [--seed S] [--threads T]\n"
               "                 [--no-minimize] [--minimize-runs N]\n"
               "                 [--artifact-dir DIR] [--stop-on-failure]\n"
               "                 [--mutation NAME] [--quiet]\n"
               "                 [--replay FILE]... [--corpus DIR]\n"
               "                 [--print-plan SEED]\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lyra;

  fuzz::FuzzOptions options;
  options.num_seeds = 20;
  std::vector<std::string> replay_files;
  std::string corpus_dir;
  bool quiet = false;
  bool minimize_replays = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lyra_fuzz: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (arg == "--seeds") {
      if (!parse_u64(next(), v)) { usage(); return 2; }
      options.num_seeds = static_cast<std::size_t>(v);
    } else if (arg == "--seed") {
      if (!parse_u64(next(), v)) { usage(); return 2; }
      options.start_seed = v;
    } else if (arg == "--threads") {
      if (!parse_u64(next(), v) || v > 8) { usage(); return 2; }
      options.threads_override = static_cast<unsigned>(v);
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--minimize") {  // also applies to --replay runs
      minimize_replays = true;
    } else if (arg == "--minimize-runs") {
      if (!parse_u64(next(), v)) { usage(); return 2; }
      options.max_minimize_runs = static_cast<std::size_t>(v);
    } else if (arg == "--artifact-dir") {
      options.artifact_dir = next();
    } else if (arg == "--stop-on-failure") {
      options.stop_on_failure = true;
    } else if (arg == "--mutation") {
      // Convenience for the mutation self-check: equivalent to exporting
      // LYRA_FUZZ_MUTATION before launching.
      setenv("LYRA_FUZZ_MUTATION", next(), 1);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--print-plan") {
      // Expand a seed to its plan without running it — the way corpus
      // entries are produced (see docs/FUZZING.md).
      if (!parse_u64(next(), v)) { usage(); return 2; }
      std::printf("%s", fuzz::serialize_plan(fuzz::generate_plan(v)).c_str());
      return 0;
    } else if (arg == "--replay") {
      replay_files.push_back(next());
    } else if (arg == "--corpus") {
      corpus_dir = next();
    } else {
      std::fprintf(stderr, "lyra_fuzz: unknown flag %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (!quiet) {
    options.log = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
    };
  }

  if (!corpus_dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(corpus_dir, ec)) {
      if (entry.path().extension() != ".fuzzplan") continue;
      replay_files.push_back(entry.path().string());
    }
    if (ec) {
      std::fprintf(stderr, "lyra_fuzz: cannot read corpus dir %s: %s\n",
                   corpus_dir.c_str(), ec.message().c_str());
      return 2;
    }
    if (replay_files.empty()) {
      std::fprintf(stderr, "lyra_fuzz: no .fuzzplan files in %s\n",
                   corpus_dir.c_str());
      return 2;
    }
    std::sort(replay_files.begin(), replay_files.end());
  }

  bool any_violation = false;

  if (!replay_files.empty()) {
    for (const std::string& path : replay_files) {
      fuzz::ScenarioPlan plan;
      std::string error;
      if (!fuzz::load_plan_file(path, plan, error)) {
        std::fprintf(stderr, "lyra_fuzz: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
      }
      if (options.threads_override != 0) {
        plan.threads = options.threads_override;
      }
      fuzz::RunReport report = fuzz::run_plan(plan);
      if (report.ok()) {
        if (!quiet) {
          std::printf("%s: ok (%llu txs, ledger %zu)\n", path.c_str(),
                      static_cast<unsigned long long>(report.committed_txs),
                      report.max_ledger);
        }
        continue;
      }
      any_violation = true;
      for (const fuzz::Violation& v : report.violations) {
        std::printf("%s: FAIL %s: %s\n", path.c_str(), v.invariant.c_str(),
                    v.detail.c_str());
      }
      if (minimize_replays) {
        fuzz::MinimizeResult min =
            fuzz::minimize_plan(plan, options.max_minimize_runs, options.log);
        std::printf("minimized to %zu faults:\n%s", min.plan.fault_count(),
                    fuzz::serialize_plan(min.plan).c_str());
        if (!options.artifact_dir.empty()) {
          fuzz::write_artifact(options.artifact_dir, min.plan,
                               min.violations);
        }
      }
    }
    return any_violation ? 1 : 0;
  }

  const fuzz::FuzzSummary summary = fuzz::fuzz(options);
  std::printf("fuzz: %zu seeds, %zu failure(s)\n", summary.seeds_run,
              summary.failures.size());
  for (const fuzz::SeedResult& f : summary.failures) {
    const fuzz::ScenarioPlan& repro =
        f.minimized ? f.minimized_result.plan : f.report.plan;
    const auto& violations =
        f.minimized ? f.minimized_result.violations : f.report.violations;
    std::printf("--- seed %llu (%zu faults%s)\n",
                static_cast<unsigned long long>(f.seed),
                repro.fault_count(), f.minimized ? ", minimized" : "");
    for (const fuzz::Violation& v : violations) {
      std::printf("  %s: %s\n", v.invariant.c_str(), v.detail.c_str());
    }
    std::printf("%s", fuzz::serialize_plan(repro).c_str());
  }
  return summary.ok() ? 0 : 1;
}
