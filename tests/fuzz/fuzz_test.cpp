// Schedule-fuzzing subsystem tests: grammar round-trips, plan validation,
// corpus replay, and the mutation self-check that proves the invariant
// registry can catch known-fixed bugs (docs/FUZZING.md).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>

#include "fuzz/fault_program.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/invariants.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/runner.hpp"

namespace lyra::fuzz {
namespace {

#ifndef LYRA_FUZZ_CORPUS_DIR
#define LYRA_FUZZ_CORPUS_DIR ""
#endif

/// RAII guard for the mutation env hook so a failing ASSERT cannot leak
/// the mutation into later tests.
class MutationGuard {
 public:
  explicit MutationGuard(const char* name) {
    setenv("LYRA_FUZZ_MUTATION", name, 1);
  }
  ~MutationGuard() { unsetenv("LYRA_FUZZ_MUTATION"); }
};

std::uint32_t concurrent_down(const ScenarioPlan& plan) {
  std::uint32_t worst = 0;
  for (const CrashFault& a : plan.crashes) {
    std::uint32_t down = 0;
    for (const CrashFault& b : plan.crashes) {
      if (b.crash_at <= a.crash_at && a.crash_at < b.restart_at) ++down;
    }
    worst = std::max(worst, down);
  }
  return worst;
}

bool has_invariant(const std::vector<Violation>& violations,
                   const std::string& name) {
  for (const Violation& v : violations) {
    if (v.invariant == name) return true;
  }
  return false;
}

TEST(FaultProgram, GeneratorIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    EXPECT_EQ(serialize_plan(generate_plan(seed)),
              serialize_plan(generate_plan(seed)))
        << "seed " << seed;
  }
}

TEST(FaultProgram, GeneratedPlansValidateAndRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const ScenarioPlan plan = generate_plan(seed);
    std::string error;
    EXPECT_TRUE(validate_plan(plan, error)) << "seed " << seed << ": "
                                            << error;
    const std::string text = serialize_plan(plan);
    ScenarioPlan parsed;
    ASSERT_TRUE(parse_plan(text, parsed, error)) << "seed " << seed << ": "
                                                 << error;
    EXPECT_EQ(text, serialize_plan(parsed)) << "seed " << seed;
  }
}

TEST(FaultProgram, GeneratedPlansHonorBudgetAndTail) {
  for (std::uint64_t seed = 1; seed <= 128; ++seed) {
    const ScenarioPlan plan = generate_plan(seed);
    EXPECT_LE(concurrent_down(plan) + plan.byz.size(), plan.f())
        << "seed " << seed;
    const TimeNs fault_deadline = plan.duration - plan.required_tail();
    for (const CrashFault& c : plan.crashes) {
      EXPECT_LE(c.restart_at, fault_deadline) << "seed " << seed;
    }
    for (const PartitionFault& p : plan.partitions) {
      EXPECT_LE(p.to, fault_deadline) << "seed " << seed;
    }
    for (const DelayFault& d : plan.delays) {
      EXPECT_LE(d.to, fault_deadline) << "seed " << seed;
    }
    for (const FeeSpikeFault& s : plan.fee_spikes) {
      EXPECT_LE(s.to, fault_deadline) << "seed " << seed;
    }
    for (const OverflowFault& o : plan.overflows) {
      EXPECT_LE(o.at, fault_deadline) << "seed " << seed;
    }
    for (const FlapFault& fl : plan.flaps) {
      EXPECT_LE(fl.to, fault_deadline) << "seed " << seed;
      EXPECT_LE(fl.capacity, plan.mempool_capacity) << "seed " << seed;
    }
    if (plan.open_loop()) {
      // Open-loop plans give up crashes and closed-loop resubmission and
      // buy the extra drain tail instead.
      EXPECT_TRUE(plan.crashes.empty()) << "seed " << seed;
      EXPECT_EQ(plan.resubmit_timeout, 0) << "seed " << seed;
      EXPECT_GE(plan.required_tail(), kFaultTail + kOpenLoopDrain)
          << "seed " << seed;
    } else {
      EXPECT_TRUE(plan.fee_spikes.empty() && plan.overflows.empty() &&
                  plan.flaps.empty())
          << "seed " << seed;
    }
  }
}

TEST(FaultProgram, GeneratorEmitsOpenLoopPlans) {
  // The open-loop draw is probabilistic (p = 0.35); over 128 seeds both
  // modes must appear or the workload grammar is dead weight.
  std::size_t open = 0, with_workload_faults = 0;
  for (std::uint64_t seed = 1; seed <= 128; ++seed) {
    const ScenarioPlan plan = generate_plan(seed);
    if (!plan.open_loop()) continue;
    ++open;
    EXPECT_GE(plan.arrival_rate, 1u);
    EXPECT_LE(plan.arrival_rate, 2000u);
    if (plan.fault_count() >
        plan.partitions.size() + plan.delays.size() + plan.byz.size()) {
      ++with_workload_faults;
    }
  }
  EXPECT_GT(open, 16u);
  EXPECT_LT(open, 112u);
  EXPECT_GT(with_workload_faults, 0u);
}

TEST(FaultProgram, ParseRejectsMalformedInput) {
  ScenarioPlan plan;
  std::string error;
  EXPECT_FALSE(parse_plan("", plan, error));
  EXPECT_FALSE(parse_plan("not-a-plan\n", plan, error));
  const std::string base = "lyra-fuzz-plan v1\nseed 1\nduration_ms 5000\n";
  EXPECT_FALSE(parse_plan(base + "frobnicate 3\n", plan, error));
  EXPECT_FALSE(parse_plan(base + "crash node\n", plan, error));
  EXPECT_FALSE(parse_plan(base + "byz node=1 kind=confused\n", plan, error));
  EXPECT_FALSE(parse_plan(base + "mempool lots\n", plan, error));
  EXPECT_FALSE(parse_plan(base + "fee_spike from_ms=1000\n", plan, error));
  EXPECT_FALSE(
      parse_plan(base + "overflow at_ms=1000 txs=-3\n", plan, error));
  EXPECT_FALSE(parse_plan(base + "flap from_ms=1000 to_ms=1200 size=4\n",
                          plan, error));
  // Workload faults without an open-loop mempool fail validation.
  EXPECT_FALSE(parse_plan(
      base + "overflow at_ms=1000 txs=64\n", plan, error));
  EXPECT_TRUE(parse_plan(base + "mempool 64\narrival_rate 200\n" +
                             "overflow at_ms=1000 txs=64\n",
                         plan, error))
      << error;
  // Comments before the header are fine (annotated corpus files).
  EXPECT_TRUE(parse_plan("# hello\n\n" + base, plan, error)) << error;
}

TEST(FaultProgram, ValidateRejectsStructurallyBrokenPlans) {
  const auto base = [] {
    ScenarioPlan p;
    p.n = 4;
    p.duration = ms(6000);
    p.threads = 1;
    return p;
  };
  std::string error;

  ScenarioPlan p = base();
  p.n = 3;
  EXPECT_FALSE(validate_plan(p, error));

  p = base();
  p.crashes.push_back({0, ms(1000), ms(1500), false, false});
  p.crashes.push_back({0, ms(2000), ms(2500), false, false});
  EXPECT_FALSE(validate_plan(p, error)) << "two windows on one node";

  p = base();
  p.crashes.push_back({0, ms(1000), ms(1500), true, false});
  EXPECT_FALSE(validate_plan(p, error)) << "wipe without state_sync";

  p = base();
  p.crashes.push_back({0, ms(1000), ms(5000), false, false});
  EXPECT_FALSE(validate_plan(p, error)) << "restart inside the quiet tail";

  p = base();
  p.crashes.push_back({0, ms(1000), ms(1500), false, false});
  p.byz.push_back({1, ByzKind::kSilent});
  EXPECT_FALSE(validate_plan(p, error)) << "down + byz exceeds f";

  p = base();
  p.protocol = Protocol::kPompe;
  p.crashes.push_back({0, ms(1000), ms(1500), false, false});
  EXPECT_FALSE(validate_plan(p, error)) << "pompe with crash fault";

  p = base();
  p.partitions.push_back({ms(1000), ms(1500), 1u << 5});
  EXPECT_FALSE(validate_plan(p, error)) << "mask names nodes >= n";

  p = base();
  p.arrival_rate = 200;
  EXPECT_FALSE(validate_plan(p, error)) << "arrival_rate without mempool";

  p = base();
  p.mempool_capacity = 64;
  EXPECT_FALSE(validate_plan(p, error)) << "open loop without arrival_rate";

  p = base();
  p.mempool_capacity = 64;
  p.arrival_rate = 200;
  p.crashes.push_back({0, ms(1000), ms(1200), false, false});
  EXPECT_FALSE(validate_plan(p, error)) << "open loop with a crash";

  p = base();
  p.mempool_capacity = 64;
  p.arrival_rate = 200;
  p.resubmit_timeout = ms(800);
  EXPECT_FALSE(validate_plan(p, error)) << "open loop with resubmission";

  p = base();
  p.mempool_capacity = 64;
  p.arrival_rate = 200;
  p.flaps.push_back({ms(1000), ms(1200), 128});
  EXPECT_FALSE(validate_plan(p, error)) << "flap above the plan capacity";

  p = base();
  p.fee_spikes.push_back({ms(1000), ms(1200), 4});
  EXPECT_FALSE(validate_plan(p, error)) << "workload fault on a closed plan";

  p = base();
  p.duration = ms(8000);
  p.mempool_capacity = 64;
  p.arrival_rate = 200;
  p.overflows.push_back({ms(1000), 128});
  p.fee_spikes.push_back({ms(1000), ms(1400), 4});
  p.flaps.push_back({ms(1200), ms(1600), 16});
  EXPECT_TRUE(validate_plan(p, error)) << error;
}

TEST(Invariants, StandardRegistryNamesTheDocumentedChecks) {
  const InvariantRegistry registry = InvariantRegistry::standard();
  std::set<std::string> names;
  for (const auto& e : registry.entries()) names.insert(e.name);
  for (const char* expected :
       {"prefix-agreement", "ledger-order", "no-dup-commit",
        "per-sender-order", "lambda-fairness", "resync-gate-quorum",
        "mempool-no-double-commit", "recovery-convergence",
        "post-fault-progress", "open-loop-resolution",
        "client-resubmit-lag"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Fuzzer, ArtifactRoundTripsThroughLoad) {
  const ScenarioPlan plan = generate_plan(7);
  const std::string dir =
      testing::TempDir() + "/lyra-fuzz-artifact-roundtrip";
  const std::string path =
      write_artifact(dir, plan, {{"prefix-agreement", "witness text", ms(1)}});
  ASSERT_FALSE(path.empty());
  ScenarioPlan loaded;
  std::string error;
  ASSERT_TRUE(load_plan_file(path, loaded, error)) << error;
  EXPECT_EQ(serialize_plan(plan), serialize_plan(loaded));
  std::filesystem::remove_all(dir);
}

TEST(CorpusReplay, EveryCheckedInPlanRunsClean) {
  const std::string dir = LYRA_FUZZ_CORPUS_DIR;
  ASSERT_FALSE(dir.empty());
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".fuzzplan") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    ScenarioPlan plan;
    std::string error;
    ASSERT_TRUE(load_plan_file(file, plan, error)) << file << ": " << error;
    const RunReport report = run_plan(plan);
    EXPECT_TRUE(report.ok()) << file << ": "
                             << (report.violations.empty()
                                     ? report.error
                                     : report.violations[0].invariant + ": " +
                                           report.violations[0].detail);
  }
}

TEST(ParallelDispatch, CancelRacesBatchedDispatchAtEightThreads) {
  // Full-stack version of the executor cancel race: at threads=8 with
  // client resubmission on, every committed batch cancels and re-arms
  // resubmit timers while workers hold batched events, and the crash
  // tears down a node's whole timer set mid-flight. run_plan's built-in
  // serial replay compares final-state digests, so a single mis-cancelled
  // or leaked timer shows up as a serial-parallel-equivalence violation.
  ScenarioPlan plan;
  plan.seed = 5;
  plan.n = 4;
  plan.clients_per_node = 24;
  plan.batch_size = 16;
  plan.threads = 8;
  plan.resubmit_timeout = ms(900);
  plan.duration = ms(3000) + plan.required_tail();
  plan.crashes.push_back({2, ms(700), ms(1400), false, false});
  plan.delays.push_back({ms(1800), ms(2300), ms(120), 1u << 1});
  std::string error;
  ASSERT_TRUE(validate_plan(plan, error)) << error;
  const RunReport report = run_plan(plan);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty()
              ? report.error
              : report.violations[0].invariant + ": " +
                    report.violations[0].detail);
  EXPECT_GT(report.committed_txs, 0u);
}

TEST(OpenLoopPlans, WorkloadFaultsRunCleanAndResolve) {
  // Full-stack open-loop plan with all three workload faults under the
  // parallel executor. run_plan's serial replay checks the digest (which
  // includes per-pool offered/terminal/unresolved counts), and the
  // end-of-run sweep checks open-loop-resolution and the double-commit
  // invariant against the decoded ledgers.
  ScenarioPlan plan;
  plan.seed = 11;
  plan.n = 4;
  plan.batch_size = 16;
  plan.threads = 4;
  plan.mempool_capacity = 32;
  plan.arrival_rate = 300;
  plan.duration = ms(2500) + plan.required_tail();
  plan.fee_spikes.push_back({ms(1200), ms(1600), 8});
  plan.overflows.push_back({ms(1400), 96});
  plan.flaps.push_back({ms(1800), ms(2200), 4});
  std::string error;
  ASSERT_TRUE(validate_plan(plan, error)) << error;
  const RunReport report = run_plan(plan);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty()
              ? report.error
              : report.violations[0].invariant + ": " +
                    report.violations[0].detail);
  EXPECT_GT(report.committed_txs, 0u);
  EXPECT_GT(report.offered_txs, report.committed_txs);
  // A 96-tx burst into a 32-slot mempool must produce backpressure.
  EXPECT_GT(report.backpressure_rejects, 0u);
}

TEST(OpenLoopPlans, PompeOpenLoopResolves) {
  ScenarioPlan plan;
  plan.seed = 3;
  plan.protocol = Protocol::kPompe;
  plan.n = 4;
  plan.batch_size = 16;
  plan.threads = 2;
  plan.mempool_capacity = 64;
  plan.arrival_rate = 200;
  plan.duration = ms(2000) + plan.required_tail();
  plan.overflows.push_back({ms(1300), 128});
  std::string error;
  ASSERT_TRUE(validate_plan(plan, error)) << error;
  const RunReport report = run_plan(plan);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty()
              ? report.error
              : report.violations[0].invariant + ": " +
                    report.violations[0].detail);
  EXPECT_GT(report.committed_txs, 0u);
}

// The self-check behind the fuzzer's reason to exist: re-introduce a fixed
// bug through its hidden mutation hook and prove an invariant catches it,
// the minimizer keeps the witness small, and the clean build replays the
// same schedule without tripping anything.

ScenarioPlan resync_mutation_plan() {
  ScenarioPlan plan;
  plan.seed = 1;
  plan.n = 4;
  plan.clients_per_node = 8;
  plan.batch_size = 16;
  plan.duration = ms(3700);
  plan.threads = 1;
  plan.crashes.push_back({0, ms(854), ms(1029), false, false});
  return plan;
}

TEST(MutationCatch, ResyncSelfReplyCounting) {
  const ScenarioPlan plan = resync_mutation_plan();
  {
    MutationGuard guard("resync-self-reply");
    const RunReport report = run_plan(plan);
    ASSERT_TRUE(has_invariant(report.violations, "resync-gate-quorum"))
        << "mutation not caught";
    const MinimizeResult min = minimize_plan(plan, /*max_runs=*/40, nullptr);
    EXPECT_LE(min.plan.fault_count(), 3u);
    EXPECT_TRUE(has_invariant(min.violations, "resync-gate-quorum"));
    // Deterministic replay: the shrunk plan reproduces bit-identically.
    const RunReport again = run_plan(min.plan);
    ASSERT_FALSE(again.violations.empty());
    EXPECT_EQ(again.violations[0].detail, min.violations[0].detail);
  }
  EXPECT_TRUE(run_plan(plan).ok()) << "clean build trips on the same plan";
}

TEST(MutationCatch, ClientResubmitFixedPeriod) {
  ScenarioPlan plan;
  plan.seed = 1;
  plan.n = 4;
  plan.clients_per_node = 48;
  plan.batch_size = 16;
  plan.duration = ms(9200);
  plan.threads = 1;
  plan.resubmit_timeout = ms(1600);
  // The fixed-period mutation only shows up as lag when an overdue wave's
  // phase differs from the timer's: the very first wave (t=900ms) arms the
  // timer, so its deadlines coincide with the fixed firings forever and its
  // lag is exactly zero no matter how long its acks are delayed. The window
  // therefore starts *after* the first waves ack, so the closed loop has
  // already staggered later submissions off the 1600ms cadence before the
  // delay (longer than the timeout) makes them overdue. The re-aiming timer
  // retries each wave at its exact deadline; the mutated one services them
  // up to a full period late. (An earlier version relied on sub-timeout
  // delays compounding through the duplicate-notify width-doubling bug;
  // with that fixed, the run was too healthy to make any wave overdue.)
  plan.delays.push_back({ms(1600), ms(2900), ms(4000), 1});
  {
    MutationGuard guard("client-resubmit-fixed-period");
    const RunReport report = run_plan(plan);
    ASSERT_TRUE(has_invariant(report.violations, "client-resubmit-lag"))
        << "mutation not caught";
  }
  EXPECT_TRUE(run_plan(plan).ok()) << "clean build trips on the same plan";
}

}  // namespace
}  // namespace lyra::fuzz
