// Schedule-fuzzing subsystem tests: grammar round-trips, plan validation,
// corpus replay, and the mutation self-check that proves the invariant
// registry can catch known-fixed bugs (docs/FUZZING.md).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>

#include "fuzz/fault_program.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/invariants.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/runner.hpp"

namespace lyra::fuzz {
namespace {

#ifndef LYRA_FUZZ_CORPUS_DIR
#define LYRA_FUZZ_CORPUS_DIR ""
#endif

/// RAII guard for the mutation env hook so a failing ASSERT cannot leak
/// the mutation into later tests.
class MutationGuard {
 public:
  explicit MutationGuard(const char* name) {
    setenv("LYRA_FUZZ_MUTATION", name, 1);
  }
  ~MutationGuard() { unsetenv("LYRA_FUZZ_MUTATION"); }
};

std::uint32_t concurrent_down(const ScenarioPlan& plan) {
  std::uint32_t worst = 0;
  for (const CrashFault& a : plan.crashes) {
    std::uint32_t down = 0;
    for (const CrashFault& b : plan.crashes) {
      if (b.crash_at <= a.crash_at && a.crash_at < b.restart_at) ++down;
    }
    worst = std::max(worst, down);
  }
  return worst;
}

bool has_invariant(const std::vector<Violation>& violations,
                   const std::string& name) {
  for (const Violation& v : violations) {
    if (v.invariant == name) return true;
  }
  return false;
}

TEST(FaultProgram, GeneratorIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    EXPECT_EQ(serialize_plan(generate_plan(seed)),
              serialize_plan(generate_plan(seed)))
        << "seed " << seed;
  }
}

TEST(FaultProgram, GeneratedPlansValidateAndRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const ScenarioPlan plan = generate_plan(seed);
    std::string error;
    EXPECT_TRUE(validate_plan(plan, error)) << "seed " << seed << ": "
                                            << error;
    const std::string text = serialize_plan(plan);
    ScenarioPlan parsed;
    ASSERT_TRUE(parse_plan(text, parsed, error)) << "seed " << seed << ": "
                                                 << error;
    EXPECT_EQ(text, serialize_plan(parsed)) << "seed " << seed;
  }
}

TEST(FaultProgram, GeneratedPlansHonorBudgetAndTail) {
  for (std::uint64_t seed = 1; seed <= 128; ++seed) {
    const ScenarioPlan plan = generate_plan(seed);
    EXPECT_LE(concurrent_down(plan) + plan.byz.size(), plan.f())
        << "seed " << seed;
    const TimeNs fault_deadline = plan.duration - plan.required_tail();
    for (const CrashFault& c : plan.crashes) {
      EXPECT_LE(c.restart_at, fault_deadline) << "seed " << seed;
    }
    for (const PartitionFault& p : plan.partitions) {
      EXPECT_LE(p.to, fault_deadline) << "seed " << seed;
    }
    for (const DelayFault& d : plan.delays) {
      EXPECT_LE(d.to, fault_deadline) << "seed " << seed;
    }
  }
}

TEST(FaultProgram, ParseRejectsMalformedInput) {
  ScenarioPlan plan;
  std::string error;
  EXPECT_FALSE(parse_plan("", plan, error));
  EXPECT_FALSE(parse_plan("not-a-plan\n", plan, error));
  const std::string base = "lyra-fuzz-plan v1\nseed 1\nduration_ms 5000\n";
  EXPECT_FALSE(parse_plan(base + "frobnicate 3\n", plan, error));
  EXPECT_FALSE(parse_plan(base + "crash node\n", plan, error));
  EXPECT_FALSE(parse_plan(base + "byz node=1 kind=confused\n", plan, error));
  // Comments before the header are fine (annotated corpus files).
  EXPECT_TRUE(parse_plan("# hello\n\n" + base, plan, error)) << error;
}

TEST(FaultProgram, ValidateRejectsStructurallyBrokenPlans) {
  const auto base = [] {
    ScenarioPlan p;
    p.n = 4;
    p.duration = ms(6000);
    p.threads = 1;
    return p;
  };
  std::string error;

  ScenarioPlan p = base();
  p.n = 3;
  EXPECT_FALSE(validate_plan(p, error));

  p = base();
  p.crashes.push_back({0, ms(1000), ms(1500), false, false});
  p.crashes.push_back({0, ms(2000), ms(2500), false, false});
  EXPECT_FALSE(validate_plan(p, error)) << "two windows on one node";

  p = base();
  p.crashes.push_back({0, ms(1000), ms(1500), true, false});
  EXPECT_FALSE(validate_plan(p, error)) << "wipe without state_sync";

  p = base();
  p.crashes.push_back({0, ms(1000), ms(5000), false, false});
  EXPECT_FALSE(validate_plan(p, error)) << "restart inside the quiet tail";

  p = base();
  p.crashes.push_back({0, ms(1000), ms(1500), false, false});
  p.byz.push_back({1, ByzKind::kSilent});
  EXPECT_FALSE(validate_plan(p, error)) << "down + byz exceeds f";

  p = base();
  p.protocol = Protocol::kPompe;
  p.crashes.push_back({0, ms(1000), ms(1500), false, false});
  EXPECT_FALSE(validate_plan(p, error)) << "pompe with crash fault";

  p = base();
  p.partitions.push_back({ms(1000), ms(1500), 1u << 5});
  EXPECT_FALSE(validate_plan(p, error)) << "mask names nodes >= n";
}

TEST(Invariants, StandardRegistryNamesTheDocumentedChecks) {
  const InvariantRegistry registry = InvariantRegistry::standard();
  std::set<std::string> names;
  for (const auto& e : registry.entries()) names.insert(e.name);
  for (const char* expected :
       {"prefix-agreement", "ledger-order", "no-dup-commit",
        "per-sender-order", "lambda-fairness", "resync-gate-quorum",
        "recovery-convergence", "post-fault-progress",
        "client-resubmit-lag"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Fuzzer, ArtifactRoundTripsThroughLoad) {
  const ScenarioPlan plan = generate_plan(7);
  const std::string dir =
      testing::TempDir() + "/lyra-fuzz-artifact-roundtrip";
  const std::string path =
      write_artifact(dir, plan, {{"prefix-agreement", "witness text", ms(1)}});
  ASSERT_FALSE(path.empty());
  ScenarioPlan loaded;
  std::string error;
  ASSERT_TRUE(load_plan_file(path, loaded, error)) << error;
  EXPECT_EQ(serialize_plan(plan), serialize_plan(loaded));
  std::filesystem::remove_all(dir);
}

TEST(CorpusReplay, EveryCheckedInPlanRunsClean) {
  const std::string dir = LYRA_FUZZ_CORPUS_DIR;
  ASSERT_FALSE(dir.empty());
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".fuzzplan") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    ScenarioPlan plan;
    std::string error;
    ASSERT_TRUE(load_plan_file(file, plan, error)) << file << ": " << error;
    const RunReport report = run_plan(plan);
    EXPECT_TRUE(report.ok()) << file << ": "
                             << (report.violations.empty()
                                     ? report.error
                                     : report.violations[0].invariant + ": " +
                                           report.violations[0].detail);
  }
}

TEST(ParallelDispatch, CancelRacesBatchedDispatchAtEightThreads) {
  // Full-stack version of the executor cancel race: at threads=8 with
  // client resubmission on, every committed batch cancels and re-arms
  // resubmit timers while workers hold batched events, and the crash
  // tears down a node's whole timer set mid-flight. run_plan's built-in
  // serial replay compares final-state digests, so a single mis-cancelled
  // or leaked timer shows up as a serial-parallel-equivalence violation.
  ScenarioPlan plan;
  plan.seed = 5;
  plan.n = 4;
  plan.clients_per_node = 24;
  plan.batch_size = 16;
  plan.threads = 8;
  plan.resubmit_timeout = ms(900);
  plan.duration = ms(3000) + plan.required_tail();
  plan.crashes.push_back({2, ms(700), ms(1400), false, false});
  plan.delays.push_back({ms(1800), ms(2300), ms(120), 1u << 1});
  std::string error;
  ASSERT_TRUE(validate_plan(plan, error)) << error;
  const RunReport report = run_plan(plan);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty()
              ? report.error
              : report.violations[0].invariant + ": " +
                    report.violations[0].detail);
  EXPECT_GT(report.committed_txs, 0u);
}

// The self-check behind the fuzzer's reason to exist: re-introduce a fixed
// bug through its hidden mutation hook and prove an invariant catches it,
// the minimizer keeps the witness small, and the clean build replays the
// same schedule without tripping anything.

ScenarioPlan resync_mutation_plan() {
  ScenarioPlan plan;
  plan.seed = 1;
  plan.n = 4;
  plan.clients_per_node = 8;
  plan.batch_size = 16;
  plan.duration = ms(3700);
  plan.threads = 1;
  plan.crashes.push_back({0, ms(854), ms(1029), false, false});
  return plan;
}

TEST(MutationCatch, ResyncSelfReplyCounting) {
  const ScenarioPlan plan = resync_mutation_plan();
  {
    MutationGuard guard("resync-self-reply");
    const RunReport report = run_plan(plan);
    ASSERT_TRUE(has_invariant(report.violations, "resync-gate-quorum"))
        << "mutation not caught";
    const MinimizeResult min = minimize_plan(plan, /*max_runs=*/40, nullptr);
    EXPECT_LE(min.plan.fault_count(), 3u);
    EXPECT_TRUE(has_invariant(min.violations, "resync-gate-quorum"));
    // Deterministic replay: the shrunk plan reproduces bit-identically.
    const RunReport again = run_plan(min.plan);
    ASSERT_FALSE(again.violations.empty());
    EXPECT_EQ(again.violations[0].detail, min.violations[0].detail);
  }
  EXPECT_TRUE(run_plan(plan).ok()) << "clean build trips on the same plan";
}

TEST(MutationCatch, ClientResubmitFixedPeriod) {
  ScenarioPlan plan;
  plan.seed = 1;
  plan.n = 4;
  plan.clients_per_node = 48;
  plan.batch_size = 16;
  plan.duration = ms(7700);
  plan.threads = 1;
  plan.resubmit_timeout = ms(1600);
  plan.delays.push_back({ms(885), ms(985), ms(300), 1});
  {
    MutationGuard guard("client-resubmit-fixed-period");
    const RunReport report = run_plan(plan);
    ASSERT_TRUE(has_invariant(report.violations, "client-resubmit-lag"))
        << "mutation not caught";
  }
  EXPECT_TRUE(run_plan(plan).ok()) << "clean build trips on the same plan";
}

}  // namespace
}  // namespace lyra::fuzz
