#include "support/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lyra {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(9);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.next_lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.15);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(29);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.next_bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  Rng root1(77);
  Rng root2(77);
  Rng child1 = root1.split();
  Rng child2 = root2.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.next_u64(), child2.next_u64());
  }
  // Child differs from the parent stream.
  Rng parent(77);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace lyra
