#include "support/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace lyra {
namespace {

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
}

TEST(MpscRing, FifoThroughManyLaps) {
  // Cell sequence numbers must keep working once positions lap the ring
  // (the wraparound the mask + per-lap seq arithmetic exists for).
  MpscRing<int> ring(8);
  int expected = 0;
  for (int lap = 0; lap < 100; ++lap) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_push(lap * 5 + i));
    }
    for (int i = 0; i < 5; ++i) {
      int v = -1;
      ASSERT_TRUE(ring.try_pop(v));
      EXPECT_EQ(v, expected++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, FullRingRejectsPushUntilPopped) {
  // Strict backpressure: a full ring fails try_push without blocking or
  // overwriting, and frees exactly one slot per pop.
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(99));

  int v = -1;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(99));

  std::vector<int> rest;
  while (ring.try_pop(v)) rest.push_back(v);
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(MpscRing, EmptyProbeIsConsumerExact) {
  MpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  ASSERT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.empty());
  int v = 0;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, ManyProducersOneConsumerDeliversEverythingOnce) {
  // The executor's completion-channel shape: several workers pushing,
  // the scheduler popping, with pushes retried on a full ring. Every
  // value must arrive exactly once, and per producer in FIFO order.
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscRing<std::uint64_t> ring(64);  // small: forces wraps and full states

  std::vector<std::vector<std::uint64_t>> got(kProducers);
  std::thread consumer([&] {
    std::uint64_t received = 0;
    std::uint64_t v = 0;
    while (received < kProducers * kPerProducer) {
      if (ring.try_pop(v)) {
        got[v >> 32].push_back(v & 0xffffffffu);
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  for (unsigned p = 0; p < kProducers; ++p) {
    ASSERT_EQ(got[p].size(), kPerProducer) << "producer " << p;
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(got[p][i], i) << "producer " << p << " reordered";
    }
  }
}

TEST(MpscRing, SurvivesCursorOverflow) {
  // Positions are uint64 and the cell-seq protocol is modular arithmetic;
  // start the cursors just below the wrap point so pushes and pops cross
  // pos == 2^64 within a few items. FIFO and the full/empty probes must
  // be unaffected by the wrap.
  constexpr std::uint64_t kStart = ~std::uint64_t{0} - 3;
  MpscRing<std::uint64_t> ring(8, kStart);
  EXPECT_TRUE(ring.empty());

  // Fill across the boundary, hit the full condition, then drain.
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(i)) << "push " << i;
  }
  EXPECT_FALSE(ring.try_push(99));
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v)) << "pop " << i;
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_TRUE(ring.empty());

  // A couple of laps after the wrap keeps working.
  for (std::uint64_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(ring.try_push(100 + i));
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 100 + i);
  }
}

TEST(MpscRing, ConcurrentProducersAcrossCursorOverflow) {
  // Same wrap point, but with racing producers so the CAS-claim path and
  // the consumer's lap-ahead seq update both cross the boundary under
  // contention.
  constexpr std::uint64_t kStart = ~std::uint64_t{0} - 7;
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  MpscRing<std::uint64_t> ring(16, kStart);

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tagged = (std::uint64_t{p} << 32) | i;
        while (!ring.try_push(tagged)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> got(kProducers);
  std::uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    got[v >> 32].push_back(v & 0xffffffffu);
    ++popped;
  }
  for (auto& t : producers) t.join();

  for (unsigned p = 0; p < kProducers; ++p) {
    ASSERT_EQ(got[p].size(), kPerProducer) << "producer " << p;
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(got[p][i], i) << "producer " << p << " reordered at wrap";
    }
  }
}

TEST(MpscRing, MoveOnlyValuesTransferCleanly) {
  MpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(5)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 5);
  EXPECT_FALSE(ring.try_pop(out));
}

}  // namespace
}  // namespace lyra
