#include "support/pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

namespace lyra::support {
namespace {

TEST(Arena, RecyclesBlocksOfTheSameClass) {
  Arena& arena = Arena::global();
  const std::size_t carved_before = arena.blocks_carved();

  void* a = arena.allocate(48);
  arena.deallocate(a, 48);
  // Same size class (33..48 bytes) must hand the identical block back.
  void* b = arena.allocate(40);
  EXPECT_EQ(a, b);
  arena.deallocate(b, 40);

  // Recycling never carves new blocks (at most the initial refill above).
  void* c = arena.allocate(48);
  void* d = arena.allocate(48);
  arena.deallocate(c, 48);
  arena.deallocate(d, 48);
  const std::size_t carved_slab = arena.blocks_carved() - carved_before;
  for (int i = 0; i < 10000; ++i) {
    void* p = arena.allocate(48);
    std::memset(p, 0xAB, 48);  // blocks are fully writable
    arena.deallocate(p, 48);
  }
  EXPECT_EQ(arena.blocks_carved() - carved_before, carved_slab);
}

TEST(Arena, LiveBlockAccountingBalances) {
  Arena& arena = Arena::global();
  const std::size_t live_before = arena.live_blocks();
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(arena.allocate(128));
  EXPECT_EQ(arena.live_blocks(), live_before + 64);
  for (void* p : blocks) arena.deallocate(p, 128);
  EXPECT_EQ(arena.live_blocks(), live_before);
}

TEST(Arena, AllBlocksAreGranuleAligned) {
  Arena& arena = Arena::global();
  for (std::size_t size : {1u, 16u, 17u, 100u, 512u, 1024u}) {
    void* p = arena.allocate(size);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kGranule, 0u)
        << "size " << size;
    arena.deallocate(p, size);
  }
}

TEST(Arena, OversizeRequestsFallBackToTheHeap) {
  Arena& arena = Arena::global();
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t live = arena.live_blocks();
  void* p = arena.allocate(Arena::kMaxBlock + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, Arena::kMaxBlock + 1);
  arena.deallocate(p, Arena::kMaxBlock + 1);
  // Bypassed the slabs entirely: no reservation, no live accounting.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.live_blocks(), live);
}

TEST(PoolAllocator, WorksAsAVectorAllocator) {
  std::vector<int, PoolAllocator<int>> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
}

TEST(PoolAllocator, PooledBytesBehavesLikeBytes) {
  PooledBytes buf(200, 0x5A);
  EXPECT_EQ(buf.size(), 200u);
  for (auto byte : buf) EXPECT_EQ(byte, 0x5A);
  buf.assign(64, 0x11);
  EXPECT_EQ(buf.size(), 64u);
}

struct Tracked {
  explicit Tracked(int* flag) : destroyed(flag) {}
  ~Tracked() { *destroyed += 1; }
  int* destroyed;
  char payload[40] = {};
};

TEST(MakePooled, ObjectLifetimeMatchesSharedPtr) {
  Arena& arena = Arena::global();
  int destroyed = 0;
  const std::size_t live_before = arena.live_blocks();
  {
    std::shared_ptr<Tracked> sp = make_pooled<Tracked>(&destroyed);
    std::shared_ptr<Tracked> sp2 = sp;  // shared control block, same arena
    EXPECT_GT(arena.live_blocks(), live_before);
    sp.reset();
    EXPECT_EQ(destroyed, 0);  // sp2 still holds it
  }
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(arena.live_blocks(), live_before);  // block returned to the pool
}

TEST(MakePooled, FreedBlockIsReusedNotLeaked) {
  int destroyed = 0;
  // shared_ptr + object land in one allocation; releasing and remaking
  // must cycle through the same pooled block (single-threaded arena).
  auto first = make_pooled<Tracked>(&destroyed);
  const void* addr = first.get();
  first.reset();
  auto second = make_pooled<Tracked>(&destroyed);
  EXPECT_EQ(second.get(), addr);
}

}  // namespace
}  // namespace lyra::support
