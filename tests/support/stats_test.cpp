#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace lyra {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Samples, PercentileExactValues) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
}

TEST(Samples, PercentileSingleElement) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
}

TEST(Samples, MeanMinMax) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Samples, AddAfterPercentileInvalidatesCache) {
  Samples s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
}

}  // namespace
}  // namespace lyra
