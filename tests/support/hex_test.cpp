#include "support/hex.hpp"

#include <gtest/gtest.h>

namespace lyra {
namespace {

TEST(Hex, EncodesKnownBytes) {
  const Bytes b{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
}

TEST(Hex, EncodesEmpty) { EXPECT_EQ(to_hex(Bytes{}), ""); }

TEST(Hex, RoundTrips) {
  Bytes b;
  for (int i = 0; i < 256; ++i) b.push_back(static_cast<std::uint8_t>(i));
  const auto decoded = from_hex(to_hex(b));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, b);
}

TEST(Hex, AcceptsUppercase) {
  const auto decoded = from_hex("ABFF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xab, 0xff}));
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHexChars) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

}  // namespace
}  // namespace lyra
