#include "ordering/distance_table.hpp"

#include <gtest/gtest.h>

#include "support/random.hpp"

namespace lyra::ordering {
using lyra::Rng;
namespace {

TEST(DistanceTable, FirstObservationSetsEstimate) {
  DistanceTable d(4, 0.2);
  EXPECT_FALSE(d.has(1));
  d.observe(1, ms(50));
  EXPECT_TRUE(d.has(1));
  EXPECT_EQ(d.distance(1), ms(50));
}

TEST(DistanceTable, EwmaSmoothsTowardNewValues) {
  DistanceTable d(4, 0.5);
  d.observe(1, ms(100));
  d.observe(1, ms(200));
  EXPECT_EQ(d.distance(1), ms(150));
  d.observe(1, ms(150));
  EXPECT_EQ(d.distance(1), ms(150));
}

TEST(DistanceTable, UnobservedPeerHasNoDistance) {
  DistanceTable d(4, 0.2);
  EXPECT_EQ(d.distance(2), kNoSeq);
}

TEST(DistanceTable, ReadyAfterQuorumObservations) {
  DistanceTable d(4, 0.2);
  d.observe(0, 0);
  d.observe(1, ms(10));
  EXPECT_FALSE(d.ready(3));
  d.observe(2, ms(20));
  EXPECT_TRUE(d.ready(3));
  EXPECT_EQ(d.observed_count(), 3u);
}

TEST(DistanceTable, PredictionAddsDistancesToReference) {
  DistanceTable d(3, 0.2);
  d.observe(0, 0);
  d.observe(1, ms(10));
  d.observe(2, ms(30));
  const auto preds = d.predict(ms(1000));
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0], ms(1000));
  EXPECT_EQ(preds[1], ms(1010));
  EXPECT_EQ(preds[2], ms(1030));
}

TEST(DistanceTable, BlankPeersFilledWithMaxKnownDistance) {
  // Silent Byzantine peers get the conservative (largest) estimate.
  DistanceTable d(4, 0.2);
  d.observe(0, 0);
  d.observe(1, ms(10));
  d.observe(2, ms(30));
  const auto preds = d.predict(0);
  EXPECT_EQ(preds[3], ms(30));
}

TEST(DistanceTable, NegativeDistancesSupported) {
  // d_ij folds in clock offsets, so it can be negative (a peer whose clock
  // runs behind by more than the network delay).
  DistanceTable d(2, 0.2);
  d.observe(1, -ms(5));
  const auto preds = d.predict(ms(100));
  EXPECT_EQ(preds[1], ms(95));
}

TEST(RequestedSeq, TakesNMinusFthSmallest) {
  // n = 4, f = 1: the requested value is the 3rd smallest, leaving at most
  // f = 1 predictions above it (Lemma 2).
  const std::vector<SeqNum> preds{ms(40), ms(10), ms(20), ms(30)};
  EXPECT_EQ(DistanceTable::requested_seq(preds, 1), ms(30));
}

TEST(RequestedSeq, WithZeroFaultsTakesMaximum) {
  const std::vector<SeqNum> preds{ms(40), ms(10)};
  EXPECT_EQ(DistanceTable::requested_seq(preds, 0), ms(40));
}

TEST(RequestedSeq, DuplicatesHandled) {
  const std::vector<SeqNum> preds{ms(10), ms(10), ms(10), ms(10)};
  EXPECT_EQ(DistanceTable::requested_seq(preds, 1), ms(10));
}

class RequestedSeqQuorums
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RequestedSeqQuorums, AtMostFAbove) {
  const auto [n, f] = GetParam();
  Rng rng(n * 131 + f);
  std::vector<SeqNum> preds;
  for (std::size_t i = 0; i < n; ++i) {
    preds.push_back(rng.next_in_range(0, 1'000'000));
  }
  const SeqNum s = ordering::DistanceTable::requested_seq(preds, f);
  std::size_t above = 0;
  for (SeqNum p : preds) {
    if (p > s) ++above;
  }
  EXPECT_LE(above, f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RequestedSeqQuorums,
                         ::testing::Values(std::tuple{4u, 1u},
                                           std::tuple{10u, 3u},
                                           std::tuple{31u, 10u},
                                           std::tuple{100u, 33u}));

}  // namespace
}  // namespace lyra::ordering
