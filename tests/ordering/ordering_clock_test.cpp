#include "ordering/ordering_clock.hpp"

#include <gtest/gtest.h>

namespace lyra::ordering {
namespace {

TEST(OrderingClock, TracksSimulatedTimePlusOffset) {
  sim::Simulation sim(1);
  OrderingClock ahead(&sim, ms(5));
  OrderingClock behind(&sim, -ms(3));
  EXPECT_EQ(ahead.now(), ms(5));
  EXPECT_EQ(behind.now(), -ms(3));

  sim.schedule_in(ms(100), [] {});
  sim.run_all();
  EXPECT_EQ(ahead.now(), ms(105));
  EXPECT_EQ(behind.now(), ms(97));
}

TEST(OrderingClock, MonotoneAcrossEvents) {
  sim::Simulation sim(2);
  OrderingClock clock(&sim, us(123));
  SeqNum last = clock.now();
  for (int i = 1; i <= 50; ++i) {
    sim.schedule_in(us(10), [] {});
    sim.run_all();
    const SeqNum now = clock.now();
    EXPECT_GT(now, last);
    last = now;
  }
}

TEST(OrderingClock, OffsetsAreObservableDifferences) {
  // Two clocks over the same simulation differ by exactly the offset
  // delta at every instant — the quantity d_ij absorbs (§IV-B1).
  sim::Simulation sim(3);
  OrderingClock a(&sim, ms(2));
  OrderingClock b(&sim, ms(7));
  for (int i = 0; i < 10; ++i) {
    sim.schedule_in(ms(13), [] {});
    sim.run_all();
    EXPECT_EQ(b.now() - a.now(), ms(5));
  }
}

}  // namespace
}  // namespace lyra::ordering
