#include "net/network.hpp"

#include <gtest/gtest.h>

namespace lyra::net {
namespace {

struct Ping final : sim::Payload {
  explicit Ping(int tag) : tag(tag) {}
  int tag;
  const char* name() const override { return "PING"; }
};

class Sink final : public sim::Process {
 public:
  using sim::Process::Process;
  using sim::Process::broadcast;
  using sim::Process::send;

  std::vector<sim::Envelope> received;

 protected:
  void on_message(const sim::Envelope& env) override {
    received.push_back(env);
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : sim_(1),
        net_(&sim_, std::make_unique<UniformLatency>(ms(10)), 3) {
    for (NodeId i = 0; i < 4; ++i) {
      nodes_.push_back(std::make_unique<Sink>(&sim_, &net_, i));
      net_.attach(nodes_.back().get());
    }
  }

  sim::Simulation sim_;
  Network net_;
  std::vector<std::unique_ptr<Sink>> nodes_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  nodes_[0]->send(1, std::make_shared<Ping>(7));
  sim_.run_all();
  ASSERT_EQ(nodes_[1]->received.size(), 1u);
  const auto& env = nodes_[1]->received[0];
  EXPECT_EQ(env.from, 0u);
  EXPECT_EQ(env.to, 1u);
  EXPECT_EQ(env.delivered_at - env.sent_at, ms(10));
  EXPECT_EQ(sim::payload_as<Ping>(env)->tag, 7);
}

TEST_F(NetworkTest, PayloadIsSharedUntampered) {
  auto payload = std::make_shared<Ping>(42);
  nodes_[0]->send(1, payload);
  nodes_[0]->send(2, payload);
  sim_.run_all();
  EXPECT_EQ(sim::payload_as<Ping>(nodes_[1]->received[0])->tag, 42);
  EXPECT_EQ(sim::payload_as<Ping>(nodes_[2]->received[0]), payload.get());
}

TEST_F(NetworkTest, BroadcastOnlyHitsConsensusNodes) {
  // Node 3 is a client (consensus_count = 3) and must not receive
  // broadcasts.
  nodes_[0]->broadcast(std::make_shared<Ping>(1));
  sim_.run_all();
  EXPECT_EQ(nodes_[0]->received.size(), 1u);  // self-delivery
  EXPECT_EQ(nodes_[1]->received.size(), 1u);
  EXPECT_EQ(nodes_[2]->received.size(), 1u);
  EXPECT_EQ(nodes_[3]->received.size(), 0u);
}

TEST_F(NetworkTest, ClientsCanSendToNodes) {
  nodes_[3]->send(0, std::make_shared<Ping>(9));
  sim_.run_all();
  ASSERT_EQ(nodes_[0]->received.size(), 1u);
  EXPECT_EQ(nodes_[0]->received[0].from, 3u);
}

TEST_F(NetworkTest, CountsDeliveries) {
  nodes_[0]->broadcast(std::make_shared<Ping>(1));
  sim_.run_all();
  EXPECT_EQ(net_.messages_delivered(), 3u);
}

TEST(NetworkDeterminism, SameSeedSameDeliveryTimes) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim(seed);
    Network net(&sim, std::make_unique<UniformLatency>(ms(10), 0.3), 2);
    Sink a(&sim, &net, 0);
    Sink b(&sim, &net, 1);
    net.attach(&a);
    net.attach(&b);
    for (int i = 0; i < 20; ++i) a.send(1, std::make_shared<Ping>(i));
    sim.run_all();
    std::vector<TimeNs> times;
    for (const auto& env : b.received) times.push_back(env.delivered_at);
    return times;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

}  // namespace
}  // namespace lyra::net
