#include "net/latency_model.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace lyra::net {
namespace {

TEST(UniformLatency, NoJitterIsConstant) {
  UniformLatency model(ms(10));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(0, 1, rng), ms(10));
  }
}

TEST(UniformLatency, SelfMessagesUseLoopback) {
  UniformLatency model(ms(10), 0.0, us(50));
  Rng rng(1);
  EXPECT_EQ(model.sample(3, 3, rng), us(50));
  EXPECT_EQ(model.base(3, 3), us(50));
}

TEST(UniformLatency, JitterPreservesMeanApproximately) {
  UniformLatency model(ms(100), 0.2);
  Rng rng(2);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(to_ms(model.sample(0, 1, rng)));
  }
  EXPECT_NEAR(stats.mean(), 100.0, 1.0);
  EXPECT_GT(stats.stddev(), 5.0);  // jitter is actually present
}

TEST(MatrixLatency, UsesPerPairBase) {
  std::vector<std::vector<TimeNs>> m = {
      {0, ms(10), ms(20)},
      {ms(10), 0, ms(30)},
      {ms(20), ms(30), 0},
  };
  MatrixLatency model(m, 0.0);
  Rng rng(1);
  EXPECT_EQ(model.sample(0, 1, rng), ms(10));
  EXPECT_EQ(model.sample(1, 2, rng), ms(30));
  EXPECT_EQ(model.base(0, 2), ms(20));
  EXPECT_EQ(model.max_base(), ms(30));
}

TEST(MatrixLatency, SamplesNeverBelowLoopback) {
  std::vector<std::vector<TimeNs>> m = {{0, us(1)}, {us(1), 0}};
  MatrixLatency model(m, 0.0, us(50));
  Rng rng(1);
  EXPECT_EQ(model.sample(0, 1, rng), us(50));
}

TEST(MatrixLatency, JitterIsDeterministicGivenSeed) {
  std::vector<std::vector<TimeNs>> m = {{0, ms(10)}, {ms(10), 0}};
  MatrixLatency model(m, 0.1);
  Rng rng1(5);
  Rng rng2(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(0, 1, rng1), model.sample(0, 1, rng2));
  }
}

}  // namespace
}  // namespace lyra::net
