#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace lyra::net {
namespace {

TEST(Topology, ThreeContinentsRoundRobin) {
  const Topology t = three_continents(7);
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t.placement[0], Region::kOregon);
  EXPECT_EQ(t.placement[1], Region::kIreland);
  EXPECT_EQ(t.placement[2], Region::kSydney);
  EXPECT_EQ(t.placement[3], Region::kOregon);
  EXPECT_EQ(t.placement[6], Region::kOregon);
}

TEST(Topology, ExtraProcessesAppended) {
  const Topology t =
      three_continents(3, {Region::kTokyo, Region::kSingapore});
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t.placement[3], Region::kTokyo);
  EXPECT_EQ(t.placement[4], Region::kSingapore);
}

TEST(Topology, RegionLatencyIsSymmetric) {
  for (std::size_t a = 0; a < kRegionCount; ++a) {
    for (std::size_t b = 0; b < kRegionCount; ++b) {
      EXPECT_EQ(region_latency(static_cast<Region>(a), static_cast<Region>(b)),
                region_latency(static_cast<Region>(b), static_cast<Region>(a)));
    }
  }
}

TEST(Topology, IntraRegionIsFast) {
  for (std::size_t a = 0; a < kRegionCount; ++a) {
    const auto r = static_cast<Region>(a);
    EXPECT_LT(region_latency(r, r), ms(1));
  }
}

TEST(Topology, TriangleInequalityViolationExists) {
  // The Fig. 1 attack path: Tokyo -> Singapore -> Mumbai is faster than
  // Tokyo -> Mumbai directly.
  const TimeNs direct = region_latency(Region::kTokyo, Region::kMumbai);
  const TimeNs via_mallory =
      region_latency(Region::kTokyo, Region::kSingapore) +
      region_latency(Region::kSingapore, Region::kMumbai);
  EXPECT_LT(via_mallory, direct);
}

TEST(Topology, TriangleViolationPlacesActors) {
  const Topology t = triangle_violation(4);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t.placement[3], Region::kMumbai);     // Carole (consensus node)
  EXPECT_EQ(t.placement[4], Region::kTokyo);      // Alice
  EXPECT_EQ(t.placement[5], Region::kSingapore);  // Mallory
}

TEST(Topology, LatencyModelMatchesPlacement) {
  const Topology t = three_continents(4);
  const auto model = t.make_latency_model();
  EXPECT_EQ(model->base(0, 1),
            region_latency(Region::kOregon, Region::kIreland));
  EXPECT_EQ(model->base(0, 3), region_latency(Region::kOregon, Region::kOregon));
}

TEST(Topology, SingleRegionIsUniformlyLocal) {
  const Topology t = single_region(5);
  const auto model = t.make_latency_model();
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) {
      EXPECT_LT(model->base(i, j), ms(1));
    }
  }
}

TEST(Topology, RegionNamesAreStable) {
  EXPECT_STREQ(region_name(Region::kOregon), "oregon");
  EXPECT_STREQ(region_name(Region::kMumbai), "mumbai");
}

}  // namespace
}  // namespace lyra::net
