// NIC egress serialization and FIFO-channel behaviour of the network
// substrate — the mechanisms behind the HotStuff leader bottleneck and the
// Commit protocol's in-order status application.

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace lyra::net {
namespace {

struct Blob final : sim::Payload {
  explicit Blob(std::size_t size) : size(size) {}
  std::size_t size;
  const char* name() const override { return "BLOB"; }
  std::size_t wire_size() const override { return size; }
};

class Sink final : public sim::Process {
 public:
  using sim::Process::Process;
  using sim::Process::broadcast;
  using sim::Process::send;
  std::vector<sim::Envelope> received;

 protected:
  void on_message(const sim::Envelope& env) override {
    received.push_back(env);
  }
};

class BandwidthTest : public ::testing::Test {
 protected:
  static constexpr double kBw = 1e6;  // 1 MB/s: 1 ms per KB

  BandwidthTest()
      : sim_(1), net_(&sim_, std::make_unique<UniformLatency>(ms(10)), 3) {
    net_.set_bandwidth(kBw);
    for (NodeId i = 0; i < 3; ++i) {
      nodes_.push_back(std::make_unique<Sink>(&sim_, &net_, i));
      net_.attach(nodes_.back().get());
    }
  }

  sim::Simulation sim_;
  Network net_;
  std::vector<std::unique_ptr<Sink>> nodes_;
};

TEST_F(BandwidthTest, SerializationDelaysDelivery) {
  nodes_[0]->send(1, std::make_shared<Blob>(1000));  // 1 ms to serialize
  sim_.run_all();
  ASSERT_EQ(nodes_[1]->received.size(), 1u);
  EXPECT_EQ(nodes_[1]->received[0].delivered_at, ms(11));
}

TEST_F(BandwidthTest, BackToBackSendsQueueOnTheNic) {
  nodes_[0]->send(1, std::make_shared<Blob>(1000));
  nodes_[0]->send(2, std::make_shared<Blob>(1000));  // queues behind
  sim_.run_all();
  EXPECT_EQ(nodes_[1]->received[0].delivered_at, ms(11));
  EXPECT_EQ(nodes_[2]->received[0].delivered_at, ms(12));
}

TEST_F(BandwidthTest, BroadcastFanOutIsUniformAcrossReceivers) {
  // send_all books the NIC once for the whole fan-out: every receiver
  // sees the same egress delay (3 copies x 1 ms = 3 ms).
  nodes_[0]->broadcast(std::make_shared<Blob>(1000));
  sim_.run_all();
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_EQ(nodes_[i]->received.size(), 1u) << "node " << i;
    const TimeNs latency = i == 0 ? us(50) : ms(10);
    EXPECT_EQ(nodes_[i]->received[0].delivered_at, ms(3) + latency)
        << "node " << i;
  }
}

TEST_F(BandwidthTest, NicBacklogReported) {
  nodes_[0]->send(1, std::make_shared<Blob>(5000));
  EXPECT_EQ(net_.nic_backlog(0), ms(5));
  EXPECT_EQ(net_.nic_backlog(1), 0);
  sim_.run_all();
  EXPECT_EQ(net_.nic_backlog(0), 0);
}

TEST_F(BandwidthTest, ZeroBandwidthDisablesTheModel) {
  net_.set_bandwidth(0.0);
  nodes_[0]->send(1, std::make_shared<Blob>(1'000'000));
  sim_.run_all();
  EXPECT_EQ(nodes_[1]->received[0].delivered_at, ms(10));
}

TEST_F(BandwidthTest, FifoChannelNeverReorders) {
  // 200 small messages on one channel with heavy jitter: arrival order
  // must match send order (TCP-like channels).
  sim::Simulation sim(3);
  Network net(&sim, std::make_unique<UniformLatency>(ms(10), 0.5), 2);
  Sink a(&sim, &net, 0);
  Sink b(&sim, &net, 1);
  net.attach(&a);
  net.attach(&b);
  for (std::size_t i = 0; i < 200; ++i) {
    a.send(1, std::make_shared<Blob>(64 + i));
  }
  sim.run_all();
  ASSERT_EQ(b.received.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(sim::payload_as<Blob>(b.received[i])->size, 64 + i);
    if (i > 0) {
      EXPECT_GE(b.received[i].delivered_at, b.received[i - 1].delivered_at);
    }
  }
}

}  // namespace
}  // namespace lyra::net
