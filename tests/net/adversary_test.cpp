#include "net/adversary.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace lyra::net {
namespace {

sim::Envelope envelope_at(TimeNs sent, NodeId from = 0, NodeId to = 1) {
  sim::Envelope env;
  env.from = from;
  env.to = to;
  env.sent_at = sent;
  return env;
}

TEST(PreGstDelayAdversary, InflatesBeforeGst) {
  PreGstDelayAdversary adv(ms(1000), ms(500));
  Rng rng(1);
  bool inflated = false;
  for (int i = 0; i < 100; ++i) {
    const TimeNs d = adv.delay(envelope_at(ms(10)), ms(20), rng);
    EXPECT_GE(d, ms(20));
    if (d > ms(20)) inflated = true;
  }
  EXPECT_TRUE(inflated);
}

TEST(PreGstDelayAdversary, HonestAfterGst) {
  PreGstDelayAdversary adv(ms(1000), ms(500));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(adv.delay(envelope_at(ms(1000)), ms(20), rng), ms(20));
    EXPECT_EQ(adv.delay(envelope_at(ms(5000)), ms(20), rng), ms(20));
  }
}

TEST(PreGstDelayAdversary, DeliveryCappedByGstPlusDelta) {
  PreGstDelayAdversary adv(ms(100), ms(100000));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const TimeNs sent = ms(50);
    const TimeNs base = ms(20);
    const TimeNs d = adv.delay(envelope_at(sent), base, rng);
    EXPECT_LE(sent + d, ms(100) + base);
  }
}

TEST(TargetedDelayAdversary, OnlyAffectsVictim) {
  TargetedDelayAdversary adv(ms(1000), ms(300), /*victim=*/2);
  Rng rng(1);
  EXPECT_EQ(adv.delay(envelope_at(ms(1), 0, 1), ms(10), rng), ms(10));
  EXPECT_GT(adv.delay(envelope_at(ms(1), 0, 2), ms(10), rng), ms(10));
  EXPECT_GT(adv.delay(envelope_at(ms(1), 2, 0), ms(10), rng), ms(10));
}

TEST(TargetedDelayAdversary, StopsAtGst) {
  TargetedDelayAdversary adv(ms(1000), ms(300), 2);
  Rng rng(1);
  EXPECT_EQ(adv.delay(envelope_at(ms(1000), 0, 2), ms(10), rng), ms(10));
}

TEST(NetworkWithAdversary, MessagesDelayedUntilGst) {
  sim::Simulation sim(9);
  Network net(&sim, std::make_unique<UniformLatency>(ms(10)), 2);

  struct Ping final : sim::Payload {
    const char* name() const override { return "PING"; }
  };
  class Sink final : public sim::Process {
   public:
    using sim::Process::Process;
    using sim::Process::send;
    std::vector<TimeNs> arrivals;

   protected:
    void on_message(const sim::Envelope& env) override {
      arrivals.push_back(env.delivered_at);
    }
  };

  Sink a(&sim, &net, 0);
  Sink b(&sim, &net, 1);
  net.attach(&a);
  net.attach(&b);

  PreGstDelayAdversary adv(ms(500), ms(400));
  net.set_adversary(&adv);

  for (int i = 0; i < 50; ++i) a.send(1, std::make_shared<Ping>());
  sim.run_all();

  ASSERT_EQ(b.arrivals.size(), 50u);
  bool some_late = false;
  for (TimeNs t : b.arrivals) {
    EXPECT_LE(t, ms(510));  // never past GST + Delta
    if (t > ms(11)) some_late = true;
  }
  EXPECT_TRUE(some_late);
}

}  // namespace
}  // namespace lyra::net
