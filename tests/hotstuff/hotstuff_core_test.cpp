// Direct unit tests of HotStuffCore's rules (proposal validation, vote
// rule, three-chain commit, pacemaker) using scripted hooks — no network,
// every message is injected by hand.

#include "hotstuff/hotstuff_core.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace lyra::hotstuff {
namespace {

class CoreHarness {
 public:
  explicit CoreHarness(NodeId self, std::size_t n = 4, std::size_t f = 1)
      : rng_(7), registry_(n, 2 * f + 1, rng_) {
    HotStuffCore::Options options;
    options.n = n;
    options.f = f;
    options.self = self;
    options.initial_leader = 0;
    options.view_timeout = ms(1000);
    core_ = std::make_unique<HotStuffCore>(
        options, &registry_,
        HotStuffCore::Hooks{
            .broadcast = [this](sim::PayloadPtr p) { sent.push_back({kNoNode, std::move(p)}); },
            .send = [this](NodeId to, sim::PayloadPtr p) { sent.push_back({to, std::move(p)}); },
            .set_timer = [](TimeNs, std::function<void()>) {},
            .charge = [](TimeNs) {},
            .collect = [this](std::uint64_t) { return std::exchange(pending, {}); },
            .on_commit = [this](const Block& b) { committed.push_back(b.height); },
        });
  }

  /// Injects a message as if delivered from `from`.
  void inject(NodeId from, sim::PayloadPtr payload) {
    sim::Envelope env;
    env.from = from;
    env.payload = std::move(payload);
    core_->handle(env);
  }

  /// Crafts a valid proposal extending `justify` at the given view.
  std::shared_ptr<ProposalMsg> make_proposal(const QuorumCert& justify,
                                             std::uint64_t view,
                                             NodeId proposer,
                                             bool with_entry = false) {
    auto block = std::make_shared<Block>();
    block->height = justify.height + 1;
    block->view = view;
    block->proposer = proposer;
    block->parent = justify.block;
    block->justify = justify;
    if (with_entry) {
      BlockEntry e;
      e.batch_digest = crypto::Sha256::hash(to_bytes(
          "entry" + std::to_string(block->height)));
      block->entries.push_back(e);
    }
    auto msg = std::make_shared<ProposalMsg>();
    msg->block = std::move(block);
    return msg;
  }

  /// Forms a genuine QC over the given block (all replicas' shares).
  QuorumCert make_qc(const Block& block) {
    const crypto::Digest d =
        crypto::Hasher().add_str("hs-vote").add_u64(block.height)
            .add(block.digest()).digest();
    const Bytes msg(d.begin(), d.end());
    std::vector<crypto::SigShare> shares;
    for (NodeId i = 0; i < 3; ++i) {
      shares.push_back(registry_.signer_for(i).share_sign(msg));
    }
    QuorumCert qc;
    qc.height = block.height;
    qc.block = block.digest();
    qc.sig = *registry_.share_combine(msg, shares);
    return qc;
  }

  /// Last vote this replica emitted, if any.
  const BlockVoteMsg* last_vote() const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (const auto* v = dynamic_cast<const BlockVoteMsg*>(it->second.get())) {
        return v;
      }
    }
    return nullptr;
  }

  std::size_t vote_count() const {
    std::size_t count = 0;
    for (const auto& [to, p] : sent) {
      if (dynamic_cast<const BlockVoteMsg*>(p.get()) != nullptr) ++count;
    }
    return count;
  }

  Rng rng_;
  crypto::KeyRegistry registry_;
  std::unique_ptr<HotStuffCore> core_;
  std::vector<std::pair<NodeId, sim::PayloadPtr>> sent;
  std::vector<BlockEntry> pending;
  std::vector<std::uint64_t> committed;
};

TEST(HotStuffCore, RepliesWithVoteToValidProposal) {
  CoreHarness h(/*self=*/1);
  auto prop = h.make_proposal(h.core_->high_qc(), 0, /*proposer=*/0);
  h.inject(0, prop);
  const auto* vote = h.last_vote();
  ASSERT_NE(vote, nullptr);
  EXPECT_EQ(vote->height, 1u);
  EXPECT_EQ(vote->block, prop->block->digest());
}

TEST(HotStuffCore, RejectsProposalFromNonLeader) {
  CoreHarness h(1);
  auto prop = h.make_proposal(h.core_->high_qc(), 0, /*proposer=*/2);
  h.inject(2, prop);
  EXPECT_EQ(h.last_vote(), nullptr);
}

TEST(HotStuffCore, RejectsRelayedProposal) {
  CoreHarness h(1);
  auto prop = h.make_proposal(h.core_->high_qc(), 0, 0);
  h.inject(3, prop);  // sender != proposer
  EXPECT_EQ(h.last_vote(), nullptr);
}

TEST(HotStuffCore, RejectsMalformedChain) {
  CoreHarness h(1);
  auto prop = h.make_proposal(h.core_->high_qc(), 0, 0);
  auto tampered = std::make_shared<Block>(*prop->block);
  tampered->height += 1;  // height must be justify.height + 1
  auto msg = std::make_shared<ProposalMsg>();
  msg->block = tampered;
  h.inject(0, msg);
  EXPECT_EQ(h.last_vote(), nullptr);
}

TEST(HotStuffCore, RejectsForgedQc) {
  CoreHarness h(1);
  auto b1 = h.make_proposal(h.core_->high_qc(), 0, 0);
  h.inject(0, b1);
  QuorumCert forged = h.make_qc(*b1->block);
  forged.sig.shares[0].mac[0] ^= 1;  // corrupt one share
  auto b2 = h.make_proposal(forged, 0, 0);
  h.inject(0, b2);
  EXPECT_EQ(h.vote_count(), 1u);  // only the first proposal got a vote
}

TEST(HotStuffCore, VotesOncePerViewAndHeight) {
  CoreHarness h(1);
  auto prop = h.make_proposal(h.core_->high_qc(), 0, 0);
  h.inject(0, prop);
  h.inject(0, prop);  // duplicate
  EXPECT_EQ(h.vote_count(), 1u);
}

TEST(HotStuffCore, ThreeChainCommits) {
  CoreHarness h(1);
  auto b1 = h.make_proposal(h.core_->high_qc(), 0, 0, /*with_entry=*/true);
  h.inject(0, b1);
  auto b2 = h.make_proposal(h.make_qc(*b1->block), 0, 0);
  h.inject(0, b2);
  auto b3 = h.make_proposal(h.make_qc(*b2->block), 0, 0);
  h.inject(0, b3);
  EXPECT_TRUE(h.committed.empty());  // two-chain is not enough
  auto b4 = h.make_proposal(h.make_qc(*b3->block), 0, 0);
  h.inject(0, b4);
  ASSERT_EQ(h.committed.size(), 1u);
  EXPECT_EQ(h.committed[0], 1u);
  EXPECT_EQ(h.core_->committed_height(), 1u);
}

TEST(HotStuffCore, CommitDeliversAncestorsInOrder) {
  CoreHarness h(1);
  std::vector<std::shared_ptr<ProposalMsg>> chain;
  QuorumCert qc = h.core_->high_qc();
  for (int i = 0; i < 6; ++i) {
    auto prop = h.make_proposal(qc, 0, 0, /*with_entry=*/true);
    h.inject(0, prop);
    qc = h.make_qc(*prop->block);
    chain.push_back(std::move(prop));
  }
  // Heights 1..3 have three successors each by now.
  ASSERT_GE(h.committed.size(), 3u);
  for (std::size_t i = 1; i < h.committed.size(); ++i) {
    EXPECT_EQ(h.committed[i], h.committed[i - 1] + 1);
  }
}

TEST(HotStuffCore, LeaderFormsQcFromQuorumVotes) {
  CoreHarness h(/*self=*/0);  // the leader
  h.pending.push_back(BlockEntry{});
  h.core_->kick();  // proposes height 1
  ASSERT_FALSE(h.sent.empty());
  const auto* prop =
      dynamic_cast<const ProposalMsg*>(h.sent.front().second.get());
  ASSERT_NE(prop, nullptr);
  const Block& b = *prop->block;

  // Deliver 2f+1 = 3 votes (leader's own + two replicas).
  const crypto::Digest d = crypto::Hasher()
                               .add_str("hs-vote")
                               .add_u64(b.height)
                               .add(b.digest())
                               .digest();
  const Bytes msg(d.begin(), d.end());
  for (NodeId i = 0; i < 3; ++i) {
    auto vote = std::make_shared<BlockVoteMsg>();
    vote->height = b.height;
    vote->block = b.digest();
    vote->share = h.registry_.signer_for(i).share_sign(msg);
    h.inject(i, vote);
  }
  EXPECT_EQ(h.core_->high_qc().height, 1u);
  EXPECT_FALSE(h.core_->high_qc().genesis);
}

TEST(HotStuffCore, DuplicateVotesDoNotFormQc) {
  CoreHarness h(0);
  h.pending.push_back(BlockEntry{});
  h.core_->kick();
  const auto* prop =
      dynamic_cast<const ProposalMsg*>(h.sent.front().second.get());
  const Block& b = *prop->block;
  const crypto::Digest d = crypto::Hasher()
                               .add_str("hs-vote")
                               .add_u64(b.height)
                               .add(b.digest())
                               .digest();
  const Bytes msg(d.begin(), d.end());
  auto vote = std::make_shared<BlockVoteMsg>();
  vote->height = b.height;
  vote->block = b.digest();
  vote->share = h.registry_.signer_for(1).share_sign(msg);
  for (int i = 0; i < 5; ++i) h.inject(1, vote);
  EXPECT_TRUE(h.core_->high_qc().genesis);  // one voter cannot make a QC
}

TEST(HotStuffCore, EmptyChainStaysIdle) {
  CoreHarness h(0);
  h.core_->kick();  // nothing pending, nothing uncommitted
  EXPECT_EQ(h.core_->blocks_proposed(), 0u);
}

}  // namespace
}  // namespace lyra::hotstuff
