#include "hotstuff/block.hpp"

#include <gtest/gtest.h>

namespace lyra::hotstuff {
namespace {

BlockEntry make_entry(int i) {
  BlockEntry e;
  Bytes b;
  append_u64(b, static_cast<std::uint64_t>(i));
  e.batch_digest = crypto::Sha256::hash(b);
  e.assigned_ts = ms(i);
  e.proposer = static_cast<NodeId>(i % 4);
  e.tx_count = 800;
  e.nominal_bytes = 800 * 32;
  e.proof_bytes = 7 * 72;
  return e;
}

TEST(Block, DigestCoversHeader) {
  Block a;
  a.height = 5;
  Block b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.height = 6;
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.view = 2;
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.parent[0] ^= 1;
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Block, DigestCoversEntries) {
  Block a;
  a.entries.push_back(make_entry(1));
  Block b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.entries[0].assigned_ts += 1;
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.entries.push_back(make_entry(2));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Block, WireBytesAccountForPayloadAndProofs) {
  Block b;
  EXPECT_EQ(b.wire_bytes(), 256u);
  b.entries.push_back(make_entry(1));
  EXPECT_EQ(b.wire_bytes(), 256u + 64 + 800 * 32 + 7 * 72);
}

}  // namespace
}  // namespace lyra::hotstuff
