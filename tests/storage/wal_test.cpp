#include "storage/wal.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/crc32.hpp"
#include "storage/disk.hpp"

namespace lyra::storage {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct Record {
  std::uint8_t type;
  Bytes payload;
};

std::vector<Record> replay_all(const Disk& disk, WalReplayStats* stats_out,
                               std::uint64_t from_segment = 0) {
  std::vector<Record> records;
  const WalReplayStats stats =
      wal_replay(disk, from_segment, [&](std::uint8_t type, BytesView payload) {
        records.push_back({type, Bytes(payload.begin(), payload.end())});
      });
  if (stats_out != nullptr) *stats_out = stats;
  return records;
}

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  const Bytes data = bytes_of("123456789");
  EXPECT_EQ(crc32({data.data(), data.size()}), 0xCBF43926u);
  EXPECT_EQ(crc32(BytesView{}), 0u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const Bytes data = bytes_of("hello wal world");
  std::uint32_t state = kCrc32Init;
  state = crc32_update(state, {data.data(), 5});
  state = crc32_update(state, {data.data() + 5, data.size() - 5});
  EXPECT_EQ(crc32_final(state), crc32({data.data(), data.size()}));
}

TEST(WalSegmentNameTest, RoundTrips) {
  const std::string name = wal_segment_name(42);
  std::uint64_t index = 0;
  ASSERT_TRUE(parse_wal_segment_name(name, index));
  EXPECT_EQ(index, 42u);
  EXPECT_FALSE(parse_wal_segment_name("snap-0000000042.img", index));
  EXPECT_FALSE(parse_wal_segment_name("wal-badbadbad0.log", index));
  EXPECT_FALSE(parse_wal_segment_name("wal-42.log", index));
}

TEST(WalTest, AppendReplayRoundTrip) {
  MemDisk disk;
  WalWriter writer(&disk);
  writer.append(1, bytes_of("alpha"));
  writer.append(2, bytes_of(""));
  writer.append(7, bytes_of("gamma-gamma"));

  WalReplayStats stats;
  const auto records = replay_all(disk, &stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[0].payload, bytes_of("alpha"));
  EXPECT_EQ(records[1].type, 2);
  EXPECT_TRUE(records[1].payload.empty());
  EXPECT_EQ(records[2].type, 7);
  EXPECT_EQ(records[2].payload, bytes_of("gamma-gamma"));
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.torn_tail_bytes, 0u);
  EXPECT_FALSE(stats.corrupt);
}

TEST(WalTest, RollsSegmentsAndReplaysInOrder) {
  MemDisk disk;
  WalWriter::Options options;
  options.segment_bytes = 32;  // force frequent rolls
  WalWriter writer(&disk, options);
  for (int i = 0; i < 20; ++i) {
    writer.append(1, bytes_of("record-" + std::to_string(i)));
  }
  EXPECT_GT(writer.current_segment(), 0u);

  WalReplayStats stats;
  const auto records = replay_all(disk, &stats);
  ASSERT_EQ(records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(records[i].payload, bytes_of("record-" + std::to_string(i)));
  }
  EXPECT_GT(stats.segments, 1u);
}

TEST(WalTest, WriterNeverReopensExistingSegments) {
  MemDisk disk;
  {
    WalWriter writer(&disk);
    writer.append(1, bytes_of("first life"));
  }
  WalWriter second(&disk);
  EXPECT_EQ(second.current_segment(), 1u);
  second.append(1, bytes_of("second life"));

  const auto records = replay_all(disk, nullptr);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, bytes_of("first life"));
  EXPECT_EQ(records[1].payload, bytes_of("second life"));
}

TEST(WalTest, ToleratesTornTailInLastSegment) {
  MemDisk disk;
  WalWriter writer(&disk);
  writer.append(1, bytes_of("whole"));
  writer.append(1, bytes_of("torn-away"));
  const std::string segment = wal_segment_name(0);
  const std::size_t full = disk.read(segment).size();
  disk.truncate(segment, full - 3);  // rip into the last record's CRC

  WalReplayStats stats;
  const auto records = replay_all(disk, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, bytes_of("whole"));
  EXPECT_GT(stats.torn_tail_bytes, 0u);
  EXPECT_FALSE(stats.corrupt);
}

TEST(WalTest, TornHeaderInLastSegmentIsTolerated) {
  MemDisk disk;
  WalWriter writer(&disk);
  writer.append(1, bytes_of("whole"));
  // A lone partial header (crash between header and payload write).
  disk.append(wal_segment_name(0), Bytes{0x10, 0x00});

  WalReplayStats stats;
  const auto records = replay_all(disk, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.torn_tail_bytes, 2u);
  EXPECT_FALSE(stats.corrupt);
}

TEST(WalTest, RepairsTornTailAcrossTwoRestarts) {
  // Crash #1 tears segment 0's tail; the second writer must repair it at
  // construction before opening segment 1, because crash #2 then tears
  // segment 1's tail and leaves segment 0 mid-log — where unrepaired torn
  // bytes would read as corruption and discard the second life entirely.
  MemDisk disk;
  {
    WalWriter writer(&disk);
    writer.append(1, bytes_of("live-1-whole"));
    writer.append(1, bytes_of("live-1-torn"));
  }
  const std::string seg0 = wal_segment_name(0);
  disk.truncate(seg0, disk.read(seg0).size() - 3);
  {
    WalWriter writer(&disk);
    EXPECT_EQ(writer.current_segment(), 1u);
    EXPECT_GT(writer.repaired_bytes(), 0u);
    writer.append(1, bytes_of("live-2-whole"));
    writer.append(1, bytes_of("live-2-torn"));
  }
  const std::string seg1 = wal_segment_name(1);
  disk.truncate(seg1, disk.read(seg1).size() - 3);

  WalReplayStats stats;
  const auto records = replay_all(disk, &stats);
  EXPECT_FALSE(stats.corrupt);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, bytes_of("live-1-whole"));
  EXPECT_EQ(records[1].payload, bytes_of("live-2-whole"));
  EXPECT_GT(stats.torn_tail_bytes, 0u);  // seg1's tear is still the newest
}

TEST(WalTest, RepairLeavesCrcCorruptionForEscalation) {
  // Tail repair only truncates incomplete frames; a complete frame with a
  // bad CRC is acknowledged history gone wrong and must survive untouched
  // so replay can escalate it.
  MemDisk disk;
  {
    WalWriter writer(&disk);
    writer.append(1, bytes_of("first"));
    writer.append(1, bytes_of("second"));
  }
  disk.corrupt(wal_segment_name(0), 6);
  EXPECT_EQ(wal_repair_tail(disk), 0u);
  WalWriter second(&disk);
  EXPECT_EQ(second.repaired_bytes(), 0u);

  WalReplayStats stats;
  replay_all(disk, &stats);
  EXPECT_TRUE(stats.corrupt);
}

TEST(WalTest, RepairOnWholeOrEmptyLogIsNoOp) {
  MemDisk disk;
  EXPECT_EQ(wal_repair_tail(disk), 0u);  // no segments at all
  WalWriter writer(&disk);
  writer.append(1, bytes_of("whole"));
  const std::size_t before = disk.read(wal_segment_name(0)).size();
  EXPECT_EQ(wal_repair_tail(disk), 0u);
  EXPECT_EQ(disk.read(wal_segment_name(0)).size(), before);
}

TEST(WalTest, DetectsCrcCorruption) {
  MemDisk disk;
  WalWriter writer(&disk);
  writer.append(1, bytes_of("first"));
  writer.append(1, bytes_of("second"));
  // Flip a byte inside the first record's payload.
  disk.corrupt(wal_segment_name(0), 6);

  WalReplayStats stats;
  const auto records = replay_all(disk, &stats);
  EXPECT_TRUE(stats.corrupt);
  EXPECT_TRUE(records.empty());  // replay stops at the bad frame
}

TEST(WalTest, ShortFrameInSealedSegmentIsCorruption) {
  MemDisk disk;
  WalWriter::Options options;
  options.segment_bytes = 16;  // every record seals its segment
  WalWriter writer(&disk, options);
  writer.append(1, bytes_of("aaaaaaaaaaaaaaaa"));
  writer.append(1, bytes_of("bbbbbbbbbbbbbbbb"));
  ASSERT_GE(writer.current_segment(), 2u);
  // Rip the tail off segment 0, which is not the last segment.
  const std::string first = wal_segment_name(0);
  disk.truncate(first, disk.read(first).size() - 2);

  WalReplayStats stats;
  replay_all(disk, &stats);
  EXPECT_TRUE(stats.corrupt);
}

TEST(WalTest, ReplayFromSegmentSkipsPrefix) {
  MemDisk disk;
  WalWriter::Options options;
  options.segment_bytes = 16;
  WalWriter writer(&disk, options);
  writer.append(1, bytes_of("old-old-old-old!"));
  writer.append(1, bytes_of("new-new-new-new!"));

  WalReplayStats stats;
  const auto records = replay_all(disk, &stats, /*from_segment=*/1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, bytes_of("new-new-new-new!"));
}

TEST(WalTest, DropSegmentsBeforeKeepsSuffix) {
  MemDisk disk;
  WalWriter::Options options;
  options.segment_bytes = 16;
  WalWriter writer(&disk, options);
  for (int i = 0; i < 4; ++i) {
    writer.append(1, bytes_of("record-#" + std::to_string(i) + "-pad!"));
  }
  const std::uint64_t keep_from = 2;
  writer.drop_segments_before(keep_from);
  for (const std::string& name : disk.list()) {
    std::uint64_t index = 0;
    if (parse_wal_segment_name(name, index)) EXPECT_GE(index, keep_from);
  }
  const auto records = replay_all(disk, nullptr);
  EXPECT_EQ(records.size(), 2u);
}

TEST(MemDiskTest, AtomicWriteReplacesContent) {
  MemDisk disk;
  disk.append("f", bytes_of("aaa"));
  disk.write_atomic("f", bytes_of("bb"));
  EXPECT_EQ(disk.read("f"), bytes_of("bb"));
  disk.remove("f");
  EXPECT_FALSE(disk.exists("f"));
  EXPECT_TRUE(disk.read("f").empty());
}

}  // namespace
}  // namespace lyra::storage
